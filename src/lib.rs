//! Root crate re-exporting the Latr reproduction workspace.
pub use latr_arch as arch;
pub use latr_core as core;
pub use latr_kernel as kernel;
pub use latr_mem as mem;
pub use latr_sim as sim;
pub use latr_workloads as workloads;
