//! Steady-state allocation discipline on the fast engine (ISSUE 10).
//!
//! The hot-path optimisations only hold their speedups if the per-event
//! work is genuinely allocation-free once every pool and scratch buffer
//! has grown to its working size: the calendar slab reuses freed event
//! slots, the VMA trees and page-table nodes come from pools, sweep
//! relevance and reclaim batches reuse scratch vectors, and freed frames
//! round-trip through the frame-vec pool. This test pins that property
//! with a counting global allocator: two sweep-storm runs that differ
//! only in simulated duration must perform **exactly** the same number
//! of heap allocations — every allocation belongs to setup or warmup,
//! and the extra hundreds of thousands of delivered events add zero.
//!
//! Tracing and the oracle are off (both are diagnostic layers with their
//! own buffers), matching the `BENCH_hotpath.json` configuration.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (`alloc`, `alloc_zeroed`, and growth via
/// `realloc`) routed through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{EngineBackend, Machine, MachineConfig};
use latr_sim::{Nanos, MILLISECOND};
use latr_workloads::{PolicyKind, SweepStorm};

/// Runs the bench-shaped sweep storm for `duration` and returns the
/// number of heap allocations performed *during the run* (setup —
/// `Machine::new` and the workload constructor — is excluded; warmup is
/// not, which is exactly why the short run is subtracted).
fn allocations_during(duration: Nanos) -> (u64, u64) {
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.seed = 0x000a_110c;
    config.trace_capacity = 0;
    config.oracle = false;
    config.engine = EngineBackend::Fast;
    let mut machine = Machine::new(config);
    // Enough rounds that the storm is still publishing when the long
    // run ends: the extra window must contain real per-event work, not
    // idle ticks.
    let workload = Box::new(SweepStorm::new(16, 1_000_000));
    let policy = PolicyKind::Latr(LatrConfig::default()).build();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    machine.run(workload, policy, duration);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before, machine.events_delivered())
}

#[test]
fn sweep_storm_steady_state_allocates_nothing_per_event() {
    let short = 50 * MILLISECOND;
    let long = 250 * MILLISECOND;
    let (short_allocs, short_events) = allocations_during(short);
    let (long_allocs, long_events) = allocations_during(long);
    assert!(
        long_events > short_events + 10_000,
        "the long run must actually deliver more events \
         ({long_events} vs {short_events}) or the delta proves nothing"
    );
    assert_eq!(
        long_allocs - short_allocs,
        0,
        "steady state must be allocation-free on the fast engine: \
         {short_allocs} allocations in {short_events} events (warmup \
         included) vs {long_allocs} in {long_events} — the extra \
         {} events allocated {} times",
        long_events - short_events,
        long_allocs - short_allocs,
    );
}
