//! A negative control for the verification machinery: `NoopPolicy` frees
//! munmapped frames immediately *without ever invalidating remote TLBs* —
//! exactly what an OS without TLB coherence would do. The reclamation-
//! invariant checker must catch it, demonstrating that (a) the checker has
//! teeth and (b) Latr's lazy reclamation is what makes laziness safe.

use latr_arch::{CpuId, MachinePreset, Topology};
use latr_kernel::{Machine, MachineConfig, NoopPolicy, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::SECOND;

/// Core 0 maps a page both cores touch, then unmaps it; the checker runs
/// right after the munmap completes.
struct UnsafeFree {
    step0: usize,
    victim: Option<VaRange>,
    sharer_touched: bool,
    violation: Option<Option<String>>,
}

impl Workload for UnsafeFree {
    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        machine.spawn_task(mm, CpuId(0));
        machine.spawn_task(mm, CpuId(1));
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        if task.index() == 1 {
            return match self.victim {
                Some(r) if !self.sharer_touched => {
                    self.sharer_touched = true;
                    Op::Access {
                        vpn: r.start,
                        write: false,
                    }
                }
                _ if self.violation.is_some() => Op::Exit,
                _ => Op::Sleep(2_000),
            };
        }
        if self.victim.is_some() && !self.sharer_touched {
            return Op::Sleep(1_000);
        }
        self.step0 += 1;
        match self.step0 {
            1 => Op::MmapAnon { pages: 1 },
            2 => Op::Access {
                vpn: self.victim.or(machine.task(task).last_mmap).unwrap().start,
                write: true,
            },
            3 => Op::Munmap {
                range: machine.task(task).last_mmap.unwrap(),
            },
            _ => Op::Exit,
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        if task.index() != 0 {
            return;
        }
        match result.op {
            Op::MmapAnon { .. } => self.victim = machine.task(task).last_mmap,
            Op::Munmap { .. } => {
                // NoopPolicy released the frame already, but core 1's TLB
                // still translates to it.
                self.violation = Some(machine.check_reclamation_invariant().map(|v| v.to_string()));
            }
            _ => {}
        }
    }
}

#[test]
fn noop_policy_breaks_the_reclamation_invariant() {
    let mut machine = Machine::new(MachineConfig::new(Topology::preset(
        MachinePreset::Commodity2S16C,
    )));
    let (workload, _) = machine.run(
        Box::new(UnsafeFree {
            step0: 0,
            victim: None,
            sharer_touched: false,
            violation: None,
        }),
        Box::new(NoopPolicy),
        SECOND,
    );
    let any: Box<dyn std::any::Any> = workload;
    let w = any.downcast::<UnsafeFree>().expect("same type");
    let violation = w.violation.expect("checker ran after munmap");
    let message = violation
        .expect("NoopPolicy must violate the invariant: a remote TLB caches a freed frame");
    assert!(
        message.contains("cpu1"),
        "the violation should name the stale core: {message}"
    );
    // The coherence oracle must catch the same bug on its own, from the
    // event stream alone: the free is not ordered after core 1's fill by
    // any publish/sweep/IPI edge.
    let oracle = machine
        .oracle_violation()
        .expect("the oracle must flag NoopPolicy's immediate free");
    assert!(
        oracle.headline.contains("cpu1"),
        "the oracle should name the stale core: {}",
        oracle.headline
    );
    assert!(
        oracle.race.contains("data race"),
        "no happens-before edge orders this free: {}",
        oracle.race
    );
}
