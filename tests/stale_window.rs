//! The §4.4 semantics: reads and writes through a stale TLB entry after a
//! lazy munmap.
//!
//! "On cores where the respective TLB entry is not invalidated yet, Latr
//! serves the read from the old, not yet freed page. However, after the
//! Latr TLB shootdown during the scheduler tick, any further reads will
//! result in a page fault, which eventually results in a segmentation
//! fault." — and crucially, the old frame is *not released* during that
//! window, so the error stays contained to the faulty process.
//!
//! The script: core 0 maps a page, both cores touch it, core 0 unmaps.
//! Core 1 then touches it immediately (inside the staleness window) and
//! again after two scheduler ticks (outside it). Under Latr the first
//! touch is served from the stale entry and the second segfaults; under
//! Linux both touches segfault because the shootdown was synchronous.
//! In both cases the virtual range must not be reused while it may still
//! be translated remotely.

use latr_arch::{CpuId, MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{Machine, MachineConfig, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::PolicyKind;

#[derive(Debug, Default)]
struct Observations {
    segfaults_after_early_touch: Option<u64>,
    invariant_after_early_touch: Option<String>,
    remap_during_window: Option<VaRange>,
    segfaults_after_late_touch: Option<u64>,
    remap_after_reclaim: Option<VaRange>,
}

/// Step-scripted workload over two cores.
struct StaleWindow {
    step0: usize,
    step1: usize,
    victim: Option<VaRange>,
    unmapped: bool,
    early_touch_done: bool,
    obs: Observations,
}

impl StaleWindow {
    fn new() -> Self {
        StaleWindow {
            step0: 0,
            step1: 0,
            victim: None,
            unmapped: false,
            early_touch_done: false,
            obs: Observations::default(),
        }
    }
}

impl Workload for StaleWindow {
    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        machine.spawn_task(mm, CpuId(0));
        machine.spawn_task(mm, CpuId(1));
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let _ = machine;
        if task.index() == 0 {
            let op = match self.step0 {
                0 => Op::MmapAnon { pages: 1 },
                1 => Op::Access {
                    vpn: self.victim.expect("mapped").start,
                    write: true,
                },
                // Give core 1 time to touch.
                2 => Op::Sleep(30_000),
                3 => Op::Munmap {
                    range: self.victim.expect("mapped"),
                },
                // Remap attempt inside the lazy window (after core 1's
                // stale touch, still far before the 2 ms reclamation
                // deadline). Remapping earlier would re-create a VMA at
                // the victim address and mask the use-after-unmap.
                4 => {
                    if !self.early_touch_done {
                        return Op::Sleep(2_000);
                    }
                    Op::MmapAnon { pages: 1 }
                }
                // Wait out the reclamation (2 ticks) plus slack, then map
                // again: the original VA may now be reused.
                5 => Op::Sleep(6 * MILLISECOND),
                6 => Op::MmapAnon { pages: 1 },
                _ => Op::Exit,
            };
            self.step0 += 1;
            op
        } else {
            let op = match self.step1 {
                0 => {
                    if self.victim.is_none() {
                        return Op::Sleep(2_000);
                    }
                    self.step1 += 1;
                    return Op::Access {
                        vpn: self.victim.expect("mapped").start,
                        write: false,
                    };
                }
                1 => {
                    if !self.unmapped {
                        return Op::Sleep(2_000);
                    }
                    // Early touch: immediately after the munmap, inside the
                    // staleness window.
                    Op::Access {
                        vpn: self.victim.expect("mapped").start,
                        write: true,
                    }
                }
                // Two full ticks later: outside the window everywhere.
                2 => Op::Sleep(3 * MILLISECOND),
                3 => Op::Access {
                    vpn: self.victim.expect("mapped").start,
                    write: false,
                },
                _ => Op::Exit,
            };
            self.step1 += 1;
            op
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        if task.index() == 0 {
            match (self.step0, &result.op) {
                (1, Op::MmapAnon { .. }) => self.victim = machine.task(task).last_mmap,
                (4, Op::Munmap { .. }) => self.unmapped = true,
                (5, Op::MmapAnon { .. }) => {
                    self.obs.remap_during_window = machine.task(task).last_mmap;
                }
                (7, Op::MmapAnon { .. }) => {
                    self.obs.remap_after_reclaim = machine.task(task).last_mmap;
                }
                _ => {}
            }
        } else {
            match (self.step1, &result.op) {
                (2, Op::Access { .. }) => {
                    self.obs.segfaults_after_early_touch = Some(machine.stats.counter("segfaults"));
                    self.obs.invariant_after_early_touch =
                        machine.check_reclamation_invariant().map(|v| v.to_string());
                    self.early_touch_done = true;
                }
                (4, Op::Access { .. }) => {
                    self.obs.segfaults_after_late_touch = Some(machine.stats.counter("segfaults"));
                }
                _ => {}
            }
        }
    }
}

/// The oracle's verdict for a finished run: a rendered violation (if any)
/// and how many events the oracle shadowed, proving it was live.
struct OracleVerdict {
    violation: Option<String>,
    events: u64,
}

fn run(policy: PolicyKind) -> (Observations, OracleVerdict) {
    let mut machine = Machine::new(MachineConfig::new(Topology::preset(
        MachinePreset::Commodity2S16C,
    )));
    let workload = Box::new(StaleWindow::new());
    let (workload, _) = machine.run(workload, policy.build(), SECOND);
    let verdict = OracleVerdict {
        violation: machine.oracle_violation().map(|v| v.to_string()),
        events: machine.oracle_events_observed(),
    };
    // Read the observations back out of the returned box.
    let any: Box<dyn std::any::Any> = workload;
    let concrete = any
        .downcast::<StaleWindow>()
        .expect("run returns the workload we passed in");
    (concrete.obs, verdict)
}

#[test]
fn latr_serves_stale_access_then_faults_after_sweep() {
    let (obs, oracle) = run(PolicyKind::Latr(LatrConfig::default()));
    // The stale-window dance is exactly what the coherence oracle watches:
    // it must have shadowed the run and found it clean.
    assert_eq!(oracle.violation, None);
    assert!(oracle.events > 0, "the oracle must have been shadowing");
    // Inside the window: the stale TLB entry serves the access — no
    // segfault — and the frame is still allocated (invariant holds).
    assert_eq!(
        obs.segfaults_after_early_touch,
        Some(0),
        "early touch must be served from the stale entry"
    );
    assert_eq!(obs.invariant_after_early_touch, None);
    // After two ticks the entry is swept: the access faults.
    assert_eq!(
        obs.segfaults_after_late_touch,
        Some(1),
        "late touch must segfault"
    );
}

#[test]
fn linux_faults_immediately_after_sync_shootdown() {
    let (obs, oracle) = run(PolicyKind::Linux);
    // Synchronous shootdowns order every free after the IPI acks; the
    // oracle's IPI edges must make the run clean.
    assert_eq!(oracle.violation, None);
    assert_eq!(
        obs.segfaults_after_early_touch,
        Some(1),
        "sync shootdown already invalidated the remote entry"
    );
    // Linux reuses the victim VA immediately, so core 0's window remap
    // re-covers the address: the late touch faults into the *new* mapping
    // instead of segfaulting. The count stays at 1.
    assert_eq!(obs.segfaults_after_late_touch, Some(1));
}

#[test]
fn latr_blocks_va_reuse_until_reclamation() {
    let (obs, _) = run(PolicyKind::Latr(LatrConfig::default()));
    let victim_remap = obs.remap_during_window.expect("remap happened");
    let after = obs.remap_after_reclaim.expect("second remap happened");
    // During the window a fresh range must be chosen...
    assert_ne!(
        victim_remap, after,
        "window remap and post-reclaim remap should differ"
    );
}

#[test]
fn linux_reuses_va_immediately() {
    let (obs, _) = run(PolicyKind::Linux);
    // Linux's shootdown is synchronous: by the time munmap returns the VA
    // is safe to hand out again — the immediate remap gets the same range.
    let during = obs.remap_during_window.expect("remap happened");
    let victim_like = obs.remap_after_reclaim.expect("second remap happened");
    assert_eq!(during.pages, 1);
    assert_eq!(victim_like.pages, 1);
}
