//! The chaos suite: seeded, deterministic fault plans drive the full
//! machine while the PR-2 coherence oracle shadows every event.
//!
//! Each test runs the same cross-core sharing workload under one
//! [`FaultPlan`] — dropped and delayed IPIs, stalled sweepers, missed and
//! jittered scheduler ticks, queue-overflow storms, and a soup of all of
//! them — and asserts the two halves of the robustness story:
//!
//! * **Safety is never traded away.** The oracle finds no
//!   freed-while-cached race, both machine invariants (reclamation, TLB/PTE
//!   coherence) hold at shutdown, and no frame leaks. The reclamation
//!   *gate* (a package is not released while its Latr state's CPU bitmask
//!   is non-empty) is what keeps the deadline heuristic honest when sweeps
//!   stop happening on schedule.
//! * **Liveness degrades, boundedly.** The sweep watchdog escalates
//!   overdue states with targeted IPIs, so reclaim latency stays within
//!   `(watchdog_ticks + reclaim_ticks + 1)` scheduler ticks even with a
//!   core's sweeps stalled outright. The negative control shows the bound
//!   is the watchdog's doing: with it disabled, the same stall holds
//!   reclamation hostage for the rest of the run.
//!
//! Every plan is replayed from the machine seed alone — the last tests
//! pin down that identical plans and seeds reproduce identical runs,
//! counter for counter and trace line for trace line.

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{metrics, Machine, MachineConfig};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::{AllocStorm, ChaosShare, PolicyKind};
use proptest::prelude::*;

/// Runs the chaos workload for one simulated second (it finishes in
/// ~25 ms) under `plan` and the given Latr configuration.
fn run_chaos(seed: u64, plan: FaultPlan, latr: LatrConfig) -> Machine {
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.seed = seed;
    config.trace_capacity = 8192;
    config.faults = Some(plan);
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(ChaosShare::new(4, 24)),
        PolicyKind::Latr(latr).build(),
        SECOND,
    );
    machine
}

/// The safety half: no oracle violation, both invariants clean, no leaks.
fn assert_safe(m: &Machine) {
    if let Some(v) = m.oracle_violation() {
        panic!("oracle violation under injected faults:\n{v}");
    }
    assert!(
        m.oracle_events_observed() > 0,
        "the oracle must have been shadowing the run"
    );
    assert_eq!(m.check_reclamation_invariant(), None);
    assert_eq!(m.check_mapping_coherence(), None);
    assert_eq!(m.frames.allocated_count(), 0, "frames leaked");
}

/// The liveness half: every reclaim released during the run stayed within
/// the watchdog bound of `(watchdog_ticks + reclaim_ticks + 1)` ticks.
fn assert_latency_bounded(m: &Machine, cfg: &LatrConfig) {
    let bound = u64::from(cfg.watchdog_ticks + cfg.reclaim_ticks + 1) * m.tick_period();
    if let Some(h) = m.stats.histogram(metrics::LATR_RECLAIM_LATENCY_NS) {
        let max = h.summary().max;
        assert!(
            max <= bound,
            "reclaim latency {max} ns exceeds the degradation bound {bound} ns"
        );
    }
}

/// The mixed plan shared by the soup and determinism tests.
fn mixed_plan() -> FaultPlan {
    FaultPlan::default()
        .with_ipi_drop(0.10)
        .with_ipi_delay(0.30, 200_000)
        .with_tick_miss(0.20)
        .with_tick_jitter(0.30, 200_000)
        .with_stall(2, 2 * MILLISECOND, 4 * MILLISECOND)
        .with_storm(8 * MILLISECOND, 2 * MILLISECOND)
}

#[test]
fn armed_but_empty_plan_changes_nothing() {
    // An inactive plan must not even construct the injector: the run is
    // event-for-event identical to a fault-free one.
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.seed = 7;
    let mut bare = Machine::new(config);
    bare.run(
        Box::new(ChaosShare::new(4, 24)),
        PolicyKind::latr_default().build(),
        SECOND,
    );
    let armed = run_chaos(7, FaultPlan::default(), LatrConfig::default());
    assert_eq!(bare.now(), armed.now());
    let ca: Vec<(String, u64)> = bare
        .stats
        .counters()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    let cb: Vec<(String, u64)> = armed
        .stats
        .counters()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    assert_eq!(ca, cb);
    assert_eq!(armed.stats.counter(metrics::IPI_RETRIES), 0);
}

#[test]
fn dropped_ipis_are_retried_and_safe() {
    let plan = FaultPlan::default().with_ipi_drop(0.30);
    let cfg = LatrConfig::default();
    let m = run_chaos(0xD201, plan, cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    assert!(
        m.stats.counter(metrics::FAULTS_IPI_DROPPED) > 0,
        "the plan must actually have dropped IPIs"
    );
    assert!(
        m.stats.counter(metrics::IPI_RETRIES) > 0,
        "dropped IPIs must be recovered by retransmission"
    );
}

#[test]
fn delayed_ipis_stay_safe() {
    let plan = FaultPlan::default().with_ipi_delay(0.50, 300_000);
    let cfg = LatrConfig::default();
    let m = run_chaos(0xDE1A1, plan, cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    assert!(m.stats.counter(metrics::FAULTS_IPI_DELAYED) > 0);
}

#[test]
fn stalled_core_is_bounded_by_the_watchdog() {
    // Core 1's sweeps stop for 8 ms — four times the healthy sweep bound.
    // The watchdog (4 ticks here) must escalate and keep reclaim latency
    // within (4 + 2 + 1) ticks.
    let plan = FaultPlan::default().with_stall(1, MILLISECOND, 8 * MILLISECOND);
    let cfg = LatrConfig {
        watchdog_ticks: 4,
        ..LatrConfig::default()
    };
    let m = run_chaos(0x57A11, plan, cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    assert!(
        m.stats.counter(metrics::FAULTS_SWEEP_STALLS) > 0,
        "the stall must actually have suppressed sweeps"
    );
    assert!(
        m.stats.counter(metrics::LATR_WATCHDOG_ESCALATIONS) > 0,
        "the watchdog must have escalated the overdue states"
    );
    assert!(m.stats.counter(metrics::LATR_WATCHDOG_IPIS) > 0);
    let samples = m
        .stats
        .histogram(metrics::LATR_RECLAIM_LATENCY_NS)
        .map_or(0, |h| h.summary().count);
    assert!(samples > 0, "the latency bound must have been exercised");
}

#[test]
fn without_the_watchdog_a_stall_is_unbounded() {
    // Negative control: the same class of stall, watchdog disabled (the
    // reclamation gate stays on — safety is not what degrades). Packages
    // covered by core 1's bit can only release once the stall lifts or
    // the task exits, far past the bound the watchdog would enforce.
    let plan = FaultPlan::default().with_stall(1, 0, 60 * MILLISECOND);
    let cfg = LatrConfig {
        watchdog_ticks: 0,
        ..LatrConfig::default()
    };
    let m = run_chaos(0x57A11, plan, cfg);
    assert_safe(&m);
    assert_eq!(m.stats.counter(metrics::LATR_WATCHDOG_ESCALATIONS), 0);
    let deferred = m.stats.counter(metrics::LATR_DEFERRED_FRAMES);
    let released = m.stats.counter(metrics::LATR_RECLAIM_RELEASED_FRAMES);
    let default_bound =
        u64::from(LatrConfig::default().watchdog_ticks + cfg.reclaim_ticks + 1) * m.tick_period();
    let max_latency = m
        .stats
        .histogram(metrics::LATR_RECLAIM_LATENCY_NS)
        .map_or(0, |h| h.summary().max);
    assert!(deferred > 0, "the workload must have deferred reclaims");
    assert!(
        released < deferred || max_latency > default_bound,
        "with no watchdog the stall must hold reclamation past the bound \
         (released {released}/{deferred} frames, max latency {max_latency} ns \
         vs bound {default_bound} ns)"
    );
}

#[test]
fn jittered_ticks_stay_safe() {
    let plan = FaultPlan::default().with_tick_jitter(0.50, 400_000);
    let cfg = LatrConfig::default();
    let m = run_chaos(0x117E1, plan, cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    assert!(m.stats.counter(metrics::FAULTS_TICK_JITTER) > 0);
}

#[test]
fn missed_ticks_stay_safe() {
    let plan = FaultPlan::default().with_tick_miss(0.35);
    let cfg = LatrConfig::default();
    let m = run_chaos(0x5EED1, plan, cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    assert!(m.stats.counter(metrics::FAULTS_TICKS_MISSED) > 0);
}

#[test]
fn overflow_storm_enters_sync_mode_and_recovers() {
    let plan = FaultPlan::default().with_storm(2 * MILLISECOND, 3 * MILLISECOND);
    let cfg = LatrConfig::default();
    let m = run_chaos(0x57081, plan, cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    assert!(
        m.stats.counter(metrics::FAULTS_FORCED_OVERFLOWS) > 0,
        "the storm must have forced publishes to overflow"
    );
    assert!(
        m.stats.counter(metrics::LATR_ADAPTIVE_ENTERS) >= 1,
        "sustained overflow must flip the policy into sync mode"
    );
    assert!(
        m.stats.counter(metrics::LATR_ADAPTIVE_EXITS) >= 1,
        "the policy must return to lazy mode once the storm drains"
    );
    assert!(m.stats.counter(metrics::LATR_ADAPTIVE_SYNC_OPS) >= 1);
}

#[test]
fn mixed_fault_soup_stays_safe_and_bounded() {
    let cfg = LatrConfig::default();
    let m = run_chaos(0x5007, mixed_plan(), cfg);
    assert_safe(&m);
    assert_latency_bounded(&m, &cfg);
    // Every fault class in the plan must have fired at least once.
    for metric in [
        metrics::FAULTS_IPI_DROPPED,
        metrics::FAULTS_IPI_DELAYED,
        metrics::FAULTS_TICKS_MISSED,
        metrics::FAULTS_TICK_JITTER,
        metrics::FAULTS_SWEEP_STALLS,
        metrics::FAULTS_FORCED_OVERFLOWS,
    ] {
        assert!(m.stats.counter(metric) > 0, "{metric} never fired");
    }
}

#[test]
fn identical_plans_and_seeds_reproduce_identical_runs() {
    let a = run_chaos(0xCAFE, mixed_plan(), LatrConfig::default());
    let b = run_chaos(0xCAFE, mixed_plan(), LatrConfig::default());
    assert_eq!(a.fingerprint(), b.fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Determinism is not a property of hand-picked seeds: any seed and
    /// any (parsed-back) plan must replay byte-identically.
    #[test]
    fn any_seed_and_plan_replays_identically(
        seed in any::<u64>(),
        drop_pct in 0u32..35,
        delay_pct in 0u32..50,
        miss_pct in 0u32..35,
    ) {
        let plan = FaultPlan::default()
            .with_ipi_drop(f64::from(drop_pct) / 100.0)
            .with_ipi_delay(f64::from(delay_pct) / 100.0, 200_000)
            .with_tick_miss(f64::from(miss_pct) / 100.0);
        // Round-trip the plan through its config-file form first: the
        // parsed plan must drive the exact same run as the original.
        let parsed = FaultPlan::parse(&plan.to_config_string()).expect("round-trip");
        let a = run_chaos(seed, plan, LatrConfig::default());
        let b = run_chaos(seed, parsed, LatrConfig::default());
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

// ---------------------------------------------------------------------------
// Memory-pressure fault sites (DESIGN.md §14): allocation bursts,
// reclamation-kthread stalls and watermark flaps, injected into a storm
// workload squeezed by real watermarks. Reclaim stalls suppress the
// background ticks the escalation bound is stated in, so these scenarios
// assert the safety half and replayability only — the tick bound is
// asserted by `tests/pressure.rs` under plans without reclaim stalls.

/// Runs the allocation-storm workload on a watermarked machine under
/// `plan`.
fn run_pressure_chaos(seed: u64, plan: FaultPlan, latr: LatrConfig) -> Machine {
    let topo = Topology::preset(MachinePreset::Commodity2S16C);
    let mut config = MachineConfig::new(topo).with_watermarks(96, 16);
    config.frames_per_node = 160;
    config.seed = seed;
    config.trace_capacity = 8192;
    config.faults = Some(plan);
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(AllocStorm::new(8, 10, 8, 3)),
        PolicyKind::Latr(latr).build(),
        SECOND,
    );
    machine
}

/// Every pressure fault site at once, on top of flaky IPIs and a stalled
/// sweeper.
fn pressure_soup_plan() -> FaultPlan {
    FaultPlan::default()
        .with_ipi_drop(0.05)
        .with_ipi_delay(0.20, 200_000)
        .with_stall(3, 2 * MILLISECOND, 3 * MILLISECOND)
        .with_burst(0, 2 * MILLISECOND, 3 * MILLISECOND, 32)
        .with_burst(1, 2_500_000, 3 * MILLISECOND, 32)
        .with_reclaim_stall(3 * MILLISECOND, 2 * MILLISECOND)
        .with_flap(4 * MILLISECOND, 2 * MILLISECOND, 12)
}

#[test]
fn pressure_soup_is_safe() {
    let m = run_pressure_chaos(11, pressure_soup_plan(), LatrConfig::default());
    assert_safe(&m);
    assert_eq!(m.frames.reclaim_debt_total(), 0, "debt left unsettled");
    // Every pressure site must actually have fired...
    assert!(m.stats.counter(metrics::FAULTS_ALLOC_BURSTS) > 0);
    assert!(m.stats.counter(metrics::FAULTS_RECLAIM_STALLS) > 0);
    assert!(m.stats.counter(metrics::FAULTS_WATERMARK_FLAPS) > 0);
    // ...and the storm must have been a storm.
    assert!(
        m.stats.counter(metrics::MEM_PRESSURE_LOW_EVENTS) > 0,
        "the soup must drive the machine through its low watermark"
    );
}

#[test]
fn pressure_soup_without_escalation_is_still_safe() {
    // The negative arm: pressure reactions off, the same soup. Safety
    // must come from the gate and the grace window alone — escalation is
    // a liveness feature, never a safety dependency.
    let m = run_pressure_chaos(
        11,
        pressure_soup_plan(),
        LatrConfig::default().without_escalation(),
    );
    assert_safe(&m);
    assert_eq!(m.stats.counter(metrics::LATR_EXPEDITED_SWEEPS), 0);
    assert_eq!(m.stats.counter(metrics::LATR_PRESSURE_SYNC_ENTERS), 0);
}

#[test]
fn pressure_soup_replays_identically() {
    let a = run_pressure_chaos(23, pressure_soup_plan(), LatrConfig::default());
    let b = run_pressure_chaos(23, pressure_soup_plan(), LatrConfig::default());
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "identical (plan, seed) must replay the pressure soup exactly"
    );
}
