//! Golden-trace snapshots (ISSUE 4): six seeded scenarios whose full
//! [`latr_kernel::Machine::fingerprint`] — end time, delivered-event
//! count, every counter, every histogram summary and the rendered trace —
//! is pinned byte-for-byte against committed files under `tests/golden/`.
//!
//! The snapshots are the determinism backstop for the hot-path work: any
//! change to event ordering, sweep behaviour or cost accounting shows up
//! as a diff here, whether it comes from the fast engines or the
//! `reference` ones (the differential suite proves they agree, so one
//! set of golden files pins both).
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```sh
//! LATR_BLESS=1 cargo test --test golden_traces
//! git diff tests/golden/   # review every hunk before committing
//! ```

use std::path::PathBuf;

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{EngineBackend, Machine, MachineConfig, Workload};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::{
    ChaosShare, MigrationProfile, MigrationWorkload, MunmapMicrobench, PolicyKind, SweepStorm,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares the machine's fingerprint against the committed snapshot, or
/// rewrites the snapshot when `LATR_BLESS` is set.
fn check_golden(name: &str, machine: &Machine) {
    let path = golden_path(name);
    let got = machine.fingerprint();
    if std::env::var_os("LATR_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             generate it with `LATR_BLESS=1 cargo test --test golden_traces`",
            path.display()
        )
    });
    if got != want {
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        let g = got.lines().nth(line).unwrap_or("<eof>");
        let w = want.lines().nth(line).unwrap_or("<eof>");
        panic!(
            "scenario `{name}` diverged from its golden snapshot at line {line}:\n\
             got:    {g}\n\
             golden: {w}\n\
             ({} got lines vs {} golden lines; re-bless with LATR_BLESS=1 \
             only if the change is intentional)",
            got.lines().count(),
            want.lines().count()
        );
    }
}

/// Runs one golden scenario: fixed topology, seed, plan and workload.
/// Every scenario runs on the default engine *and* the lane-sharded
/// parallel engine; their fingerprints must be bit-identical, so the one
/// committed golden file pins all engines (the differential suite covers
/// the rest of the matrix). The default-engine machine is returned for
/// the byte-for-byte golden comparison.
fn run_scenario(
    config: MachineConfig,
    seed: u64,
    plan: Option<FaultPlan>,
    latr: LatrConfig,
    workload: &dyn Fn() -> Box<dyn Workload>,
) -> Machine {
    let run_one = |engine: EngineBackend| {
        let mut config = config.clone();
        config.seed = seed;
        config.trace_capacity = 4096;
        config.faults = plan.clone();
        config.engine = engine;
        let mut machine = Machine::new(config);
        machine.run(workload(), PolicyKind::Latr(latr).build(), SECOND);
        machine
    };
    let machine = run_one(EngineBackend::default());
    let parallel = run_one(EngineBackend::Parallel(2));
    assert_eq!(
        machine.fingerprint(),
        parallel.fingerprint(),
        "parallel engine diverged from the default engine on a golden scenario"
    );
    machine
}

fn commodity16() -> MachineConfig {
    MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C))
}

#[test]
fn golden_sweep_storm() {
    let m = run_scenario(
        commodity16(),
        0x601D_0001,
        None,
        LatrConfig::default(),
        &|| Box::new(SweepStorm::new(8, 5)),
    );
    check_golden("sweep_storm", &m);
}

#[test]
fn golden_munmap_storm() {
    let m = run_scenario(
        commodity16(),
        0x601D_0002,
        None,
        LatrConfig::default(),
        &|| Box::new(MunmapMicrobench::new(8, 16, 20)),
    );
    check_golden("munmap_storm", &m);
}

#[test]
fn golden_migration() {
    let profile = MigrationProfile::by_name("graph500").expect("profile exists");
    let m = run_scenario(
        profile.machine_config(Topology::preset(MachinePreset::Commodity2S16C)),
        0x601D_0003,
        None,
        LatrConfig::default(),
        &|| Box::new(MigrationWorkload::new(profile, 8, 30)),
    );
    check_golden("migration", &m);
}

#[test]
fn golden_overflow_fallback() {
    // A 4-slot queue under zero-sleep rounds: the overflow→IPI fallback
    // and the adaptive enter/exit hysteresis dominate the trace.
    let latr = LatrConfig {
        states_per_core: 4,
        ..LatrConfig::default()
    };
    let m = run_scenario(commodity16(), 0x601D_0004, None, latr, &|| {
        Box::new(SweepStorm::new(8, 12).with_sleep(0))
    });
    check_golden("overflow_fallback", &m);
}

#[test]
fn golden_chaos_drop() {
    let m = run_scenario(
        commodity16(),
        0x601D_0005,
        Some(FaultPlan::default().with_ipi_drop(0.30)),
        LatrConfig::default(),
        &|| Box::new(ChaosShare::new(4, 12)),
    );
    check_golden("chaos_drop", &m);
}

#[test]
fn golden_chaos_soup() {
    let plan = FaultPlan::default()
        .with_ipi_drop(0.10)
        .with_ipi_delay(0.30, 200_000)
        .with_tick_miss(0.20)
        .with_tick_jitter(0.30, 200_000)
        .with_stall(2, 2 * MILLISECOND, 4 * MILLISECOND)
        .with_storm(8 * MILLISECOND, 2 * MILLISECOND);
    let m = run_scenario(
        commodity16(),
        0x601D_0006,
        Some(plan),
        LatrConfig::default(),
        &|| Box::new(ChaosShare::new(4, 12)),
    );
    check_golden("chaos_soup", &m);
}
