//! Memory-pressure acceptance suite (DESIGN.md §14): seeded allocation
//! storms at the 120-core preset, with the PR-2 coherence oracle
//! shadowing every event.
//!
//! The contract under test:
//!
//! * **Safety survives the storm.** Watermarks, expedited sweeps, and
//!   the min-watermark sync fallback change *when* frames come back,
//!   never *whether it is safe* — the oracle stays clean, both machine
//!   invariants hold, nothing leaks, nothing deadlocks.
//! * **Escalation is bounded.** A package expedited by pressure is
//!   released within `(reclaim_ticks + 2)` scheduler ticks of the
//!   pressure event: the escalation IPI round retires the gate within a
//!   tick, the deadline is at most `reclaim_ticks` ticks out, and the
//!   next background tick (or a direct-reclaim stall) releases it.
//! * **Escalation earns its keep.** The same storm, same seed, same
//!   fault plan: the bare-lazy policy (`without_escalation`) is driven
//!   through its min watermark while the escalating policy keeps the
//!   reserve intact.
//! * **Everything replays.** Identical (plan, seed) ⇒ identical
//!   fingerprints, pressure machinery and all.

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{metrics, Machine, MachineConfig};
use latr_sim::SECOND;
use latr_workloads::{AllocStorm, PolicyKind};

const CORES: usize = 120;
const FRAMES_PER_NODE: u64 = 256;
const LOW_WATERMARK: u64 = 96;
const MIN_WATERMARK: u64 = 24;

/// A storm that outruns background reclamation. Three ingredients:
///
/// * the workload itself — 120 tasks churning 4-page mappings while
///   holding a window of them live, so every unmap parks frames on the
///   lazy-reclaim list;
/// * sweep stalls on every tenth core from 1.2 ms to 5.2 ms — stalled
///   sweepers never clear their TLB-bitmask gates, so parked packages
///   pile up exactly the way a preemption-disabled or NOHZ core causes
///   in the real kernel (escalation IPIs still land: that is the point);
/// * allocation bursts on half the nodes plus a watermark flap, both
///   *after* the first reclaim ticks, squeezing the free lists while
///   the gates are stuck.
///
/// No reclaim-kthread stalls and no IPI faults: the tick-bound test
/// relies on ticks firing and escalation rounds completing on schedule.
fn storm_plan() -> FaultPlan {
    let mut plan = FaultPlan::default()
        .with_burst(0, 2_200_000, 3_000_000, 48)
        .with_burst(2, 2_400_000, 3_000_000, 48)
        .with_burst(4, 2_600_000, 3_000_000, 48)
        .with_burst(6, 2_800_000, 3_000_000, 48)
        .with_flap(3_000_000, 2_000_000, 16);
    for c in (0..CORES as u16).step_by(10) {
        plan = plan.with_stall(c, 1_200_000, 4_000_000);
    }
    plan
}

fn run_storm(seed: u64, plan: FaultPlan, latr: LatrConfig) -> Machine {
    let topo = Topology::preset(MachinePreset::LargeNuma8S120C);
    let mut config = MachineConfig::new(topo).with_watermarks(LOW_WATERMARK, MIN_WATERMARK);
    config.frames_per_node = FRAMES_PER_NODE;
    config.seed = seed;
    config.faults = Some(plan);
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(AllocStorm::new(CORES, 24, 4, 2)),
        PolicyKind::Latr(latr).build(),
        SECOND,
    );
    machine
}

/// No oracle violation, both invariants clean, no leaked frames, and the
/// allocator's books still balance.
fn assert_safe(m: &Machine) {
    if let Some(v) = m.oracle_violation() {
        panic!("oracle violation under the allocation storm:\n{v}");
    }
    assert!(
        m.oracle_events_observed() > 0,
        "the oracle must have been shadowing the run"
    );
    assert_eq!(m.check_reclamation_invariant(), None);
    assert_eq!(m.check_mapping_coherence(), None);
    assert_eq!(m.frames.allocated_count(), 0, "frames leaked");
    assert!(m.frames.conservation_holds(), "allocator books unbalanced");
    assert_eq!(m.frames.reclaim_debt_total(), 0, "reclaim debt unsettled");
}

#[test]
fn storm_at_120_cores_is_safe_and_escalation_fires() {
    let m = run_storm(42, storm_plan(), LatrConfig::default());
    assert_safe(&m);
    assert!(
        m.stats.counter(metrics::MEM_PRESSURE_LOW_EVENTS) > 0,
        "the storm must actually cross the low watermark"
    );
    assert!(
        m.stats.counter(metrics::LATR_EXPEDITED_SWEEPS) > 0,
        "low-watermark pressure must expedite gated packages"
    );
    assert!(
        m.stats.counter(metrics::FAULTS_ALLOC_BURSTS) > 0,
        "the injected bursts must have been applied"
    );
    assert!(
        m.stats.counter(metrics::FAULTS_WATERMARK_FLAPS) > 0,
        "the injected flap must have been applied"
    );
    assert!(
        m.stats.counter(metrics::FAULTS_SWEEP_STALLS) > 0,
        "the injected sweep stalls must have been applied"
    );
}

/// The escalation tick bound: pressure → release within
/// `(reclaim_ticks + 2)` scheduler ticks for every expedited package.
/// The storm plan contains no reclaim-kthread stalls and no IPI faults,
/// so neither the background tick nor the escalation round can be held
/// up by anything but the mechanism's own schedule.
#[test]
fn expedited_packages_release_within_the_tick_bound() {
    let cfg = LatrConfig::default();
    let m = run_storm(42, storm_plan(), cfg);
    let h = m
        .stats
        .histogram(metrics::LATR_EXPEDITE_LATENCY_NS)
        .expect("the storm must expedite at least one gated package");
    let bound = u64::from(cfg.reclaim_ticks + 2) * m.tick_period();
    let max = h.summary().max;
    assert!(
        max <= bound,
        "expedite latency {max} ns exceeds the ({} + 2)-tick bound {bound} ns",
        cfg.reclaim_ticks
    );
}

/// Escalation's keep: the identical storm (same seed, same fault plan)
/// drives the bare-lazy policy through its min watermark and all the way
/// to exhaustion — zero free frames, allocation stalls, OOM events,
/// hundreds of overdue packages held behind stalled sweepers — while the
/// escalating policy rides it out with the reserve never emptied and not
/// a single allocation stall.
#[test]
fn escalation_rides_out_a_storm_bare_lazy_cannot() {
    let bare = run_storm(42, storm_plan(), LatrConfig::default().without_escalation());
    let full = run_storm(42, storm_plan(), LatrConfig::default());
    assert_safe(&bare);
    assert_safe(&full);

    // Bare-lazy is driven past the min watermark and into the ground.
    assert!(
        bare.stats.counter(metrics::MEM_PRESSURE_MIN_EVENTS) > 0,
        "the storm must drive bare-lazy through its min watermark"
    );
    assert_eq!(bare.frames.min_free(), 0, "bare-lazy must be exhausted");
    assert!(
        bare.stats.counter(metrics::ALLOC_STALLS) > 0,
        "exhaustion must show up as allocation stalls"
    );
    assert!(
        bare.stats.counter(metrics::OOM_EVENTS) > 0,
        "stalls that find nothing to reclaim must end in OOM"
    );
    assert!(
        bare.stats.counter(metrics::LATR_GATE_HELD) > 100,
        "the stalled sweepers must hold overdue packages hostage (got {})",
        bare.stats.counter(metrics::LATR_GATE_HELD)
    );

    // Escalation sustains the same storm: reserve never empty, no
    // stalls, no OOM, far fewer min-watermark breaches.
    assert!(
        full.frames.min_free() > 0,
        "escalation must keep the free list from emptying"
    );
    assert_eq!(full.stats.counter(metrics::ALLOC_STALLS), 0);
    assert_eq!(full.stats.counter(metrics::OOM_EVENTS), 0);
    assert!(
        full.stats.counter(metrics::MEM_PRESSURE_MIN_EVENTS)
            < bare.stats.counter(metrics::MEM_PRESSURE_MIN_EVENTS),
        "escalation must breach the min watermark less often"
    );

    // The mechanism, not luck: expedition fired only where enabled, and
    // it is what kept the gates from accumulating.
    assert!(full.stats.counter(metrics::LATR_EXPEDITED_SWEEPS) > 0);
    assert!(
        full.stats.counter(metrics::LATR_GATE_HELD)
            < bare.stats.counter(metrics::LATR_GATE_HELD) / 10,
        "expedition must clear the gates bare-lazy leaves held"
    );
    assert_eq!(bare.stats.counter(metrics::LATR_EXPEDITED_SWEEPS), 0);
    assert_eq!(bare.stats.counter(metrics::LATR_EXPEDITED_IPIS), 0);
    assert_eq!(bare.stats.counter(metrics::LATR_PRESSURE_SYNC_ENTERS), 0);
}

/// Identical (plan, seed) ⇒ identical runs, pressure machinery included.
#[test]
fn pressure_runs_are_deterministic() {
    let a = run_storm(1234, storm_plan(), LatrConfig::default());
    let b = run_storm(1234, storm_plan(), LatrConfig::default());
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(
        a.stats.counter(metrics::ALLOC_STALLS),
        b.stats.counter(metrics::ALLOC_STALLS)
    );
}

/// A machine too small for even escalation to save: the stall-and-retry
/// path runs out of road, OOM events are counted, and the run still
/// finishes safe — allocation failure degrades the workload, never the
/// coherence argument.
#[test]
fn exhaustion_is_graceful_not_fatal() {
    let topo = Topology::preset(MachinePreset::Commodity2S16C);
    let mut config = MachineConfig::new(topo).with_watermarks(24, 8);
    config.frames_per_node = 48; // 96 frames against ~384 of demand
    config.seed = 9;
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(AllocStorm::new(16, 6, 4, 2)),
        PolicyKind::Latr(LatrConfig::default()).build(),
        SECOND,
    );
    assert!(
        machine.stats.counter(metrics::OOM_EVENTS) > 0,
        "a 4x-oversubscribed machine must hit the OOM path"
    );
    assert!(
        machine.stats.counter(metrics::ALLOC_STALLS) > 0,
        "OOM must come through the stall-and-retry path"
    );
    if let Some(v) = machine.oracle_violation() {
        panic!("OOM must not corrupt coherence:\n{v}");
    }
    assert_eq!(machine.check_mapping_coherence(), None);
    assert_eq!(machine.check_reclamation_invariant(), None);
}
