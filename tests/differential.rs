//! The differential suite: the hot-path engines against their executable
//! specs (ISSUE 4), extended to the three-way engine matrix (ISSUE 9).
//!
//! PR 4 replaced two straightforward implementations with optimised
//! ones — the binary-heap event queue with a calendar queue
//! ([`EngineBackend::Fast`]) and the scan-every-queue Latr sweep with a
//! pending-bitmap cursor sweep (`LatrConfig::reference_sweep = false`).
//! PR 9 added a third engine: the lane-sharded parallel simulator
//! ([`EngineBackend::Parallel`]), which runs real worker threads under
//! conservative-lookahead epoch barriers. This suite runs all three side
//! by side on identical seeds, workloads and fault plans and asserts the
//! runs are **bit-identical**: [`latr_kernel::Machine::fingerprint`]
//! covers the end time, the delivered-event count, every counter, every
//! histogram summary and the full rendered trace, so any divergence in
//! event order, cost accounting or sweep behaviour fails loudly.
//!
//! Coverage follows the ISSUE's acceptance list: the golden seeds, every
//! fault-plan class from `tests/chaos.rs` (drop, delay, stall, jitter,
//! miss, storm, and the mixed soup), and 100 proptest cases over random
//! seeds, shapes, plans — and, since PR 9, worker counts.

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{EngineBackend, Machine, MachineConfig, Workload};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::{ArrivalProcess, ChaosShare, PolicyKind, ServingWorkload, SweepStorm};
use proptest::prelude::*;

/// Runs one engine. `Reference` selects both reference paths (binary
/// heap and full-scan sweep); `Fast` and `Parallel(n)` run the hot paths
/// (calendar/lane queue and pending-bitmap sweep).
fn run_engine(
    backend: EngineBackend,
    topology: Topology,
    seed: u64,
    plan: Option<FaultPlan>,
    latr: LatrConfig,
    workload: Box<dyn Workload>,
) -> Machine {
    let mut config = MachineConfig::new(topology);
    config.seed = seed;
    config.trace_capacity = 8192;
    config.faults = plan;
    config.engine = backend;
    let latr = LatrConfig {
        reference_sweep: backend == EngineBackend::Reference,
        ..latr
    };
    let mut machine = Machine::new(config);
    machine.run(workload, PolicyKind::Latr(latr).build(), SECOND);
    machine
}

/// Asserts two fingerprints are identical, pointing at the first
/// diverging line rather than dumping both multi-thousand-line texts.
fn assert_fingerprints_equal(label_a: &str, fa: &str, label_b: &str, fb: &str, context: &str) {
    if fa != fb {
        let line = fa
            .lines()
            .zip(fb.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fa.lines().count().min(fb.lines().count()));
        let a = fa.lines().nth(line).unwrap_or("<eof>");
        let b = fb.lines().nth(line).unwrap_or("<eof>");
        panic!(
            "{label_a} and {label_b} engines diverged ({context}) at fingerprint line {line}:\n\
             {label_a}: {a}\n\
             {label_b}: {b}"
        );
    }
}

/// Runs the full engine matrix — Fast, Reference, and Parallel at the
/// given worker counts — and asserts every fingerprint is bit-identical.
/// Returns the fast machine for any extra scenario-specific assertions.
fn assert_engine_matrix_agrees(
    workers: &[usize],
    topology: Topology,
    seed: u64,
    plan: Option<FaultPlan>,
    latr: LatrConfig,
    mk: &dyn Fn() -> Box<dyn Workload>,
) -> Machine {
    let fast = run_engine(
        EngineBackend::Fast,
        topology.clone(),
        seed,
        plan.clone(),
        latr,
        mk(),
    );
    let fa = fast.fingerprint();
    let reference = run_engine(
        EngineBackend::Reference,
        topology.clone(),
        seed,
        plan.clone(),
        latr,
        mk(),
    );
    assert_fingerprints_equal(
        "fast",
        &fa,
        "reference",
        &reference.fingerprint(),
        "sequential",
    );
    for &w in workers {
        let parallel = run_engine(
            EngineBackend::Parallel(w),
            topology.clone(),
            seed,
            plan.clone(),
            latr,
            mk(),
        );
        assert_fingerprints_equal(
            "fast",
            &fa,
            &format!("parallel:{w}"),
            &parallel.fingerprint(),
            &format!("{w} workers"),
        );
    }
    fast
}

/// The default matrix shape for the scenario tests: the three-way
/// comparison with one multi-lane parallel point. The exhaustive worker
/// sweep {1,2,4,8} lives in `tests/par_determinism.rs` and (per scenario
/// class) in `chaos_plans_are_identical_across_the_engine_matrix`.
fn assert_engines_agree(
    topology: Topology,
    seed: u64,
    plan: Option<FaultPlan>,
    latr: LatrConfig,
    mk: impl Fn() -> Box<dyn Workload>,
) -> Machine {
    assert_engine_matrix_agrees(&[4], topology, seed, plan, latr, &mk)
}

fn commodity16() -> Topology {
    Topology::preset(MachinePreset::Commodity2S16C)
}

#[test]
fn sweep_storm_is_identical_across_the_engine_matrix() {
    let m = assert_engine_matrix_agrees(
        &[1, 2, 4, 8],
        commodity16(),
        0x5EED_0001,
        None,
        LatrConfig::default(),
        &|| Box::new(SweepStorm::new(16, 8)),
    );
    assert!(
        m.stats.counter(latr_kernel::metrics::LATR_SWEEP_HITS) > 0,
        "the comparison must actually have exercised the sweep fast path"
    );
}

#[test]
fn sweep_storm_is_identical_at_120_cores() {
    let _ = assert_engines_agree(
        Topology::preset(MachinePreset::LargeNuma8S120C),
        0x5EED_0002,
        None,
        LatrConfig::default(),
        || Box::new(SweepStorm::new(120, 3)),
    );
}

#[test]
fn sparse_publisher_storm_is_identical_in_bench_configuration() {
    // Pins the exact shape `BENCH_hotpath.json` and `BENCH_par_sim.json`
    // measure: 4 publishers among many sweepers, oracle and tracing off.
    // The bench bins cross-check fingerprints themselves, but this keeps
    // the configuration covered by `cargo test` even when they never run.
    for (topology, cores) in [
        (Topology::preset(MachinePreset::Commodity2S16C), 16),
        (Topology::preset(MachinePreset::LargeNuma8S120C), 120),
    ] {
        let run = |backend: EngineBackend| {
            let mut config = MachineConfig::new(topology.clone());
            config.seed = 0x5EED_0004;
            config.trace_capacity = 0;
            config.oracle = false;
            config.engine = backend;
            let latr = LatrConfig {
                reference_sweep: backend == EngineBackend::Reference,
                ..LatrConfig::default()
            };
            let mut machine = Machine::new(config);
            machine.run(
                Box::new(SweepStorm::new(cores, 4).with_publishers(4)),
                PolicyKind::Latr(latr).build(),
                SECOND,
            );
            machine
        };
        let fast = run(EngineBackend::Fast);
        let reference = run(EngineBackend::Reference);
        let parallel = run(EngineBackend::Parallel(4));
        assert_eq!(
            fast.fingerprint(),
            reference.fingerprint(),
            "bench configuration diverged at {cores} cores (fast vs reference)"
        );
        assert_eq!(
            fast.fingerprint(),
            parallel.fingerprint(),
            "bench configuration diverged at {cores} cores (fast vs parallel)"
        );
        assert_eq!(
            fast.stats.counter(latr_kernel::metrics::WORK_UNITS),
            4 * 4,
            "all four publishers must finish their rounds at {cores} cores"
        );
    }
}

#[test]
fn overflow_pressure_is_identical_across_the_engine_matrix() {
    // Zero inter-round sleep on a 4-slot queue drives the overflow→IPI
    // fallback and the adaptive hysteresis on every engine. Same-instant
    // IPI broadcasts straddle lanes here, so this is also where the
    // parallel engine's id tiebreak earns its keep.
    let cfg = LatrConfig {
        states_per_core: 4,
        ..LatrConfig::default()
    };
    let m = assert_engine_matrix_agrees(
        &[1, 2, 4, 8],
        commodity16(),
        0x5EED_0003,
        None,
        cfg,
        &|| Box::new(SweepStorm::new(8, 30).with_sleep(0)),
    );
    assert!(
        m.stats.counter(latr_kernel::metrics::LATR_FALLBACK_IPIS) > 0,
        "the comparison must actually have exercised the fallback path"
    );
}

#[test]
fn chaos_share_is_identical_across_the_engine_matrix() {
    let _ = assert_engines_agree(commodity16(), 0xCAFE, None, LatrConfig::default(), || {
        Box::new(ChaosShare::new(4, 24))
    });
}

/// Every fault-plan class exercised by `tests/chaos.rs`, replayed on the
/// full engine matrix: fault injection perturbs event timing and sweep
/// schedules, so it is exactly where a fast-path shortcut — or a lane
/// merge — would fall out of step. Each plan class runs the parallel
/// engine at a different worker count so the set covers {1,2,4,8}.
#[test]
fn chaos_plans_are_identical_across_the_engine_matrix() {
    let plans: [(&str, FaultPlan); 7] = [
        ("drop", FaultPlan::default().with_ipi_drop(0.30)),
        ("delay", FaultPlan::default().with_ipi_delay(0.50, 300_000)),
        (
            "stall",
            FaultPlan::default().with_stall(1, MILLISECOND, 8 * MILLISECOND),
        ),
        (
            "jitter",
            FaultPlan::default().with_tick_jitter(0.50, 400_000),
        ),
        ("miss", FaultPlan::default().with_tick_miss(0.35)),
        (
            "storm",
            FaultPlan::default().with_storm(2 * MILLISECOND, 3 * MILLISECOND),
        ),
        (
            "soup",
            FaultPlan::default()
                .with_ipi_drop(0.10)
                .with_ipi_delay(0.30, 200_000)
                .with_tick_miss(0.20)
                .with_tick_jitter(0.30, 200_000)
                .with_stall(2, 2 * MILLISECOND, 4 * MILLISECOND)
                .with_storm(8 * MILLISECOND, 2 * MILLISECOND),
        ),
    ];
    let worker_cycle = [1usize, 2, 4, 8];
    for (i, (name, plan)) in plans.into_iter().enumerate() {
        let workers = worker_cycle[i % worker_cycle.len()];
        let run = |backend| {
            run_engine(
                backend,
                commodity16(),
                0x5007,
                Some(plan.clone()),
                LatrConfig::default(),
                Box::new(ChaosShare::new(4, 24)),
            )
        };
        let fast = run(EngineBackend::Fast);
        let reference = run(EngineBackend::Reference);
        let parallel = run(EngineBackend::Parallel(workers));
        assert_eq!(
            fast.fingerprint(),
            reference.fingerprint(),
            "plan `{name}` diverged between the sequential engines"
        );
        assert_eq!(
            fast.fingerprint(),
            parallel.fingerprint(),
            "plan `{name}` diverged on the parallel engine ({workers} workers)"
        );
    }
}

/// The PR-8 pressure-soup shape: the full mixed fault soup on top of
/// tight per-node watermarks, so allocation-storm escalation, debt
/// parking and expedited sweeps all fire while IPIs drop and ticks miss.
#[test]
fn pressure_soup_is_identical_across_the_engine_matrix() {
    let plan = FaultPlan::default()
        .with_ipi_drop(0.10)
        .with_ipi_delay(0.30, 200_000)
        .with_tick_miss(0.20)
        .with_tick_jitter(0.30, 200_000)
        .with_stall(2, 2 * MILLISECOND, 4 * MILLISECOND)
        .with_storm(8 * MILLISECOND, 2 * MILLISECOND);
    let latr = LatrConfig {
        states_per_core: 4,
        ..LatrConfig::default()
    };
    for workers in [1usize, 2, 4, 8] {
        let run = |backend| {
            let mut config = MachineConfig::new(commodity16());
            config.seed = 0x50DA;
            config.trace_capacity = 8192;
            config.faults = Some(plan.clone());
            config.engine = backend;
            // Watermarks high enough to trip under the storm's held frames.
            config.frames_per_node = 1 << 10;
            config = MachineConfig {
                low_watermark_frames: 256,
                min_watermark_frames: 64,
                ..config
            };
            let latr = LatrConfig {
                reference_sweep: backend == EngineBackend::Reference,
                ..latr
            };
            let mut machine = Machine::new(config);
            machine.run(
                Box::new(SweepStorm::new(8, 20).with_sleep(0)),
                PolicyKind::Latr(latr).build(),
                SECOND,
            );
            machine
        };
        let fast = run(EngineBackend::Fast);
        let reference = run(EngineBackend::Reference);
        let parallel = run(EngineBackend::Parallel(workers));
        assert_fingerprints_equal(
            "fast",
            &fast.fingerprint(),
            "reference",
            &reference.fingerprint(),
            "pressure soup",
        );
        assert_fingerprints_equal(
            "fast",
            &fast.fingerprint(),
            &format!("parallel:{workers}"),
            &parallel.fingerprint(),
            "pressure soup",
        );
    }
}

#[test]
fn watchdog_escalation_is_identical_across_the_engine_matrix() {
    // A stalled core forces the watchdog's targeted-IPI escalation — a
    // sweep-adjacent path with its own cost accounting.
    let plan = FaultPlan::default().with_stall(1, MILLISECOND, 8 * MILLISECOND);
    let cfg = LatrConfig {
        watchdog_ticks: 4,
        ..LatrConfig::default()
    };
    let m = assert_engines_agree(commodity16(), 0x57A11, Some(plan), cfg, || {
        Box::new(ChaosShare::new(4, 24))
    });
    assert!(
        m.stats
            .counter(latr_kernel::metrics::LATR_WATCHDOG_ESCALATIONS)
            > 0,
        "the comparison must actually have exercised the watchdog"
    );
}

#[test]
fn serving_is_identical_across_the_engine_matrix() {
    // The open-loop serving workload behind `BENCH_serving.json`:
    // Poisson arrivals across shared mms, one mmap/touch/munmap cycle
    // per request. Requests straddle cores sharing an mm, so sweep
    // relevance, PCID grouping and page-cache reuse all differ per
    // engine if anything in the batched sweep path diverges.
    let m = assert_engine_matrix_agrees(
        &[1, 2, 4, 8],
        commodity16(),
        0x5EED_0005,
        None,
        LatrConfig::default(),
        &|| Box::new(ServingWorkload::new(16, 4, 12)),
    );
    assert_eq!(
        m.stats.counter(latr_kernel::metrics::WORK_UNITS),
        16 * 12,
        "every admitted request must complete on the matrix shape"
    );
}

#[test]
fn bursty_serving_under_chaos_is_identical_across_the_engine_matrix() {
    // Bursty arrivals pile same-instant admissions onto shared mms
    // while IPIs drop and an overflow storm forces the fallback path —
    // the harshest serving shape the bench measures.
    let plan = FaultPlan::default()
        .with_ipi_drop(0.25)
        .with_ipi_delay(0.25, 200_000)
        .with_tick_miss(0.20)
        .with_storm(2 * MILLISECOND, 10 * MILLISECOND);
    let workload = || {
        Box::new(
            ServingWorkload::new(16, 4, 10).with_arrivals(ArrivalProcess::Bursty {
                period: 4 * MILLISECOND,
                on_pct: 25,
                factor: 2.0,
            }),
        ) as Box<dyn Workload>
    };
    let _ = assert_engines_agree(
        commodity16(),
        0x5EED_0006,
        Some(plan),
        LatrConfig::default(),
        workload,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The acceptance bar: 100 random (seed, shape, plan, workers)
    /// 4-tuples, each run on all three engines, all bit-identical. Plans
    /// round-trip through their config-string form first so the
    /// comparison also covers the parser the chaos suite relies on.
    #[test]
    fn engines_agree_on_random_storms_and_plans(
        seed in any::<u64>(),
        cores in 2u16..10,
        rounds in 1u16..6,
        fault_mix_and_workers in 0u16..3600,
    ) {
        // One draw decodes into two independent 0..30% probabilities and
        // a worker count from {1,2,4,8} (the vendored proptest caps
        // strategy tuples at four slots).
        let fault_mix = fault_mix_and_workers % 900;
        let workers = 1usize << (fault_mix_and_workers / 900);
        let (drop_pct, miss_pct) = (fault_mix % 30, fault_mix / 30);
        let plan = FaultPlan::default()
            .with_ipi_drop(f64::from(drop_pct) / 100.0)
            .with_tick_miss(f64::from(miss_pct) / 100.0);
        let plan = FaultPlan::parse(&plan.to_config_string()).expect("round-trip");
        let cores = usize::from(cores);
        let rounds = u32::from(rounds);
        let run = |backend| run_engine(
            backend,
            commodity16(),
            seed,
            Some(plan.clone()),
            LatrConfig::default(),
            Box::new(SweepStorm::new(cores, rounds)),
        );
        let fast = run(EngineBackend::Fast);
        let reference = run(EngineBackend::Reference);
        let parallel = run(EngineBackend::Parallel(workers));
        prop_assert_eq!(fast.fingerprint(), reference.fingerprint());
        prop_assert_eq!(fast.fingerprint(), parallel.fingerprint());
    }
}
