//! The differential suite: the hot-path engines against their executable
//! specs (ISSUE 4).
//!
//! PR 4 replaced two straightforward implementations with optimised
//! ones — the binary-heap event queue with a calendar queue
//! ([`QueueBackend::Fast`]) and the scan-every-queue Latr sweep with a
//! pending-bitmap cursor sweep (`LatrConfig::reference_sweep = false`).
//! Both originals are kept, runtime-selectable, as the reference
//! engines. This suite runs fast and reference side by side on
//! identical seeds, workloads and fault plans and asserts the runs are
//! **bit-identical**: [`latr_kernel::Machine::fingerprint`] covers the
//! end time, the delivered-event count, every counter, every histogram
//! summary and the full rendered trace, so any divergence in event
//! order, cost accounting or sweep behaviour fails loudly.
//!
//! Coverage follows the ISSUE's acceptance list: the golden seeds, every
//! fault-plan class from `tests/chaos.rs` (drop, delay, stall, jitter,
//! miss, storm, and the mixed soup), and 100 proptest cases over random
//! seeds, shapes and plans.

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{Machine, MachineConfig, Workload};
use latr_sim::{QueueBackend, MILLISECOND, SECOND};
use latr_workloads::{ChaosShare, PolicyKind, SweepStorm};
use proptest::prelude::*;

/// Runs one engine: `fast` selects both hot paths (calendar event queue
/// and pending-bitmap sweep) or both references (binary heap and full
/// scan).
fn run_engine(
    fast: bool,
    topology: Topology,
    seed: u64,
    plan: Option<FaultPlan>,
    latr: LatrConfig,
    workload: Box<dyn Workload>,
) -> Machine {
    let mut config = MachineConfig::new(topology);
    config.seed = seed;
    config.trace_capacity = 8192;
    config.faults = plan;
    config.event_queue = if fast {
        QueueBackend::Fast
    } else {
        QueueBackend::Reference
    };
    let latr = LatrConfig {
        reference_sweep: !fast,
        ..latr
    };
    let mut machine = Machine::new(config);
    machine.run(workload, PolicyKind::Latr(latr).build(), SECOND);
    machine
}

/// Runs both engines and asserts bit-identical fingerprints. Returns the
/// fast machine for any extra scenario-specific assertions.
fn assert_engines_agree(
    topology: Topology,
    seed: u64,
    plan: Option<FaultPlan>,
    latr: LatrConfig,
    mk: impl Fn() -> Box<dyn Workload>,
) -> Machine {
    let fast = run_engine(true, topology.clone(), seed, plan.clone(), latr, mk());
    let reference = run_engine(false, topology, seed, plan, latr, mk());
    let (fa, re) = (fast.fingerprint(), reference.fingerprint());
    if fa != re {
        // Point at the first diverging line rather than dumping both
        // multi-thousand-line fingerprints.
        let line = fa
            .lines()
            .zip(re.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fa.lines().count().min(re.lines().count()));
        let a = fa.lines().nth(line).unwrap_or("<eof>");
        let b = re.lines().nth(line).unwrap_or("<eof>");
        panic!(
            "fast and reference engines diverged at fingerprint line {line}:\n\
             fast:      {a}\n\
             reference: {b}"
        );
    }
    fast
}

fn commodity16() -> Topology {
    Topology::preset(MachinePreset::Commodity2S16C)
}

#[test]
fn sweep_storm_is_identical_on_both_engines() {
    let m = assert_engines_agree(
        commodity16(),
        0x5EED_0001,
        None,
        LatrConfig::default(),
        || Box::new(SweepStorm::new(16, 8)),
    );
    assert!(
        m.stats.counter(latr_kernel::metrics::LATR_SWEEP_HITS) > 0,
        "the comparison must actually have exercised the sweep fast path"
    );
}

#[test]
fn sweep_storm_is_identical_at_120_cores() {
    let _ = assert_engines_agree(
        Topology::preset(MachinePreset::LargeNuma8S120C),
        0x5EED_0002,
        None,
        LatrConfig::default(),
        || Box::new(SweepStorm::new(120, 3)),
    );
}

#[test]
fn sparse_publisher_storm_is_identical_in_bench_configuration() {
    // Pins the exact shape `BENCH_hotpath.json` measures: 4 publishers
    // among many sweepers, oracle and tracing off. The bench bin
    // cross-checks fingerprints itself, but this keeps the configuration
    // covered by `cargo test` even when the bench never runs.
    for (topology, cores) in [
        (Topology::preset(MachinePreset::Commodity2S16C), 16),
        (Topology::preset(MachinePreset::LargeNuma8S120C), 120),
    ] {
        let mk = || {
            let mut config = MachineConfig::new(topology.clone());
            config.seed = 0x5EED_0004;
            config.trace_capacity = 0;
            config.oracle = false;
            config
        };
        let run = |fast: bool| {
            let mut config = mk();
            config.event_queue = if fast {
                QueueBackend::Fast
            } else {
                QueueBackend::Reference
            };
            let latr = LatrConfig {
                reference_sweep: !fast,
                ..LatrConfig::default()
            };
            let mut machine = Machine::new(config);
            machine.run(
                Box::new(SweepStorm::new(cores, 4).with_publishers(4)),
                PolicyKind::Latr(latr).build(),
                SECOND,
            );
            machine
        };
        let (fast, reference) = (run(true), run(false));
        assert_eq!(
            fast.fingerprint(),
            reference.fingerprint(),
            "bench configuration diverged at {cores} cores"
        );
        assert_eq!(
            fast.stats.counter(latr_kernel::metrics::WORK_UNITS),
            4 * 4,
            "all four publishers must finish their rounds at {cores} cores"
        );
    }
}

#[test]
fn overflow_pressure_is_identical_on_both_engines() {
    // Zero inter-round sleep on a 4-slot queue drives the overflow→IPI
    // fallback and the adaptive hysteresis on both engines.
    let cfg = LatrConfig {
        states_per_core: 4,
        ..LatrConfig::default()
    };
    let m = assert_engines_agree(commodity16(), 0x5EED_0003, None, cfg, || {
        Box::new(SweepStorm::new(8, 30).with_sleep(0))
    });
    assert!(
        m.stats.counter(latr_kernel::metrics::LATR_FALLBACK_IPIS) > 0,
        "the comparison must actually have exercised the fallback path"
    );
}

#[test]
fn chaos_share_is_identical_on_both_engines() {
    let _ = assert_engines_agree(commodity16(), 0xCAFE, None, LatrConfig::default(), || {
        Box::new(ChaosShare::new(4, 24))
    });
}

/// Every fault-plan class exercised by `tests/chaos.rs`, replayed on both
/// engines: fault injection perturbs event timing and sweep schedules, so
/// it is exactly where a fast-path shortcut would fall out of step.
#[test]
fn chaos_plans_are_identical_on_both_engines() {
    let plans: [(&str, FaultPlan); 7] = [
        ("drop", FaultPlan::default().with_ipi_drop(0.30)),
        ("delay", FaultPlan::default().with_ipi_delay(0.50, 300_000)),
        (
            "stall",
            FaultPlan::default().with_stall(1, MILLISECOND, 8 * MILLISECOND),
        ),
        (
            "jitter",
            FaultPlan::default().with_tick_jitter(0.50, 400_000),
        ),
        ("miss", FaultPlan::default().with_tick_miss(0.35)),
        (
            "storm",
            FaultPlan::default().with_storm(2 * MILLISECOND, 3 * MILLISECOND),
        ),
        (
            "soup",
            FaultPlan::default()
                .with_ipi_drop(0.10)
                .with_ipi_delay(0.30, 200_000)
                .with_tick_miss(0.20)
                .with_tick_jitter(0.30, 200_000)
                .with_stall(2, 2 * MILLISECOND, 4 * MILLISECOND)
                .with_storm(8 * MILLISECOND, 2 * MILLISECOND),
        ),
    ];
    for (name, plan) in plans {
        let fast = run_engine(
            true,
            commodity16(),
            0x5007,
            Some(plan.clone()),
            LatrConfig::default(),
            Box::new(ChaosShare::new(4, 24)),
        );
        let reference = run_engine(
            false,
            commodity16(),
            0x5007,
            Some(plan),
            LatrConfig::default(),
            Box::new(ChaosShare::new(4, 24)),
        );
        assert_eq!(
            fast.fingerprint(),
            reference.fingerprint(),
            "plan `{name}` diverged between the engines"
        );
    }
}

#[test]
fn watchdog_escalation_is_identical_on_both_engines() {
    // A stalled core forces the watchdog's targeted-IPI escalation — a
    // sweep-adjacent path with its own cost accounting.
    let plan = FaultPlan::default().with_stall(1, MILLISECOND, 8 * MILLISECOND);
    let cfg = LatrConfig {
        watchdog_ticks: 4,
        ..LatrConfig::default()
    };
    let m = assert_engines_agree(commodity16(), 0x57A11, Some(plan), cfg, || {
        Box::new(ChaosShare::new(4, 24))
    });
    assert!(
        m.stats
            .counter(latr_kernel::metrics::LATR_WATCHDOG_ESCALATIONS)
            > 0,
        "the comparison must actually have exercised the watchdog"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The acceptance bar: 100 random (seed, shape, plan) triples, each
    /// run on both engines, all bit-identical. Plans round-trip through
    /// their config-string form first so the comparison also covers the
    /// parser the chaos suite relies on.
    #[test]
    fn engines_agree_on_random_storms_and_plans(
        seed in any::<u64>(),
        cores in 2u16..10,
        rounds in 1u16..6,
        fault_mix in 0u16..900,
    ) {
        // One draw decodes into two independent 0..30% probabilities
        // (the vendored proptest caps strategy tuples at four slots).
        let (drop_pct, miss_pct) = (fault_mix % 30, fault_mix / 30);
        let plan = FaultPlan::default()
            .with_ipi_drop(f64::from(drop_pct) / 100.0)
            .with_tick_miss(f64::from(miss_pct) / 100.0);
        let plan = FaultPlan::parse(&plan.to_config_string()).expect("round-trip");
        let cores = usize::from(cores);
        let rounds = u32::from(rounds);
        let fast = run_engine(
            true,
            commodity16(),
            seed,
            Some(plan.clone()),
            LatrConfig::default(),
            Box::new(SweepStorm::new(cores, rounds)),
        );
        let reference = run_engine(
            false,
            commodity16(),
            seed,
            Some(plan),
            LatrConfig::default(),
            Box::new(SweepStorm::new(cores, rounds)),
        );
        prop_assert_eq!(fast.fingerprint(), reference.fingerprint());
    }
}
