//! Direct behavioural tests of the machine's concurrency plumbing:
//! interrupt time-debt, `mmap_sem` serialization, page-cache refcounting,
//! the always-synchronous `mprotect`, and PCID-preserved TLBs.

use latr_arch::{CpuId, MachinePreset, Topology, PCID_NONE};
use latr_core::LatrConfig;
use latr_kernel::{metrics, Machine, MachineConfig, Op, OpResult, TaskId, Workload};
use latr_mem::{Prot, VaRange};
use latr_sim::{Nanos, SECOND};
use latr_workloads::PolicyKind;

fn machine() -> Machine {
    Machine::new(MachineConfig::new(Topology::preset(
        MachinePreset::Commodity2S16C,
    )))
}

/// Core 1 computes a fixed-length op while core 0 storms it with
/// shootdown IPIs; the op must take longer than its nominal cost by the
/// injected handler time.
#[test]
fn interrupt_debt_stretches_the_interrupted_op() {
    struct DebtProbe {
        step0: usize,
        victim: Option<VaRange>,
        compute_latency: Option<Nanos>,
        issued_compute: bool,
    }
    impl Workload for DebtProbe {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
            machine.spawn_task(mm, CpuId(1));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            if task.index() == 1 {
                // One long compute; measure its stretch.
                if self.issued_compute {
                    return Op::Exit;
                }
                if let Some(r) = self.victim {
                    self.issued_compute = true;
                    // Touch first so the shootdowns actually target us.
                    let _ = r;
                    return Op::Compute(200_000);
                }
                return Op::Sleep(1_000);
            }
            self.step0 += 1;
            match self.step0 {
                1..=60 => {
                    // Map/touch/unmap churn: every munmap IPIs core 1.
                    match self.step0 % 3 {
                        1 => Op::MmapAnon { pages: 1 },
                        2 => Op::Access {
                            vpn: machine.task(task).last_mmap.expect("mapped").start,
                            write: true,
                        },
                        _ => Op::Munmap {
                            range: machine.task(task).last_mmap.expect("mapped"),
                        },
                    }
                }
                _ => Op::Exit,
            }
        }
        fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
            match result.op {
                Op::MmapAnon { .. } if task.index() == 0 => {
                    self.victim = machine.task(task).last_mmap;
                }
                Op::Compute(nominal) if task.index() == 1 => {
                    assert!(result.latency >= nominal);
                    self.compute_latency = Some(result.latency);
                }
                _ => {}
            }
        }
    }
    let mut m = machine();
    let (w, _) = m.run(
        Box::new(DebtProbe {
            step0: 0,
            victim: None,
            compute_latency: None,
            issued_compute: false,
        }),
        PolicyKind::Linux.build(),
        SECOND,
    );
    let any: Box<dyn std::any::Any> = w;
    let w = any.downcast::<DebtProbe>().expect("same type");
    let latency = w.compute_latency.expect("compute ran");
    assert!(
        latency > 200_000 + 2_000,
        "IPI handlers must steal visible time: {latency}ns for a 200µs op \
         ({} IPIs handled)",
        m.stats.counter(metrics::IPIS_HANDLED)
    );
    assert!(m.stats.counter(metrics::IPIS_HANDLED) > 0);
}

/// Two tasks of one process munmap concurrently: the `mmap_sem` serializes
/// them, visible as lock waits.
#[test]
fn mmap_sem_serializes_writers() {
    struct TwoUnmappers {
        rounds: [u32; 2],
        mapped: [Option<VaRange>; 2],
    }
    impl Workload for TwoUnmappers {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
            machine.spawn_task(mm, CpuId(1));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            let i = task.index();
            if self.rounds[i] >= 50 {
                return Op::Exit;
            }
            match self.mapped[i].take() {
                None => Op::MmapAnon { pages: 1 },
                Some(r) => {
                    self.rounds[i] += 1;
                    let _ = machine;
                    Op::Munmap { range: r }
                }
            }
        }
        fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
            if let Op::MmapAnon { .. } = result.op {
                self.mapped[task.index()] = machine.task(task).last_mmap;
            }
        }
    }
    let mut m = machine();
    m.run(
        Box::new(TwoUnmappers {
            rounds: [0; 2],
            mapped: [None; 2],
        }),
        PolicyKind::Linux.build(),
        SECOND,
    );
    assert!(
        m.stats.counter("mmap_sem_waits") > 0,
        "interleaved unmaps of one mm must contend on mmap_sem"
    );
    assert_eq!(m.check_reclamation_invariant(), None);
}

/// File-backed frames survive munmap: the page cache keeps its reference.
#[test]
fn page_cache_retains_file_frames_across_unmap() {
    struct FileMapper {
        step: usize,
        file: Option<latr_mem::FileId>,
    }
    impl Workload for FileMapper {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
            self.file = Some(machine.register_file(3));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            self.step += 1;
            match self.step {
                1 => Op::MmapFile {
                    file: self.file.expect("registered"),
                    offset: 0,
                    pages: 3,
                },
                2 => Op::AccessBatch {
                    range: machine.task(task).last_mmap.expect("mapped"),
                    accesses: 8,
                    write: false,
                },
                3 => Op::Munmap {
                    range: machine.task(task).last_mmap.expect("mapped"),
                },
                _ => Op::Exit,
            }
        }
        fn on_op_complete(&mut self, machine: &mut Machine, _task: TaskId, result: OpResult) {
            if let Op::Munmap { .. } = result.op {
                // Mapping reference dropped, cache reference remains.
                assert_eq!(machine.page_cache.resident_pages(), 3);
                assert_eq!(machine.frames.allocated_count(), 3);
            }
        }
    }
    let mut m = machine();
    m.run(
        Box::new(FileMapper {
            step: 0,
            file: None,
        }),
        PolicyKind::Linux.build(),
        SECOND,
    );
    assert_eq!(m.page_cache.resident_pages(), 3);
}

/// `mprotect` must shoot down synchronously even under Latr (Table 1).
#[test]
fn mprotect_is_synchronous_under_latr() {
    struct Protector {
        step: usize,
        sharer_touched: bool,
    }
    impl Workload for Protector {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
            machine.spawn_task(mm, CpuId(1));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            if task.index() == 1 {
                return match machine.task(TaskId(0)).last_mmap {
                    Some(r) if !self.sharer_touched => {
                        self.sharer_touched = true;
                        Op::Access {
                            vpn: r.start,
                            write: true,
                        }
                    }
                    _ if self.step >= 3 => Op::Exit,
                    _ => Op::Sleep(3_000),
                };
            }
            if machine.task(task).last_mmap.is_some() && !self.sharer_touched {
                return Op::Sleep(1_000);
            }
            self.step += 1;
            match self.step {
                1 => Op::MmapAnon { pages: 2 },
                2 => Op::Access {
                    vpn: machine.task(task).last_mmap.expect("mapped").start,
                    write: true,
                },
                3 => Op::Mprotect {
                    range: machine.task(task).last_mmap.expect("mapped"),
                    prot: Prot::READ,
                },
                _ => Op::Exit,
            }
        }
    }
    let mut m = machine();
    m.run(
        Box::new(Protector {
            step: 0,
            sharer_touched: false,
        }),
        PolicyKind::Latr(LatrConfig::default()).build(),
        SECOND,
    );
    assert!(
        m.stats.counter(metrics::IPIS_SENT) >= 1,
        "permission changes cannot be lazy (Table 1)"
    );
    assert_eq!(m.stats.counter(metrics::LATR_FALLBACK_IPIS), 0);
    assert_eq!(m.check_mapping_coherence(), None);
}

/// With PCIDs enabled a voluntary context switch keeps the TLB warm
/// (§4.5); without them the CR3 write flushes everything.
#[test]
fn pcid_preserves_tlb_across_context_switch() {
    struct YieldProbe {
        step: usize,
        hit_after_yield: Option<bool>,
    }
    impl Workload for YieldProbe {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            self.step += 1;
            match self.step {
                1 => Op::MmapAnon { pages: 1 },
                2 => Op::Access {
                    vpn: machine.task(task).last_mmap.expect("mapped").start,
                    write: true,
                },
                3 => Op::Yield,
                4 => {
                    let vpn = machine.task(task).last_mmap.expect("mapped").start;
                    let pcid = machine.mm(machine.task(task).mm).pcid;
                    self.hit_after_yield = Some(machine.cores[0].tlb.peek(pcid, vpn.0).is_some());
                    Op::Exit
                }
                _ => Op::Exit,
            }
        }
    }
    for (pcid_enabled, expect_hit) in [(false, false), (true, true)] {
        let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
        config.pcid_enabled = pcid_enabled;
        let mut m = Machine::new(config);
        let (w, _) = m.run(
            Box::new(YieldProbe {
                step: 0,
                hit_after_yield: None,
            }),
            PolicyKind::Latr(LatrConfig::default()).build(),
            SECOND,
        );
        let any: Box<dyn std::any::Any> = w;
        let w = any.downcast::<YieldProbe>().expect("same type");
        assert_eq!(
            w.hit_after_yield,
            Some(expect_hit),
            "pcid_enabled={pcid_enabled}"
        );
        // PCID_NONE is only used when PCIDs are off.
        let expected_pcid_none = !pcid_enabled;
        assert_eq!(
            m.mm(latr_mem::MmId(0)).pcid == PCID_NONE,
            expected_pcid_none
        );
    }
}
