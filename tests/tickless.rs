//! §7 "Tickless Kernel": with `CONFIG_NO_HZ`, idle cores skip their
//! scheduler ticks. Latr stays correct because an idle core is in no
//! `mm_cpumask` — no state ever names it — and its TLB was flushed on the
//! way to idle.

use latr_arch::{CpuId, MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{metrics, EngineBackend, Machine, MachineConfig, Op, TaskId, Workload};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::PolicyKind;

/// Four busy cores on a 16-core machine; the other twelve stay idle.
struct FourBusyCores {
    remaining: Vec<u32>,
}

impl Workload for FourBusyCores {
    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..4 {
            machine.spawn_task(mm, CpuId(c));
        }
        self.remaining = vec![200; 4];
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let _ = machine;
        let i = task.index();
        if self.remaining[i] == 0 {
            return Op::Exit;
        }
        self.remaining[i] -= 1;
        // Cycle (descending): map -> touch -> unmap -> compute.
        match self.remaining[i] % 4 {
            3 => Op::MmapAnon { pages: 2 },
            2 => match machine_last(machine, task) {
                Some(r) => Op::Access {
                    vpn: r.start,
                    write: true,
                },
                None => Op::Compute(1_000),
            },
            1 => match machine_last(machine, task) {
                Some(r) => Op::Munmap { range: r },
                None => Op::Compute(1_000),
            },
            _ => Op::Compute(50_000),
        }
    }
}

fn machine_last(machine: &Machine, task: TaskId) -> Option<latr_mem::VaRange> {
    machine.task(task).last_mmap
}

fn run_on(tickless: bool, engine: EngineBackend) -> Machine {
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.tickless = tickless;
    config.engine = engine;
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(FourBusyCores { remaining: vec![] }),
        PolicyKind::Latr(LatrConfig::default()).build(),
        SECOND,
    );
    machine
}

fn run(tickless: bool) -> Machine {
    run_on(tickless, EngineBackend::default())
}

/// Tickless mode interacts with the engine's epoch machinery — idle cores
/// produce long event-free stretches the parallel engine must skip across
/// without drifting — so the whole matrix must agree in both modes.
#[test]
fn tickless_is_identical_across_the_engine_matrix() {
    for tickless in [false, true] {
        let baseline = run_on(tickless, EngineBackend::Fast).fingerprint();
        for engine in [EngineBackend::Reference, EngineBackend::Parallel(4)] {
            assert_eq!(
                run_on(tickless, engine).fingerprint(),
                baseline,
                "{engine:?} diverged with tickless={tickless}"
            );
        }
    }
}

#[test]
fn idle_cores_skip_ticks_when_tickless() {
    let ticking = run(false);
    let tickless = run(true);
    assert!(
        tickless.stats.counter("ticks_skipped_idle") > 0,
        "12 idle cores must skip ticks"
    );
    assert!(
        tickless.stats.counter(metrics::SCHED_TICKS) < ticking.stats.counter(metrics::SCHED_TICKS),
        "tickless must deliver fewer real ticks: {} vs {}",
        tickless.stats.counter(metrics::SCHED_TICKS),
        ticking.stats.counter(metrics::SCHED_TICKS)
    );
}

#[test]
fn tickless_preserves_correctness_and_laziness() {
    let m = run(true);
    assert_eq!(m.check_reclamation_invariant(), None);
    assert_eq!(m.check_mapping_coherence(), None);
    assert_eq!(m.frames.allocated_count(), 0);
    // Still fully lazy: the busy cores' ticks carry the sweeps.
    assert_eq!(m.stats.counter(metrics::IPIS_SENT), 0);
    assert!(m.stats.counter(metrics::LATR_STATES_SAVED) > 0);
}

#[test]
fn tickless_work_matches_ticking_work() {
    let a = run(false);
    let b = run(true);
    // Same program, same per-task op counts: the mode must not change
    // what executes, only where ticks fire.
    assert_eq!(
        a.stats.counter(metrics::LATR_STATES_SAVED),
        b.stats.counter(metrics::LATR_STATES_SAVED)
    );
    assert_eq!(a.stats.counter("segfaults"), 0);
    assert_eq!(b.stats.counter("segfaults"), 0);
}

#[test]
fn reclamation_deadline_still_met_with_tickless() {
    // Even with most cores tickless-idle, the 2-tick deadline is computed
    // on wall-clock ticks of *busy* cores: frames must be free shortly
    // after the lazy window.
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.tickless = true;

    struct OneShot {
        step: usize,
        victim: Option<latr_mem::VaRange>,
    }
    impl Workload for OneShot {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
            machine.spawn_task(mm, CpuId(1));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            if task.index() == 1 {
                // Keep the second core busy so its ticks run.
                return if self.step > 6 {
                    Op::Exit
                } else {
                    Op::Compute(MILLISECOND)
                };
            }
            self.step += 1;
            match self.step {
                1 => Op::MmapAnon { pages: 1 },
                2 => Op::Access {
                    vpn: self.victim.or(machine.task(task).last_mmap).unwrap().start,
                    write: true,
                },
                3 => Op::Munmap {
                    range: machine.task(task).last_mmap.unwrap(),
                },
                4..=7 => Op::Sleep(MILLISECOND),
                _ => Op::Exit,
            }
        }
        fn on_op_complete(
            &mut self,
            machine: &mut Machine,
            task: TaskId,
            result: latr_kernel::OpResult,
        ) {
            if let Op::MmapAnon { .. } = result.op {
                self.victim = machine.task(task).last_mmap;
            }
            if let Op::Munmap { .. } = result.op {
                // Frame must still be parked right after the lazy munmap.
                assert_eq!(machine.frames.allocated_count(), 1);
            }
            if matches!(result.op, Op::Sleep(_)) && self.step == 7 {
                // Several ticks later the lazy list has drained.
                assert_eq!(
                    machine.frames.allocated_count(),
                    0,
                    "frame must be reclaimed within the deadline"
                );
            }
        }
    }
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(OneShot {
            step: 0,
            victim: None,
        }),
        PolicyKind::Latr(LatrConfig::default()).build(),
        SECOND,
    );
    assert_eq!(machine.check_reclamation_invariant(), None);
}
