//! Randomized cross-crate stress: a seeded random workload drives the full
//! machine (mmap/munmap/madvise/mprotect/access/yield on shared address
//! spaces) under every TLB-coherence policy, then the paper's invariants
//! are checked:
//!
//! * **I1** — no TLB in any core caches a translation to a freed frame
//!   (the §3 reclamation invariant);
//! * **I4** — no TLB disagrees with a present PTE about the target frame;
//! * no frames are leaked once every task exits and the policy drains.

use latr_arch::{CpuId, MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{Machine, MachineConfig, Op, TaskId, Workload};
use latr_mem::{Prot, VaRange};
use latr_sim::{SimRng, SECOND};
use latr_workloads::PolicyKind;
use proptest::prelude::*;

/// A deterministic random op generator: all randomness from one seed.
struct RandomOps {
    cores: usize,
    ops_per_task: u32,
    rng: SimRng,
    issued: Vec<u32>,
    live: Vec<Vec<VaRange>>,
}

impl RandomOps {
    fn new(seed: u64, cores: usize, ops_per_task: u32) -> Self {
        RandomOps {
            cores,
            ops_per_task,
            rng: SimRng::new(seed),
            issued: vec![0; cores],
            live: vec![Vec::new(); cores],
        }
    }
}

impl Workload for RandomOps {
    fn setup(&mut self, machine: &mut Machine) {
        // Two processes: tasks alternate between them so both shared and
        // unshared address spaces are exercised.
        let mm_a = machine.create_process();
        let mm_b = machine.create_process();
        for c in 0..self.cores {
            let mm = if c % 3 == 2 { mm_b } else { mm_a };
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let i = task.index();
        if self.issued[i] >= self.ops_per_task {
            return Op::Exit;
        }
        self.issued[i] += 1;
        let _ = machine;
        let roll = self.rng.below(100);
        let live = &mut self.live[i];
        match roll {
            0..=24 => Op::MmapAnon {
                pages: self.rng.range(1, 40),
            },
            25..=54 if !live.is_empty() => {
                let r = live[self.rng.index(live.len())];
                let page = r.start.0 + self.rng.below(r.pages);
                Op::Access {
                    vpn: latr_mem::Vpn(page),
                    write: self.rng.chance(0.5),
                }
            }
            55..=69 if !live.is_empty() => {
                let r = live.swap_remove(self.rng.index(live.len()));
                Op::Munmap { range: r }
            }
            70..=76 if !live.is_empty() => {
                let r = live[self.rng.index(live.len())];
                Op::MadviseFree { range: r }
            }
            77..=82 if !live.is_empty() => {
                let r = live[self.rng.index(live.len())];
                Op::Mprotect {
                    range: r,
                    prot: if self.rng.chance(0.5) {
                        Prot::READ
                    } else {
                        Prot::READ_WRITE
                    },
                }
            }
            83..=89 => Op::Yield,
            90..=94 => Op::Sleep(self.rng.range(500, 20_000)),
            _ => Op::Compute(self.rng.range(200, 5_000)),
        }
    }

    fn on_op_complete(
        &mut self,
        machine: &mut Machine,
        task: TaskId,
        result: latr_kernel::OpResult,
    ) {
        if let Op::MmapAnon { .. } = result.op {
            if let Some(r) = machine.task(task).last_mmap {
                self.live[task.index()].push(r);
            }
        }
    }
}

/// The three machine shapes every property runs on (ISSUE 4): a tiny
/// 4-core desktop, the paper's 16-core commodity server, and the
/// 120-core 8-socket box. Tasks fill the machine; ops-per-task shrinks
/// as the core count grows so the proptest wall-clock stays bounded.
fn shapes() -> [(Topology, usize, u32); 3] {
    [
        (Topology::new(2, 2), 4, 120),
        (Topology::preset(MachinePreset::Commodity2S16C), 12, 120),
        (Topology::preset(MachinePreset::LargeNuma8S120C), 120, 20),
    ]
}

fn run_random(seed: u64, shape: usize, policy: PolicyKind) -> Machine {
    let (topology, cores, ops) = shapes()[shape].clone();
    let mut config = MachineConfig::new(topology);
    config.seed = seed;
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(RandomOps::new(seed ^ 0xF00D, cores, ops)),
        policy.build(),
        5 * SECOND,
    );
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn invariants_hold_under_linux(seed in any::<u64>(), shape in 0usize..3) {
        let m = run_random(seed, shape, PolicyKind::Linux);
        prop_assert_eq!(m.check_reclamation_invariant(), None);
        prop_assert_eq!(m.check_mapping_coherence(), None);
        if let Some(v) = m.oracle_violation() {
            prop_assert!(false, "oracle violation: {}", v);
        }
    }

    #[test]
    fn invariants_hold_under_abis(seed in any::<u64>(), shape in 0usize..3) {
        let m = run_random(seed, shape, PolicyKind::Abis);
        prop_assert_eq!(m.check_reclamation_invariant(), None);
        prop_assert_eq!(m.check_mapping_coherence(), None);
        if let Some(v) = m.oracle_violation() {
            prop_assert!(false, "oracle violation: {}", v);
        }
    }

    #[test]
    fn invariants_hold_under_latr(seed in any::<u64>(), shape in 0usize..3) {
        let m = run_random(seed, shape, PolicyKind::Latr(LatrConfig::default()));
        prop_assert_eq!(m.check_reclamation_invariant(), None);
        prop_assert_eq!(m.check_mapping_coherence(), None);
        if let Some(v) = m.oracle_violation() {
            prop_assert!(false, "oracle violation: {}", v);
        }
    }

    #[test]
    fn latr_small_queues_fall_back_but_stay_correct(
        seed in any::<u64>(),
        shape in 0usize..3,
    ) {
        // A 4-slot queue under this random workload WILL overflow; the
        // fallback path must preserve the invariants at every machine
        // size (the 120-core shape overflows hardest: 119 remote bits
        // per published state).
        let cfg = LatrConfig { states_per_core: 4, ..LatrConfig::default() };
        let m = run_random(seed, shape, PolicyKind::Latr(cfg));
        prop_assert_eq!(m.check_reclamation_invariant(), None);
        prop_assert_eq!(m.check_mapping_coherence(), None);
        if let Some(v) = m.oracle_violation() {
            prop_assert!(false, "oracle violation: {}", v);
        }
    }

    #[test]
    fn no_frames_leak_after_exit(seed in any::<u64>(), shape in 0usize..3) {
        for policy in [PolicyKind::Linux, PolicyKind::Abis, PolicyKind::Latr(LatrConfig::default())] {
            let m = run_random(seed, shape, policy);
            // All tasks exited and policies drained: only page-cache-held
            // frames (none here: workload is anonymous-only) may remain.
            prop_assert_eq!(m.frames.allocated_count(), 0, "policy {}", policy.label());
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for shape in 0..shapes().len() {
        for policy in [
            PolicyKind::Linux,
            PolicyKind::Abis,
            PolicyKind::Latr(LatrConfig::default()),
        ] {
            let a = run_random(42, shape, policy);
            let b = run_random(42, shape, policy);
            assert_eq!(a.now(), b.now(), "shape {shape} {}", policy.label());
            let counters_a: Vec<(String, u64)> =
                a.stats.counters().map(|(k, v)| (k.to_owned(), v)).collect();
            let counters_b: Vec<(String, u64)> =
                b.stats.counters().map(|(k, v)| (k.to_owned(), v)).collect();
            assert_eq!(counters_a, counters_b, "shape {shape} {}", policy.label());
        }
    }
}
