//! Concurrency stress for the lock-free runtime beyond what the crate's
//! unit tests cover: wide (multi-word) CPU masks exercising the CAS-based
//! retirement race, publisher/sweeper/reclaimer pipelines, and queue-slot
//! recycling under pressure.

use latr_core::rt::{RtInvalidation, RtReclaimer, RtRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn inv(tag: u64) -> RtInvalidation {
    RtInvalidation {
        mm: tag,
        start: tag * 0x1000,
        end: tag * 0x1000 + 0x1000,
    }
}

/// 130 target CPUs spread over three mask words; the emptiness observation
/// races across words, so retirement must stay exactly-once (the counter
/// would underflow loudly otherwise).
#[test]
fn wide_mask_retirement_is_exactly_once() {
    let cores = 136;
    let registry = Arc::new(RtRegistry::new(cores, 128));
    let total = 300u64;

    // Targets: every core except 0.
    let publisher = {
        let r = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut published = 0u64;
            while published < total {
                if r.publish_broadcast(0, inv(published)).is_ok() {
                    published += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        })
    };
    // Four sweeper threads, each responsible for a band of cores.
    let done = Arc::new(AtomicBool::new(false));
    let sweepers: Vec<_> = (0..4)
        .map(|band| {
            let r = Arc::clone(&registry);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let my_cores: Vec<usize> = (1..cores).filter(|c| c % 4 == band).collect();
                let mut seen = vec![0u64; total as usize];
                loop {
                    let mut progress = false;
                    for &core in &my_cores {
                        for w in r.sweep(core) {
                            seen[w.mm as usize] += 1;
                            progress = true;
                        }
                    }
                    if !progress && done.load(Ordering::Acquire) {
                        // One final pass to drain stragglers.
                        for &core in &my_cores {
                            for w in r.sweep(core) {
                                seen[w.mm as usize] += 1;
                            }
                        }
                        break;
                    }
                    std::thread::yield_now();
                }
                seen
            })
        })
        .collect();
    publisher.join().expect("publisher");
    // Let the sweepers drain everything, then signal.
    loop {
        if registry.queue(0).active_count() == 0 {
            break;
        }
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);
    let mut per_state = vec![0u64; total as usize];
    for s in sweepers {
        for (i, n) in s.join().expect("sweeper").into_iter().enumerate() {
            per_state[i] += n;
        }
    }
    // Every state must have been delivered exactly once to each of the
    // 135 targets.
    for (i, &n) in per_state.iter().enumerate() {
        assert_eq!(n, (cores - 1) as u64, "state {i} delivered {n} times");
    }
    assert_eq!(registry.states_saved(), total);
    assert_eq!(registry.queue(0).active_count(), 0, "all slots recycled");
}

/// Full pipeline: publisher frees "objects" through the reclaimer while
/// sweepers tick; no object may be handed back before every core has
/// ticked twice past its deferral.
#[test]
fn reclaim_pipeline_respects_grace_under_concurrency() {
    let cores = 4;
    let registry = Arc::new(RtRegistry::new(cores, 256));
    let reclaimer: Arc<RtReclaimer<(u64, u64)>> = Arc::new(RtReclaimer::new(2));
    let total = 2_000u64;
    let stop = Arc::new(AtomicBool::new(false));

    let tickers: Vec<_> = (1..cores)
        .map(|core| {
            let r = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    r.sweep(core);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    let mut collected = Vec::new();
    for i in 0..total {
        // Defer the object recording the tick frontier at deferral time.
        let frontier = registry.min_tick();
        reclaimer.defer(&registry, (i, frontier));
        registry.sweep(0);
        for (obj, deferred_at) in reclaimer.collect(&registry) {
            // Grace: every core ticked at least twice since deferral.
            assert!(
                registry.min_tick() >= deferred_at + 2,
                "object {obj} released early: frontier {} deferred at {}",
                registry.min_tick(),
                deferred_at
            );
            collected.push(obj);
        }
    }
    stop.store(true, Ordering::Release);
    for t in tickers {
        t.join().expect("ticker");
    }
    // Everything eventually comes back, in FIFO order.
    for _ in 0..4 {
        registry.sweep(0);
        registry.sweep(1);
        registry.sweep(2);
        registry.sweep(3);
    }
    collected.extend(reclaimer.collect(&registry).into_iter().map(|(o, _)| o));
    assert_eq!(collected.len() as u64, total);
    assert!(collected.windows(2).all(|w| w[0] < w[1]), "FIFO order");
}

/// Slot recycling: a tiny queue cycled many times must never deliver a
/// torn state (mm/start/end always belong together).
#[test]
fn recycled_slots_never_tear() {
    let registry = Arc::new(RtRegistry::new(2, 2));
    let rounds = 20_000u64;
    let sweeper = {
        let r = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut delivered = 0u64;
            while delivered < rounds {
                for w in r.sweep(1) {
                    // Consistency of the payload triple.
                    assert_eq!(w.start, w.mm * 0x1000, "torn state {w:?}");
                    assert_eq!(w.end, w.mm * 0x1000 + 0x1000, "torn state {w:?}");
                    delivered += 1;
                }
                std::thread::yield_now();
            }
        })
    };
    let mut published = 0u64;
    while published < rounds {
        if registry.publish(0, inv(published), 0b10).is_ok() {
            published += 1;
        } else {
            std::thread::yield_now();
        }
    }
    sweeper.join().expect("sweeper");
    assert_eq!(registry.states_saved(), rounds);
}
