//! Concurrency stress for the lock-free runtime beyond what the crate's
//! unit tests cover: wide (multi-word) CPU masks exercising the CAS-based
//! retirement race, publisher/sweeper/reclaimer pipelines, and queue-slot
//! recycling under pressure. Every sweep loop goes through the `_into`
//! variants with a reused buffer — the steady state allocates nothing.

use latr_core::rt::{ReclaimBackend, Reclaimer, RtInvalidation, RtRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn inv(tag: u64) -> RtInvalidation {
    RtInvalidation {
        mm: tag,
        start: tag * 0x1000,
        end: tag * 0x1000 + 0x1000,
    }
}

/// The machine sizes the stress suite runs at (ISSUE 4): a 4-core
/// desktop, the paper's 16-core commodity box, and the 120-core NUMA
/// monster whose masks span two words. `wide_mask_retirement` adds a
/// 136-core shape on top so the three-word cross-word race stays
/// covered.
const SHAPES: [usize; 3] = [4, 16, 120];

/// Broadcast states to every other core; the emptiness observation races
/// across mask words at the larger shapes, so retirement must stay
/// exactly-once (the counter would underflow loudly otherwise).
#[test]
fn wide_mask_retirement_is_exactly_once() {
    for cores in [4, 16, 120, 136] {
        wide_mask_retirement_at(cores, RtRegistry::sweep_into);
    }
}

/// The same broadcast race driven through the pending-bitmap drain
/// instead of the full scan: the fast path must deliver each state to
/// each target exactly once at every shape too.
#[test]
fn wide_mask_retirement_is_exactly_once_via_pending_sweep() {
    for cores in [4, 16, 120, 136] {
        wide_mask_retirement_at(cores, RtRegistry::sweep_pending_into);
    }
}

fn wide_mask_retirement_at(cores: usize, sweep: fn(&RtRegistry, usize, &mut Vec<RtInvalidation>)) {
    let registry = Arc::new(RtRegistry::new(cores, 128));
    let total = if cores >= 120 { 300u64 } else { 600u64 };

    // Targets: every core except 0.
    let publisher = {
        let r = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut published = 0u64;
            while published < total {
                if r.publish_broadcast(0, inv(published)).is_ok() {
                    published += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        })
    };
    // Four sweeper threads, each responsible for a band of cores, all
    // reusing one sweep buffer for their whole lifetime.
    let done = Arc::new(AtomicBool::new(false));
    let sweepers: Vec<_> = (0..4)
        .map(|band| {
            let r = Arc::clone(&registry);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let my_cores: Vec<usize> = (1..cores).filter(|c| c % 4 == band).collect();
                let mut seen = vec![0u64; total as usize];
                let mut buf = Vec::new();
                loop {
                    let mut progress = false;
                    for &core in &my_cores {
                        buf.clear();
                        sweep(&r, core, &mut buf);
                        for w in &buf {
                            seen[w.mm as usize] += 1;
                            progress = true;
                        }
                    }
                    if !progress && done.load(Ordering::Acquire) {
                        // One final pass to drain stragglers.
                        for &core in &my_cores {
                            buf.clear();
                            sweep(&r, core, &mut buf);
                            for w in &buf {
                                seen[w.mm as usize] += 1;
                            }
                        }
                        break;
                    }
                    std::thread::yield_now();
                }
                seen
            })
        })
        .collect();
    publisher.join().expect("publisher");
    // Let the sweepers drain everything, then signal.
    loop {
        if registry.queue(0).active_count() == 0 {
            break;
        }
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);
    let mut per_state = vec![0u64; total as usize];
    for s in sweepers {
        for (i, n) in s.join().expect("sweeper").into_iter().enumerate() {
            per_state[i] += n;
        }
    }
    // Every state must have been delivered exactly once to each of the
    // `cores - 1` targets.
    for (i, &n) in per_state.iter().enumerate() {
        assert_eq!(
            n,
            (cores - 1) as u64,
            "state {i} delivered {n} times at {cores} cores"
        );
    }
    // Counter checks go through the unified stats snapshot (ISSUE 6):
    // same numbers, one consistent read, and a fault-free run must end
    // with every core live.
    let stats = registry.stats();
    assert_eq!(stats.states_saved, total);
    assert_eq!(stats.excluded_cores, 0);
    assert_eq!(registry.queue(0).active_count(), 0, "all slots recycled");
}

/// Full pipeline: publisher frees "objects" through the reclaimer while
/// sweepers tick; no object may be handed back before every core has
/// ticked twice past its deferral. Runs under both the reference
/// (mutexed VecDeque + full scan) and sharded (per-core wheel + cached
/// frontier) engines.
#[test]
fn reclaim_pipeline_respects_grace_under_concurrency() {
    for backend in [ReclaimBackend::Reference, ReclaimBackend::Sharded] {
        for cores in SHAPES {
            // Fewer objects at the bigger shapes: the frontier needs every
            // one of `cores - 1` ticker threads to advance, so each object
            // costs more wall-clock as the machine grows.
            let total = match cores {
                0..=8 => 2_000u64,
                9..=32 => 800,
                _ => 150,
            };
            reclaim_pipeline_at(cores, total, backend);
        }
    }
}

fn reclaim_pipeline_at(cores: usize, total: u64, backend: ReclaimBackend) {
    let registry = Arc::new(RtRegistry::new(cores, 256));
    let reclaimer: Arc<Reclaimer<(u64, u64)>> = Arc::new(Reclaimer::new(backend, 2, cores));
    let stop = Arc::new(AtomicBool::new(false));

    let tickers: Vec<_> = (1..cores)
        .map(|core| {
            let r = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    buf.clear();
                    r.sweep_into(core, &mut buf);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    let mut collected = Vec::new();
    let mut due = Vec::new();
    let mut sweep_buf = Vec::new();
    for i in 0..total {
        // Defer the object recording the tick frontier at deferral time.
        let frontier = registry.min_tick();
        reclaimer.defer(&registry, 0, (i, frontier));
        sweep_buf.clear();
        registry.sweep_into(0, &mut sweep_buf);
        due.clear();
        reclaimer.collect_into(&registry, 0, &mut due);
        for &(obj, deferred_at) in &due {
            // Grace: every core ticked at least twice since deferral.
            assert!(
                registry.min_tick() >= deferred_at + 2,
                "object {obj} released early: frontier {} deferred at {}",
                registry.min_tick(),
                deferred_at
            );
            collected.push(obj);
        }
    }
    stop.store(true, Ordering::Release);
    for t in tickers {
        t.join().expect("ticker");
    }
    // Quiesce: the sharded engine stamps dues off the *publisher's* tick
    // (conservative), so every core must catch up to core 0 plus grace
    // before the stragglers become due.
    let target = registry.tick_of(0) + 2;
    while registry.min_tick() < target {
        for core in 0..cores {
            sweep_buf.clear();
            registry.sweep_into(core, &mut sweep_buf);
        }
    }
    registry.advance_frontier();
    collected.extend(reclaimer.collect(&registry, 0).into_iter().map(|(o, _)| o));
    assert_eq!(collected.len() as u64, total, "{cores} cores {backend:?}");
    assert!(collected.windows(2).all(|w| w[0] < w[1]), "FIFO order");
    // With no exclusions the live minimum and the all-core minimum are
    // the same frontier, and the cache never leads either.
    let stats = registry.stats();
    assert_eq!(stats.min_live_tick, stats.min_tick);
    assert!(stats.cached_frontier <= stats.min_live_tick);
    assert_eq!(stats.excluded_cores, 0);
}

/// Slot recycling: a tiny queue cycled many times must never deliver a
/// torn state (mm/start/end always belong together).
#[test]
fn recycled_slots_never_tear() {
    // The registry is sized to the shape but the race is always between
    // core 0 (publisher) and the machine's last core (sweeper): at 120
    // cores the target bit lives in the second mask word.
    for cores in SHAPES {
        let rounds = if cores >= 120 { 5_000u64 } else { 20_000 };
        recycled_slots_at(cores, rounds);
    }
}

fn recycled_slots_at(cores: usize, rounds: u64) {
    let registry = Arc::new(RtRegistry::new(cores, 2));
    let target = cores - 1;
    let sweeper = {
        let r = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut delivered = 0u64;
            let mut buf = Vec::new();
            while delivered < rounds {
                buf.clear();
                r.sweep_into(target, &mut buf);
                for w in &buf {
                    // Consistency of the payload triple.
                    assert_eq!(w.start, w.mm * 0x1000, "torn state {w:?}");
                    assert_eq!(w.end, w.mm * 0x1000 + 0x1000, "torn state {w:?}");
                    delivered += 1;
                }
                std::thread::yield_now();
            }
        })
    };
    let mut target_words = [0u64; 4];
    target_words[target / 64] = 1 << (target % 64);
    let mut published = 0u64;
    while published < rounds {
        if registry
            .publish_wide(0, inv(published), target_words)
            .is_ok()
        {
            published += 1;
        } else {
            std::thread::yield_now();
        }
    }
    sweeper.join().expect("sweeper");
    let stats = registry.stats();
    assert_eq!(stats.states_saved, rounds, "{cores} cores");
    assert_eq!(stats.excluded_cores, 0);
}
