//! Determinism under parallelism (ISSUE 9, satellite 2).
//!
//! The lane-sharded engine runs real OS threads, so this suite pins the
//! property the whole PR rests on: the simulation is a pure function of
//! the seed and configuration, **not** of the worker count or of any
//! thread interleaving. Concretely:
//!
//! * the same seed run at worker counts {1, 2, 4, 8} produces identical
//!   fingerprints and identical stats (every counter, every histogram
//!   summary);
//! * the same seed run twice at the same worker count is identical —
//!   across runs, thread scheduling is the only thing that varies, so
//!   any wall-clock leakage would show up here;
//! * a **deliberately broken** merge order — earliest time wins but
//!   same-instant ties go by lane rotation, modelling wall-clock arrival
//!   instead of the schedule-order id tiebreak — is the negative
//!   control: it must diverge from the sound engines on a workload with
//!   same-instant cross-lane events, proving the suite has the power to
//!   detect an ordering bug.
//!
//! The scenario is the overflow-pressure shape (4-slot state queues,
//! zero inter-round sleep): overflow falls back to synchronous IPI
//! shootdowns whose broadcasts land on several cores — several *lanes* —
//! at the same instant, which is exactly the tie the merge order must
//! break deterministically.

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{EngineBackend, Machine, MachineConfig};
use latr_sim::SECOND;
use latr_workloads::{ArrivalProcess, PolicyKind, ServingWorkload, SweepStorm};

/// The pinned scenario: overflow pressure at 16 cores. Trace on, oracle
/// default-on — the fingerprint covers both.
fn run(backend: EngineBackend, unsound: bool) -> Machine {
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.seed = 0xDE7E_12A1;
    config.trace_capacity = 8192;
    config.engine = backend;
    let latr = LatrConfig {
        states_per_core: 4,
        reference_sweep: backend == EngineBackend::Reference,
        ..LatrConfig::default()
    };
    let mut machine = Machine::new(config);
    machine.set_unsound_merge(unsound);
    machine.run(
        Box::new(SweepStorm::new(16, 20).with_sleep(0)),
        PolicyKind::Latr(latr).build(),
        SECOND,
    );
    machine
}

/// Renders the stats registry alone (no trace), so stats divergence is
/// reported separately from fingerprint divergence.
fn stats_text(machine: &Machine) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in machine.stats.counters() {
        let _ = writeln!(out, "{name}={value}");
    }
    for (name, hist) in machine.stats.histograms() {
        let _ = writeln!(out, "{name}: {}", hist.summary());
    }
    out
}

#[test]
fn fingerprint_is_independent_of_worker_count() {
    let baseline = run(EngineBackend::Fast, false);
    let (base_fp, base_stats) = (baseline.fingerprint(), stats_text(&baseline));
    for workers in [1usize, 2, 4, 8] {
        let m = run(EngineBackend::Parallel(workers), false);
        assert_eq!(
            stats_text(&m),
            base_stats,
            "stats diverged at {workers} workers"
        );
        assert_eq!(
            m.fingerprint(),
            base_fp,
            "fingerprint diverged at {workers} workers"
        );
    }
}

/// The serving scenario: bursty open-loop arrivals across shared mms at
/// 16 cores. Per-worker arrival streams admit requests independently, so
/// same-instant admissions on different lanes are routine — and every
/// request's latency sample lands in a histogram the fingerprint covers,
/// so a merge-order slip shows up as a tail-percentile shift even when
/// the trace would mask it.
fn run_serving(backend: EngineBackend) -> Machine {
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.seed = 0xDE7E_12A2;
    config.trace_capacity = 8192;
    config.engine = backend;
    let latr = LatrConfig {
        reference_sweep: backend == EngineBackend::Reference,
        ..LatrConfig::default()
    };
    let workload = ServingWorkload::new(16, 4, 15).with_arrivals(ArrivalProcess::Bursty {
        period: 4 * latr_sim::MILLISECOND,
        on_pct: 25,
        factor: 2.0,
    });
    let mut machine = Machine::new(config);
    machine.run(Box::new(workload), PolicyKind::Latr(latr).build(), SECOND);
    machine
}

#[test]
fn serving_fingerprint_is_independent_of_worker_count() {
    let baseline = run_serving(EngineBackend::Fast);
    let (base_fp, base_stats) = (baseline.fingerprint(), stats_text(&baseline));
    assert!(
        baseline
            .stats
            .histogram(latr_kernel::metrics::SERVING_REQUEST_NS)
            .is_some_and(|h| h.summary().count == 16 * 15),
        "every admitted request must complete and be sampled"
    );
    for workers in [1usize, 2, 4, 8] {
        let m = run_serving(EngineBackend::Parallel(workers));
        assert_eq!(
            stats_text(&m),
            base_stats,
            "serving stats diverged at {workers} workers"
        );
        assert_eq!(
            m.fingerprint(),
            base_fp,
            "serving fingerprint diverged at {workers} workers"
        );
    }
}

#[test]
fn repeated_runs_at_the_same_worker_count_are_identical() {
    for workers in [2usize, 4, 8] {
        let a = run(EngineBackend::Parallel(workers), false);
        let b = run(EngineBackend::Parallel(workers), false);
        assert_eq!(
            stats_text(&a),
            stats_text(&b),
            "stats varied across runs at {workers} workers"
        );
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "fingerprint varied across runs at {workers} workers"
        );
    }
}

/// The negative control. If this test ever starts failing because the
/// unsound runs *agree* with the sound one, the scenario has stopped
/// producing same-instant cross-lane events and the whole suite has lost
/// its teeth — pick a harsher scenario, do not delete the test.
#[test]
fn wall_clock_merge_order_is_detected() {
    let sound = run(EngineBackend::Parallel(4), false);
    let unsound = run(EngineBackend::Parallel(4), true);
    assert_ne!(
        sound.fingerprint(),
        unsound.fingerprint(),
        "the wall-clock-arrival merge produced a bit-identical run; the \
         negative control no longer exercises same-instant cross-lane ties"
    );
    // The broken order is still *reproducible* — two unsound runs agree —
    // so what the matrix detects is specifically the merge order, not
    // incidental nondeterminism.
    let unsound2 = run(EngineBackend::Parallel(4), true);
    assert_eq!(
        unsound.fingerprint(),
        unsound2.fingerprint(),
        "the unsound merge is rotation-based and must still be deterministic"
    );
}
