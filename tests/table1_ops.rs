//! Table 1 coverage: every virtual-address operation class the paper
//! enumerates, with its lazy-able / synchronous classification.
//!
//! | class | operation | lazy possible |
//! |---|---|---|
//! | Free | munmap, madvise | ✓ (covered by crate tests) |
//! | Migration | AutoNUMA, page swap, dedup, compaction | ✓ |
//! | Permission | mprotect | – |
//! | Ownership | CoW (fork) | – |
//! | Remap | mremap | – |
//!
//! Each scenario runs under both Linux and Latr and checks (a) the
//! operation's semantics, (b) the shootdown classification (lazy ops send
//! no IPIs under Latr; sync ops shoot down under every policy), and (c)
//! the reclamation invariant.

use latr_arch::{CpuId, MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{metrics, Machine, MachineConfig, Op, OpResult, TaskId, Workload};
use latr_mem::{MmId, VaRange};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::PolicyKind;

/// Runs a fixed op script on task 0 (cpu0) while a sharer task on cpu1
/// touches the victim range between script steps, so remote TLB entries
/// genuinely exist when the operation fires.
struct Scripted {
    script: Vec<ScriptStep>,
    pos: usize,
    victim: Option<VaRange>,
    sharer_touched: bool,
    lingering: u32,
}

enum ScriptStep {
    /// Map the victim range.
    Map(u64),
    /// Run this op against the victim range.
    OnVictim(fn(VaRange) -> Op),
    /// Plain op.
    Fixed(Op),
}

impl Scripted {
    fn new(script: Vec<ScriptStep>) -> Self {
        Scripted {
            script,
            pos: 0,
            victim: None,
            sharer_touched: false,
            lingering: 6,
        }
    }
}

impl Workload for Scripted {
    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        machine.spawn_task(mm, CpuId(0));
        machine.spawn_task(mm, CpuId(1));
    }

    fn next_op(&mut self, _machine: &mut Machine, task: TaskId) -> Op {
        if task.index() == 1 {
            // The sharer: touch the victim once it exists, then idle (but
            // stay alive so the mm_cpumask keeps both cores).
            return match self.victim {
                Some(r) if !self.sharer_touched => {
                    self.sharer_touched = true;
                    Op::AccessBatch {
                        range: r,
                        accesses: (r.pages as u32).max(1) * 2,
                        write: false,
                    }
                }
                _ if self.pos >= self.script.len() => Op::Exit,
                _ => Op::Sleep(5_000),
            };
        }
        // Task 0 waits for the sharer before running the interesting ops.
        if self.victim.is_some() && !self.sharer_touched {
            return Op::Sleep(2_000);
        }
        let Some(step) = self.script.get(self.pos) else {
            if self.lingering > 0 {
                self.lingering -= 1;
                return Op::Sleep(MILLISECOND);
            }
            return Op::Exit;
        };
        self.pos += 1;
        match step {
            ScriptStep::Map(pages) => Op::MmapAnon { pages: *pages },
            ScriptStep::OnVictim(f) => f(self.victim.expect("victim mapped")),
            ScriptStep::Fixed(op) => *op,
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        if task.index() == 0 {
            if let Op::MmapAnon { .. } = result.op {
                if self.victim.is_none() {
                    self.victim = machine.task(task).last_mmap;
                }
            }
        }
    }
}

fn run(policy: PolicyKind, script: Vec<ScriptStep>) -> Machine {
    let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    config.numa.fault_retry = MILLISECOND / 10;
    let mut machine = Machine::new(config);
    machine.run(Box::new(Scripted::new(script)), policy.build(), 2 * SECOND);
    assert_eq!(machine.check_reclamation_invariant(), None);
    assert_eq!(machine.check_mapping_coherence(), None);
    machine
}

fn touch_all(range: VaRange) -> Op {
    Op::AccessBatch {
        range,
        accesses: range.pages as u32 * 2,
        write: true,
    }
}

// ---- Migration class: page swap -------------------------------------------------

fn swap_script() -> Vec<ScriptStep> {
    vec![
        ScriptStep::Map(8),
        ScriptStep::OnVictim(touch_all),
        ScriptStep::OnVictim(|r| Op::SwapOut { range: r }),
        ScriptStep::OnVictim(touch_all), // swap back in
    ]
}

#[test]
fn swap_out_and_in_roundtrip() {
    let m = run(PolicyKind::Linux, swap_script());
    assert_eq!(m.stats.counter("swap_outs"), 8);
    assert!(
        m.stats.counter("swap_ins") >= 1,
        "re-touching must swap pages back in"
    );
    assert!(m.stats.counter(metrics::SHOOTDOWNS) >= 1);
}

#[test]
fn swap_is_lazy_under_latr() {
    let m = run(PolicyKind::Latr(LatrConfig::default()), swap_script());
    assert_eq!(m.stats.counter("swap_outs"), 8);
    assert_eq!(
        m.stats.counter(metrics::IPIS_SENT),
        0,
        "page swap is a lazy-able operation (Table 1)"
    );
    assert!(m.stats.counter(metrics::LATR_STATES_SAVED) >= 1);
    assert_eq!(m.frames.allocated_count(), 0);
}

// ---- Migration class: deduplication ----------------------------------------------

fn dedup_script() -> Vec<ScriptStep> {
    vec![
        ScriptStep::Map(8),
        ScriptStep::OnVictim(touch_all),
        ScriptStep::OnVictim(|r| Op::Dedup { range: r }),
        // Writing re-breaks the sharing via CoW.
        ScriptStep::OnVictim(|r| Op::Access {
            vpn: r.start.offset(1),
            write: true,
        }),
    ]
}

#[test]
fn dedup_merges_pairs_and_cow_unshares() {
    let m = run(PolicyKind::Linux, dedup_script());
    assert_eq!(m.stats.counter("dedup_merges"), 4, "8 pages = 4 pairs");
    assert!(
        m.stats.counter("cow_breaks") >= 1,
        "writing a merged page must copy-on-write"
    );
}

#[test]
fn dedup_duplicate_frames_free_lazily_under_latr() {
    let m = run(PolicyKind::Latr(LatrConfig::default()), dedup_script());
    assert_eq!(m.stats.counter("dedup_merges"), 4);
    assert_eq!(
        m.stats.counter(metrics::IPIS_SENT),
        0,
        "the merge/free phase is lazy-able (Table 1)"
    );
    assert_eq!(m.frames.allocated_count(), 0, "duplicates reclaimed");
}

// ---- Migration class: compaction --------------------------------------------------

fn compact_script() -> Vec<ScriptStep> {
    vec![
        ScriptStep::Map(6),
        ScriptStep::OnVictim(touch_all),
        ScriptStep::OnVictim(|r| Op::Compact { range: r }),
        // Wait for the lazy unmap to land, then touch to trigger the
        // migrations.
        ScriptStep::Fixed(Op::Sleep(3 * MILLISECOND)),
        ScriptStep::OnVictim(touch_all),
        ScriptStep::Fixed(Op::Sleep(3 * MILLISECOND)),
        ScriptStep::OnVictim(touch_all),
    ]
}

#[test]
fn compaction_migrates_pages_to_fresh_frames() {
    for policy in [PolicyKind::Linux, PolicyKind::Latr(LatrConfig::default())] {
        let m = run(policy, compact_script());
        assert_eq!(m.stats.counter("compact_pages"), 6, "{}", policy.label());
        assert!(
            m.stats.counter(metrics::MIGRATIONS) >= 3,
            "{}: compaction must migrate pages, got {}",
            policy.label(),
            m.stats.counter(metrics::MIGRATIONS)
        );
    }
}

#[test]
fn compaction_hint_unmaps_are_lazy_under_latr() {
    let m = run(PolicyKind::Latr(LatrConfig::default()), compact_script());
    assert_eq!(
        m.stats.counter(metrics::IPIS_SENT),
        0,
        "compaction rides the lazy migration path (§7)"
    );
    assert!(m.stats.counter(metrics::LATR_STATES_SAVED) >= 6);
}

// ---- Remap class: mremap -----------------------------------------------------------

fn mremap_script() -> Vec<ScriptStep> {
    vec![
        ScriptStep::Map(4),
        ScriptStep::OnVictim(touch_all),
        ScriptStep::OnVictim(|r| Op::Mremap { range: r }),
    ]
}

#[test]
fn mremap_moves_the_mapping_and_is_synchronous_everywhere() {
    for policy in [PolicyKind::Linux, PolicyKind::Latr(LatrConfig::default())] {
        let m = run(policy, mremap_script());
        assert_eq!(m.stats.counter("mremaps"), 1, "{}", policy.label());
        assert!(
            m.stats.counter(metrics::IPIS_SENT) >= 1,
            "{}: mremap must shoot down synchronously (Table 1)",
            policy.label()
        );
        assert_eq!(
            m.stats.counter(metrics::LATR_FALLBACK_IPIS),
            0,
            "{}: the sync round is by classification, not queue overflow",
            policy.label()
        );
    }
}

// ---- Ownership class: fork / CoW ---------------------------------------------------

fn fork_script() -> Vec<ScriptStep> {
    vec![
        ScriptStep::Map(4),
        ScriptStep::OnVictim(touch_all),
        ScriptStep::Fixed(Op::Fork),
        // Parent writes after the fork: CoW break.
        ScriptStep::OnVictim(|r| Op::Access {
            vpn: r.start,
            write: true,
        }),
    ]
}

#[test]
fn fork_write_protects_and_cow_breaks_on_write() {
    for policy in [PolicyKind::Linux, PolicyKind::Latr(LatrConfig::default())] {
        let m = run(policy, fork_script());
        assert_eq!(m.stats.counter("forks"), 1, "{}", policy.label());
        assert!(
            m.stats.counter("cow_breaks") >= 1,
            "{}: parent write after fork must CoW",
            policy.label()
        );
        assert!(
            m.stats.counter(metrics::IPIS_SENT) >= 1,
            "{}: the fork write-protect is an ownership change (Table 1)",
            policy.label()
        );
        // The forked (never-scheduled) child is reaped at shutdown.
        assert_eq!(m.frames.allocated_count(), 0, "{}", policy.label());
        assert_eq!(m.num_mms(), 2);
    }
}

#[test]
fn forked_child_shares_frames_until_write() {
    // Single-core variant so we can inspect sharing directly.
    struct ForkInspect {
        step: usize,
        victim: Option<VaRange>,
        shared_refcount: Option<u32>,
    }
    impl Workload for ForkInspect {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
        }
        fn next_op(&mut self, machine: &mut Machine, _task: TaskId) -> Op {
            let _ = machine;
            self.step += 1;
            match self.step {
                1 => Op::MmapAnon { pages: 2 },
                2 => touch_all(self.victim.expect("mapped")),
                3 => Op::Fork,
                _ => Op::Exit,
            }
        }
        fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
            match result.op {
                Op::MmapAnon { .. } => self.victim = machine.task(task).last_mmap,
                Op::Fork => {
                    let mm: MmId = machine.task(task).mm;
                    let vpn = self.victim.expect("mapped").start;
                    let pte = machine.mm(mm).page_table.lookup(vpn).expect("mapped");
                    assert!(!pte.flags.writable, "parent page must be read-only");
                    self.shared_refcount = Some(machine.frames.refcount(pte.pfn));
                }
                _ => {}
            }
        }
    }
    let mut machine = Machine::new(MachineConfig::new(Topology::preset(
        MachinePreset::Commodity2S16C,
    )));
    let (workload, _) = machine.run(
        Box::new(ForkInspect {
            step: 0,
            victim: None,
            shared_refcount: None,
        }),
        PolicyKind::Linux.build(),
        SECOND,
    );
    let any: Box<dyn std::any::Any> = workload;
    let w = any.downcast::<ForkInspect>().expect("same type");
    assert_eq!(
        w.shared_refcount,
        Some(2),
        "parent and child share each frame after fork"
    );
}
