//! The coherence oracle's acceptance test: a deliberately broken policy
//! must be *caught*, and the correct one must run clean under the exact
//! same workload.
//!
//! `LatrConfig { reclaim_ticks: 0, .. }` removes the §4.2 two-tick grace
//! period: munmapped frames are handed back to the allocator at the very
//! next background reclamation tick, while the per-core sweeps that clear
//! remote TLB entries run on *staggered* scheduler ticks that may not
//! have fired yet. The oracle's vector clocks see a free that is not
//! ordered after the remote fill by any publish/sweep/IPI edge and flag
//! it, naming both racing events in the trace.

use latr_arch::{CpuId, MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{Machine, MachineConfig, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::{MILLISECOND, SECOND};
use latr_verify::ViolationKind;
use latr_workloads::PolicyKind;

/// Core 0 maps a page, core 1 fills its TLB from it and then *computes*
/// (no context switch, hence no sweep) straight through the race window.
/// Core 0 unmaps at ~100 µs — after core 1's first staggered scheduler
/// tick (62.5 µs on the 16-core preset) so the publish is still pending
/// when the background reclamation tick fires at 1 ms, but core 1's next
/// sweep only comes at 1.0625 ms. With `reclaim_ticks: 0` the frame is
/// freed in that 62.5 µs gap while core 1 still translates to it.
struct WindowRace {
    step0: usize,
    victim: Option<VaRange>,
    sharer_touched: bool,
}

impl WindowRace {
    fn new() -> Self {
        WindowRace {
            step0: 0,
            victim: None,
            sharer_touched: false,
        }
    }
}

impl Workload for WindowRace {
    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        machine.spawn_task(mm, CpuId(0));
        machine.spawn_task(mm, CpuId(1));
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let _ = machine;
        if task.index() == 1 {
            return match self.victim {
                Some(r) if !self.sharer_touched => {
                    self.sharer_touched = true;
                    Op::Access {
                        vpn: r.start,
                        write: false,
                    }
                }
                // Stay on-CPU across the reclamation tick: sleeping would
                // context-switch, and Latr sweeps on context switches.
                Some(_) => Op::Compute(3 * MILLISECOND),
                None => Op::Sleep(2_000),
            };
        }
        if self.victim.is_some() && !self.sharer_touched {
            return Op::Sleep(1_000);
        }
        self.step0 += 1;
        match self.step0 {
            1 => Op::MmapAnon { pages: 1 },
            2 => Op::Access {
                vpn: self.victim.expect("mapped").start,
                write: true,
            },
            // Put the munmap past core 1's first scheduler tick so its
            // publish stays pending until core 1's *next* tick at 1.0625 ms.
            3 => Op::Sleep(100_000),
            4 => Op::Munmap {
                range: self.victim.expect("mapped"),
            },
            // Outlive the reclamation tick so process teardown doesn't
            // disturb the race being observed.
            5 => Op::Sleep(5 * MILLISECOND),
            _ => Op::Exit,
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        if task.index() != 0 {
            return;
        }
        if let Op::MmapAnon { .. } = result.op {
            self.victim = machine.task(task).last_mmap;
        }
    }
}

fn run(config: LatrConfig) -> Machine {
    let mut machine = Machine::new(MachineConfig::new(Topology::preset(
        MachinePreset::Commodity2S16C,
    )));
    machine.run(
        Box::new(WindowRace::new()),
        PolicyKind::Latr(config).build(),
        SECOND,
    );
    machine
}

#[test]
fn broken_policy_with_no_grace_period_is_caught() {
    // `without_degradation()` also drops the sweep gate on reclamation
    // packages — with it on, even `reclaim_ticks: 0` is safe (the package
    // waits for the state's bitmask to clear), and this negative control
    // needs the bare, genuinely broken mechanism.
    let machine = run(LatrConfig {
        reclaim_ticks: 0,
        ..LatrConfig::default()
    }
    .without_degradation());
    let violation = machine
        .oracle_violation()
        .expect("reclaim_ticks = 0 frees inside the staleness window; the oracle must fire");
    assert_eq!(
        violation.kind,
        ViolationKind::FreedWhileCached,
        "wrong classification:\n{violation}"
    );
    // The trace must name the racing parties: the stale core...
    assert!(
        violation.headline.contains("cpu1"),
        "headline should name the caching core: {}",
        violation.headline
    );
    let rendered = violation.to_string();
    // ...the fill that created the stale entry, and the publish the free
    // failed to wait out.
    assert!(
        rendered.contains("TLB fill"),
        "trace should include the racing fill:\n{rendered}"
    );
    assert!(
        rendered.contains("publish free state"),
        "trace should include the publish:\n{rendered}"
    );
    assert!(
        rendered.contains("race:"),
        "trace should end with a happens-before verdict:\n{rendered}"
    );
}

#[test]
fn default_grace_period_is_oracle_clean_on_the_same_workload() {
    let machine = run(LatrConfig::default());
    if let Some(v) = machine.oracle_violation() {
        panic!("two-tick reclamation must satisfy the invariant, got:\n{v}");
    }
    assert!(
        machine.oracle_events_observed() > 0,
        "the oracle must actually have been shadowing the run"
    );
}

#[test]
fn gate_alone_keeps_the_zero_grace_window_safe_and_is_counted() {
    // The same zero-grace configuration as the negative control above,
    // but with the sweep gate left on and the watchdog disabled: the
    // *only* thing standing between the free and the stale TLB entry is
    // the covering state's cpu bitmask. That must be (a) safe and
    // (b) visible — a package overdue at a reclaim tick but still held
    // by its gate counts toward LATR_GATE_HELD even when no watchdog
    // will ever escalate it. Before the accounting fix, `watchdog_ticks:
    // 0` silently zeroed this counter and the degradation telemetry
    // claimed the gate never did any work.
    let machine = run(LatrConfig {
        reclaim_ticks: 0,
        watchdog_ticks: 0,
        ..LatrConfig::default()
    });
    if let Some(v) = machine.oracle_violation() {
        panic!("the gate alone must close the staleness window, got:\n{v}");
    }
    assert!(
        machine.oracle_events_observed() > 0,
        "the oracle must actually have been shadowing the run"
    );
    assert!(
        machine.stats.counter(latr_kernel::metrics::LATR_GATE_HELD) > 0,
        "the gate held an overdue package across a tick; the degradation \
         counters must say so even with the watchdog off"
    );
    assert_eq!(
        machine
            .stats
            .counter(latr_kernel::metrics::LATR_WATCHDOG_ESCALATIONS),
        0,
        "no watchdog may have helped: this run proves the gate alone"
    );
}
