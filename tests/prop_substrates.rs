//! Model-based property tests of the memory and hardware substrates:
//! each structure is driven with random operation sequences and compared
//! against a trivially-correct reference model.

use latr_arch::{CpuId, CpuMask, Tlb, TlbEntry, PCID_NONE};
use latr_mem::{
    FrameAllocator, MapKind, PageTable, Pfn, Prot, PteFlags, VaRange, Vma, VmaTree, Vpn,
};
use latr_sim::Histogram;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

// ---- CpuMask vs HashSet ------------------------------------------------------------

#[derive(Debug, Clone)]
enum MaskOp {
    Set(u16),
    Clear(u16),
}

fn mask_ops() -> impl Strategy<Value = Vec<MaskOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..256).prop_map(MaskOp::Set),
            (0u16..256).prop_map(MaskOp::Clear),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn cpumask_matches_hashset(ops in mask_ops()) {
        let mut mask = CpuMask::empty();
        let mut model: HashSet<u16> = HashSet::new();
        for op in ops {
            match op {
                MaskOp::Set(c) => {
                    mask.set(CpuId(c));
                    model.insert(c);
                }
                MaskOp::Clear(c) => {
                    mask.clear(CpuId(c));
                    model.remove(&c);
                }
            }
            prop_assert_eq!(mask.count(), model.len());
        }
        let from_mask: HashSet<u16> = mask.iter().map(|c| c.0).collect();
        prop_assert_eq!(from_mask, model.clone());
        prop_assert_eq!(mask.is_empty(), model.is_empty());
        prop_assert_eq!(
            mask.first().map(|c| c.0),
            model.iter().copied().min()
        );
    }
}

// ---- PageTable vs BTreeMap ---------------------------------------------------------

#[derive(Debug, Clone)]
enum PtOp {
    Map(u64, u64),
    Unmap(u64),
    Update(u64),
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    // A small vpn universe so collisions are frequent.
    let vpn = 0u64..64;
    prop::collection::vec(
        prop_oneof![
            (vpn.clone(), 0u64..1000).prop_map(|(v, p)| PtOp::Map(v * 0x40_0001, p)),
            vpn.clone().prop_map(|v| PtOp::Unmap(v * 0x40_0001)),
            vpn.prop_map(|v| PtOp::Update(v * 0x40_0001)),
        ],
        0..250,
    )
}

proptest! {
    #[test]
    fn page_table_matches_btreemap(ops in pt_ops()) {
        let mut pt = PageTable::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                PtOp::Map(v, p) => {
                    let prev = pt.map(Vpn(v), Pfn(p), PteFlags::default());
                    prop_assert_eq!(prev.map(|e| e.pfn.0), model.insert(v, p));
                }
                PtOp::Unmap(v) => {
                    let prev = pt.unmap(Vpn(v));
                    prop_assert_eq!(prev.map(|e| e.pfn.0), model.remove(&v));
                }
                PtOp::Update(v) => {
                    let updated = pt.update(Vpn(v), |e| e.flags.accessed = true);
                    prop_assert_eq!(updated.is_some(), model.contains_key(&v));
                }
            }
            prop_assert_eq!(pt.mapped_pages(), model.len() as u64);
        }
        for (&v, &p) in &model {
            prop_assert_eq!(pt.lookup(Vpn(v)).map(|e| e.pfn.0), Some(p));
        }
    }
}

// ---- VmaTree vs interval model -------------------------------------------------------

#[derive(Debug, Clone)]
enum VmaOp {
    Insert(u64, u64),
    Remove(u64, u64),
    Protect(u64, u64),
}

fn vma_ops() -> impl Strategy<Value = Vec<VmaOp>> {
    let start = 0u64..200;
    let len = 1u64..24;
    prop::collection::vec(
        prop_oneof![
            (start.clone(), len.clone()).prop_map(|(s, l)| VmaOp::Insert(s, l)),
            (start.clone(), len.clone()).prop_map(|(s, l)| VmaOp::Remove(s, l)),
            (start, len).prop_map(|(s, l)| VmaOp::Protect(s, l)),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn vma_tree_matches_page_model(ops in vma_ops()) {
        let mut tree = VmaTree::new();
        // Model: page -> writable flag.
        let mut model: BTreeMap<u64, bool> = BTreeMap::new();
        for op in ops {
            match op {
                VmaOp::Insert(s, l) => {
                    let range = VaRange::new(Vpn(s), l);
                    let free = tree.is_range_free(&range);
                    let model_free = range.iter().all(|v| !model.contains_key(&v.0));
                    prop_assert_eq!(free, model_free);
                    if free {
                        tree.insert(Vma { range, kind: MapKind::Anon, prot: Prot::READ_WRITE });
                        for v in range.iter() {
                            model.insert(v.0, true);
                        }
                    }
                }
                VmaOp::Remove(s, l) => {
                    let range = VaRange::new(Vpn(s), l);
                    let removed = tree.remove_range(&range);
                    let removed_pages: u64 = removed.iter().map(|v| v.range.pages).sum();
                    let mut model_removed = 0;
                    for v in range.iter() {
                        if model.remove(&v.0).is_some() {
                            model_removed += 1;
                        }
                    }
                    prop_assert_eq!(removed_pages, model_removed);
                }
                VmaOp::Protect(s, l) => {
                    let range = VaRange::new(Vpn(s), l);
                    tree.protect_range(&range, Prot::READ);
                    for v in range.iter() {
                        if let Some(w) = model.get_mut(&v.0) {
                            *w = false;
                        }
                    }
                }
            }
            // Page-level agreement after every step.
            for probe in 0..232u64 {
                let vma = tree.find(Vpn(probe));
                match model.get(&probe) {
                    Some(&writable) => {
                        prop_assert!(vma.is_some(), "page {probe} missing from tree");
                        prop_assert_eq!(vma.expect("checked").prot.write, writable);
                    }
                    None => prop_assert!(vma.is_none(), "page {probe} unexpectedly mapped"),
                }
            }
        }
        // No overlapping VMAs, sorted order.
        let vmas: Vec<&Vma> = tree.iter().collect();
        for pair in vmas.windows(2) {
            prop_assert!(pair[0].range.end() <= pair[1].range.start);
        }
    }
}

// ---- FrameAllocator refcount conservation ----------------------------------------------

proptest! {
    #[test]
    fn frame_allocator_conserves_frames(ops in prop::collection::vec(0u8..4, 0..300)) {
        let total = 64u64;
        let mut fa = FrameAllocator::new(2, total / 2);
        let mut live: Vec<Pfn> = Vec::new();
        for op in ops {
            match op {
                0 | 1 => {
                    if let Ok(p) = fa.alloc(latr_arch::NodeId(op % 2)) {
                        live.push(p);
                    }
                }
                2 => {
                    if let Some(&p) = live.first() {
                        fa.inc_ref(p).expect("live frame takes a reference");
                        live.push(p);
                    }
                }
                _ => {
                    if let Some(p) = live.pop() {
                        fa.dec_ref(p).expect("dropping a tracked reference");
                    }
                }
            }
            // Conservation: allocated + free == total.
            let free: usize = (0..2)
                .map(|n| fa.free_on_node(latr_arch::NodeId(n)))
                .sum();
            let distinct_live: HashSet<u64> = live.iter().map(|p| p.0).collect();
            prop_assert_eq!(fa.allocated_count(), distinct_live.len());
            prop_assert_eq!(free + distinct_live.len(), total as usize);
            // Refcounts match the model multiset.
            for &p in &distinct_live {
                let expected = live.iter().filter(|q| q.0 == p).count() as u32;
                prop_assert_eq!(fa.refcount(Pfn(p)), expected);
            }
        }
    }
}

// ---- Histogram percentiles vs sorted samples ---------------------------------------------

proptest! {
    #[test]
    fn histogram_percentiles_are_within_bucket_error(
        samples in prop::collection::vec(0u64..10_000_000, 1..400),
        q in 0.0f64..1.0
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx] as f64;
        let approx = h.percentile(q) as f64;
        // Log-bucketed histograms guarantee ~3.2% relative error (64
        // sub-buckets), plus exactness below 64.
        let tolerance = (exact * 0.033).max(1.0);
        prop_assert!(
            (approx - exact).abs() <= tolerance,
            "q={q:.3}: approx {approx} vs exact {exact} (n={})",
            sorted.len()
        );
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().expect("non-empty"));
    }
}

// ---- TLB: inclusion-free semantics --------------------------------------------------------

proptest! {
    #[test]
    fn tlb_never_returns_a_mapping_that_was_invalidated(
        ops in prop::collection::vec((0u64..128, 0u8..3), 0..300)
    ) {
        let mut tlb = Tlb::new(64, 512);
        // Model: the set of vpns whose *latest* action was an insert.
        let mut inserted: BTreeMap<u64, u64> = BTreeMap::new();
        for (vpn, action) in ops {
            match action {
                0 => {
                    tlb.insert(TlbEntry { pcid: PCID_NONE, vpn, pfn: vpn + 7, writable: true });
                    inserted.insert(vpn, vpn + 7);
                }
                1 => {
                    tlb.invalidate_page(PCID_NONE, vpn);
                    inserted.remove(&vpn);
                }
                _ => {
                    // Lookup must never resurrect an invalidated page, and a
                    // hit must return the modelled frame (caching is
                    // best-effort: misses on inserted pages are allowed).
                    if let Some(e) = tlb.lookup(PCID_NONE, vpn) {
                        prop_assert_eq!(
                            Some(e.pfn),
                            inserted.get(&vpn).copied(),
                            "stale or wrong entry for vpn {}",
                            vpn
                        );
                    }
                }
            }
        }
    }
}
