//! The oracle's event vocabulary.
//!
//! Every translation-coherence-relevant action in the machine's event loop
//! is mirrored as one [`EventRecord`] in a bounded history ring. When a
//! check fires, the offending record plus the history establishing (or
//! failing to establish) the happens-before edges become the violation
//! trace.

use crate::clock::VClock;
use latr_arch::{CpuId, CpuMask};
use latr_mem::{MmId, VaRange, Vpn};
use latr_sim::Time;
use std::fmt;

/// The execution context an event is attributed to: a core, or the
/// background reclamation thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ctx {
    /// A CPU core.
    Cpu(CpuId),
    /// The background reclamation kthread (Latr's `ReclaimTick` handler).
    Kthread,
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctx::Cpu(c) => write!(f, "{c}"),
            Ctx::Kthread => write!(f, "kreclaimd"),
        }
    }
}

/// One coherence-relevant action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A TLB fill: a translation was installed.
    Fill {
        /// PCID tag of the entry.
        pcid: u16,
        /// Virtual page.
        vpn: u64,
        /// Frame the translation resolves to.
        pfn: u64,
    },
    /// An access served from a cached translation (TLB hit).
    Hit {
        /// PCID tag of the entry.
        pcid: u16,
        /// Virtual page.
        vpn: u64,
        /// Frame the cached translation resolves to.
        pfn: u64,
    },
    /// A single-page invalidation (`INVLPG`).
    Invalidate {
        /// PCID tag.
        pcid: u16,
        /// Virtual page.
        vpn: u64,
    },
    /// A full TLB flush (CR3 write).
    FlushAll,
    /// A capacity eviction inside the TLB (the entry silently fell out).
    Evict {
        /// PCID tag.
        pcid: u16,
        /// Virtual page.
        vpn: u64,
        /// Frame the evicted translation resolved to.
        pfn: u64,
    },
    /// A physical frame left the free list.
    Alloc {
        /// The frame.
        pfn: u64,
    },
    /// A physical frame's last reference was dropped (back on the free
    /// list, eligible for reuse).
    Free {
        /// The frame.
        pfn: u64,
    },
    /// A Latr state was published for remote cores to sweep.
    Publish {
        /// Address space the range belongs to.
        mm: MmId,
        /// The published VA range.
        range: VaRange,
        /// Cores that must invalidate before the state retires.
        targets: CpuMask,
        /// Whether this is a migration state (§4.3) rather than a free.
        migration: bool,
    },
    /// A core swept a published state (invalidated locally, cleared its
    /// bit).
    Sweep {
        /// Address space of the swept state.
        mm: MmId,
        /// VA range of the swept state.
        range: VaRange,
    },
    /// A NUMA hint fault was allowed to proceed with migration.
    MigrationProceed {
        /// Address space.
        mm: MmId,
        /// The faulting page.
        vpn: Vpn,
    },
    /// A synchronous shootdown's IPIs were sent.
    IpiSend {
        /// Transaction id.
        txn: u64,
        /// The targeted cores.
        targets: CpuMask,
    },
    /// A shootdown IPI was handled on a remote core.
    IpiDeliver {
        /// Transaction id.
        txn: u64,
    },
    /// A shootdown ACK arrived back at the initiator.
    Ack {
        /// Transaction id.
        txn: u64,
        /// The acknowledging core.
        from: CpuId,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventKind::Fill { pcid, vpn, pfn } => {
                write!(f, "TLB fill vpn {vpn:#x} -> pfn {pfn:#x} (pcid {pcid})")
            }
            EventKind::Hit { pcid, vpn, pfn } => {
                write!(f, "TLB hit vpn {vpn:#x} -> pfn {pfn:#x} (pcid {pcid})")
            }
            EventKind::Invalidate { pcid, vpn } => {
                write!(f, "invalidate vpn {vpn:#x} (pcid {pcid})")
            }
            EventKind::FlushAll => write!(f, "full TLB flush"),
            EventKind::Evict { pcid, vpn, pfn } => {
                write!(
                    f,
                    "capacity-evict vpn {vpn:#x} -> pfn {pfn:#x} (pcid {pcid})"
                )
            }
            EventKind::Alloc { pfn } => write!(f, "frame {pfn:#x} allocated"),
            EventKind::Free { pfn } => write!(f, "frame {pfn:#x} freed (refcount 0)"),
            EventKind::Publish {
                mm,
                range,
                targets,
                migration,
            } => write!(
                f,
                "publish {} state mm{} {range:?} targeting {} core(s)",
                if migration { "migration" } else { "free" },
                mm.0,
                targets.count()
            ),
            EventKind::Sweep { mm, range } => {
                write!(f, "sweep state mm{} {range:?}", mm.0)
            }
            EventKind::MigrationProceed { mm, vpn } => {
                write!(f, "migration fault proceeds mm{} vpn {:#x}", mm.0, vpn.0)
            }
            EventKind::IpiSend { txn, targets } => {
                write!(f, "IPI multicast txn#{txn} to {} core(s)", targets.count())
            }
            EventKind::IpiDeliver { txn } => write!(f, "IPI handled txn#{txn}"),
            EventKind::Ack { txn, from } => write!(f, "ACK txn#{txn} from {from}"),
        }
    }
}

/// One entry of the oracle's history ring.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Global sequence number (total order of oracle observations).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: Time,
    /// The context the event is attributed to.
    pub ctx: Ctx,
    /// The context's vector clock *after* the event.
    pub clock: VClock,
    /// What happened.
    pub kind: EventKind,
}

impl EventRecord {
    /// Whether this record is relevant when explaining an incident about
    /// `pfn` and/or `vpn`.
    pub fn touches(&self, pfn: Option<u64>, vpn: Option<u64>) -> bool {
        match self.kind {
            EventKind::Fill { vpn: v, pfn: p, .. }
            | EventKind::Hit { vpn: v, pfn: p, .. }
            | EventKind::Evict { vpn: v, pfn: p, .. } => pfn == Some(p) || vpn == Some(v),
            EventKind::Invalidate { vpn: v, .. } => vpn == Some(v),
            EventKind::FlushAll => false,
            EventKind::Alloc { pfn: p } | EventKind::Free { pfn: p } => pfn == Some(p),
            EventKind::Publish { range, .. } | EventKind::Sweep { range, .. } => {
                vpn.is_some_and(|v| range.contains(Vpn(v)))
            }
            EventKind::MigrationProceed { vpn: v, .. } => vpn == Some(v.0),
            EventKind::IpiSend { .. } | EventKind::IpiDeliver { .. } | EventKind::Ack { .. } => {
                false
            }
        }
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[seq {} @ {}] {}: {} vclock {}",
            self.seq, self.at, self.ctx, self.kind, self.clock
        )
    }
}
