//! Vector clocks over the machine's execution contexts.
//!
//! One component per core plus one for the background reclamation thread.
//! Happens-before edges are created exactly where the simulated kernel
//! creates ordering: a sweep joins the publishing core's clock at publish
//! time, an IPI delivery joins the initiator's clock at send time, and an
//! ACK joins the target's clock back into the initiator. A frame free that
//! does *not* dominate a core's TLB-fill component is concurrent with that
//! fill — the race the oracle reports.

use std::fmt;

/// A vector clock: `clock[i]` counts events attributed to context `i`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// A zero clock over `n` contexts.
    pub fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no contexts.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Advances context `i`'s component and returns the new value.
    pub fn tick(&mut self, i: usize) -> u64 {
        self.0[i] += 1;
        self.0[i]
    }

    /// Component `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Pointwise maximum with `other` (receiving a message).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether every component of `self` is ≥ the matching component of
    /// `other` — i.e. everything `other` had seen happens-before `self`.
    pub fn dominates(&self, other: &VClock) -> bool {
        (0..self.0.len().max(other.0.len())).all(|i| self.get(i) >= other.get(i))
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_dominate() {
        let mut a = VClock::new(3);
        let mut b = VClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        b.join(&a);
        assert!(b.dominates(&a));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        assert_eq!(format!("{b}"), "[2 1 0]");
    }

    #[test]
    fn join_grows_shorter_clock() {
        let mut a = VClock::new(1);
        let mut b = VClock::new(3);
        b.tick(2);
        a.join(&b);
        assert_eq!(a.len(), 3);
        assert!(a.dominates(&b));
    }
}
