//! `latr-verify` — translation-coherence oracle for the Latr simulator.
//!
//! This crate is the *correctness layer* of the workspace: a shadow state
//! machine ([`CoherenceOracle`]) that the kernel crate threads through its
//! event loop (behind the default-on `oracle` feature of `latr-kernel`).
//! It mirrors TLB contents per core, tracks published Latr states and
//! synchronous-shootdown transactions, and maintains vector clocks
//! ([`VClock`]) along the happens-before edges the protocol actually
//! creates. From that it checks, online, the invariants the paper states:
//!
//! * **Reclamation invariant (§3)** — no frame may be freed or reused
//!   while any TLB still caches a translation to it, and no access may be
//!   served through such a stale translation
//!   ([`ViolationKind::FreedWhileCached`],
//!   [`ViolationKind::ReusedWhileCached`],
//!   [`ViolationKind::AccessThroughFreedFrame`],
//!   [`ViolationKind::FillOfFreedFrame`]).
//! * **Migration barrier (§4.4)** — a NUMA hint fault may proceed only
//!   after every core named in the migration state's bitmask has swept
//!   ([`ViolationKind::MigrationBeforeSweepComplete`]).
//!
//! The first failed check freezes the oracle into a [`Violation`] carrying
//! a TSan-style trace: the offending event, the recent history touching
//! the same frame/page, and a verdict on whether any happens-before edge
//! ordered the racing pair. Later checks only bump a suppressed counter,
//! so the report always names the *root* race rather than its fallout.

pub mod clock;
pub mod event;
pub mod oracle;

pub use clock::VClock;
pub use event::{Ctx, EventKind, EventRecord};
pub use oracle::{CoherenceOracle, Violation, ViolationKind};
