//! The translation-coherence oracle.
//!
//! A shadow state machine threaded through the simulated machine's event
//! loop. It mirrors every core's TLB contents (including capacity
//! evictions, which the TLB model reports when tracking is enabled),
//! tracks published Latr states, and carries vector clocks across the
//! ordering edges the kernel actually creates (publish→sweep, IPI
//! send→deliver, ACK). On every frame free/alloc, TLB fill, access hit
//! and migration-fault proceed it checks the paper's §3 invariant and
//! reports the *first* violation as a TSan-style trace: the offending
//! event, the history establishing the race, and whether the conflicting
//! pair was ordered by any happens-before edge at all.
//!
//! The oracle is a pure observer — it never mutates the machine and never
//! panics on a violation, so enabling it cannot perturb a run's
//! determinism. Tests read the verdict via `violation()`.

use crate::clock::VClock;
use crate::event::{Ctx, EventKind, EventRecord};
use latr_arch::{CpuId, CpuMask, TlbEntry};
use latr_mem::{MmId, Pfn, VaRange, Vpn};
use latr_sim::Time;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// How many event records the history ring keeps.
const HISTORY_CAPACITY: usize = 4096;
/// How many prior events a violation trace shows.
const TRACE_EVENTS: usize = 12;

/// What kind of coherence violation was detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A frame's last reference was dropped while some TLB still cached a
    /// translation to it — the frame is eligible for reuse inside the
    /// staleness window (§3's reclamation invariant).
    FreedWhileCached,
    /// A frame was handed out again while some TLB still cached a
    /// translation to it — actual reuse inside the window.
    ReusedWhileCached,
    /// An access was served from a cached translation whose frame is on
    /// the free list.
    AccessThroughFreedFrame,
    /// A translation to an unallocated frame was installed.
    FillOfFreedFrame,
    /// A NUMA migration fault proceeded while some core named in the
    /// migration state's bitmask had not yet invalidated (§4.4).
    MigrationBeforeSweepComplete,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::FreedWhileCached => "frame freed while cached",
            ViolationKind::ReusedWhileCached => "frame reused while cached",
            ViolationKind::AccessThroughFreedFrame => "access through freed frame",
            ViolationKind::FillOfFreedFrame => "fill of freed frame",
            ViolationKind::MigrationBeforeSweepComplete => "migration before sweep complete",
        };
        f.write_str(s)
    }
}

/// A detected coherence violation: the first one freezes the oracle.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Classification.
    pub kind: ViolationKind,
    /// One-line statement of what went wrong, naming the racing parties.
    pub headline: String,
    /// The event that completed the race.
    pub offending: EventRecord,
    /// Prior events involving the same frame/page, newest first.
    pub history: Vec<EventRecord>,
    /// The happens-before verdict for the racing pair.
    pub race: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== latr-verify: {} ==", self.kind)?;
        writeln!(f, "{}", self.headline)?;
        writeln!(f, "  offending: {}", self.offending)?;
        for (i, e) in self.history.iter().enumerate() {
            writeln!(f, "  #{i} {e}")?;
        }
        write!(f, "race: {}", self.race)
    }
}

/// A shadow copy of one cached translation.
#[derive(Clone, Copy, Debug)]
struct ShadowEntry {
    pfn: u64,
    /// The caching core's own clock component when the fill happened —
    /// the fill's position in that core's local order.
    filled_component: u64,
    filled_seq: u64,
}

/// A published Latr state the oracle still tracks.
#[derive(Clone, Debug)]
struct TrackedState {
    mm: MmId,
    range: VaRange,
    pending: CpuMask,
    migration: bool,
    /// Publisher's clock at publish time; sweepers join it.
    publish_clock: VClock,
}

/// The coherence oracle. One per [`Machine`]; see the module docs.
///
/// [`Machine`]: ../latr_kernel/struct.Machine.html
#[derive(Debug)]
pub struct CoherenceOracle {
    ncpus: usize,
    seq: u64,
    /// Per-context clocks: one per core plus [`Ctx::Kthread`] last.
    clocks: Vec<VClock>,
    /// Per-core shadow TLB: (pcid, vpn) → entry.
    shadow: Vec<HashMap<(u16, u64), ShadowEntry>>,
    /// Reverse index: pfn → set of (core, pcid, vpn) caching it.
    by_pfn: HashMap<u64, HashSet<(usize, u16, u64)>>,
    /// Published states still carrying pending CPU bits.
    states: Vec<TrackedState>,
    /// Initiator clock snapshots of in-flight shootdown transactions.
    txn_clocks: HashMap<u64, VClock>,
    history: VecDeque<EventRecord>,
    violation: Option<Violation>,
    /// Checks that fired after the first violation froze the oracle.
    suppressed: u64,
    /// Set at shutdown: events still record, checks no longer fire.
    closed: bool,
}

impl CoherenceOracle {
    /// An oracle over `ncpus` cores.
    pub fn new(ncpus: usize) -> Self {
        let nctx = ncpus + 1;
        CoherenceOracle {
            ncpus,
            seq: 0,
            clocks: vec![VClock::new(nctx); nctx],
            shadow: vec![HashMap::new(); ncpus],
            by_pfn: HashMap::new(),
            states: Vec::new(),
            txn_clocks: HashMap::new(),
            history: VecDeque::new(),
            violation: None,
            suppressed: 0,
            closed: false,
        }
    }

    /// Stops checking (events still record). The machine calls this right
    /// before the policy's shutdown drain: that drain runs after the final
    /// event, so the frames it frees can no longer be reached through any
    /// TLB — flagging them would be noise, not a race.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// The first violation detected, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// How many further checks fired after the first violation.
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }

    /// Total events observed.
    pub fn events_observed(&self) -> u64 {
        self.seq
    }

    fn ctx_index(&self, ctx: Ctx) -> usize {
        match ctx {
            Ctx::Cpu(c) => c.index(),
            Ctx::Kthread => self.ncpus,
        }
    }

    /// Advances `ctx`'s clock, appends the event to the ring, and returns
    /// a clone of the record (for violation construction).
    fn record(&mut self, ctx: Ctx, at: Time, kind: EventKind) -> EventRecord {
        let i = self.ctx_index(ctx);
        self.clocks[i].tick(i);
        self.seq += 1;
        let rec = EventRecord {
            seq: self.seq,
            at,
            ctx,
            clock: self.clocks[i].clone(),
            kind,
        };
        if self.history.len() == HISTORY_CAPACITY {
            self.history.pop_front();
        }
        self.history.push_back(rec.clone());
        rec
    }

    /// `pfn`/`vpn` are the relevance keys used to pick trace events out of
    /// the history ring (a `Free` record alone carries no vpn, so callers
    /// supply the cached page explicitly).
    fn flag(
        &mut self,
        kind: ViolationKind,
        headline: String,
        offending: EventRecord,
        race: String,
        pfn: Option<u64>,
        vpn: Option<u64>,
    ) {
        if self.closed {
            return;
        }
        if self.violation.is_some() {
            self.suppressed += 1;
            return;
        }
        let history: Vec<EventRecord> = self
            .history
            .iter()
            .rev()
            .filter(|e| e.seq != offending.seq && e.touches(pfn, vpn))
            .take(TRACE_EVENTS)
            .cloned()
            .collect();
        self.violation = Some(Violation {
            kind,
            headline,
            offending,
            history,
            race,
        });
    }

    /// For a conflict between `offending` (just recorded, attributed to
    /// `ctx`) and a fill on `core` at local component `filled_component`:
    /// did any happens-before edge order the fill before the conflicting
    /// action?
    fn race_verdict(&self, ctx: Ctx, core: usize, filled_component: u64) -> String {
        let i = self.ctx_index(ctx);
        if self.clocks[i].get(core) >= filled_component {
            format!(
                "ordered: {ctx} had a happens-before path from cpu{core}'s fill \
                 (clock component {filled_component}) yet no invalidation intervened \
                 — the protocol retired the entry's cover without clearing it"
            )
        } else {
            format!(
                "data race: no publish/sweep/IPI edge orders cpu{core}'s fill \
                 (clock component {filled_component}) before this action — {ctx} \
                 acted without waiting for cpu{core} to invalidate"
            )
        }
    }

    /// Describes the set of shadow entries caching `pfn`, for headlines.
    fn cachers_of(&self, pfn: u64) -> String {
        let Some(set) = self.by_pfn.get(&pfn) else {
            return String::new();
        };
        let mut parts: Vec<String> = set
            .iter()
            .map(|&(core, pcid, vpn)| format!("cpu{core} vpn {vpn:#x} (pcid {pcid})"))
            .collect();
        parts.sort();
        parts.join(", ")
    }

    fn shadow_remove(&mut self, core: usize, pcid: u16, vpn: u64) {
        if let Some(e) = self.shadow[core].remove(&(pcid, vpn)) {
            if let Some(set) = self.by_pfn.get_mut(&e.pfn) {
                set.remove(&(core, pcid, vpn));
                if set.is_empty() {
                    self.by_pfn.remove(&e.pfn);
                }
            }
        }
    }

    // ---- TLB mirror -----------------------------------------------------

    /// A translation was installed into `cpu`'s TLB. `allocated` is the
    /// allocator's verdict on the frame at this instant.
    pub fn note_fill(
        &mut self,
        cpu: CpuId,
        pcid: u16,
        vpn: Vpn,
        pfn: Pfn,
        allocated: bool,
        at: Time,
    ) {
        let core = cpu.index();
        let rec = self.record(
            Ctx::Cpu(cpu),
            at,
            EventKind::Fill {
                pcid,
                vpn: vpn.0,
                pfn: pfn.0,
            },
        );
        // Overwriting fill of the same page = invalidate + fill.
        self.shadow_remove(core, pcid, vpn.0);
        let filled_component = rec.clock.get(core);
        self.shadow[core].insert(
            (pcid, vpn.0),
            ShadowEntry {
                pfn: pfn.0,
                filled_component,
                filled_seq: rec.seq,
            },
        );
        self.by_pfn
            .entry(pfn.0)
            .or_default()
            .insert((core, pcid, vpn.0));
        if !allocated {
            let headline = format!(
                "{cpu} installed a translation vpn {:#x} -> pfn {:#x} but the frame \
                 is on the free list",
                vpn.0, pfn.0
            );
            self.flag(
                ViolationKind::FillOfFreedFrame,
                headline,
                rec,
                "the page table still maps a frame whose last reference was dropped".to_owned(),
                Some(pfn.0),
                Some(vpn.0),
            );
        }
    }

    /// An access was served from `cpu`'s TLB without a walk.
    pub fn note_hit(
        &mut self,
        cpu: CpuId,
        pcid: u16,
        vpn: Vpn,
        pfn: Pfn,
        allocated: bool,
        at: Time,
    ) {
        let core = cpu.index();
        let rec = self.record(
            Ctx::Cpu(cpu),
            at,
            EventKind::Hit {
                pcid,
                vpn: vpn.0,
                pfn: pfn.0,
            },
        );
        // Self-heal the mirror if the fill predated the oracle.
        let entry = *self.shadow[core]
            .entry((pcid, vpn.0))
            .or_insert(ShadowEntry {
                pfn: pfn.0,
                filled_component: rec.clock.get(core),
                filled_seq: rec.seq,
            });
        self.by_pfn
            .entry(pfn.0)
            .or_default()
            .insert((core, pcid, vpn.0));
        if !allocated {
            let headline = format!(
                "{cpu} accessed vpn {:#x} through a stale translation to pfn {:#x}, \
                 which was already reclaimed",
                vpn.0, pfn.0
            );
            let race = self.race_verdict(Ctx::Cpu(cpu), core, entry.filled_component);
            self.flag(
                ViolationKind::AccessThroughFreedFrame,
                headline,
                rec,
                race,
                Some(pfn.0),
                Some(vpn.0),
            );
        }
    }

    /// `cpu` invalidated one page.
    pub fn note_invalidate(&mut self, cpu: CpuId, pcid: u16, vpn: Vpn, at: Time) {
        let core = cpu.index();
        self.record(
            Ctx::Cpu(cpu),
            at,
            EventKind::Invalidate { pcid, vpn: vpn.0 },
        );
        self.shadow_remove(core, pcid, vpn.0);
    }

    /// `cpu` flushed its whole TLB.
    pub fn note_flush_all(&mut self, cpu: CpuId, at: Time) {
        let core = cpu.index();
        self.record(Ctx::Cpu(cpu), at, EventKind::FlushAll);
        let keys: Vec<(u16, u64)> = self.shadow[core].keys().copied().collect();
        for (pcid, vpn) in keys {
            self.shadow_remove(core, pcid, vpn);
        }
    }

    /// Capacity evictions the TLB model reported for `cpu`.
    pub fn note_evictions(&mut self, cpu: CpuId, evicted: &[TlbEntry], at: Time) {
        let core = cpu.index();
        for e in evicted {
            self.record(
                Ctx::Cpu(cpu),
                at,
                EventKind::Evict {
                    pcid: e.pcid,
                    vpn: e.vpn,
                    pfn: e.pfn,
                },
            );
            self.shadow_remove(core, e.pcid, e.vpn);
        }
    }

    // ---- allocator mirror -----------------------------------------------

    /// A frame left the free list.
    pub fn note_alloc(&mut self, ctx: Ctx, pfn: Pfn, at: Time) {
        let rec = self.record(ctx, at, EventKind::Alloc { pfn: pfn.0 });
        if let Some(set) = self.by_pfn.get(&pfn.0) {
            if let Some(&(core, pcid, vpn)) = set.iter().next() {
                let entry = self.shadow[core][&(pcid, vpn)];
                let headline = format!(
                    "frame {:#x} handed out again while still cached: {}",
                    pfn.0,
                    self.cachers_of(pfn.0)
                );
                let race = self.race_verdict(ctx, core, entry.filled_component);
                self.flag(
                    ViolationKind::ReusedWhileCached,
                    headline,
                    rec,
                    race,
                    Some(pfn.0),
                    Some(vpn),
                );
            }
        }
    }

    /// A frame's last reference was dropped (it is reusable from now on).
    pub fn note_free(&mut self, ctx: Ctx, pfn: Pfn, at: Time) {
        let rec = self.record(ctx, at, EventKind::Free { pfn: pfn.0 });
        if let Some(set) = self.by_pfn.get(&pfn.0) {
            if let Some(&(core, pcid, vpn)) = set.iter().next() {
                let entry = self.shadow[core][&(pcid, vpn)];
                let headline = format!(
                    "frame {:#x} freed while still cached: {}",
                    pfn.0,
                    self.cachers_of(pfn.0)
                );
                let race = self.race_verdict(ctx, core, entry.filled_component);
                let _ = entry.filled_seq;
                self.flag(
                    ViolationKind::FreedWhileCached,
                    headline,
                    rec,
                    race,
                    Some(pfn.0),
                    Some(vpn),
                );
            }
        }
    }

    // ---- Latr protocol edges ---------------------------------------------

    /// A Latr state was published by `initiator`.
    pub fn note_publish(
        &mut self,
        initiator: CpuId,
        mm: MmId,
        range: VaRange,
        targets: CpuMask,
        migration: bool,
        at: Time,
    ) {
        let rec = self.record(
            Ctx::Cpu(initiator),
            at,
            EventKind::Publish {
                mm,
                range,
                targets,
                migration,
            },
        );
        self.states.push(TrackedState {
            mm,
            range,
            pending: targets,
            migration,
            publish_clock: rec.clock,
        });
    }

    /// `cpu` swept every active state naming it that covers `(mm, range)`:
    /// it invalidated locally and cleared its bit.
    pub fn note_sweep(&mut self, cpu: CpuId, mm: MmId, range: VaRange, at: Time) {
        self.record(Ctx::Cpu(cpu), at, EventKind::Sweep { mm, range });
        let core = cpu.index();
        let mut joins: Vec<VClock> = Vec::new();
        self.states.retain_mut(|s| {
            if s.mm == mm && s.range == range && s.pending.test(cpu) {
                s.pending.clear(cpu);
                joins.push(s.publish_clock.clone());
            }
            !s.pending.is_empty()
        });
        for c in joins {
            self.clocks[core].join(&c);
        }
    }

    /// A NUMA hint fault on `(mm, vpn)` was allowed to proceed.
    pub fn note_migration_proceed(&mut self, cpu: CpuId, mm: MmId, vpn: Vpn, at: Time) {
        let rec = self.record(Ctx::Cpu(cpu), at, EventKind::MigrationProceed { mm, vpn });
        let blocking: Option<CpuMask> = self
            .states
            .iter()
            .find(|s| s.migration && s.mm == mm && s.range.contains(vpn) && !s.pending.is_empty())
            .map(|s| s.pending);
        if let Some(mask) = blocking {
            let pending: Vec<String> = mask.iter().map(|c| format!("{c}")).collect();
            let headline = format!(
                "migration fault on mm{} vpn {:#x} proceeded while {} had not swept \
                 the migration state",
                mm.0,
                vpn.0,
                pending.join(", ")
            );
            let race = format!(
                "§4.4 requires every bit of the migration state's bitmask to clear \
                 before the fault may proceed; pending mask still has {} bit(s)",
                mask.count()
            );
            self.flag(
                ViolationKind::MigrationBeforeSweepComplete,
                headline,
                rec,
                race,
                None,
                Some(vpn.0),
            );
        }
    }

    // ---- synchronous shootdown edges ------------------------------------

    /// A shootdown's IPIs were multicast by `initiator`.
    pub fn note_ipi_send(&mut self, initiator: CpuId, txn: u64, targets: CpuMask, at: Time) {
        let rec = self.record(Ctx::Cpu(initiator), at, EventKind::IpiSend { txn, targets });
        self.txn_clocks.insert(txn, rec.clock);
    }

    /// A shootdown IPI was handled on `target`.
    pub fn note_ipi_deliver(&mut self, target: CpuId, txn: u64, at: Time) {
        self.record(Ctx::Cpu(target), at, EventKind::IpiDeliver { txn });
        if let Some(c) = self.txn_clocks.get(&txn) {
            let c = c.clone();
            self.clocks[target.index()].join(&c);
        }
    }

    /// The last ACK of `txn` arrived: `initiator` now happens-after every
    /// target's handler.
    pub fn note_ack(&mut self, initiator: CpuId, from: CpuId, txn: u64, done: bool, at: Time) {
        self.record(Ctx::Cpu(initiator), at, EventKind::Ack { txn, from });
        let c = self.clocks[from.index()].clone();
        self.clocks[initiator.index()].join(&c);
        if done {
            self.txn_clocks.remove(&txn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Time = Time::ZERO;

    fn vpn(v: u64) -> Vpn {
        Vpn(v)
    }

    #[test]
    fn free_while_cached_is_flagged_with_trace() {
        let mut o = CoherenceOracle::new(2);
        o.note_fill(CpuId(1), 0, vpn(0x10), Pfn(0x2a), true, T);
        o.note_publish(
            CpuId(0),
            MmId(0),
            VaRange::new(vpn(0x10), 1),
            CpuMask::from_cpus([CpuId(1)]),
            false,
            T,
        );
        o.note_free(Ctx::Kthread, Pfn(0x2a), T);
        let v = o.violation().expect("violation detected");
        assert_eq!(v.kind, ViolationKind::FreedWhileCached);
        assert!(v.headline.contains("cpu1"), "{}", v.headline);
        assert!(v.headline.contains("0x2a"), "{}", v.headline);
        // The trace must include the racing fill and the publish.
        let rendered = v.to_string();
        assert!(rendered.contains("TLB fill vpn 0x10"), "{rendered}");
        assert!(rendered.contains("publish free state"), "{rendered}");
        assert!(rendered.contains("data race"), "{rendered}");
    }

    #[test]
    fn sweep_before_free_is_clean_and_ordered() {
        let mut o = CoherenceOracle::new(2);
        let r = VaRange::new(vpn(0x10), 1);
        o.note_fill(CpuId(1), 0, vpn(0x10), Pfn(0x2a), true, T);
        o.note_publish(
            CpuId(0),
            MmId(0),
            r,
            CpuMask::from_cpus([CpuId(1)]),
            false,
            T,
        );
        o.note_invalidate(CpuId(1), 0, vpn(0x10), T);
        o.note_sweep(CpuId(1), MmId(0), r, T);
        o.note_free(Ctx::Kthread, Pfn(0x2a), T);
        assert!(o.violation().is_none());
    }

    #[test]
    fn reuse_while_cached_is_flagged() {
        let mut o = CoherenceOracle::new(1);
        o.note_fill(CpuId(0), 0, vpn(0x5), Pfn(9), true, T);
        o.note_alloc(Ctx::Cpu(CpuId(0)), Pfn(9), T);
        let v = o.violation().expect("violation");
        assert_eq!(v.kind, ViolationKind::ReusedWhileCached);
    }

    #[test]
    fn stale_hit_on_freed_frame_is_flagged() {
        let mut o = CoherenceOracle::new(1);
        o.note_fill(CpuId(0), 0, vpn(0x5), Pfn(9), true, T);
        o.note_hit(CpuId(0), 0, vpn(0x5), Pfn(9), false, T);
        let v = o.violation().expect("violation");
        assert_eq!(v.kind, ViolationKind::AccessThroughFreedFrame);
    }

    #[test]
    fn migration_proceed_with_pending_bits_is_flagged() {
        let mut o = CoherenceOracle::new(3);
        let r = VaRange::new(vpn(0x40), 1);
        o.note_publish(
            CpuId(0),
            MmId(1),
            r,
            CpuMask::from_cpus([CpuId(0), CpuId(1), CpuId(2)]),
            true,
            T,
        );
        o.note_sweep(CpuId(0), MmId(1), r, T);
        // cpu1 and cpu2 have not swept: the fault must not proceed.
        o.note_migration_proceed(CpuId(1), MmId(1), vpn(0x40), T);
        let v = o.violation().expect("violation");
        assert_eq!(v.kind, ViolationKind::MigrationBeforeSweepComplete);
        assert!(v.headline.contains("cpu2"), "{}", v.headline);
    }

    #[test]
    fn migration_proceed_after_all_sweeps_is_clean() {
        let mut o = CoherenceOracle::new(2);
        let r = VaRange::new(vpn(0x40), 1);
        o.note_publish(
            CpuId(0),
            MmId(1),
            r,
            CpuMask::from_cpus([CpuId(0), CpuId(1)]),
            true,
            T,
        );
        o.note_sweep(CpuId(0), MmId(1), r, T);
        o.note_sweep(CpuId(1), MmId(1), r, T);
        o.note_migration_proceed(CpuId(1), MmId(1), vpn(0x40), T);
        assert!(o.violation().is_none());
    }

    #[test]
    fn flush_and_eviction_clear_the_mirror() {
        let mut o = CoherenceOracle::new(2);
        o.note_fill(CpuId(0), 0, vpn(1), Pfn(7), true, T);
        o.note_fill(CpuId(1), 0, vpn(1), Pfn(7), true, T);
        o.note_flush_all(CpuId(0), T);
        o.note_evictions(
            CpuId(1),
            &[TlbEntry {
                pcid: 0,
                vpn: 1,
                pfn: 7,
                writable: false,
            }],
            T,
        );
        o.note_free(Ctx::Kthread, Pfn(7), T);
        assert!(o.violation().is_none(), "{:?}", o.violation());
    }

    #[test]
    fn first_violation_freezes_later_ones_suppressed() {
        let mut o = CoherenceOracle::new(1);
        o.note_fill(CpuId(0), 0, vpn(1), Pfn(7), true, T);
        o.note_free(Ctx::Kthread, Pfn(7), T);
        assert!(o.violation().is_some());
        o.note_free(Ctx::Kthread, Pfn(7), T);
        assert_eq!(o.suppressed_count(), 1);
        assert_eq!(o.violation().unwrap().kind, ViolationKind::FreedWhileCached);
    }

    #[test]
    fn ipi_edges_order_the_free() {
        // Linux-style: fill on cpu1, IPI invalidates it, ACK returns, then
        // the free — ordered, no violation; and the initiator's clock
        // dominates cpu1's handler clock.
        let mut o = CoherenceOracle::new(2);
        o.note_fill(CpuId(1), 0, vpn(0x10), Pfn(3), true, T);
        o.note_ipi_send(CpuId(0), 7, CpuMask::from_cpus([CpuId(1)]), T);
        o.note_ipi_deliver(CpuId(1), 7, T);
        o.note_invalidate(CpuId(1), 0, vpn(0x10), T);
        o.note_ack(CpuId(0), CpuId(1), 7, true, T);
        o.note_free(Ctx::Cpu(CpuId(0)), Pfn(3), T);
        assert!(o.violation().is_none());
        assert!(o.clocks[0].dominates(&o.clocks[1]));
    }
}
