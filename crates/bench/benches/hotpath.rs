//! Criterion regression gate for the PR-4 hot paths: the publish probe,
//! the sweep tick, the overflow fallback and the event queue, each
//! benchmarked on the fast implementation and (where it survives as an
//! executable spec) its reference twin. The fast/reference pairs double
//! as a visible record of what the optimisation buys; `cargo bench -p
//! latr-bench --bench hotpath` prints both columns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use latr_arch::{CpuMask, MachinePreset, Topology};
use latr_core::rt::{RtInvalidation, RtRegistry};
use latr_core::{LatrConfig, LatrState, StateKind, StateQueue};
use latr_kernel::EngineBackend;
use latr_kernel::MachineConfig;
use latr_mem::{MmId, VaRange, Vpn};
use latr_sim::{EventQueue, QueueBackend, Time, SECOND};
use latr_workloads::{PolicyKind, SweepStorm};

fn state(id: u64, cpus: CpuMask) -> LatrState {
    LatrState {
        id,
        range: VaRange::new(Vpn(0x5_5550 + id % 512), 1),
        mm: MmId(1),
        kind: StateKind::Free,
        cpus,
        pte_done: false,
        published: Time::ZERO,
    }
}

/// The word-scan publish probe against a half-full 64-slot queue: the
/// per-munmap cost on the simulation's hot path.
fn bench_state_queue_publish(c: &mut Criterion) {
    let mut q = StateQueue::new(64);
    let targets = CpuMask::from_cpus([latr_arch::CpuId(1)]);
    // Half the slots stay occupied so every probe has words to skip.
    for i in 0..32 {
        q.publish(state(i, CpuMask::first_n(2))).unwrap();
    }
    let mut id = 100u64;
    c.bench_function("state_queue_publish_retire_half_full", |b| {
        b.iter(|| {
            id += 1;
            q.publish(state(id, targets)).unwrap();
            // Sweep cpu 1 and retire, so occupancy returns to 32 for the
            // next probe (the standing states also name cpu 0 and stay).
            q.clear_cpu_everywhere(latr_arch::CpuId(1));
            black_box(q.retire_completed())
        })
    });
}

/// One scheduler tick's sweep on a busy 120-core machine, fast
/// (pending-bitmap drain) vs reference (scan all 120 queues): the
/// O(cores²·slots) term PR 4 removes, measured at the rt layer where the
/// two paths are directly callable.
fn bench_rt_sweep_tick(c: &mut Criterion) {
    let cores = 120;
    for (name, pending) in [
        ("rt_sweep_tick_120c_fast_pending", true),
        ("rt_sweep_tick_120c_reference_scan", false),
    ] {
        let registry = RtRegistry::new(cores, 64);
        c.bench_function(name, |b| {
            b.iter(|| {
                // One state targeted at core 1, then core 1's tick.
                registry
                    .publish(
                        0,
                        RtInvalidation {
                            mm: 7,
                            start: 0x1000,
                            end: 0x2000,
                        },
                        0b10,
                    )
                    .unwrap();
                if pending {
                    black_box(registry.sweep_pending(1))
                } else {
                    black_box(registry.sweep(1))
                }
            })
        });
    }
}

/// Same-tick publish batching: k states appended with one fence vs k
/// separate publishes.
fn bench_rt_publish_batch(c: &mut Criterion) {
    let registry = RtRegistry::new(8, 256);
    let inv = |mm: u64| RtInvalidation {
        mm,
        start: 0x1000,
        end: 0x2000,
    };
    let targets = [0b1111_1110u64, 0, 0, 0];
    c.bench_function("rt_publish_8_separate", |b| {
        b.iter(|| {
            for i in 0..8 {
                registry.publish_wide(0, inv(i), targets).unwrap();
            }
            for core in 1..8 {
                black_box(registry.sweep_pending(core));
            }
        })
    });
    let batch: Vec<_> = (0..8).map(|i| (inv(i), targets)).collect();
    let mut slots = Vec::with_capacity(8);
    c.bench_function("rt_publish_batch_of_8_one_fence", |b| {
        b.iter(|| {
            registry.publish_batch(0, &batch, &mut slots).unwrap();
            for core in 1..8 {
                black_box(registry.sweep_pending(core));
            }
        })
    });
}

/// The event queue under the simulator's actual access pattern —
/// schedule near-future, pop earliest — on both backends.
fn bench_event_queue_backends(c: &mut Criterion) {
    for (name, backend) in [
        ("event_queue_fast_calendar", QueueBackend::Fast),
        ("event_queue_reference_heap", QueueBackend::Reference),
    ] {
        c.bench_function(name, |b| {
            let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
            let mut t = 0u64;
            // A standing population, as in a live machine.
            for i in 0..256 {
                q.schedule(Time::from_ns(i * 37), i);
            }
            b.iter(|| {
                t += 211;
                q.schedule(Time::from_ns(t), t);
                black_box(q.pop())
            })
        });
    }
}

/// End-to-end sweep-heavy machine runs across all three engine stacks:
/// the number the `hotpath` binary reports, in regression-gate form.
fn bench_machine_sweep_storm(c: &mut Criterion) {
    for (name, backend) in [
        ("machine_sweep_storm_16c_fast", EngineBackend::Fast),
        (
            "machine_sweep_storm_16c_reference",
            EngineBackend::Reference,
        ),
        (
            "machine_sweep_storm_16c_parallel4",
            EngineBackend::Parallel(4),
        ),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut config =
                    MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
                config.seed = 7;
                config.trace_capacity = 0;
                config.engine = backend;
                let latr = LatrConfig {
                    reference_sweep: backend == EngineBackend::Reference,
                    ..LatrConfig::default()
                };
                let mut machine = latr_kernel::Machine::new(config);
                machine.run(
                    Box::new(SweepStorm::new(16, 3)),
                    PolicyKind::Latr(latr).build(),
                    SECOND,
                );
                black_box(machine.now())
            })
        });
    }
}

/// The overflow→IPI fallback under pressure: a 4-slot queue driven past
/// capacity every round, covering the adaptive enter/exit hysteresis.
fn bench_machine_overflow_fallback(c: &mut Criterion) {
    c.bench_function("machine_overflow_fallback_8c", |b| {
        b.iter(|| {
            let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
            config.seed = 11;
            config.trace_capacity = 0;
            let latr = LatrConfig {
                states_per_core: 4,
                ..LatrConfig::default()
            };
            let mut machine = latr_kernel::Machine::new(config);
            machine.run(
                Box::new(SweepStorm::new(8, 6).with_sleep(0)),
                PolicyKind::Latr(latr).build(),
                SECOND,
            );
            black_box(machine.now())
        })
    });
}

criterion_group!(
    benches,
    bench_state_queue_publish,
    bench_rt_sweep_tick,
    bench_rt_publish_batch,
    bench_event_queue_backends,
    bench_machine_sweep_storm,
    bench_machine_overflow_fallback
);
criterion_main!(benches);
