//! Criterion benches of the simulation substrates: per-event costs that
//! determine how fast the experiment harness itself runs.

use criterion::{criterion_group, criterion_main, Criterion};
use latr_arch::{
    CostModel, CpuId, CpuMask, IpiFabric, MachinePreset, Tlb, TlbEntry, Topology, PCID_NONE,
};
use latr_mem::{PageTable, Pfn, PteFlags, VaRange, Vpn};
use latr_sim::{EventQueue, Histogram, LaneSet, SimRng, Time};
use std::hint::black_box;

fn bench_tlb(c: &mut Criterion) {
    let mut tlb = Tlb::new(64, 1024);
    for v in 0..512u64 {
        tlb.insert(TlbEntry {
            pcid: PCID_NONE,
            vpn: v,
            pfn: v + 9000,
            writable: true,
        });
    }
    let mut v = 0u64;
    c.bench_function("tlb_lookup_hit", |b| {
        b.iter(|| {
            v = (v + 1) % 512;
            black_box(tlb.lookup(PCID_NONE, black_box(v)))
        })
    });
    c.bench_function("tlb_insert", |b| {
        b.iter(|| {
            v = v.wrapping_add(1);
            tlb.insert(TlbEntry {
                pcid: PCID_NONE,
                vpn: v,
                pfn: v,
                writable: false,
            });
        })
    });
}

fn bench_page_table(c: &mut Criterion) {
    let mut pt = PageTable::new();
    let mut v = 0u64;
    c.bench_function("page_table_map_unmap", |b| {
        b.iter(|| {
            v = v.wrapping_add(0x1003);
            pt.map(Vpn(v & 0xFFFF_FFFF), Pfn(v), PteFlags::default());
            black_box(pt.unmap(Vpn(v & 0xFFFF_FFFF)));
        })
    });
    for i in 0..512u64 {
        pt.map(Vpn(0x100 + i), Pfn(i), PteFlags::default());
    }
    c.bench_function("page_table_range_scan_512", |b| {
        b.iter(|| black_box(pt.mapped_in(&VaRange::new(Vpn(0x100), 512))))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.schedule(Time::from_ns(t), t);
            black_box(q.pop())
        })
    });
    // The lane-sharded engine on the same access pattern: measures the
    // coordinator-side merge plus the amortized epoch-barrier cost.
    c.bench_function("lane_set_schedule_pop_4w", |b| {
        let mut q: LaneSet<u64> = LaneSet::new(4, 1_000_000, Box::new(|e: &u64| *e as usize));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.schedule(Time::from_ns(t), t);
            black_box(q.pop())
        })
    });
}

fn bench_ipi_schedule(c: &mut Criterion) {
    let fabric = IpiFabric::new(
        Topology::preset(MachinePreset::LargeNuma8S120C),
        CostModel::calibrated(),
    );
    let targets = CpuMask::first_n(120);
    c.bench_function("ipi_multicast_schedule_120", |b| {
        b.iter(|| black_box(fabric.multicast(CpuId(0), &targets, Time::ZERO)))
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut h = Histogram::new();
    let mut rng = SimRng::new(1);
    c.bench_function("histogram_record", |b| {
        b.iter(|| h.record(black_box(rng.below(1_000_000))))
    });
}

criterion_group!(
    benches,
    bench_tlb,
    bench_page_table,
    bench_event_queue,
    bench_ipi_schedule,
    bench_stats
);
criterion_main!(benches);
