//! Criterion benches of the lock-free Latr runtime — the real-hardware
//! counterpart of Table 5: saving a Latr state (paper: 132.3 ns), a state
//! sweep (paper: 158.0 ns), and a synchronous cross-thread "shootdown"
//! baseline (paper: 1594.2 ns for Linux's IPI round).

use criterion::{criterion_group, criterion_main, Criterion};
use latr_core::rt::{CachePadded, RtInvalidation, RtReclaimer, RtRegistry, SoftTlb, SoftTlbTable};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn inv() -> RtInvalidation {
    RtInvalidation {
        mm: 1,
        start: 0x4_0000,
        end: 0x4_1000,
    }
}

fn bench_publish(c: &mut Criterion) {
    let registry = RtRegistry::new(4, 64);
    c.bench_function("rt_publish_state (Table 5: save ~132ns)", |b| {
        b.iter(|| {
            let idx = registry.publish(0, black_box(inv()), 0b1110).unwrap();
            // Drain immediately so the queue never fills.
            registry.sweep(1);
            registry.sweep(2);
            registry.sweep(3);
            black_box(idx);
        })
    });
}

fn bench_sweep_hit(c: &mut Criterion) {
    let registry = RtRegistry::new(2, 64);
    c.bench_function("rt_sweep_one_hit (Table 5: sweep ~158ns)", |b| {
        b.iter(|| {
            registry.publish(0, inv(), 0b10).unwrap();
            black_box(registry.sweep(1));
        })
    });
}

fn bench_sweep_empty(c: &mut Criterion) {
    let registry = RtRegistry::new(16, 64);
    c.bench_function("rt_sweep_empty_16_queues", |b| {
        b.iter(|| black_box(registry.sweep(5)))
    });
}

fn bench_reclaimer(c: &mut Criterion) {
    let registry = RtRegistry::new(2, 64);
    let reclaimer: RtReclaimer<u64> = RtReclaimer::new(2);
    c.bench_function("rt_reclaim_defer_collect", |b| {
        b.iter(|| {
            reclaimer.defer(&registry, black_box(7));
            registry.sweep(0);
            registry.sweep(1);
            registry.sweep(0);
            registry.sweep(1);
            black_box(reclaimer.collect(&registry));
        })
    });
}

fn bench_soft_tlb(c: &mut Criterion) {
    let registry = Arc::new(RtRegistry::new(2, 64));
    let table = Arc::new(SoftTlbTable::new(registry));
    for k in 0..256 {
        table.map_key(k, k + 1000);
    }
    let mut tlb = SoftTlb::new(1, Arc::clone(&table));
    for k in 0..256 {
        tlb.lookup(k);
    }
    let mut k = 0u64;
    c.bench_function("soft_tlb_cached_lookup", |b| {
        b.iter(|| {
            k = (k + 1) % 256;
            black_box(tlb.lookup(black_box(k)))
        })
    });
}

/// The contended shapes (ISSUE 5): N publisher threads hammer one
/// sweeper's queue set while the measured thread sweeps. This is the
/// regime the sharded/padded work targets — the interesting number is
/// how much the sweep degrades versus `rt_sweep_one_hit`'s quiet run.
fn bench_contended_sweep(c: &mut Criterion) {
    for publishers in [2usize, 6] {
        let cores = publishers + 1;
        let registry = Arc::new(RtRegistry::new(cores, 256));
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (1..cores)
            .map(|core| {
                let r = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Target only the sweeper (core 0); on overflow
                        // spin until it drains.
                        let _ = r.publish(core, inv(), 0b1);
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        let mut buf = Vec::new();
        c.bench_function(
            &format!("rt_sweep_contended_{publishers}_publishers"),
            |b| {
                b.iter(|| {
                    buf.clear();
                    registry.sweep_pending_into(0, &mut buf);
                    black_box(buf.len())
                })
            },
        );
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Padded vs unpadded per-core tick counters: neighbours hammer the
/// adjacent counters while the measured thread bumps its own. With the
/// unpadded layout all 8 counters share one or two cache lines, so every
/// neighbour bump steals the measured core's line (false sharing); the
/// padded layout keeps the measured counter's line private.
fn bench_tick_counter_padding(c: &mut Criterion) {
    const NEIGHBOURS: usize = 3;

    fn run<T: Send + Sync + 'static>(
        c: &mut Criterion,
        name: &str,
        counters: Arc<Vec<T>>,
        slot: fn(&T) -> &AtomicU64,
    ) {
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (1..=NEIGHBOURS)
            .map(|i| {
                let counters = Arc::clone(&counters);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        slot(&counters[i]).fetch_add(1, Ordering::Release);
                    }
                })
            })
            .collect();
        c.bench_function(name, |b| {
            b.iter(|| slot(&counters[0]).fetch_add(1, Ordering::Release))
        });
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            let _ = t.join();
        }
    }

    let unpadded: Arc<Vec<AtomicU64>> =
        Arc::new((0..=NEIGHBOURS).map(|_| AtomicU64::new(0)).collect());
    run(c, "tick_counter_unpadded_contended", unpadded, |s| s);

    let padded: Arc<Vec<CachePadded<AtomicU64>>> = Arc::new(
        (0..=NEIGHBOURS)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
    );
    run(c, "tick_counter_padded_contended", padded, |s| s);
}

/// The synchronous baseline: wake a remote thread and wait for its ACK —
/// the user-space analogue of an IPI + ACK round (the cost Latr removes
/// from the critical path).
fn bench_sync_shootdown_baseline(c: &mut Criterion) {
    let state = Arc::new((Mutex::new(0u32), Condvar::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let acks = Arc::new(AtomicU64::new(0));
    let remote = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let acks = Arc::clone(&acks);
        std::thread::spawn(move || {
            let (lock, cv) = &*state;
            let mut guard = lock.lock().unwrap();
            loop {
                while *guard != 1 {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let (g, _) = cv
                        .wait_timeout(guard, std::time::Duration::from_millis(50))
                        .unwrap();
                    guard = g;
                }
                // "Invalidate" and ACK.
                *guard = 0;
                acks.fetch_add(1, Ordering::Release);
                cv.notify_all();
            }
        })
    };
    c.bench_function("sync_shootdown_baseline (Table 5: linux ~1594ns)", |b| {
        b.iter(|| {
            let (lock, cv) = &*state;
            let before = acks.load(Ordering::Acquire);
            {
                let mut guard = lock.lock().unwrap();
                *guard = 1;
                cv.notify_all();
            }
            while acks.load(Ordering::Acquire) == before {
                std::hint::spin_loop();
            }
        })
    });
    stop.store(true, Ordering::Relaxed);
    state.1.notify_all();
    let _ = remote.join();
}

criterion_group!(
    benches,
    bench_publish,
    bench_sweep_hit,
    bench_sweep_empty,
    bench_reclaimer,
    bench_soft_tlb,
    bench_contended_sweep,
    bench_tick_counter_padding,
    bench_sync_shootdown_baseline
);
criterion_main!(benches);
