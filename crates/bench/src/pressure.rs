//! The allocation-storm pressure benchmark behind `BENCH_pressure.json`
//! (DESIGN.md §14, EXPERIMENTS.md "Allocation storms").
//!
//! Three arms run the identical seeded storm — [`AllocStorm`] plus a
//! fault plan of sweep stalls, allocation bursts, and a watermark flap —
//! and differ only in the TLB-coherence policy:
//!
//! * **linux** — synchronous IPI shootdowns: frees return frames
//!   immediately, so reclamation debt never accumulates (the baseline
//!   lazy coherence has to be measured against);
//! * **latr-bare** — Latr with escalation disabled
//!   ([`LatrConfig::without_escalation`]): watermark pressure is
//!   *observed* but nothing reacts, so parked frames pile up behind the
//!   stalled sweepers until the free lists empty;
//! * **latr-escalation** — the full policy: low-watermark expedited
//!   sweeps, per-tick expedition under sustained pressure, and the
//!   min-watermark sync fallback.
//!
//! The headline the committed JSON must show: `latr-bare` is driven
//! through its min watermark (and, at full scale, to OOM) by a storm
//! that `latr-escalation` sustains without a single allocation stall.

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{metrics, Machine, MachineConfig};
use latr_sim::SECOND;
use latr_workloads::{AllocStorm, PolicyKind};

/// Shape of one benchmark run (scaled down by `--quick` for CI).
#[derive(Clone, Copy, Debug)]
pub struct StormShape {
    /// Cores (== storm tasks).
    pub cores: usize,
    /// Map/touch/unmap rounds per task.
    pub rounds: u32,
    /// Pages per mapping.
    pub pages: u64,
    /// Held-mapping window depth.
    pub hold: usize,
    /// Physical frames per NUMA node.
    pub frames_per_node: u64,
    /// Low watermark (frames, per node).
    pub low: u64,
    /// Min watermark (frames, per node).
    pub min: u64,
    /// RNG seed for the machine.
    pub seed: u64,
}

/// The full-scale shape: the paper's 8-socket, 120-core machine, sized
/// so the storm's held working set plus parked frames squeezes every
/// node through its low watermark.
pub fn full_shape() -> StormShape {
    StormShape {
        cores: 120,
        rounds: 24,
        pages: 4,
        hold: 2,
        frames_per_node: 256,
        low: 96,
        min: 24,
        seed: 42,
    }
}

/// The `--quick` CI shape: two sockets, 16 cores, same storm signature
/// in a fraction of the wall time.
pub fn quick_shape() -> StormShape {
    StormShape {
        cores: 16,
        rounds: 24,
        pages: 4,
        hold: 2,
        frames_per_node: 224,
        low: 72,
        min: 16,
        seed: 42,
    }
}

/// The seeded fault plan for a shape: sweep stalls on every tenth core
/// (gates stop clearing naturally — the escalation IPIs' reason to
/// exist), allocation bursts on half the nodes, and one watermark flap.
/// All sites are pure functions of simulated time, so every arm sees
/// the identical storm. No reclaim-kthread stalls and no IPI faults:
/// the expedite tick bound is part of what the suite asserts.
pub fn pressure_plan(shape: &StormShape) -> FaultPlan {
    let nodes = if shape.cores > 16 { 8u8 } else { 2 };
    let burst = shape.frames_per_node / 5;
    let mut plan = FaultPlan::default().with_flap(3_000_000, 2_000_000, shape.min / 2);
    for (i, node) in (0..nodes).step_by(2).enumerate() {
        plan = plan.with_burst(node, 2_200_000 + 200_000 * i as u64, 3_000_000, burst);
    }
    let step = if shape.cores >= 40 { 10 } else { 5 };
    for c in (0..shape.cores as u16).step_by(step) {
        plan = plan.with_stall(c, 1_200_000, 4_000_000);
    }
    plan
}

/// One arm's results.
#[derive(Clone, Debug)]
pub struct PressurePoint {
    /// Arm name (`linux`, `latr-bare`, `latr-escalation`).
    pub arm: &'static str,
    /// Lowest any node's free list got (frames).
    pub min_free: u64,
    /// Low-watermark crossings (edge events).
    pub low_events: u64,
    /// Min-watermark crossings (edge events).
    pub min_events: u64,
    /// Allocation stalls (direct-reclaim entries).
    pub alloc_stalls: u64,
    /// Allocations that failed even after direct reclaim.
    pub oom_events: u64,
    /// Alloc-stall latency percentiles (ns; 0 when no stalls).
    pub stall_p50: u64,
    /// 99th percentile stall (ns).
    pub stall_p99: u64,
    /// 99.9th percentile stall (ns).
    pub stall_p999: u64,
    /// Pressure-expedited sweep escalations.
    pub expedited_sweeps: u64,
    /// IPIs those escalations cost.
    pub expedited_ipis: u64,
    /// Worst pressure-expedite release latency (ns).
    pub expedite_latency_max: u64,
    /// Min-watermark forced entries into sync mode.
    pub pressure_sync_enters: u64,
    /// Package-ticks overdue frames sat gated (reclamation debt held up).
    pub gate_held: u64,
    /// Frames released through lazy reclamation.
    pub released_frames: u64,
    /// Oracle verdict: true = no coherence violation observed.
    pub oracle_clean: bool,
    /// Frames still allocated at the end (must be 0).
    pub leaked: usize,
    /// Machine fingerprint — byte-identical across reruns of the arm.
    pub fingerprint: String,
}

/// Runs one arm of the storm and collects its point.
pub fn run_pressure_point(
    arm: &'static str,
    policy: PolicyKind,
    shape: &StormShape,
) -> PressurePoint {
    let preset = if shape.cores > 16 {
        MachinePreset::LargeNuma8S120C
    } else {
        MachinePreset::Commodity2S16C
    };
    let mut config =
        MachineConfig::new(Topology::preset(preset)).with_watermarks(shape.low, shape.min);
    config.frames_per_node = shape.frames_per_node;
    config.seed = shape.seed;
    config.faults = Some(pressure_plan(shape));
    let mut machine = Machine::new(config);
    machine.run(
        Box::new(AllocStorm::new(
            shape.cores,
            shape.rounds,
            shape.pages,
            shape.hold,
        )),
        policy.build(),
        SECOND,
    );
    let stall_hist = machine.stats.histogram(metrics::ALLOC_STALL_NS);
    let expedite_hist = machine.stats.histogram(metrics::LATR_EXPEDITE_LATENCY_NS);
    PressurePoint {
        arm,
        min_free: machine.frames.min_free(),
        low_events: machine.stats.counter(metrics::MEM_PRESSURE_LOW_EVENTS),
        min_events: machine.stats.counter(metrics::MEM_PRESSURE_MIN_EVENTS),
        alloc_stalls: machine.stats.counter(metrics::ALLOC_STALLS),
        oom_events: machine.stats.counter(metrics::OOM_EVENTS),
        stall_p50: stall_hist.map_or(0, |h| h.percentile(0.50)),
        stall_p99: stall_hist.map_or(0, |h| h.percentile(0.99)),
        stall_p999: stall_hist.map_or(0, |h| h.percentile(0.999)),
        expedited_sweeps: machine.stats.counter(metrics::LATR_EXPEDITED_SWEEPS),
        expedited_ipis: machine.stats.counter(metrics::LATR_EXPEDITED_IPIS),
        expedite_latency_max: expedite_hist.map_or(0, |h| h.summary().max),
        pressure_sync_enters: machine.stats.counter(metrics::LATR_PRESSURE_SYNC_ENTERS),
        gate_held: machine.stats.counter(metrics::LATR_GATE_HELD),
        released_frames: machine.stats.counter(metrics::LATR_RECLAIM_RELEASED_FRAMES),
        oracle_clean: machine.oracle_violation().is_none(),
        leaked: machine.frames.allocated_count(),
        fingerprint: machine.fingerprint(),
    }
}

/// Runs all three arms on a shape.
pub fn run_pressure_bench(shape: &StormShape) -> Vec<PressurePoint> {
    vec![
        run_pressure_point("linux", PolicyKind::Linux, shape),
        run_pressure_point(
            "latr-bare",
            PolicyKind::Latr(LatrConfig::default().without_escalation()),
            shape,
        ),
        run_pressure_point(
            "latr-escalation",
            PolicyKind::Latr(LatrConfig::default()),
            shape,
        ),
    ]
}

/// The gate the CI smoke job (and the full run) enforces:
///
/// * every arm oracle-clean, nothing leaked;
/// * the storm is real — `latr-bare` breaches its min watermark;
/// * escalation sustains it — not one allocation stall, not one OOM,
///   and fewer gate-held package-ticks than bare by an order of
///   magnitude. (`min_free > 0` is asserted at full scale by
///   `tests/pressure.rs`; on the 2-node quick machine cross-node
///   fallback can momentarily drain a node even under a healthy
///   policy, so the smoke gate sticks to the stall/OOM claim.)
pub fn pressure_passed(points: &[PressurePoint]) -> bool {
    let all_safe = points.iter().all(|p| p.oracle_clean && p.leaked == 0);
    let Some(bare) = points.iter().find(|p| p.arm == "latr-bare") else {
        return false;
    };
    let Some(full) = points.iter().find(|p| p.arm == "latr-escalation") else {
        return false;
    };
    all_safe
        && bare.min_events > 0
        && full.alloc_stalls == 0
        && full.oom_events == 0
        && full.expedited_sweeps > 0
        && full.gate_held <= bare.gate_held / 10
}

/// Renders the arms as the `BENCH_pressure.json` document. Hand-rolled
/// like `soak_json`: the vendored serde stub does not serialize.
pub fn pressure_json(points: &[PressurePoint], shape: &StormShape, quick: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"pressure\",");
    let _ = writeln!(
        out,
        "  \"workload\": \"seeded allocation storm under sweep stalls, bursts, and a watermark flap\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"shape\": {{\"cores\": {}, \"rounds\": {}, \"pages\": {}, \"hold\": {}, \
         \"frames_per_node\": {}, \"low_watermark\": {}, \"min_watermark\": {}, \"seed\": {}}},",
        shape.cores,
        shape.rounds,
        shape.pages,
        shape.hold,
        shape.frames_per_node,
        shape.low,
        shape.min,
        shape.seed
    );
    let _ = writeln!(out, "  \"passed\": {},", pressure_passed(points));
    let _ = writeln!(out, "  \"arms\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"arm\": \"{}\", \"min_free\": {}, \"low_events\": {}, \
             \"min_events\": {}, \"alloc_stalls\": {}, \"oom_events\": {}, \
             \"stall_p50_ns\": {}, \"stall_p99_ns\": {}, \"stall_p999_ns\": {}, \
             \"expedited_sweeps\": {}, \"expedited_ipis\": {}, \
             \"expedite_latency_max_ns\": {}, \"pressure_sync_enters\": {}, \
             \"gate_held\": {}, \"released_frames\": {}, \"oracle_clean\": {}, \
             \"leaked\": {}, \"fingerprint\": \"{}\"}}{comma}",
            p.arm,
            p.min_free,
            p.low_events,
            p.min_events,
            p.alloc_stalls,
            p.oom_events,
            p.stall_p50,
            p.stall_p99,
            p.stall_p999,
            p.expedited_sweeps,
            p.expedited_ipis,
            p.expedite_latency_max,
            p.pressure_sync_enters,
            p.gate_held,
            p.released_frames,
            p.oracle_clean,
            p.leaked,
            p.fingerprint,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_passes_and_is_deterministic() {
        let shape = quick_shape();
        let points = run_pressure_bench(&shape);
        assert!(
            pressure_passed(&points),
            "quick pressure bench must pass its own gate: {points:#?}"
        );
        let again = run_pressure_point(
            "latr-escalation",
            PolicyKind::Latr(LatrConfig::default()),
            &shape,
        );
        let first = points.iter().find(|p| p.arm == "latr-escalation").unwrap();
        assert_eq!(first.fingerprint, again.fingerprint, "rerun must replay");
    }

    #[test]
    fn json_is_well_formed() {
        let shape = quick_shape();
        let points = run_pressure_bench(&shape);
        let json = pressure_json(&points, &shape, true);
        assert!(json.contains("\"bench\": \"pressure\""));
        assert!(json.contains("latr-escalation"));
        assert_eq!(json.matches("{").count(), json.matches("}").count());
    }
}
