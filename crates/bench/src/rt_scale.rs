//! The rt scaling benchmark behind `BENCH_rt_scale.json` (ISSUE 5).
//!
//! Unlike the simulator benches, this one runs *real* `std::thread`
//! threads — one per "core" at 4, 16, 64 and 120 — through a
//! munmap-heavy loop over the lock-free rt runtime: every thread hammers
//! a [`SoftTlb`] lookup loop, sweeps at its tick, and unmaps/remaps a key
//! per round — deferring the "page" into the reclaimer and collecting it
//! back once its grace elapses. Three engine stacks are compared:
//!
//! * **`lazy-sharded`** — the scaling path: pending-bitmap sweep,
//!   [`ReclaimBackend::Sharded`] (per-core wheel shards gated on the
//!   cached reclamation frontier).
//! * **`lazy-reference`** — the PR-4-style reference: full-scan sweep,
//!   [`ReclaimBackend::Reference`] (one global mutexed deque, an
//!   O(cores) `min_tick` scan per defer/collect).
//! * **`sync-ipi`** — the synchronous baseline Latr removes: every unmap
//!   rendezvouses with every other thread through per-thread padded
//!   mailboxes (request/ack sequence numbers) before returning.
//!
//! Every run carries a **canary**: each deferred item records
//! `min_tick() + grace` at defer time — a sound lower bound on its due
//! tick under both engines — and every collect re-checks the ground
//! truth `min_tick() ≥ due`. A violation means the cached frontier (or a
//! shard) released memory while some core could still hold a stale
//! translation; the binary aborts rather than report a tainted speedup.
//!
//! The machine running this is almost certainly smaller than 120
//! hardware threads; the point of the oversubscribed shapes is the
//! *contention structure* (mutex vs shards, O(cores) scans vs a cached
//! load, shared vs padded lines), which oversubscription amplifies
//! rather than hides.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use latr_core::rt::{
    CachePadded, ReclaimBackend, Reclaimer, RtRegistry, SoftTlb, SoftTlbTable, SweepMode,
};
use parking_lot::RwLock;

/// Keys in the shared table; lookups and unmaps cycle over this space.
const KEYSPACE: u64 = 256;
/// Lookups per loop round, between sweeps.
const LOOKUPS_PER_ROUND: u64 = 32;
/// Reclamation grace in sweep ticks (§4.2 uses two cycles).
const GRACE: u64 = 2;
/// Per-core queue capacity — deep enough that overflow is rare noise.
const QUEUE_SLOTS: usize = 512;

/// The engine stacks the benchmark compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleEngine {
    /// Pending-bitmap sweep + sharded reclaimer + cached frontier.
    LazySharded,
    /// Full-scan sweep + mutexed reclaimer + O(cores) frontier scans.
    LazyReference,
    /// Synchronous mailbox rendezvous on every unmap.
    SyncIpi,
}

impl ScaleEngine {
    /// The label used in rows and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ScaleEngine::LazySharded => "lazy-sharded",
            ScaleEngine::LazyReference => "lazy-reference",
            ScaleEngine::SyncIpi => "sync-ipi",
        }
    }

    /// All engines, in report order.
    pub fn all() -> [ScaleEngine; 3] {
        [
            ScaleEngine::LazySharded,
            ScaleEngine::LazyReference,
            ScaleEngine::SyncIpi,
        ]
    }
}

/// One engine × thread-count measurement.
#[derive(Clone, Debug)]
pub struct RtScalePoint {
    /// Engine label.
    pub engine: &'static str,
    /// Real OS threads driven.
    pub threads: usize,
    /// Wall-clock nanoseconds for the measured window.
    pub wall_ns: u128,
    /// Lookups + unmaps completed across all threads.
    pub ops: u64,
    /// Unmap rounds completed.
    pub unmaps: u64,
    /// Publishes refused on a full queue (lazy engines only).
    pub overflows: u64,
    /// Items the reclaimer handed back during the window.
    pub collected: u64,
    /// `ops` per wall-clock second — the headline number.
    pub ops_per_sec: f64,
    /// Median sampled sweep latency (ns; 0 for sync-ipi).
    pub sweep_p50_ns: u64,
    /// 99th-percentile sampled sweep latency (ns; 0 for sync-ipi).
    pub sweep_p99_ns: u64,
    /// Mean ticks between an item's due and its collection.
    pub reclaim_lag_ticks: f64,
    /// Whether every collected item passed the ground-truth due check.
    pub canary_ok: bool,
}

/// The thread counts a run measures.
pub fn rt_scale_threads(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 16]
    } else {
        vec![4, 16, 64, 120]
    }
}

/// The measured window per (engine, shape) point. Oversubscribed shapes
/// get a longer window so every thread still sees meaningful CPU time —
/// otherwise OS scheduling noise drowns the engine difference.
pub fn rt_scale_duration(quick: bool, threads: usize) -> Duration {
    let base = if quick { 80 } else { 400 };
    Duration::from_millis(base * (threads as u64).div_ceil(32).max(1))
}

/// How often (in loop rounds) the canary re-derives the ground-truth
/// frontier with a full O(cores) scan. Sampling keeps the measurement
/// from taxing the lazy path it is checking; the exhaustive versions of
/// the same property live in the loom and differential suites.
const CANARY_SAMPLE_ROUNDS: u64 = 8;

#[derive(Default)]
struct ThreadStats {
    ops: u64,
    unmaps: u64,
    overflows: u64,
    collected: u64,
    lag_ticks: u64,
    lag_count: u64,
    sweep_ns: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn finish(
    engine: ScaleEngine,
    threads: usize,
    wall_ns: u128,
    per_thread: Vec<ThreadStats>,
    canary_ok: bool,
) -> RtScalePoint {
    let mut ops = 0;
    let mut unmaps = 0;
    let mut overflows = 0;
    let mut collected = 0;
    let mut lag_ticks = 0;
    let mut lag_count = 0;
    let mut sweeps = Vec::new();
    for s in per_thread {
        ops += s.ops;
        unmaps += s.unmaps;
        overflows += s.overflows;
        collected += s.collected;
        lag_ticks += s.lag_ticks;
        lag_count += s.lag_count;
        sweeps.extend(s.sweep_ns);
    }
    sweeps.sort_unstable();
    RtScalePoint {
        engine: engine.name(),
        threads,
        wall_ns,
        ops,
        unmaps,
        overflows,
        collected,
        ops_per_sec: ops as f64 * 1e9 / wall_ns.max(1) as f64,
        sweep_p50_ns: percentile(&sweeps, 0.50),
        sweep_p99_ns: percentile(&sweeps, 0.99),
        reclaim_lag_ticks: if lag_count == 0 {
            0.0
        } else {
            lag_ticks as f64 / lag_count as f64
        },
        canary_ok,
    }
}

/// Runs one (engine, thread-count) point for `duration` and measures it.
pub fn run_rt_scale_point(engine: ScaleEngine, threads: usize, duration: Duration) -> RtScalePoint {
    match engine {
        ScaleEngine::LazySharded => run_lazy(engine, threads, duration),
        ScaleEngine::LazyReference => run_lazy(engine, threads, duration),
        ScaleEngine::SyncIpi => run_sync(threads, duration),
    }
}

fn run_lazy(engine: ScaleEngine, threads: usize, duration: Duration) -> RtScalePoint {
    let (mode, backend) = match engine {
        ScaleEngine::LazySharded => (SweepMode::Pending, ReclaimBackend::Sharded),
        _ => (SweepMode::FullScan, ReclaimBackend::Reference),
    };
    let registry = Arc::new(RtRegistry::new(threads, QUEUE_SLOTS));
    let table = Arc::new(SoftTlbTable::new(Arc::clone(&registry)));
    for k in 0..KEYSPACE {
        table.map_key(k, k + 1000);
    }
    // Items carry their conservative due tick for the canary + lag.
    let reclaimer: Arc<Reclaimer<u64>> = Arc::new(Reclaimer::new(backend, GRACE, threads));
    let stop = Arc::new(AtomicBool::new(false));
    let canary_ok = Arc::new(AtomicBool::new(true));
    let barrier = Arc::new(Barrier::new(threads + 1));

    let handles: Vec<_> = (0..threads)
        .map(|core| {
            let registry = Arc::clone(&registry);
            let table = Arc::clone(&table);
            let reclaimer = Arc::clone(&reclaimer);
            let stop = Arc::clone(&stop);
            let canary_ok = Arc::clone(&canary_ok);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut tlb = SoftTlb::new(core, table.clone()).with_sweep_mode(mode);
                let mut stats = ThreadStats::default();
                let mut collect_buf: Vec<u64> = Vec::new();
                let mut round = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..LOOKUPS_PER_ROUND {
                        black_box(tlb.lookup((round.wrapping_mul(7) + i) % KEYSPACE));
                    }
                    stats.ops += LOOKUPS_PER_ROUND;
                    // Sweep at the "tick"; sample its latency every 8th.
                    if round % 8 == 0 {
                        let t0 = Instant::now();
                        tlb.tick();
                        stats.sweep_ns.push(t0.elapsed().as_nanos() as u64);
                    } else {
                        tlb.tick();
                    }
                    // Munmap-heavy: *every* thread unmaps each round —
                    // this is the per-round cost the three engines price
                    // so differently.
                    let key = (core as u64).wrapping_mul(31).wrapping_add(round) % KEYSPACE;
                    match table.unmap_lazy(core, key) {
                        Ok(_) => {
                            stats.unmaps += 1;
                            stats.ops += 1;
                            // A due every engine must respect: the
                            // slowest core's tick now, plus grace.
                            let due = registry.min_tick() + GRACE;
                            reclaimer.defer(&registry, core, due);
                            table.map_key(key, key + 1000);
                        }
                        Err(_) => {
                            // Overflow counting moved to the registry's
                            // unified stats snapshot; just back off.
                            std::thread::yield_now();
                        }
                    }
                    collect_buf.clear();
                    reclaimer.collect_into(&registry, core, &mut collect_buf);
                    if !collect_buf.is_empty() {
                        stats.collected += collect_buf.len() as u64;
                        if round % CANARY_SAMPLE_ROUNDS == 0 {
                            // Ground truth, not the cached frontier: the
                            // O(cores) scan is the canary's price, so it
                            // samples.
                            let min_now = registry.min_tick();
                            for &due in &collect_buf {
                                if min_now < due {
                                    canary_ok.store(false, Ordering::Release);
                                }
                                stats.lag_ticks += min_now.saturating_sub(due);
                                stats.lag_count += 1;
                            }
                        }
                    }
                    round = round.wrapping_add(1);
                }
                stats
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let per_thread: Vec<ThreadStats> = handles
        .into_iter()
        .map(|h| h.join().expect("bench thread"))
        .collect();
    let wall = start.elapsed().as_nanos().max(1);
    let mut point = finish(
        engine,
        threads,
        wall,
        per_thread,
        canary_ok.load(Ordering::Acquire),
    );
    // Queue-side counters come from the registry's unified snapshot
    // rather than per-thread tallies; a fault-free run also ends with
    // no core excluded.
    let reg_stats = registry.stats();
    debug_assert_eq!(reg_stats.excluded_cores, 0);
    point.overflows = reg_stats.overflows;
    point
}

/// One thread's shootdown mailbox: request/ack sequence numbers on their
/// own cache lines (the rendezvous is the point, not the line ping-pong).
struct Mailbox {
    req: CachePadded<AtomicU64>,
    ack: CachePadded<AtomicU64>,
}

/// Per-request handler cost the user-space mailbox cannot model on its
/// own: a real shootdown *interrupts* the target core — the paper's
/// Linux baseline pays ~1.6µs per IPI round (Table 5), most of it
/// interrupt entry/exit that a user-space atomic exchange simply does
/// not have. Each serviced request spins for roughly that entry/exit
/// cost; without it, oversubscription makes the baseline unrealistically
/// cheap (a blocked initiator costs nothing globally when the OS just
/// schedules another thread over it).
const IPI_HANDLER_SPINS: u32 = 400;

fn service_mailbox(mailbox: &Mailbox, cache: &mut HashMap<u64, u64>) {
    let r = mailbox.req.load(Ordering::Acquire);
    let mut a = mailbox.ack.load(Ordering::Relaxed);
    while a < r {
        // One interrupt per outstanding request: entry/exit cost, then
        // the handler's full-flush fallback, then the ack.
        for _ in 0..IPI_HANDLER_SPINS {
            std::hint::spin_loop();
        }
        cache.clear();
        a += 1;
        mailbox.ack.store(a, Ordering::Release);
    }
}

fn run_sync(threads: usize, duration: Duration) -> RtScalePoint {
    let table: Arc<RwLock<HashMap<u64, u64>>> = Arc::new(RwLock::new(HashMap::new()));
    for k in 0..KEYSPACE {
        table.write().insert(k, k + 1000);
    }
    let mailboxes: Arc<Vec<Mailbox>> = Arc::new(
        (0..threads)
            .map(|_| Mailbox {
                req: CachePadded::new(AtomicU64::new(0)),
                ack: CachePadded::new(AtomicU64::new(0)),
            })
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));

    let handles: Vec<_> = (0..threads)
        .map(|core| {
            let table = Arc::clone(&table);
            let mailboxes = Arc::clone(&mailboxes);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut cache: HashMap<u64, u64> = HashMap::new();
                let mut stats = ThreadStats::default();
                let mut expected = vec![0u64; threads];
                let mut round = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    service_mailbox(&mailboxes[core], &mut cache);
                    for i in 0..LOOKUPS_PER_ROUND {
                        let key = (round.wrapping_mul(7) + i) % KEYSPACE;
                        let hit = match cache.get(&key) {
                            Some(&v) => Some(v),
                            None => {
                                let v = table.read().get(&key).copied();
                                if let Some(v) = v {
                                    cache.insert(key, v);
                                }
                                v
                            }
                        };
                        black_box(hit);
                    }
                    stats.ops += LOOKUPS_PER_ROUND;
                    {
                        let key = (core as u64).wrapping_mul(31).wrapping_add(round) % KEYSPACE;
                        table.write().remove(&key);
                        cache.remove(&key);
                        // The synchronous shootdown: bump every other
                        // thread's request line, then spin until each has
                        // acked — servicing our own mailbox meanwhile so
                        // two publishers can't deadlock each other.
                        for (t, exp) in expected.iter_mut().enumerate() {
                            if t != core {
                                *exp = mailboxes[t].req.fetch_add(1, Ordering::AcqRel) + 1;
                            }
                        }
                        let mut aborted = false;
                        for t in 0..threads {
                            if t == core {
                                continue;
                            }
                            while mailboxes[t].ack.load(Ordering::Acquire) < expected[t] {
                                service_mailbox(&mailboxes[core], &mut cache);
                                if stop.load(Ordering::Relaxed) {
                                    aborted = true;
                                    break;
                                }
                                std::thread::yield_now();
                            }
                            if aborted {
                                break;
                            }
                        }
                        // Reclamation is immediate once everyone acked.
                        table.write().insert(key, key + 1000);
                        if !aborted {
                            stats.unmaps += 1;
                            stats.ops += 1;
                        }
                    }
                    round = round.wrapping_add(1);
                }
                stats
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let per_thread: Vec<ThreadStats> = handles
        .into_iter()
        .map(|h| h.join().expect("bench thread"))
        .collect();
    let wall = start.elapsed().as_nanos().max(1);
    finish(ScaleEngine::SyncIpi, threads, wall, per_thread, true)
}

/// Whether every point's canary held.
pub fn canary_passed(points: &[RtScalePoint]) -> bool {
    points.iter().all(|p| p.canary_ok)
}

/// `(threads, lazy-sharded ops/sec ÷ <other engine> ops/sec)` per shape.
pub fn ratios_vs(points: &[RtScalePoint], other: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for p in points.iter().filter(|p| p.engine == "lazy-sharded") {
        if let Some(q) = points
            .iter()
            .find(|q| q.engine == other && q.threads == p.threads)
        {
            out.push((p.threads, p.ops_per_sec / q.ops_per_sec.max(1e-9)));
        }
    }
    out
}

/// Renders the measurement set as the `BENCH_rt_scale.json` document.
/// Hand-rolled like `hotpath_json`: flat schema, vendored serde stub
/// does not serialize.
pub fn rt_scale_json(points: &[RtScalePoint], quick: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"rt_scale\",");
    let _ = writeln!(out, "  \"workload\": \"munmap-heavy soft-tlb loop\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"grace_ticks\": {GRACE},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"engine\": \"{}\", \"threads\": {}, \"wall_ns\": {}, \
             \"ops\": {}, \"unmaps\": {}, \"overflows\": {}, \"collected\": {}, \
             \"ops_per_sec\": {:.1}, \"sweep_p50_ns\": {}, \"sweep_p99_ns\": {}, \
             \"reclaim_lag_ticks\": {:.2}, \"canary_ok\": {}}}{comma}",
            p.engine,
            p.threads,
            p.wall_ns,
            p.ops,
            p.unmaps,
            p.overflows,
            p.collected,
            p.ops_per_sec,
            p.sweep_p50_ns,
            p.sweep_p99_ns,
            p.reclaim_lag_ticks,
            p.canary_ok,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"canary_passed\": {},", canary_passed(points));
    for (threads, r) in ratios_vs(points, "lazy-reference") {
        let _ = writeln!(out, "  \"sharded_vs_reference_at_{threads}\": {r:.2},");
    }
    for (threads, r) in ratios_vs(points, "sync-ipi") {
        let _ = writeln!(out, "  \"lazy_vs_sync_at_{threads}\": {r:.2},");
    }
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(engine: &'static str, threads: usize, ops_per_sec: f64, canary: bool) -> RtScalePoint {
        RtScalePoint {
            engine,
            threads,
            wall_ns: 1,
            ops: 1,
            unmaps: 1,
            overflows: 0,
            collected: 1,
            ops_per_sec,
            sweep_p50_ns: 10,
            sweep_p99_ns: 20,
            reclaim_lag_ticks: 0.5,
            canary_ok: canary,
        }
    }

    #[test]
    fn json_is_well_formed_and_reports_ratios() {
        let points = [
            point("lazy-sharded", 16, 400.0, true),
            point("lazy-reference", 16, 100.0, true),
            point("sync-ipi", 16, 50.0, true),
        ];
        let json = rt_scale_json(&points, true);
        assert!(json.contains("\"sharded_vs_reference_at_16\": 4.00"));
        assert!(json.contains("\"lazy_vs_sync_at_16\": 8.00"));
        assert!(json.contains("\"canary_passed\": true"));
        assert!(!json.contains(",\n}"), "no trailing comma:\n{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn canary_failure_is_reported() {
        let points = [point("lazy-sharded", 4, 1.0, false)];
        assert!(!canary_passed(&points));
        assert!(rt_scale_json(&points, false).contains("\"canary_passed\": false"));
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        assert_eq!(percentile(&[], 0.5), 0);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn tiny_live_run_on_every_engine() {
        for engine in ScaleEngine::all() {
            let p = run_rt_scale_point(engine, 3, Duration::from_millis(25));
            assert_eq!(p.threads, 3);
            assert!(p.ops > 0, "{} did no work", p.engine);
            assert!(p.canary_ok, "{} tripped the canary", p.engine);
            if engine != ScaleEngine::SyncIpi {
                assert!(p.unmaps > 0, "{} never unmapped", p.engine);
                assert!(p.sweep_p99_ns >= p.sweep_p50_ns);
            }
        }
    }
}
