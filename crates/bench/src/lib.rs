//! # latr-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation (§6). Each binary
//! re-runs the corresponding experiment on the simulated machines and
//! prints the same rows/series the paper reports. Shared experiment
//! runners live here so the binaries stay thin and the integration tests
//! can exercise the exact code the figures come from.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig6_munmap_cores`  | Fig. 6 — munmap & shootdown latency vs cores (2-socket) |
//! | `fig7_munmap_large`  | Fig. 7 — same on the 8-socket, 120-core machine |
//! | `fig8_munmap_pages`  | Fig. 8 — munmap latency vs page count |
//! | `fig9_apache`        | Figs. 1 & 9 — Apache throughput + shootdown rate |
//! | `fig10_parsec`       | Fig. 10 — PARSEC normalized runtime + shootdown rate |
//! | `fig11_numa`         | Fig. 11 — AutoNUMA normalized runtime + migrations |
//! | `fig12_overhead`     | Fig. 12 — overhead with few shootdowns |
//! | `table4_cache`       | Table 4 — LLC miss ratios Linux vs Latr |
//! | `table5_breakdown`   | Table 5 — per-operation cost breakdown |
//! | `timelines`          | Figs. 2 & 3 — munmap / AutoNUMA event timelines |
//! | `ablations`          | §4.1/§8 design-choice ablations |
//! | `hotpath`            | fast vs `reference` engine throughput → `BENCH_hotpath.json` |
//! | `serving`            | open-loop tail latency per policy (+ chaos) → `BENCH_serving.json` |
//! | `par_sim`            | lane-sharded parallel engine vs fast, workers × cores → `BENCH_par_sim.json` |
//! | `rt_scale`           | real-thread rt scaling, lazy vs sync-IPI → `BENCH_rt_scale.json` |
//! | `soak`               | real-thread robustness soak under injected faults → `BENCH_soak.json` |
//! | `pressure`           | allocation storms vs watermark escalation → `BENCH_pressure.json` |
//!
//! Run with `cargo run --release -p latr-bench --bin <name>`; pass
//! `--quick` for a shorter, less smooth sweep.

pub mod hotpath;
pub mod par_sim;
pub mod pressure;
pub mod rt_scale;
pub mod serving;
pub mod soak;

use latr_arch::{MachinePreset, Topology};
use latr_kernel::{metrics, Machine, MachineConfig};
use latr_sim::{Nanos, MILLISECOND, SECOND};
use latr_workloads::{
    run_experiment, ApacheWorkload, ExperimentResult, MigrationProfile, MigrationWorkload,
    MunmapMicrobench, ParsecProfile, ParsecWorkload, PolicyKind,
};

/// Scale factors for a run: `--quick` trades smoothness for speed.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Microbenchmark iterations per data point.
    pub micro_iters: u64,
    /// Apache measurement window (ns).
    pub apache_window: Nanos,
    /// Fixed-work iterations per task for PARSEC workloads.
    pub fixed_iters: u64,
    /// Fixed-work iterations per task for the AutoNUMA workloads — these
    /// need several full scan passes before migrations flow.
    pub numa_iters: u64,
}

impl RunScale {
    /// Full-fidelity scale (the default).
    pub fn full() -> Self {
        RunScale {
            micro_iters: 300,
            apache_window: 400 * MILLISECOND,
            fixed_iters: 400,
            numa_iters: 3_200,
        }
    }

    /// Reduced scale for smoke runs.
    pub fn quick() -> Self {
        RunScale {
            micro_iters: 60,
            apache_window: 120 * MILLISECOND,
            fixed_iters: 120,
            numa_iters: 1_600,
        }
    }

    /// Parses `--quick` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// One (policy, munmap latency, shootdown wait) measurement.
#[derive(Clone, Copy, Debug)]
pub struct LatencyPoint {
    /// Independent variable (cores or pages).
    pub x: u64,
    /// Mean munmap latency in µs.
    pub munmap_us: f64,
    /// Mean remote-shootdown wait in µs (0 for lazy policies).
    pub shootdown_us: f64,
}

fn microbench_point(
    preset: MachinePreset,
    policy: PolicyKind,
    sharers: usize,
    pages: u64,
    iters: u64,
) -> LatencyPoint {
    let (res, _) = run_experiment(
        MachineConfig::new(Topology::preset(preset)),
        policy,
        Box::new(MunmapMicrobench::new(sharers, pages, iters)),
        60 * SECOND,
    );
    LatencyPoint {
        x: sharers as u64,
        munmap_us: res.munmap_ns.map_or(0.0, |s| s.mean) / 1_000.0,
        shootdown_us: res.shootdown_wait_ns.map_or(0.0, |s| s.mean) / 1_000.0,
    }
}

/// Fig. 6: munmap cost for one page, 1–16 cores, 2-socket machine.
pub fn fig6_points(policy: PolicyKind, scale: RunScale) -> Vec<LatencyPoint> {
    [1usize, 2, 4, 6, 8, 10, 12, 14, 16]
        .iter()
        .map(|&cores| {
            microbench_point(
                MachinePreset::Commodity2S16C,
                policy,
                cores,
                1,
                scale.micro_iters,
            )
        })
        .collect()
}

/// Fig. 7: munmap cost for one page on the 8-socket, 120-core machine.
pub fn fig7_points(policy: PolicyKind, scale: RunScale) -> Vec<LatencyPoint> {
    [2usize, 15, 30, 45, 60, 75, 90, 105, 120]
        .iter()
        .map(|&cores| {
            microbench_point(
                MachinePreset::LargeNuma8S120C,
                policy,
                cores,
                1,
                scale.micro_iters.min(120),
            )
        })
        .collect()
}

/// Fig. 8: munmap cost vs page count on 16 cores.
pub fn fig8_points(policy: PolicyKind, scale: RunScale) -> Vec<LatencyPoint> {
    [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        .iter()
        .map(|&pages| {
            let mut p = microbench_point(
                MachinePreset::Commodity2S16C,
                policy,
                16,
                pages,
                (scale.micro_iters / 2).max(20),
            );
            p.x = pages;
            p
        })
        .collect()
}

/// One Apache measurement.
#[derive(Clone, Copy, Debug)]
pub struct ApachePoint {
    /// Worker cores.
    pub cores: usize,
    /// Requests per second.
    pub requests_per_sec: f64,
    /// Shootdowns handled per second.
    pub shootdowns_per_sec: f64,
}

/// Figs. 1/9: Apache throughput and shootdown rate vs worker cores.
pub fn fig9_points(policy: PolicyKind, scale: RunScale) -> Vec<ApachePoint> {
    [1usize, 2, 4, 6, 8, 10, 12]
        .iter()
        .map(|&cores| {
            let (res, _) = run_experiment(
                MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C)),
                policy,
                Box::new(ApacheWorkload::new(cores)),
                scale.apache_window,
            );
            ApachePoint {
                cores,
                requests_per_sec: res.throughput,
                shootdowns_per_sec: res.shootdowns_per_sec,
            }
        })
        .collect()
}

/// One fixed-work comparison row (Fig. 10/11/12).
#[derive(Clone, Debug)]
pub struct NormalizedRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Latr completion time / Linux completion time.
    pub normalized_runtime: f64,
    /// Shootdowns (or migrations) per second under Linux.
    pub rate_linux: f64,
    /// The same rate under Latr.
    pub rate_latr: f64,
}

/// Fig. 10: the PARSEC suite at 16 cores.
pub fn fig10_rows(scale: RunScale) -> Vec<NormalizedRow> {
    ParsecProfile::all()
        .into_iter()
        .map(|profile| parsec_row(profile, 16, scale.fixed_iters))
        .collect()
}

fn parsec_row(profile: ParsecProfile, cores: usize, iters: u64) -> NormalizedRow {
    let run = |policy: PolicyKind| -> (u64, f64) {
        let (res, _) = run_experiment(
            MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C)),
            policy,
            Box::new(ParsecWorkload::new(profile, cores, iters)),
            120 * SECOND,
        );
        (res.duration_ns, res.shootdowns_per_sec)
    };
    let (t_linux, rate_linux) = run(PolicyKind::Linux);
    let (t_latr, rate_latr) = run(PolicyKind::latr_default());
    NormalizedRow {
        name: profile.name,
        normalized_runtime: t_latr as f64 / t_linux as f64,
        rate_linux,
        rate_latr,
    }
}

/// Fig. 11: the AutoNUMA applications at 16 cores. The rate columns are
/// migrations per second.
pub fn fig11_rows(scale: RunScale) -> Vec<NormalizedRow> {
    MigrationProfile::all()
        .into_iter()
        .map(|profile| {
            let run = |policy: PolicyKind| -> (u64, f64) {
                let config =
                    profile.machine_config(Topology::preset(MachinePreset::Commodity2S16C));
                let (res, _) = run_experiment(
                    config,
                    policy,
                    Box::new(MigrationWorkload::new(profile, 16, scale.numa_iters)),
                    120 * SECOND,
                );
                (res.duration_ns, res.migrations_per_sec)
            };
            let (t_linux, rate_linux) = run(PolicyKind::Linux);
            let (t_latr, rate_latr) = run(PolicyKind::latr_default());
            NormalizedRow {
                name: profile.name,
                normalized_runtime: t_latr as f64 / t_linux as f64,
                rate_linux,
                rate_latr,
            }
        })
        .collect()
}

/// Fig. 12: low-shootdown configurations. Web servers are compared by
/// throughput (inverted into a runtime-equivalent ratio); PARSEC profiles
/// by completion time.
pub fn fig12_rows(scale: RunScale) -> Vec<NormalizedRow> {
    let mut rows = Vec::new();
    for (name, cores) in [("nginx", 1usize), ("apache", 1usize)] {
        let run = |policy: PolicyKind| -> (f64, f64) {
            let (res, _) = run_experiment(
                MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C)),
                policy,
                Box::new(ApacheWorkload::new(cores)),
                scale.apache_window,
            );
            (res.throughput, res.shootdowns_per_sec)
        };
        let (thr_linux, rate_linux) = run(PolicyKind::Linux);
        let (thr_latr, rate_latr) = run(PolicyKind::latr_default());
        rows.push(NormalizedRow {
            name,
            // Throughput ratio inverted = normalized runtime.
            normalized_runtime: thr_linux / thr_latr,
            rate_linux,
            rate_latr,
        });
    }
    for profile in ParsecProfile::low_shootdown() {
        rows.push(parsec_row(profile, 16, scale.fixed_iters / 2));
    }
    rows
}

/// One Table 4 row: LLC miss ratios under both policies.
#[derive(Clone, Debug)]
pub struct CacheRow {
    /// Configuration label, e.g. "apache(12)".
    pub name: String,
    /// Linux LLC miss ratio.
    pub linux: f64,
    /// Latr LLC miss ratio.
    pub latr: f64,
}

impl CacheRow {
    /// Relative change Latr vs Linux in percent.
    pub fn relative_change_pct(&self) -> f64 {
        (self.latr / self.linux - 1.0) * 100.0
    }
}

/// Table 4: LLC miss ratios for Apache at 1/6/12 cores and five PARSEC
/// benchmarks at 16 cores.
pub fn table4_rows(scale: RunScale) -> Vec<CacheRow> {
    let mut rows = Vec::new();
    for cores in [1usize, 6, 12] {
        let run = |policy: PolicyKind| -> f64 {
            let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
            config.llc_base_miss_ratio = match cores {
                1 => 0.0608,
                6 => 0.0160,
                _ => 0.0123,
            };
            let (res, _) = run_experiment(
                config,
                policy,
                Box::new(ApacheWorkload::new(cores)),
                scale.apache_window,
            );
            res.llc_miss_ratio
        };
        rows.push(CacheRow {
            name: format!("apache({cores})"),
            linux: run(PolicyKind::Linux),
            latr: run(PolicyKind::latr_default()),
        });
    }
    for name in ["canneal", "dedup", "ferret", "streamcluster", "swaptions"] {
        let profile = ParsecProfile::by_name(name).expect("known profile");
        let run = |policy: PolicyKind| -> f64 {
            let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
            config.llc_base_miss_ratio = profile.llc_miss;
            let (res, _) = run_experiment(
                config,
                policy,
                Box::new(ParsecWorkload::new(profile, 16, scale.fixed_iters / 2)),
                120 * SECOND,
            );
            res.llc_miss_ratio
        };
        rows.push(CacheRow {
            name: format!("{name}(16)"),
            linux: run(PolicyKind::Linux),
            latr: run(PolicyKind::latr_default()),
        });
    }
    rows
}

/// Runs Apache at 12 cores under `policy` and returns the experiment
/// result (used by Table 5 and the ablations).
pub fn apache12(policy: PolicyKind, scale: RunScale) -> ExperimentResult {
    let (res, _) = run_experiment(
        MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C)),
        policy,
        Box::new(ApacheWorkload::new(12)),
        scale.apache_window,
    );
    res
}

/// Prints a separator + title for a table.
pub fn print_title(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints the fault-injection and graceful-degradation counters of a
/// finished run: what the injector did to the machine, and what the sweep
/// watchdog and adaptive IPI fallback did about it. Zero everywhere on a
/// healthy run — the degradation machinery is calibrated never to engage
/// without faults.
pub fn print_degradation_summary(machine: &Machine) {
    let c = |name: &str| machine.stats.counter(name);
    println!(
        "  injected   ipi dropped {} / delayed {}  ticks missed {} / jittered {}  \
         sweep stalls {}  forced overflows {}",
        c(metrics::FAULTS_IPI_DROPPED),
        c(metrics::FAULTS_IPI_DELAYED),
        c(metrics::FAULTS_TICKS_MISSED),
        c(metrics::FAULTS_TICK_JITTER),
        c(metrics::FAULTS_SWEEP_STALLS),
        c(metrics::FAULTS_FORCED_OVERFLOWS),
    );
    println!(
        "  recovered  ipi retries {}  watchdog escalations {} (targeted ipis {})  \
         adaptive enters {} / exits {} (sync ops {})",
        c(metrics::IPI_RETRIES),
        c(metrics::LATR_WATCHDOG_ESCALATIONS),
        c(metrics::LATR_WATCHDOG_IPIS),
        c(metrics::LATR_ADAPTIVE_ENTERS),
        c(metrics::LATR_ADAPTIVE_EXITS),
        c(metrics::LATR_ADAPTIVE_SYNC_OPS),
    );
    println!(
        "  reclaimed  {} of {} deferred frames during the run{}",
        c(metrics::LATR_RECLAIM_RELEASED_FRAMES),
        c(metrics::LATR_DEFERRED_FRAMES),
        match machine.stats.histogram(metrics::LATR_RECLAIM_LATENCY_NS) {
            Some(h) => format!("; latency ns {}", h.summary()),
            None => String::new(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        let f = RunScale::full();
        let q = RunScale::quick();
        assert!(q.micro_iters < f.micro_iters);
        assert!(q.apache_window < f.apache_window);
    }

    #[test]
    fn fig6_shapes_hold_at_tiny_scale() {
        let scale = RunScale {
            micro_iters: 25,
            apache_window: 50 * MILLISECOND,
            fixed_iters: 40,
            numa_iters: 100,
        };
        let linux = fig6_points(PolicyKind::Linux, scale);
        let latr = fig6_points(PolicyKind::latr_default(), scale);
        assert_eq!(linux.len(), 9);
        // Linux grows with cores; Latr stays below it at 16 cores.
        assert!(linux.last().unwrap().munmap_us > linux[0].munmap_us);
        assert!(latr.last().unwrap().munmap_us < linux.last().unwrap().munmap_us * 0.5);
    }

    #[test]
    fn degradation_summary_reports_injected_faults() {
        let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
        config.faults = Some(latr_faults::FaultPlan::default().with_tick_miss(0.3));
        let (_, machine) = run_experiment(
            config,
            PolicyKind::latr_default(),
            Box::new(MunmapMicrobench::new(2, 1, 5).with_gap(MILLISECOND)),
            SECOND,
        );
        assert!(machine.stats.counter(metrics::FAULTS_TICKS_MISSED) > 0);
        // Exercise the formatting paths too.
        print_degradation_summary(&machine);
    }

    #[test]
    fn cache_row_relative_change() {
        let r = CacheRow {
            name: "x".into(),
            linux: 0.10,
            latr: 0.09,
        };
        assert!((r.relative_change_pct() + 10.0).abs() < 1e-9);
    }
}
