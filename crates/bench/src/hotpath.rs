//! The hot-path benchmark runner behind `BENCH_hotpath.json` (ISSUE 4).
//!
//! PR 4's tentpole replaced the simulator's two hot loops — the
//! binary-heap event queue and the scan-every-queue Latr sweep — with a
//! calendar queue and a pending-bitmap cursor sweep, keeping the
//! originals runtime-selectable as the `reference` engines. This module
//! measures both engines end-to-end on the sweep-heavy [`SweepStorm`]
//! workload at 16, 64 and 120 simulated cores, cross-checks their
//! [`Machine::fingerprint`]s (any divergence disqualifies the speedup),
//! and renders the result as the `BENCH_hotpath.json` schema
//! EXPERIMENTS.md documents.
//!
//! The acceptance bar is the 120-core point: the reference sweep visits
//! every core's 64-slot queue on every one of the 120 cores' ticks —
//! O(cores² · slots) probes per tick interval — which is exactly the
//! overhead the pending bitmap removes, so `fast` must be ≥3× the
//! reference's ticks/sec there.

use std::time::Instant;

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_kernel::{metrics, EngineBackend, Machine, MachineConfig};
use latr_sim::SECOND;
use latr_workloads::{PolicyKind, SweepStorm};

/// One engine × machine-size measurement.
#[derive(Clone, Debug)]
pub struct HotpathPoint {
    /// Engine label: `"fast"`, `"reference"`, or `"parallel:<n>"`.
    pub engine: String,
    /// Simulated cores.
    pub cores: usize,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_ns: u128,
    /// Scheduler ticks simulated.
    pub sim_ticks: u64,
    /// Events the queue delivered.
    pub events: u64,
    /// Workload operations completed (munmap rounds).
    pub ops: u64,
    /// `sim_ticks` per wall-clock second — the sweep-path figure of merit.
    pub ticks_per_sec: f64,
    /// `ops` per wall-clock second.
    pub ops_per_sec: f64,
    /// FNV-1a hash of the run's full fingerprint, for the cross-engine
    /// identity check.
    pub fingerprint: u64,
}

/// The machine sizes `BENCH_hotpath.json` reports.
pub fn hotpath_shapes() -> [(Topology, usize); 3] {
    [
        (Topology::preset(MachinePreset::Commodity2S16C), 16),
        (Topology::new(4, 16), 64),
        (Topology::preset(MachinePreset::LargeNuma8S120C), 120),
    ]
}

/// Publishers per shape: a fixed set of 4 cores unmap while the rest
/// tick and sweep. Sparse publishing is where laziness pays — most
/// per-tick queue visits find nothing, which the pending bitmap skips
/// and the reference scan pays for on every one of the `cores` queues.
pub fn hotpath_publishers(cores: usize) -> usize {
    cores.min(4)
}

/// Rounds per publisher for a shape: enough sim time that the per-tick
/// sweep cost dominates setup, trimmed in `--quick` mode. Full-mode
/// counts are sized so the fastest engine still runs for tens of
/// milliseconds per repetition — below that the sub-1% engine deltas at
/// small core counts drown in timer and scheduler noise.
pub fn hotpath_rounds(cores: usize, quick: bool) -> u32 {
    let full = match cores {
        0..=16 => 1000,
        17..=64 => 600,
        _ => 400,
    };
    if quick {
        // A quarter of the full count keeps quick runs in the same
        // throughput regime as the committed numbers (run-time startup
        // is still amortized), which is what lets the CI regression
        // guard compare quick ticks/sec against the committed file.
        (full / 4).max(2)
    } else {
        full
    }
}

/// Runs the sweep storm once on the chosen engine and measures it. The
/// `Reference` engine also runs the reference (scan-every-queue) Latr
/// sweep, so it measures the full PR-4 baseline stack; `Fast` and
/// `Parallel(n)` both use the pending-bitmap sweep.
///
/// Each point is run [`HOTPATH_REPS`] times and the fastest wall clock
/// is kept — the standard best-of-N discipline. A single sample of a
/// few-millisecond run mostly measures the *host*: first-touch page
/// faults on the machine's freshly-allocated arrays and whatever else
/// the OS scheduler is doing, noise larger than the engine differences
/// under test. Every repetition must produce a bit-identical
/// fingerprint, so best-of-N cannot hide nondeterminism.
///
/// # Panics
///
/// Panics if two repetitions of the same configuration diverge.
pub fn run_hotpath_point(
    backend: EngineBackend,
    topology: Topology,
    cores: usize,
    rounds: u32,
    seed: u64,
) -> HotpathPoint {
    let mut best: Option<HotpathPoint> = None;
    for _ in 0..HOTPATH_REPS {
        let mut config = MachineConfig::new(topology.clone());
        config.seed = seed;
        // Tracing and the coherence oracle off: both are pure observers
        // with per-event costs that would drown the engine difference
        // being measured (the differential suite runs them instead).
        config.trace_capacity = 0;
        config.oracle = false;
        config.engine = backend;
        let latr = LatrConfig {
            reference_sweep: backend == EngineBackend::Reference,
            ..LatrConfig::default()
        };
        let mut machine = Machine::new(config);
        let start = Instant::now();
        machine.run(
            Box::new(SweepStorm::new(cores, rounds).with_publishers(hotpath_publishers(cores))),
            PolicyKind::Latr(latr).build(),
            10 * SECOND,
        );
        let wall = start.elapsed().as_nanos().max(1);
        let sim_ticks = machine.stats.counter(metrics::SCHED_TICKS);
        let ops = machine.stats.counter(metrics::WORK_UNITS);
        let per_sec = |n: u64| n as f64 * 1e9 / wall as f64;
        let point = HotpathPoint {
            engine: backend.label(),
            cores,
            wall_ns: wall,
            sim_ticks,
            events: machine.events_delivered(),
            ops,
            ticks_per_sec: per_sec(sim_ticks),
            ops_per_sec: per_sec(ops),
            fingerprint: fnv1a(&machine.fingerprint()),
        };
        best = Some(match best.take() {
            Some(prev) => {
                assert_eq!(
                    prev.fingerprint, point.fingerprint,
                    "{} at {cores} cores diverged between repetitions",
                    point.engine
                );
                if point.wall_ns < prev.wall_ns {
                    point
                } else {
                    prev
                }
            }
            None => point,
        });
    }
    best.expect("HOTPATH_REPS > 0")
}

/// Repetitions per measured point (best wall clock wins).
pub const HOTPATH_REPS: u32 = 5;

/// FNV-1a over the fingerprint text: compact enough for a JSON field,
/// collision-proof enough for "did the engines diverge".
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Renders the measurement set as the `BENCH_hotpath.json` document.
/// Hand-rolled: the schema is flat and the vendored serde stub does not
/// serialize.
pub fn hotpath_json(points: &[HotpathPoint], quick: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"hotpath\",");
    let _ = writeln!(out, "  \"workload\": \"sweep-storm\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"engine\": \"{}\", \"cores\": {}, \"wall_ns\": {}, \
             \"sim_ticks\": {}, \"events\": {}, \"ops\": {}, \
             \"ticks_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
             \"fingerprint\": \"{:016x}\"}}{comma}",
            p.engine,
            p.cores,
            p.wall_ns,
            p.sim_ticks,
            p.events,
            p.ops,
            p.ticks_per_sec,
            p.ops_per_sec,
            p.fingerprint,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"fingerprints_match\": {},",
        fingerprints_match(points)
    );
    for (cores, speedup) in speedups(points) {
        let _ = writeln!(out, "  \"speedup_at_{cores}_cores\": {speedup:.2},");
    }
    // Trim the trailing comma of the last speedup line.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Whether every fast/reference pair at the same core count produced the
/// same fingerprint.
pub fn fingerprints_match(points: &[HotpathPoint]) -> bool {
    points.iter().all(|p| {
        points
            .iter()
            .filter(|q| q.cores == p.cores)
            .all(|q| q.fingerprint == p.fingerprint)
    })
}

/// Extracts `(cores, ticks_per_sec)` for every `fast` point from a
/// committed `BENCH_hotpath.json` document. Hand-rolled to match
/// [`hotpath_json`]'s flat one-point-per-line layout — the vendored
/// serde stub does not deserialize either.
pub fn committed_fast_ticks(json: &str) -> Vec<(usize, f64)> {
    let field = |line: &str, key: &str| -> Option<f64> {
        let tail = &line[line.find(key)? + key.len()..];
        let tail = tail.trim_start_matches([':', ' ']);
        let end = tail
            .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
            .unwrap_or(tail.len());
        tail[..end].parse().ok()
    };
    json.lines()
        .filter(|l| l.contains("\"engine\": \"fast\""))
        .filter_map(|l| {
            Some((
                field(l, "\"cores\"")? as usize,
                field(l, "\"ticks_per_sec\"")?,
            ))
        })
        .collect()
}

/// The CI bench-regression guard: compares freshly measured `fast`
/// points against the committed numbers and returns one message per
/// point whose ticks/sec fell more than `tolerance` (a fraction, e.g.
/// `0.2`) below the committed value. Missing committed points are
/// skipped — the guard checks for regressions, not schema drift.
pub fn guard_failures(
    committed: &[(usize, f64)],
    points: &[HotpathPoint],
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for p in points.iter().filter(|p| p.engine == "fast") {
        if let Some(&(_, baseline)) = committed.iter().find(|(c, _)| *c == p.cores) {
            let floor = baseline * (1.0 - tolerance);
            if p.ticks_per_sec < floor {
                out.push(format!(
                    "fast at {} cores: {:.0} ticks/sec is more than {:.0}% below the \
                     committed {:.0} (floor {:.0})",
                    p.cores,
                    p.ticks_per_sec,
                    tolerance * 100.0,
                    baseline,
                    floor,
                ));
            }
        }
    }
    out
}

/// `(cores, fast ticks/sec ÷ reference ticks/sec)` per measured shape.
pub fn speedups(points: &[HotpathPoint]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for p in points.iter().filter(|p| p.engine == "fast") {
        if let Some(r) = points
            .iter()
            .find(|q| q.engine == "reference" && q.cores == p.cores)
        {
            out.push((p.cores, p.ticks_per_sec / r.ticks_per_sec.max(1e-9)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(engine: &str, cores: usize, tps: f64, fp: u64) -> HotpathPoint {
        HotpathPoint {
            engine: engine.to_string(),
            cores,
            wall_ns: 1,
            sim_ticks: 1,
            events: 1,
            ops: 1,
            ticks_per_sec: tps,
            ops_per_sec: 1.0,
            fingerprint: fp,
        }
    }

    #[test]
    fn json_is_well_formed_and_reports_speedup() {
        let points = [
            point("fast", 16, 300.0, 7),
            point("reference", 16, 100.0, 7),
        ];
        let json = hotpath_json(&points, true);
        assert!(json.contains("\"speedup_at_16_cores\": 3.00"));
        assert!(json.contains("\"fingerprints_match\": true"));
        assert!(!json.contains(",\n}"), "no trailing comma:\n{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fingerprint_mismatch_is_reported() {
        let points = [
            point("fast", 16, 300.0, 7),
            point("reference", 16, 100.0, 8),
        ];
        assert!(!fingerprints_match(&points));
        assert!(hotpath_json(&points, false).contains("\"fingerprints_match\": false"));
    }

    #[test]
    fn guard_round_trips_through_the_json_and_flags_regressions() {
        let committed = [
            point("fast", 16, 1000.0, 7),
            point("reference", 16, 400.0, 7),
            point("fast", 120, 3000.0, 9),
        ];
        let parsed = committed_fast_ticks(&hotpath_json(&committed, false));
        assert_eq!(parsed, vec![(16, 1000.0), (120, 3000.0)]);

        // Within tolerance (and above) passes; a >20% drop fails.
        let fresh_ok = [point("fast", 16, 850.0, 7), point("fast", 120, 3100.0, 9)];
        assert!(guard_failures(&parsed, &fresh_ok, 0.2).is_empty());
        let fresh_bad = [point("fast", 16, 799.0, 7), point("fast", 120, 3100.0, 9)];
        let failures = guard_failures(&parsed, &fresh_bad, 0.2);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("16 cores"), "{failures:?}");
        // A shape absent from the committed file is not a failure.
        let fresh_extra = [point("fast", 64, 1.0, 8)];
        assert!(guard_failures(&parsed, &fresh_extra, 0.2).is_empty());
    }

    #[test]
    fn engines_agree_on_a_small_point() {
        let (topology, cores) = (Topology::new(2, 2), 4);
        let fast = run_hotpath_point(EngineBackend::Fast, topology.clone(), cores, 3, 42);
        let reference = run_hotpath_point(EngineBackend::Reference, topology.clone(), cores, 3, 42);
        let parallel = run_hotpath_point(EngineBackend::Parallel(2), topology, cores, 3, 42);
        assert_eq!(fast.fingerprint, reference.fingerprint);
        assert_eq!(fast.fingerprint, parallel.fingerprint);
        assert_eq!(fast.ops, (cores as u64) * 3);
        assert!(fast.sim_ticks > 0);
    }
}
