//! The long-running robustness soak behind `BENCH_soak.json` (ISSUE 6).
//!
//! Where `rt_scale` measures *throughput* of a healthy runtime, the soak
//! measures *survival* of a faulted one: real worker threads drive the
//! same munmap-heavy [`SoftTlb`] loop for seconds to minutes while a
//! seeded [`ThreadFaultInjector`] stalls sweepers, drops publish wakeups,
//! suppresses frontier announces, and kills threads outright — one by
//! panic mid-sweep (exercising the [`SweepGuard`] panic fence), one by
//! silent exit (exercising the [`FrontierWatchdog`] path). A monitor
//! thread plays the role of a kernel housekeeping timer: it runs the
//! watchdog scan and feeds live [`RtStats`] into an [`RtTuner`] that
//! retunes the reclaimer wheel on the fly.
//!
//! Every run is gated by the PR-5 ground-truth canary: each deferred item
//! records `min_live_tick() + grace` and the exclusion-event epoch at
//! defer time; sampled collects re-check `min_live_tick() ≥ due` whenever
//! the epoch is unchanged (an exclusion or rejoin in between legitimately
//! moves the live minimum non-monotonically, so those windows only skip
//! the *strict* check — the structural guarantees are still loom/proptest
//! checked). A trip means memory was handed back while a live core could
//! still hold a stale translation, and the soak fails.
//!
//! Pass criteria ([`soak_passed`]): zero canary trips, every *fired*
//! thread death excluded within the recovery bound (twice the watchdog
//! timeout plus generous oversubscription slack — the container running
//! this likely has far fewer hardware threads than the 120 the largest
//! shape drives), and no live core stuck excluded past that same bound
//! (a healthy excluded core rejoins on its very next tick).
//!
//! [`SweepGuard`]: latr_core::rt::SweepGuard
//! [`FrontierWatchdog`]: latr_core::rt::FrontierWatchdog
//! [`RtStats`]: latr_core::rt::RtStats
//! [`RtTuner`]: latr_core::rt::RtTuner

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use latr_core::rt::{
    ReclaimBackend, Reclaimer, RtRegistry, RtTuner, RtTuningConfig, SoftTlb, SoftTlbTable,
    SweepMode,
};
use latr_faults::{ThreadFault, ThreadFaultInjector, ThreadFaultPlan};

/// Keys in the shared table; lookups and unmaps cycle over this space.
const KEYSPACE: u64 = 256;
/// Lookups per loop round, between sweeps.
const LOOKUPS_PER_ROUND: u64 = 32;
/// Reclamation grace in sweep ticks (§4.2's two cycles). The tuner is
/// configured with `min_grace == base_grace == GRACE` so adaptive runs
/// never shrink it — the canary's recorded dues stay sound.
const GRACE: u64 = 2;
/// Per-core queue capacity. Between a thread's death and its exclusion
/// the dead queue fills and publishers overflow; the reap-on-exclusion
/// path then clears it.
const QUEUE_SLOTS: usize = 512;
/// How often (in rounds) a collect re-derives the ground truth.
const CANARY_SAMPLE_ROUNDS: u64 = 8;
/// Monitor (watchdog + tuner) cadence.
const MONITOR_PERIOD: Duration = Duration::from_millis(25);

/// The engine stacks the soak hardens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakEngine {
    /// Pending-bitmap sweep + sharded wheel reclaimer + cached frontier.
    Sharded,
    /// Full-scan sweep + mutexed reference reclaimer.
    Reference,
}

impl SoakEngine {
    /// The label used in rows and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SoakEngine::Sharded => "sharded",
            SoakEngine::Reference => "reference",
        }
    }

    /// Both engines, in report order.
    pub fn all() -> [SoakEngine; 2] {
        [SoakEngine::Sharded, SoakEngine::Reference]
    }
}

/// One engine × thread-count soak measurement.
#[derive(Clone, Debug)]
pub struct SoakPoint {
    /// Engine label.
    pub engine: &'static str,
    /// Real OS threads driven.
    pub threads: usize,
    /// Wall-clock nanoseconds for the measured window.
    pub wall_ns: u128,
    /// Lookups + unmaps completed across all threads.
    pub ops: u64,
    /// Loop rounds completed across all threads.
    pub rounds: u64,
    /// Unmap rounds completed.
    pub unmaps: u64,
    /// Items the reclaimer handed back.
    pub collected: u64,
    /// Publishes refused on a full queue (from the registry snapshot).
    pub overflows: u64,
    /// `overflows / (overflows + states_saved)`.
    pub overflow_rate: f64,
    /// Median sampled reclaim lag (ticks past due at collection).
    pub lag_p50: u64,
    /// 99th-percentile sampled reclaim lag.
    pub lag_p99: u64,
    /// Maximum sampled reclaim lag.
    pub lag_max: u64,
    /// Whether every sampled collect passed the ground-truth due check.
    pub canary_ok: bool,
    /// Scheduled deaths that actually fired during the window.
    pub deaths_fired: usize,
    /// Fired deaths whose core the runtime excluded.
    pub deaths_recovered: usize,
    /// Worst death-to-exclusion latency, in milliseconds.
    pub max_recovery_ms: f64,
    /// The bound `max_recovery_ms` is held to.
    pub recovery_bound_ms: f64,
    /// Watchdog exclusions of stalled (not dead) cores.
    pub stall_exclusions: u64,
    /// Panic-fence poisons (should cover exactly the panic deaths).
    pub panic_poisons: u64,
    /// Excluded cores that flushed and rejoined — every one of these is
    /// a recovered frontier stall.
    pub frontier_stall_recoveries: u64,
    /// Undelivered states reaped from dead cores' queue slots.
    pub reaped_states: u64,
    /// Live (non-dead) cores that stayed excluded past the recovery
    /// bound without rejoining — a genuine stuck frontier stall, as
    /// observed by the monitor during the window (teardown-time
    /// exclusions of already-exited workers never count).
    pub unrecovered_stalls: usize,
    /// Wall-clock milliseconds the tuner spent in degraded mode.
    pub degraded_ms: f64,
    /// Tuner wheel widenings.
    pub tuner_widenings: u64,
    /// Tuner wheel narrowings.
    pub tuner_narrowings: u64,
    /// Reclaimer wheel slots at the end of the run (0 for reference).
    pub final_wheel_slots: usize,
}

/// The thread counts a soak run drives.
pub fn soak_threads(quick: bool) -> Vec<usize> {
    if quick {
        vec![16]
    } else {
        vec![16, 64, 120]
    }
}

/// The soak window per (engine, shape) point.
pub fn soak_duration(quick: bool) -> Duration {
    if quick {
        Duration::from_secs(4)
    } else {
        Duration::from_secs(20)
    }
}

/// Watchdog timeout for a shape: oversubscribed shapes get a longer
/// leash, since on a small host a perfectly healthy thread can go
/// unscheduled for hundreds of milliseconds.
pub fn soak_watchdog_timeout(threads: usize) -> Duration {
    if threads > 64 {
        Duration::from_secs(1)
    } else {
        Duration::from_millis(500)
    }
}

/// The recovery bound a fired death is held to: twice the watchdog
/// timeout (ageing past the timeout, plus one full monitor scan of
/// slack) plus a large constant for scheduling noise on oversubscribed
/// hosts.
pub fn soak_recovery_bound(threads: usize) -> Duration {
    soak_watchdog_timeout(threads) * 2 + Duration::from_secs(5)
}

/// The default fault plan for a shape: background stalls, wakeup drops
/// and announce suppression on every thread, plus (when the shape has
/// threads to spare) one panic death and one silent death early in the
/// run.
pub fn soak_plan(threads: usize) -> ThreadFaultPlan {
    let mut plan = ThreadFaultPlan::default()
        .with_stalls(0.002, 200)
        .with_wakeup_drops(0.01)
        .with_announce_delays(0.05);
    if threads >= 4 {
        plan = plan.with_death((threads - 1) as u16, 400, true).with_death(
            (threads - 2) as u16,
            800,
            false,
        );
    }
    plan
}

#[derive(Default)]
struct SoakThreadStats {
    ops: u64,
    rounds: u64,
    unmaps: u64,
    collected: u64,
    lag: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one (engine, thread-count) soak point for `duration` under
/// `plan`, seeded with `seed`.
pub fn run_soak_point(
    engine: SoakEngine,
    threads: usize,
    duration: Duration,
    plan: ThreadFaultPlan,
    seed: u64,
) -> SoakPoint {
    let (mode, backend) = match engine {
        SoakEngine::Sharded => (SweepMode::Pending, ReclaimBackend::Sharded),
        SoakEngine::Reference => (SweepMode::FullScan, ReclaimBackend::Reference),
    };
    let watchdog_timeout = soak_watchdog_timeout(threads);
    let recovery_bound = soak_recovery_bound(threads);
    let registry = Arc::new(RtRegistry::with_watchdog(
        threads,
        QUEUE_SLOTS,
        watchdog_timeout.as_nanos() as u64,
    ));
    let table = Arc::new(SoftTlbTable::new(Arc::clone(&registry)));
    for k in 0..KEYSPACE {
        table.map_key(k, k + 1000);
    }
    // Items carry (conservative due tick, exclusion epoch at defer).
    let reclaimer: Arc<Reclaimer<(u64, u64)>> = Arc::new(Reclaimer::new(backend, GRACE, threads));
    let tuner = Arc::new(RtTuner::new(RtTuningConfig {
        base_grace: GRACE,
        min_grace: GRACE,
        ..RtTuningConfig::default()
    }));
    let injector = ThreadFaultInjector::new(plan.clone(), seed);
    let deaths = plan.deaths.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let canary_ok = Arc::new(AtomicBool::new(true));
    let results: Arc<Mutex<Vec<SoakThreadStats>>> = Arc::new(Mutex::new(Vec::new()));
    // Wall-clock (ns since `epoch`) of each scheduled death firing and of
    // the monitor first observing its core excluded; 0 = not yet.
    let death_at: Arc<Vec<AtomicU64>> = Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
    let recovered_at: Arc<Vec<AtomicU64>> =
        Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(Barrier::new(threads + 1));
    let epoch = Instant::now();

    let handles: Vec<_> = (0..threads)
        .map(|core| {
            let registry = Arc::clone(&registry);
            let table = Arc::clone(&table);
            let reclaimer = Arc::clone(&reclaimer);
            let stop = Arc::clone(&stop);
            let canary_ok = Arc::clone(&canary_ok);
            let results = Arc::clone(&results);
            let death_at = Arc::clone(&death_at);
            let barrier = Arc::clone(&barrier);
            let mut faults = injector.stream(core as u16);
            std::thread::spawn(move || {
                let mut tlb = SoftTlb::new(core, table.clone()).with_sweep_mode(mode);
                let mut stats = SoakThreadStats::default();
                let mut collect_buf: Vec<(u64, u64)> = Vec::new();
                let mut round = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let fault = faults.fault_at(round);
                    if let ThreadFault::Die { panic } = fault {
                        death_at[core].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
                        results.lock().expect("stats lock").push(stats);
                        if panic {
                            // Die mid-sweep: the guard's Drop must poison
                            // only this core.
                            let _guard = registry.sweep_guard(core);
                            panic!("injected death of worker {core}");
                        }
                        return; // Silent death: the watchdog's problem.
                    }
                    for i in 0..LOOKUPS_PER_ROUND {
                        black_box(tlb.lookup((round.wrapping_mul(7) + i) % KEYSPACE));
                    }
                    stats.ops += LOOKUPS_PER_ROUND;
                    match fault {
                        // A stall window: keep publishing, skip the sweep
                        // — exactly the starvation the watchdog exists
                        // for.
                        ThreadFault::Stalled => {}
                        // Sweep without announcing: the cached frontier
                        // only learns of this progress at a forced
                        // refresh.
                        ThreadFault::DelayAnnounce => {
                            tlb.tick_unannounced();
                        }
                        _ => {
                            tlb.tick();
                        }
                    }
                    let key = (core as u64).wrapping_mul(31).wrapping_add(round) % KEYSPACE;
                    match table.unmap_lazy(core, key) {
                        Ok(_) => {
                            stats.unmaps += 1;
                            stats.ops += 1;
                            let due = registry.min_live_tick() + GRACE;
                            reclaimer.defer(&registry, core, (due, registry.exclusion_events()));
                            table.map_key(key, key + 1000);
                            // The publisher's post-publish nudge to
                            // sweepers — unless this round drops it, in
                            // which case they find the work on their own
                            // schedule.
                            if fault != ThreadFault::DropWakeup {
                                std::thread::yield_now();
                            }
                        }
                        Err(_) => {
                            std::thread::yield_now();
                        }
                    }
                    collect_buf.clear();
                    reclaimer.collect_into(&registry, core, &mut collect_buf);
                    if !collect_buf.is_empty() {
                        stats.collected += collect_buf.len() as u64;
                        if round % CANARY_SAMPLE_ROUNDS == 0 {
                            let min_live = registry.min_live_tick();
                            let epoch_now = registry.exclusion_events();
                            for &(due, at_epoch) in &collect_buf {
                                // Only epochs with no exclusion or rejoin
                                // in between admit the strict check: a
                                // rejoining core legitimately re-enters
                                // below an already-collected due.
                                if at_epoch == epoch_now {
                                    if min_live < due {
                                        canary_ok.store(false, Ordering::Release);
                                    }
                                    stats.lag.push(min_live.saturating_sub(due));
                                }
                            }
                        }
                    }
                    round = round.wrapping_add(1);
                    stats.rounds += 1;
                }
                // A watchdog exclusion right before the window closed
                // would otherwise read as an unrecovered stall: one last
                // tick flushes and rejoins.
                if registry.is_excluded(core) {
                    tlb.tick();
                }
                results.lock().expect("stats lock").push(stats);
            })
        })
        .collect();

    // The monitor: the housekeeping timer a kernel would run. Watchdog
    // scan + adaptive retune every period, plus death-recovery and
    // stuck-exclusion bookkeeping for the report.
    let monitor = {
        let registry = Arc::clone(&registry);
        let reclaimer = Arc::clone(&reclaimer);
        let tuner = Arc::clone(&tuner);
        let stop = Arc::clone(&stop);
        let death_at = Arc::clone(&death_at);
        let recovered_at = Arc::clone(&recovered_at);
        let dead: Vec<usize> = deaths
            .iter()
            .map(|d| usize::from(d.thread))
            .filter(|&c| c < threads)
            .collect();
        std::thread::spawn(move || {
            let threads = death_at.len();
            let mut degraded = Duration::ZERO;
            let mut excluded_since: Vec<Option<Instant>> = vec![None; threads];
            let mut stuck = vec![false; threads];
            let mut last = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(MONITOR_PERIOD);
                if stop.load(Ordering::Relaxed) {
                    // No scan during teardown: excluding a worker that is
                    // already past its final rejoin check would read as a
                    // stuck stall.
                    break;
                }
                registry.check_watchdog();
                tuner.observe(&registry.stats());
                tuner.apply(&reclaimer);
                let now = Instant::now();
                if tuner.degraded() {
                    degraded += now - last;
                }
                last = now;
                for core in 0..threads {
                    if death_at[core].load(Ordering::Acquire) != 0
                        && recovered_at[core].load(Ordering::Relaxed) == 0
                        && registry.is_excluded(core)
                    {
                        recovered_at[core]
                            .store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
                    }
                    // A live core excluded this long without its rejoin
                    // landing is genuinely stuck (a healthy one rejoins
                    // on its very next tick).
                    if dead.contains(&core) {
                        continue;
                    }
                    if registry.is_excluded(core) {
                        let since = *excluded_since[core].get_or_insert(now);
                        if now.duration_since(since) > recovery_bound {
                            stuck[core] = true;
                        }
                    } else {
                        excluded_since[core] = None;
                    }
                }
            }
            (degraded, stuck.iter().filter(|&&s| s).count())
        })
    };

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    // The monitor first, so no watchdog scan runs while workers drain
    // (their ageing timestamps would read as stalls).
    let (degraded, unrecovered_stalls) = monitor.join().expect("monitor thread");
    let mut panicked_workers = 0usize;
    for h in handles {
        if h.join().is_err() {
            panicked_workers += 1;
        }
    }
    let wall = start.elapsed().as_nanos().max(1);

    // Snapshot *before* the post-run recovery wait: exclusions that
    // happen after the workers exited are teardown artifacts, not run
    // behavior.
    let run_stats = registry.stats();
    let dead: Vec<usize> = deaths
        .iter()
        .map(|d| usize::from(d.thread))
        .filter(|&c| c < threads)
        .collect();

    // Fallback for deaths that fired so late the monitor never saw the
    // exclusion land: keep scanning (the workers are gone, so only the
    // dead cores matter) until every fired death recovers or its bound
    // expires.
    loop {
        let now_ns = epoch.elapsed().as_nanos() as u64;
        let mut waiting = false;
        for &core in &dead {
            let died = death_at[core].load(Ordering::Acquire);
            if died == 0 || recovered_at[core].load(Ordering::Relaxed) != 0 {
                continue;
            }
            if registry.is_excluded(core) {
                recovered_at[core].store(now_ns.max(died + 1), Ordering::Release);
            } else if now_ns.saturating_sub(died) < recovery_bound.as_nanos() as u64 {
                waiting = true;
            }
        }
        if !waiting {
            break;
        }
        registry.check_watchdog();
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut deaths_fired = 0usize;
    let mut deaths_recovered = 0usize;
    let mut max_recovery_ns = 0u64;
    for &core in &dead {
        let died = death_at[core].load(Ordering::Acquire);
        if died == 0 {
            continue;
        }
        deaths_fired += 1;
        let rec = recovered_at[core].load(Ordering::Acquire);
        if rec != 0 {
            deaths_recovered += 1;
            max_recovery_ns = max_recovery_ns.max(rec.saturating_sub(died));
        }
    }
    assert_eq!(
        panicked_workers,
        deaths
            .iter()
            .filter(|d| d.panic && death_at[usize::from(d.thread)].load(Ordering::Acquire) != 0)
            .count(),
        "only injected panic deaths may panic"
    );

    let per_thread = std::mem::take(&mut *results.lock().expect("stats lock"));
    let mut ops = 0;
    let mut rounds = 0;
    let mut unmaps = 0;
    let mut collected = 0;
    let mut lag = Vec::new();
    for s in per_thread {
        ops += s.ops;
        rounds += s.rounds;
        unmaps += s.unmaps;
        collected += s.collected;
        lag.extend(s.lag);
    }
    lag.sort_unstable();
    let denom = run_stats.overflows + run_stats.states_saved;
    SoakPoint {
        engine: engine.name(),
        threads,
        wall_ns: wall,
        ops,
        rounds,
        unmaps,
        collected,
        overflows: run_stats.overflows,
        overflow_rate: if denom == 0 {
            0.0
        } else {
            run_stats.overflows as f64 / denom as f64
        },
        lag_p50: percentile(&lag, 0.50),
        lag_p99: percentile(&lag, 0.99),
        lag_max: lag.last().copied().unwrap_or(0),
        canary_ok: canary_ok.load(Ordering::Acquire),
        deaths_fired,
        deaths_recovered,
        max_recovery_ms: max_recovery_ns as f64 / 1e6,
        recovery_bound_ms: recovery_bound.as_nanos() as f64 / 1e6,
        stall_exclusions: run_stats.stall_exclusions,
        panic_poisons: run_stats.panic_poisons,
        frontier_stall_recoveries: run_stats.rejoins,
        reaped_states: run_stats.reaped_states,
        unrecovered_stalls,
        degraded_ms: degraded.as_nanos() as f64 / 1e6,
        tuner_widenings: tuner.widenings(),
        tuner_narrowings: tuner.narrowings(),
        final_wheel_slots: reclaimer.wheel_slots(),
    }
}

/// Whether every point survived: no canary trip, every fired death
/// recovered within its bound, no live core stuck excluded past it.
pub fn soak_passed(points: &[SoakPoint]) -> bool {
    points.iter().all(|p| {
        p.canary_ok
            && p.unrecovered_stalls == 0
            && p.deaths_recovered == p.deaths_fired
            && p.max_recovery_ms <= p.recovery_bound_ms
    })
}

/// Renders the measurement set as the `BENCH_soak.json` document.
/// Hand-rolled like `rt_scale_json`: the vendored serde stub does not
/// serialize.
pub fn soak_json(points: &[SoakPoint], quick: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"soak\",");
    let _ = writeln!(
        out,
        "  \"workload\": \"munmap-heavy soft-tlb loop under thread faults\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"grace_ticks\": {GRACE},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"engine\": \"{}\", \"threads\": {}, \"wall_ns\": {}, \
             \"ops\": {}, \"rounds\": {}, \"unmaps\": {}, \"collected\": {}, \
             \"overflows\": {}, \"overflow_rate\": {:.4}, \
             \"reclaim_lag_p50\": {}, \"reclaim_lag_p99\": {}, \"reclaim_lag_max\": {}, \
             \"canary_ok\": {}, \"deaths_fired\": {}, \"deaths_recovered\": {}, \
             \"max_recovery_ms\": {:.1}, \"recovery_bound_ms\": {:.1}, \
             \"stall_exclusions\": {}, \"panic_poisons\": {}, \
             \"frontier_stall_recoveries\": {}, \"reaped_states\": {}, \
             \"unrecovered_stalls\": {}, \"degraded_ms\": {:.1}, \
             \"tuner_widenings\": {}, \"tuner_narrowings\": {}, \
             \"final_wheel_slots\": {}}}{comma}",
            p.engine,
            p.threads,
            p.wall_ns,
            p.ops,
            p.rounds,
            p.unmaps,
            p.collected,
            p.overflows,
            p.overflow_rate,
            p.lag_p50,
            p.lag_p99,
            p.lag_max,
            p.canary_ok,
            p.deaths_fired,
            p.deaths_recovered,
            p.max_recovery_ms,
            p.recovery_bound_ms,
            p.stall_exclusions,
            p.panic_poisons,
            p.frontier_stall_recoveries,
            p.reaped_states,
            p.unrecovered_stalls,
            p.degraded_ms,
            p.tuner_widenings,
            p.tuner_narrowings,
            p.final_wheel_slots,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"soak_passed\": {}", soak_passed(points));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(canary: bool, unrecovered: usize, fired: usize, recovered: usize) -> SoakPoint {
        SoakPoint {
            engine: "sharded",
            threads: 4,
            wall_ns: 1,
            ops: 1,
            rounds: 1,
            unmaps: 1,
            collected: 1,
            overflows: 0,
            overflow_rate: 0.0,
            lag_p50: 0,
            lag_p99: 1,
            lag_max: 2,
            canary_ok: canary,
            deaths_fired: fired,
            deaths_recovered: recovered,
            max_recovery_ms: 10.0,
            recovery_bound_ms: 100.0,
            stall_exclusions: 0,
            panic_poisons: 1,
            frontier_stall_recoveries: 0,
            reaped_states: 0,
            unrecovered_stalls: unrecovered,
            degraded_ms: 0.0,
            tuner_widenings: 0,
            tuner_narrowings: 0,
            final_wheel_slots: 8,
        }
    }

    #[test]
    fn pass_criteria_cover_each_failure_mode() {
        assert!(soak_passed(&[point(true, 0, 2, 2)]));
        assert!(!soak_passed(&[point(false, 0, 2, 2)])); // canary
        assert!(!soak_passed(&[point(true, 1, 2, 2)])); // stuck stall
        assert!(!soak_passed(&[point(true, 0, 2, 1)])); // lost death
    }

    #[test]
    fn json_is_well_formed() {
        let json = soak_json(&[point(true, 0, 2, 2)], true);
        assert!(json.contains("\"soak_passed\": true"));
        assert!(json.contains("\"deaths_recovered\": 2"));
        assert!(!json.contains(",\n}"), "no trailing comma:\n{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn default_plans_validate_at_every_shape() {
        for quick in [true, false] {
            for threads in soak_threads(quick) {
                assert_eq!(soak_plan(threads).validate(), Ok(()));
            }
        }
        assert_eq!(soak_plan(2).deaths.len(), 0, "tiny shapes keep all threads");
    }

    #[test]
    fn tiny_faulted_run_survives_on_both_engines() {
        // A miniature soak: 4 threads, a panic death and a silent death
        // early on. The panic excludes its core instantly via the sweep
        // guard; the silent one rides the 500 ms watchdog (mostly in the
        // post-run recovery wait), so each engine takes around a second.
        let plan = ThreadFaultPlan::default()
            .with_stalls(0.001, 50)
            .with_wakeup_drops(0.01)
            .with_announce_delays(0.05)
            .with_death(3, 50, true)
            .with_death(2, 90, false);
        for engine in SoakEngine::all() {
            let p = run_soak_point(engine, 4, Duration::from_millis(300), plan.clone(), 7);
            assert!(p.ops > 0, "{} did no work", p.engine);
            assert!(p.canary_ok, "{} tripped the canary", p.engine);
            assert_eq!(p.deaths_fired, 2, "{}: both deaths fire", p.engine);
            assert_eq!(
                p.deaths_recovered, p.deaths_fired,
                "{}: every death excluded",
                p.engine
            );
            assert!(
                p.max_recovery_ms <= p.recovery_bound_ms,
                "{}: recovery {}ms over bound {}ms",
                p.engine,
                p.max_recovery_ms,
                p.recovery_bound_ms
            );
            assert!(
                p.panic_poisons >= 1,
                "{}: panic fence never fired",
                p.engine
            );
            assert_eq!(p.unrecovered_stalls, 0, "{}: stuck exclusion", p.engine);
            assert!(soak_passed(&[p]));
        }
    }
}
