//! The parallel-simulator benchmark behind `BENCH_par_sim.json` (ISSUE 9).
//!
//! Measures the lane-sharded engine ([`EngineBackend::Parallel`]) against
//! the PR-4 sequential fast engine on the sweep-heavy `SweepStorm`
//! workload: worker counts {1, 2, 4, 8} × simulated cores {16, 64, 120},
//! every point fingerprint-gated against the fast engine — a speedup with
//! a diverging fingerprint is disqualified, exactly as in
//! `BENCH_hotpath.json`. Run conditions are identical to the hotpath
//! bench ([`run_hotpath_point`] does the measuring), so the fast-engine
//! numbers here are directly comparable with `BENCH_hotpath.json`.
//!
//! Honesty note, recorded in the JSON as `host_cpus`: the engine's
//! parallelism is real (every lane is an OS thread doing calendar
//! maintenance at epoch barriers), but handlers execute on the
//! coordinator in global `(time, id)` order — that is what makes the
//! fingerprint bit-identical regardless of worker count — so the
//! parallel win is bounded by the queue-maintenance share of the run and
//! by the host's core count. On a single-CPU host the worker threads are
//! timeshared and the numbers measure protocol overhead, not scaling;
//! compare `ticks_per_sec` across `workers` on a many-core host for the
//! scheduling headroom the lane partition exposes.
//!
//! [`EngineBackend::Parallel`]: latr_kernel::EngineBackend::Parallel

use crate::hotpath::{hotpath_rounds, hotpath_shapes, run_hotpath_point, HotpathPoint};
use latr_arch::Topology;
use latr_kernel::EngineBackend;

/// The worker counts `BENCH_par_sim.json` sweeps.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One engine × machine-size measurement, plus the worker count (0 for
/// the sequential fast baseline).
#[derive(Clone, Debug)]
pub struct ParSimPoint {
    /// The underlying measurement (engine label, throughput, fingerprint).
    pub point: HotpathPoint,
    /// Lane-worker threads; 0 marks the sequential fast baseline.
    pub workers: usize,
}

/// Runs one `par_sim` measurement under the hotpath bench's run
/// conditions (oracle and tracing off, 4 sparse publishers). Best of
/// three repetitions — the runs are short enough that scheduler noise
/// dominates a single sample — with the fingerprint asserted identical
/// across repetitions (it is a deterministic simulation).
pub fn run_par_sim_point(
    backend: EngineBackend,
    topology: Topology,
    cores: usize,
    rounds: u32,
    seed: u64,
) -> ParSimPoint {
    let workers = match backend {
        EngineBackend::Parallel(n) => n,
        _ => 0,
    };
    let mut best: Option<HotpathPoint> = None;
    for _ in 0..3 {
        let p = run_hotpath_point(backend, topology.clone(), cores, rounds, seed);
        match &best {
            Some(b) => {
                assert_eq!(
                    b.fingerprint, p.fingerprint,
                    "{} repetition broke determinism",
                    p.engine
                );
                if p.wall_ns < b.wall_ns {
                    best = Some(p);
                }
            }
            None => best = Some(p),
        }
    }
    ParSimPoint {
        point: best.expect("three repetitions ran"),
        workers,
    }
}

/// Runs the full matrix: the fast baseline plus every worker count, at
/// every machine size.
pub fn run_par_sim_matrix(quick: bool, mut report: impl FnMut(&ParSimPoint)) -> Vec<ParSimPoint> {
    let mut points = Vec::new();
    for (topology, cores) in hotpath_shapes() {
        let rounds = hotpath_rounds(cores, quick);
        let seed = 0x9A12 ^ cores as u64;
        let mut run = |backend| {
            let p = run_par_sim_point(backend, topology.clone(), cores, rounds, seed);
            report(&p);
            points.push(p);
        };
        run(EngineBackend::Fast);
        for w in WORKER_COUNTS {
            run(EngineBackend::Parallel(w));
        }
    }
    points
}

/// Whether every point at the same core count produced the same
/// fingerprint — worker count and engine must be invisible.
pub fn par_fingerprints_match(points: &[ParSimPoint]) -> bool {
    points.iter().all(|p| {
        points
            .iter()
            .filter(|q| q.point.cores == p.point.cores)
            .all(|q| q.point.fingerprint == p.point.fingerprint)
    })
}

/// `(cores, best parallel ticks/sec ÷ fast ticks/sec)` per machine size.
pub fn par_speedups(points: &[ParSimPoint]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for base in points.iter().filter(|p| p.workers == 0) {
        let best = points
            .iter()
            .filter(|q| q.workers > 0 && q.point.cores == base.point.cores)
            .map(|q| q.point.ticks_per_sec)
            .fold(0.0f64, f64::max);
        out.push((base.point.cores, best / base.point.ticks_per_sec.max(1e-9)));
    }
    out
}

/// Renders `BENCH_par_sim.json`. Hand-rolled like the hotpath schema
/// (the vendored serde stub does not serialize).
pub fn par_sim_json(points: &[ParSimPoint], quick: bool) -> String {
    use std::fmt::Write as _;
    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"par_sim\",");
    let _ = writeln!(out, "  \"workload\": \"sweep-storm\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        out,
        "  \"note\": \"handlers execute on the coordinator in (time,id) order — \
         that is what keeps fingerprints identical across worker counts; lane \
         workers parallelize queue maintenance at epoch barriers, so speedup \
         over the fast engine is bounded by the queue share of the run and by \
         host_cpus (1 means the workers were timeshared)\","
    );
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"engine\": \"{}\", \"workers\": {}, \"cores\": {}, \
             \"wall_ns\": {}, \"sim_ticks\": {}, \"events\": {}, \"ops\": {}, \
             \"ticks_per_sec\": {:.1}, \"fingerprint\": \"{:016x}\"}}{comma}",
            p.point.engine,
            p.workers,
            p.point.cores,
            p.point.wall_ns,
            p.point.sim_ticks,
            p.point.events,
            p.point.ops,
            p.point.ticks_per_sec,
            p.point.fingerprint,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"fingerprints_match\": {},",
        par_fingerprints_match(points)
    );
    for (cores, speedup) in par_speedups(points) {
        let _ = writeln!(out, "  \"speedup_at_{cores}_cores\": {speedup:.2},");
    }
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_point_matches_fast_engine() {
        let fast = run_par_sim_point(EngineBackend::Fast, Topology::new(2, 2), 4, 3, 9);
        let par = run_par_sim_point(EngineBackend::Parallel(3), Topology::new(2, 2), 4, 3, 9);
        assert_eq!(fast.workers, 0);
        assert_eq!(par.workers, 3);
        assert_eq!(fast.point.fingerprint, par.point.fingerprint);
        assert!(par_fingerprints_match(&[fast.clone(), par.clone()]));
        let json = par_sim_json(&[fast, par], true);
        assert!(json.contains("\"fingerprints_match\": true"));
        assert!(json.contains("\"speedup_at_4_cores\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(!json.contains(",\n}"), "no trailing comma:\n{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn diverging_fingerprint_is_reported() {
        let a = run_par_sim_point(EngineBackend::Fast, Topology::new(2, 2), 4, 3, 9);
        let mut b = a.clone();
        b.point.fingerprint ^= 1;
        b.workers = 2;
        assert!(!par_fingerprints_match(&[a.clone(), b.clone()]));
        assert!(par_sim_json(&[a, b], true).contains("\"fingerprints_match\": false"));
    }
}
