//! Fig. 8: munmap cost with an increasing number of pages (16 cores).
//!
//! Paper result: Latr's benefit shrinks from 70.8% at one page to 7.5% at
//! 512 pages as PTE-manipulation costs amortize the shootdown; Linux
//! full-flushes above 32 pages which also bounds the overhead.

use latr_bench::{fig8_points, print_title, RunScale};
use latr_workloads::PolicyKind;

fn main() {
    let scale = RunScale::from_args();
    print_title("Figure 8 — munmap cost vs pages (16 cores)");
    let linux = fig8_points(PolicyKind::Linux, scale);
    let latr = fig8_points(PolicyKind::latr_default(), scale);
    println!(
        "{:<7} {:>16} {:>20} {:>16} {:>10}",
        "pages", "linux munmap(µs)", "linux shootdown(µs)", "latr munmap(µs)", "saving"
    );
    for (l, t) in linux.iter().zip(&latr) {
        println!(
            "{:<7} {:>16.2} {:>20.2} {:>16.2} {:>9.1}%",
            l.x,
            l.munmap_us,
            l.shootdown_us,
            t.munmap_us,
            (1.0 - t.munmap_us / l.munmap_us) * 100.0
        );
    }
    println!("\npaper: −70.8% at 1 page shrinking to −7.5% at 512 pages");
}
