//! Figs. 2 & 3: the event timelines of an munmap (Linux vs Latr) and an
//! AutoNUMA hint-unmap, regenerated from the simulator's trace ring —
//! plus a chaos timeline showing the sweep watchdog escalating a stalled
//! sweeper (DESIGN.md §9).

use latr_arch::{MachinePreset, Topology};
use latr_bench::print_degradation_summary;
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{MachineConfig, NumaConfig};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::{
    run_experiment, MigrationProfile, MigrationWorkload, MunmapMicrobench, PolicyKind,
};

fn show(title: &str, config: MachineConfig, policy: PolicyKind, numa: bool) {
    println!("\n=== {title} ===");
    let mut config = config;
    config.trace_capacity = 40;
    let (_, machine) = if numa {
        let profile = MigrationProfile::by_name("graph500").unwrap();
        config.numa = NumaConfig {
            enabled: true,
            scan_period: MILLISECOND,
            pages_per_scan: 2,
            fault_retry: MILLISECOND / 10,
        };
        run_experiment(
            config,
            policy,
            Box::new(MigrationWorkload::new(profile, 4, 40)),
            SECOND,
        )
    } else {
        run_experiment(
            config,
            policy,
            // A multi-millisecond gap between the two rounds keeps the run
            // alive across scheduler ticks, so the lazy sweeps and the
            // background reclamation appear on the trace.
            Box::new(MunmapMicrobench::new(3, 1, 2).with_gap(3 * MILLISECOND)),
            SECOND,
        )
    };
    for entry in machine.trace.iter() {
        println!("{entry}");
    }
    if machine.trace.is_empty() {
        println!("(no IPI traffic — the lazy path leaves no synchronous events)");
    }
}

fn main() {
    let base = || MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
    show(
        "Fig. 2a — munmap under Linux (IPIs + ACK wait)",
        base(),
        PolicyKind::Linux,
        false,
    );
    show(
        "Fig. 2b — munmap under Latr (state save, lazy sweep)",
        base(),
        PolicyKind::latr_default(),
        false,
    );
    show(
        "Fig. 3a — AutoNUMA hint-unmap under Linux",
        base(),
        PolicyKind::Linux,
        true,
    );
    show(
        "Fig. 3b — AutoNUMA hint-unmap under Latr",
        base(),
        PolicyKind::latr_default(),
        true,
    );
    show_chaos(base());
}

/// A munmap timeline with core 1's sweeps stalled: the published state's
/// bit never clears on its own, the watchdog escalates with a targeted
/// IPI, and reclamation still completes within its bound.
fn show_chaos(mut config: MachineConfig) {
    println!("\n=== Chaos — stalled sweeper, watchdog escalation ===");
    config.trace_capacity = 60;
    config.faults = Some(FaultPlan::default().with_stall(1, MILLISECOND, 12 * MILLISECOND));
    let cfg = LatrConfig {
        watchdog_ticks: 3,
        ..LatrConfig::default()
    };
    // Enough rounds that the run outlives the 3-tick watchdog deadline of
    // the states the stall leaves pending.
    let (_, machine) = run_experiment(
        config,
        PolicyKind::Latr(cfg),
        Box::new(MunmapMicrobench::new(3, 1, 6).with_gap(2 * MILLISECOND)),
        SECOND,
    );
    for entry in machine.trace.iter() {
        println!("{entry}");
    }
    print_degradation_summary(&machine);
}
