//! §6.4 "Memory utilization": how much physical memory Latr parks on its
//! lazy-reclamation lists at peak.
//!
//! Paper result: from 1.5–3 MB (a single shared page) up to a bounded
//! 21 MB (512 pages per munmap on 16 cores), always released within 2 ms —
//! "smaller than 0.03% of the RAM available in current servers".

use latr_arch::{MachinePreset, Topology};
use latr_kernel::{metrics, MachineConfig};
use latr_sim::SECOND;
use latr_workloads::{run_experiment, MunmapMicrobench, PolicyKind};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 150 } else { 600 };
    println!("=== §6.4 — Latr lazy-list memory utilization (peak parked) ===");
    println!(
        "{:<8} {:<8} {:>18} {:>16} {:>14}",
        "cores", "pages", "peak parked (KiB)", "deferred frames", "fallback IPIs"
    );
    for (cores, pages) in [(2usize, 1u64), (16, 1), (16, 64), (16, 256), (16, 512)] {
        let config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
        // Zero inter-round gap: maximum munmap pressure on the lazy lists.
        let workload = MunmapMicrobench::new(cores, pages, iters).with_gap(0);
        let (_, machine) = run_experiment(
            config,
            PolicyKind::latr_default(),
            Box::new(workload),
            60 * SECOND,
        );
        let peak = machine
            .stats
            .histogram("latr_parked_bytes")
            .map_or(0, |h| h.max());
        println!(
            "{:<8} {:<8} {:>18} {:>16} {:>14}",
            cores,
            pages,
            peak / 1024,
            machine.stats.counter(metrics::LATR_DEFERRED_FRAMES),
            machine.stats.counter(metrics::LATR_FALLBACK_IPIS)
        );
    }
    println!(
        "\npaper: 1.5–3 MB for single pages, bounded by ≈21 MB at 512 pages,\n\
         all released within 2 ms (two scheduler ticks)"
    );
}
