//! End-to-end hot-path benchmark: fast vs `reference` engines on the
//! sweep-heavy workload, emitted as `BENCH_hotpath.json`.
//!
//! Runs [`latr_workloads::SweepStorm`] at 16, 64 and 120 simulated cores
//! on both engine stacks — the calendar event queue + pending-bitmap
//! sweep against the binary heap + full scan — cross-checks that every
//! pair produced bit-identical fingerprints, and writes the measurements
//! (ticks/sec, ops/sec, speedups) to `BENCH_hotpath.json` in the current
//! directory. See EXPERIMENTS.md for how to read the file.
//!
//! ```sh
//! cargo run --release -p latr-bench --bin hotpath          # full run
//! cargo run --release -p latr-bench --bin hotpath -- --quick
//! cargo run --release -p latr-bench --bin hotpath -- --quick --guard BENCH_hotpath.json
//! ```
//!
//! Exits non-zero if the engines' fingerprints diverge — a broken
//! equivalence disqualifies any speedup number. With `--guard <path>`,
//! also exits non-zero if any freshly measured `fast` point's ticks/sec
//! fell more than 20% below the committed file at `<path>` (read before
//! the fresh results overwrite it) — the CI bench-regression guard.

use latr_bench::hotpath::{
    committed_fast_ticks, fingerprints_match, guard_failures, hotpath_json, hotpath_rounds,
    hotpath_shapes, run_hotpath_point, speedups,
};
use latr_bench::print_title;
use latr_kernel::EngineBackend;

/// Fractional ticks/sec drop below the committed file that fails the
/// `--guard` check.
const GUARD_TOLERANCE: f64 = 0.2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Read the committed baseline up front: the fresh run overwrites
    // BENCH_hotpath.json, which is the usual `--guard` argument.
    let committed: Option<Vec<(usize, f64)>> = std::env::args()
        .skip_while(|a| a != "--guard")
        .nth(1)
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read guard baseline {path}: {e}"));
            let baseline = committed_fast_ticks(&text);
            assert!(!baseline.is_empty(), "no fast points in {path}");
            baseline
        });
    // `--engines fast,reference,parallel:4` narrows the sweep; default
    // measures all three stacks so the parallel engine's fingerprint is
    // cross-checked here too, not just in the differential suite.
    let engines: Vec<EngineBackend> = std::env::args()
        .skip_while(|a| a != "--engines")
        .nth(1)
        .map(|list| {
            list.split(',')
                .map(|s| EngineBackend::parse(s).unwrap_or_else(|| panic!("bad engine: {s}")))
                .collect()
        })
        .unwrap_or_else(|| {
            vec![
                EngineBackend::Fast,
                EngineBackend::Reference,
                EngineBackend::Parallel(4),
            ]
        });
    print_title("Hot-path throughput — fast vs reference vs parallel engines (sweep storm)");
    println!(
        "{:<11} {:>6} {:>12} {:>14} {:>14} {:>12}",
        "engine", "cores", "wall (ms)", "ticks/sec", "ops/sec", "events"
    );

    let mut points = Vec::new();
    for (topology, cores) in hotpath_shapes() {
        let rounds = hotpath_rounds(cores, quick);
        for &backend in &engines {
            let p = run_hotpath_point(
                backend,
                topology.clone(),
                cores,
                rounds,
                0xB3 ^ cores as u64,
            );
            println!(
                "{:<11} {:>6} {:>12.2} {:>14.0} {:>14.0} {:>12}",
                p.engine,
                p.cores,
                p.wall_ns as f64 / 1e6,
                p.ticks_per_sec,
                p.ops_per_sec,
                p.events,
            );
            points.push(p);
        }
    }

    println!();
    for (cores, speedup) in speedups(&points) {
        println!("speedup at {cores:>3} cores: {speedup:.2}x (ticks/sec, fast ÷ reference)");
    }
    let identical = fingerprints_match(&points);
    println!(
        "fingerprints: {}",
        if identical {
            "identical on every engine at every size"
        } else {
            "DIVERGED — see the differential suite"
        }
    );

    let json = hotpath_json(&points, quick);
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");

    let mut failed = !identical;
    if let Some(baseline) = committed {
        let failures = guard_failures(&baseline, &points, GUARD_TOLERANCE);
        if failures.is_empty() {
            println!(
                "regression guard: all fast points within {:.0}% of the committed baseline",
                GUARD_TOLERANCE * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("regression guard: {f}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
