//! Fig. 10: normalized runtime and shootdown rate for the PARSEC suite at
//! 16 cores.
//!
//! Paper result: up to 9.6% improvement (dedup), at most 1.7% overhead
//! (canneal), 1.5% average improvement.

use latr_bench::{fig10_rows, print_title, RunScale};

fn main() {
    let scale = RunScale::from_args();
    print_title("Figure 10 — PARSEC normalized runtime (latr / linux, 16 cores)");
    println!(
        "{:<15} {:>18} {:>16} {:>16}",
        "benchmark", "normalized runtime", "linux sd/s", "latr sd/s"
    );
    let rows = fig10_rows(scale);
    let mut geo = 1.0f64;
    for r in &rows {
        geo *= r.normalized_runtime;
        println!(
            "{:<15} {:>18.3} {:>16.0} {:>16.0}",
            r.name, r.normalized_runtime, r.rate_linux, r.rate_latr
        );
    }
    geo = geo.powf(1.0 / rows.len() as f64);
    println!("\ngeometric mean: {geo:.3}  (paper: ≈0.985 — 1.5% average improvement)");
}
