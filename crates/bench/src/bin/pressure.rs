//! Memory-pressure resilience under allocation storms, emitted as
//! `BENCH_pressure.json`.
//!
//! Runs the identical seeded storm — [`latr_bench::pressure`]'s
//! [`AllocStorm`] churn sharpened by sweep stalls, allocation bursts and
//! a watermark flap — through three coherence policies: synchronous
//! Linux shootdowns, Latr with escalation disabled, and the full Latr
//! pressure path (expedited sweeps + min-watermark sync fallback). See
//! EXPERIMENTS.md ("Allocation storms") for how to read the output.
//!
//! ```sh
//! cargo run --release -p latr-bench --bin pressure           # 120 cores
//! cargo run --release -p latr-bench --bin pressure -- --quick # 16-core CI smoke
//! ```
//!
//! Exits non-zero unless every arm is oracle-clean and leak-free, the
//! bare-lazy arm is driven through its min watermark, and the
//! escalating arm sustains the same storm with zero allocation stalls —
//! the claim the committed JSON exists to document.
//!
//! [`AllocStorm`]: latr_workloads::AllocStorm

use latr_bench::pressure::{
    full_shape, pressure_json, pressure_passed, quick_shape, run_pressure_bench,
};
use latr_bench::print_title;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shape = if quick { quick_shape() } else { full_shape() };
    print_title("memory pressure — allocation storm vs watermark escalation");
    println!(
        "storm: {} cores, {} rounds x {} pages (hold {}), {} frames/node, low/min {}/{}",
        shape.cores,
        shape.rounds,
        shape.pages,
        shape.hold,
        shape.frames_per_node,
        shape.low,
        shape.min
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>7} {:>5} {:>10} {:>10} {:>9} {:>7}",
        "arm",
        "min_free",
        "low_ev",
        "min_ev",
        "stalls",
        "oom",
        "exp_sweeps",
        "gate_held",
        "released",
        "oracle"
    );
    let points = run_pressure_bench(&shape);
    for p in &points {
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>7} {:>5} {:>10} {:>10} {:>9} {:>7}",
            p.arm,
            p.min_free,
            p.low_events,
            p.min_events,
            p.alloc_stalls,
            p.oom_events,
            p.expedited_sweeps,
            p.gate_held,
            p.released_frames,
            if p.oracle_clean { "clean" } else { "VIOLATED" }
        );
    }
    let json = pressure_json(&points, &shape, quick);
    std::fs::write("BENCH_pressure.json", &json).expect("write BENCH_pressure.json");
    println!("\nwrote BENCH_pressure.json");
    if !pressure_passed(&points) {
        eprintln!(
            "FAIL: the pressure gate did not hold (bare-lazy must breach its min \
             watermark; escalation must sustain the storm stall-free) — see \
             BENCH_pressure.json"
        );
        std::process::exit(1);
    }
    println!("escalation sustained the storm bare-lazy could not — gate passed");
}
