//! Fig. 7: munmap + shootdown cost for a single page on the 8-socket,
//! 120-core machine.
//!
//! Paper result: Linux exceeds 120 µs at 120 cores (shootdown ≈82 µs,
//! 69.3%); Latr stays under 40 µs (−66.7%).

use latr_bench::{fig7_points, print_title, RunScale};
use latr_workloads::PolicyKind;

fn main() {
    let scale = RunScale::from_args();
    print_title("Figure 7 — munmap cost vs cores (8-socket, 120-core)");
    let linux = fig7_points(PolicyKind::Linux, scale);
    let latr = fig7_points(PolicyKind::latr_default(), scale);
    println!(
        "{:<7} {:>16} {:>20} {:>16} {:>10}",
        "cores", "linux munmap(µs)", "linux shootdown(µs)", "latr munmap(µs)", "saving"
    );
    for (l, t) in linux.iter().zip(&latr) {
        println!(
            "{:<7} {:>16.2} {:>20.2} {:>16.2} {:>9.1}%",
            l.x,
            l.munmap_us,
            l.shootdown_us,
            t.munmap_us,
            (1.0 - t.munmap_us / l.munmap_us) * 100.0
        );
    }
    println!("\npaper: Linux >120 µs at 120 cores, Latr <40 µs (−66.7%)");
}
