//! Fig. 6: the cost of an `munmap()` call for a single page with 1–16
//! cores on the 2-socket machine, plus the TLB-shootdown share.
//!
//! Paper result: shootdowns account for up to 71.6% of munmap; Latr
//! improves munmap latency by up to 70.8%.

use latr_bench::{fig6_points, print_title, RunScale};
use latr_workloads::PolicyKind;

fn main() {
    let scale = RunScale::from_args();
    print_title("Figure 6 — munmap cost vs cores (2-socket, 16-core)");
    let linux = fig6_points(PolicyKind::Linux, scale);
    let latr = fig6_points(PolicyKind::latr_default(), scale);
    println!(
        "{:<7} {:>16} {:>20} {:>16} {:>10}",
        "cores", "linux munmap(µs)", "linux shootdown(µs)", "latr munmap(µs)", "saving"
    );
    for (l, t) in linux.iter().zip(&latr) {
        println!(
            "{:<7} {:>16.2} {:>20.2} {:>16.2} {:>9.1}%",
            l.x,
            l.munmap_us,
            l.shootdown_us,
            t.munmap_us,
            (1.0 - t.munmap_us / l.munmap_us) * 100.0
        );
    }
    println!("\npaper: Linux ≈8 µs at 16 cores, Latr −70.8%");
}
