//! Robustness soak: the lock-free rt runtime surviving injected thread
//! faults for minutes, emitted as `BENCH_soak.json`.
//!
//! Runs the munmap-heavy soft-TLB loop of [`latr_bench::soak`] on both
//! lazy engine stacks (sharded/cached-frontier and reference) at 16, 64
//! and 120 real threads while a seeded [`ThreadFaultInjector`] stalls
//! sweepers, drops wakeups, suppresses announces, and kills two threads
//! per shape — one by panic mid-sweep, one silently. See EXPERIMENTS.md
//! ("Soak") for how to read the output file.
//!
//! ```sh
//! cargo run --release -p latr-bench --bin soak           # full run
//! cargo run --release -p latr-bench --bin soak -- --quick
//! ```
//!
//! Exits non-zero if any point trips the ground-truth reclamation canary,
//! leaves a fired thread death unrecovered past the watchdog bound, or
//! ends with a live core stuck in exclusion.
//!
//! [`ThreadFaultInjector`]: latr_faults::ThreadFaultInjector

use latr_bench::print_title;
use latr_bench::soak::{
    run_soak_point, soak_duration, soak_json, soak_passed, soak_plan, soak_threads, SoakEngine,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_title("rt robustness soak — thread faults, panic fences, watchdog recovery");
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>7} {:>9} {:>10} {:>9} {:>7}",
        "engine",
        "threads",
        "rounds",
        "lag p99",
        "deaths",
        "recovery",
        "rejoins",
        "reaped",
        "canary"
    );

    let mut points = Vec::new();
    for threads in soak_threads(quick) {
        for engine in SoakEngine::all() {
            let p = run_soak_point(
                engine,
                threads,
                soak_duration(quick),
                soak_plan(threads),
                0xA5_0AC + threads as u64,
            );
            println!(
                "{:<10} {:>8} {:>10} {:>9} {:>3}/{:<3} {:>7.0}ms {:>10} {:>9} {:>7}",
                p.engine,
                p.threads,
                p.rounds,
                p.lag_p99,
                p.deaths_recovered,
                p.deaths_fired,
                p.max_recovery_ms,
                p.frontier_stall_recoveries,
                p.reaped_states,
                if p.canary_ok { "ok" } else { "FAIL" },
            );
            points.push(p);
        }
    }

    let json = soak_json(&points, quick);
    std::fs::write("BENCH_soak.json", &json).expect("write BENCH_soak.json");
    println!("\nwrote BENCH_soak.json");

    if !soak_passed(&points) {
        eprintln!(
            "SOAK FAILED: canary trip, unrecovered thread death, or stuck exclusion — see \
             BENCH_soak.json"
        );
        std::process::exit(2);
    }
}
