//! Fig. 12: Latr's overhead on applications with few TLB shootdowns —
//! single-core web servers and low-shootdown PARSEC benchmarks.
//!
//! Paper result: at most 1.7% overhead (canneal); some workloads improve
//! slightly.

use latr_bench::{fig12_rows, print_title, RunScale};

fn main() {
    let scale = RunScale::from_args();
    print_title("Figure 12 — overhead with few shootdowns (latr / linux)");
    println!(
        "{:<18} {:>18} {:>14} {:>14}",
        "configuration", "normalized runtime", "linux sd/s", "latr sd/s"
    );
    for r in fig12_rows(scale) {
        println!(
            "{:<18} {:>18.3} {:>14.0} {:>14.0}",
            r.name, r.normalized_runtime, r.rate_linux, r.rate_latr
        );
    }
    println!("\npaper: ≤1.7% overhead across the suite");
}
