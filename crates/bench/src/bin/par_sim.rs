//! Parallel-simulator benchmark: the lane-sharded engine at worker
//! counts {1, 2, 4, 8} against the sequential fast engine, at 16, 64 and
//! 120 simulated cores, emitted as `BENCH_par_sim.json`.
//!
//! Every point is fingerprint-gated: the parallel engine must produce
//! the exact fingerprint of the fast engine at the same core count or
//! the run exits non-zero — a throughput number from a diverging
//! simulation is meaningless. See EXPERIMENTS.md ("Parallel simulator")
//! for how to read the file, including the `host_cpus` caveat.
//!
//! ```sh
//! cargo run --release -p latr-bench --bin par_sim          # full run
//! cargo run --release -p latr-bench --bin par_sim -- --quick
//! ```

use latr_bench::par_sim::{par_fingerprints_match, par_sim_json, par_speedups, run_par_sim_matrix};
use latr_bench::print_title;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_title("Parallel simulator — lane-sharded engine vs sequential fast (sweep storm)");
    println!(
        "{:<11} {:>7} {:>6} {:>12} {:>14} {:>12}  fingerprint",
        "engine", "workers", "cores", "wall (ms)", "ticks/sec", "events"
    );

    let points = run_par_sim_matrix(quick, |p| {
        println!(
            "{:<11} {:>7} {:>6} {:>12.2} {:>14.0} {:>12}  {:016x}",
            p.point.engine,
            p.workers,
            p.point.cores,
            p.point.wall_ns as f64 / 1e6,
            p.point.ticks_per_sec,
            p.point.events,
            p.point.fingerprint,
        );
    });

    println!();
    for (cores, speedup) in par_speedups(&points) {
        println!("speedup at {cores:>3} cores: {speedup:.2}x (best parallel ÷ fast, ticks/sec)");
    }
    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    println!("host cpus: {host_cpus}");
    let identical = par_fingerprints_match(&points);
    println!(
        "fingerprints: {}",
        if identical {
            "identical at every worker count and machine size"
        } else {
            "DIVERGED — see tests/par_determinism.rs"
        }
    );

    let json = par_sim_json(&points, quick);
    std::fs::write("BENCH_par_sim.json", &json).expect("write BENCH_par_sim.json");
    println!("wrote BENCH_par_sim.json");

    if !identical {
        std::process::exit(1);
    }
}
