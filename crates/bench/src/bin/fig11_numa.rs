//! Fig. 11: impact of NUMA balancing — normalized runtime and page
//! migrations per second for five applications at 16 cores.
//!
//! Paper result: up to 5.7% improvement (graph500), larger improvements
//! with more migrations; per-migration shootdown share is 5.8–21.1%.

use latr_bench::{fig11_rows, print_title, RunScale};

fn main() {
    let scale = RunScale::from_args();
    print_title("Figure 11 — AutoNUMA normalized runtime (latr / linux, 16 cores)");
    println!(
        "{:<15} {:>18} {:>18} {:>18}",
        "application", "normalized runtime", "linux migr/s", "latr migr/s"
    );
    for r in fig11_rows(scale) {
        println!(
            "{:<15} {:>18.3} {:>18.0} {:>18.0}",
            r.name, r.normalized_runtime, r.rate_linux, r.rate_latr
        );
    }
    println!("\npaper: graph500 −5.7%; improvement grows with migration rate");
}
