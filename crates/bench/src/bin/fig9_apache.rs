//! Figs. 1 & 9: Apache requests/second and TLB shootdowns/second vs worker
//! cores, under Linux, ABIS and Latr.
//!
//! Paper result: Latr +59.9% over Linux and +37.9% over ABIS at 12 cores,
//! while handling 46.3% more shootdowns; ABIS loses to Linux below ~8
//! cores from access-bit overhead and wins above.

use latr_bench::{fig9_points, print_title, RunScale};
use latr_workloads::PolicyKind;

fn main() {
    let scale = RunScale::from_args();
    print_title("Figures 1 & 9 — Apache throughput and shootdown rate");
    let linux = fig9_points(PolicyKind::Linux, scale);
    let abis = fig9_points(PolicyKind::Abis, scale);
    let latr = fig9_points(PolicyKind::latr_default(), scale);
    println!(
        "{:<7} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "cores", "linux req/s", "abis req/s", "latr req/s", "linux sd/s", "abis sd/s", "latr sd/s"
    );
    for ((l, a), t) in linux.iter().zip(&abis).zip(&latr) {
        println!(
            "{:<7} {:>12.0} {:>12.0} {:>12.0}   {:>12.0} {:>12.0} {:>12.0}",
            l.cores,
            l.requests_per_sec,
            a.requests_per_sec,
            t.requests_per_sec,
            l.shootdowns_per_sec,
            a.shootdowns_per_sec,
            t.shootdowns_per_sec
        );
    }
    let last = linux.len() - 1;
    println!(
        "\nat {} cores: latr vs linux {:+.1}%, latr vs abis {:+.1}%, shootdowns {:+.1}%",
        latr[last].cores,
        (latr[last].requests_per_sec / linux[last].requests_per_sec - 1.0) * 100.0,
        (latr[last].requests_per_sec / abis[last].requests_per_sec - 1.0) * 100.0,
        (latr[last].shootdowns_per_sec / linux[last].shootdowns_per_sec - 1.0) * 100.0,
    );
    println!("paper: +59.9% vs Linux, +37.9% vs ABIS, +46.3% shootdowns handled");
}
