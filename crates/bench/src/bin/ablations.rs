//! Design-choice ablations called out in §4.1, §4.5 and §8:
//!
//! 1. **States per core** (16/32/64/128) vs the fallback-IPI rate under a
//!    publish burst — "Latr creates a trade-off between the number of
//!    per-core Latr states and the cost of state sweeps" (§8).
//! 2. **Sweep trigger**: tick-only vs tick + context switch (§4.1), on the
//!    context-switch-heavy canneal profile.
//! 3. **Reclamation delay**: 1/2/4 scheduler ticks vs parked memory (§6.4
//!    bounds the overhead at ≈21 MB per interval).
//! 4. **PCID** on/off (§4.5) on Apache at 12 cores.
//! 5. **Sweep watchdog** on/off under an injected sweeper stall (§9 of
//!    DESIGN.md): bounded vs unbounded reclaim latency, same safety.

use latr_arch::{MachinePreset, Topology};
use latr_bench::print_degradation_summary;
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{metrics, MachineConfig};
use latr_sim::{MILLISECOND, SECOND};
use latr_workloads::{
    run_experiment, ApacheWorkload, MunmapMicrobench, ParsecProfile, ParsecWorkload, PolicyKind,
};

fn config() -> MachineConfig {
    MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C))
}

fn main() {
    println!("=== Ablation 1: states per core vs fallback IPIs (publish burst) ===");
    println!(
        "{:<16} {:>16} {:>16}",
        "states/core", "states saved", "fallback rounds"
    );
    for states in [16usize, 32, 64, 128] {
        let cfg = LatrConfig {
            states_per_core: states,
            ..LatrConfig::default()
        };
        // A zero-gap burst publishes much faster than sweeps retire.
        let wl = MunmapMicrobench::new(2, 1, 400).with_gap(0);
        let (_, machine) =
            run_experiment(config(), PolicyKind::Latr(cfg), Box::new(wl), 10 * SECOND);
        println!(
            "{:<16} {:>16} {:>16}",
            states,
            machine.stats.counter(metrics::LATR_STATES_SAVED),
            machine.stats.counter(metrics::LATR_FALLBACK_IPIS)
        );
    }

    println!("\n=== Ablation 2: sweep on context switch (canneal, 16 cores) ===");
    for (label, on) in [("tick + context switch", true), ("tick only", false)] {
        let cfg = LatrConfig {
            sweep_on_context_switch: on,
            ..LatrConfig::default()
        };
        let profile = ParsecProfile::by_name("canneal").unwrap();
        let (res, _) = run_experiment(
            config(),
            PolicyKind::Latr(cfg),
            Box::new(ParsecWorkload::new(profile, 16, 200)),
            60 * SECOND,
        );
        println!(
            "{label:<24} runtime {:>9.2} ms",
            res.duration_ns as f64 / 1e6
        );
    }

    println!("\n=== Ablation 3: reclamation delay (ticks) vs parked memory ===");
    println!(
        "{:<8} {:>18} {:>18} {:>14}",
        "ticks", "deferred frames", "peak parked (KiB)", "leaked frames"
    );
    for ticks in [1u32, 2, 4] {
        let cfg = LatrConfig {
            reclaim_ticks: ticks,
            ..LatrConfig::default()
        };
        let (_, machine) = run_experiment(
            config(),
            PolicyKind::Latr(cfg),
            Box::new(ApacheWorkload::new(8)),
            200 * MILLISECOND,
        );
        let peak_parked = machine
            .stats
            .histogram("latr_parked_bytes")
            .map_or(0, |h| h.max());
        // Frames still held by the shared page cache are resident file
        // pages, not leaks.
        let leaked = machine.frames.allocated_count() - machine.page_cache.resident_pages();
        println!(
            "{:<8} {:>18} {:>18} {:>14}",
            ticks,
            machine.stats.counter(metrics::LATR_DEFERRED_FRAMES),
            peak_parked / 1024,
            leaked
        );
    }

    println!("\n=== Ablation 4: PCID on/off (§4.5, canneal — context-switch heavy) ===");
    for (label, pcid) in [("pcid off (Linux 4.10)", false), ("pcid on", true)] {
        let mut cfg = config();
        cfg.pcid_enabled = pcid;
        let profile = ParsecProfile::by_name("canneal").unwrap();
        let (res, _) = run_experiment(
            cfg,
            PolicyKind::latr_default(),
            Box::new(ParsecWorkload::new(profile, 16, 300)),
            60 * SECOND,
        );
        println!(
            "{label:<24} runtime {:>9.2} ms  (PCID avoids the TLB flush on every context switch)",
            res.duration_ns as f64 / 1e6
        );
    }

    println!("\n=== Ablation 5: sweep watchdog on/off under a stalled sweeper ===");
    // Core 1's sweeps stop for 20 ms while munmaps keep publishing states
    // that name it; one run in ten also drops the IPI that would recover
    // a synchronous fallback round.
    let plan =
        FaultPlan::default()
            .with_ipi_drop(0.10)
            .with_stall(1, MILLISECOND, 20 * MILLISECOND);
    for (label, watchdog_ticks) in [("watchdog on (4 ticks)", 4u32), ("watchdog off", 0)] {
        let cfg = LatrConfig {
            watchdog_ticks,
            ..LatrConfig::default()
        };
        let mut machine_config = config();
        machine_config.faults = Some(plan.clone());
        let wl = MunmapMicrobench::new(4, 1, 200).with_gap(50_000);
        let (_, machine) =
            run_experiment(machine_config, PolicyKind::Latr(cfg), Box::new(wl), SECOND);
        println!("{label}:");
        print_degradation_summary(&machine);
    }
}
