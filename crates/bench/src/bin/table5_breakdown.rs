//! Table 5: a breakdown of operations in Latr compared to Linux when
//! running the Apache benchmark.
//!
//! Paper result: saving a Latr state 132.3 ns; a single state sweep
//! 158.0 ns; a single Linux shootdown 1594.2 ns — Latr reduces the time
//! for a shootdown by up to 81.8%.
//!
//! Two sources are reported: the simulation's calibrated cost model, and
//! *real hardware measurements* of the lock-free `latr_core::rt`
//! implementation of the same data structures on this machine.

use latr_bench::{apache12, print_title, RunScale};
use latr_core::rt::{RtInvalidation, RtRegistry};
use latr_workloads::PolicyKind;
use std::time::Instant;

fn measure_rt(cores: usize) -> (f64, f64) {
    let registry = RtRegistry::new(cores, 64);
    let inv = RtInvalidation {
        mm: 1,
        start: 0x1000,
        end: 0x2000,
    };
    // Publish+drain in lockstep so the queue never overflows.
    let rounds = 200_000u64;
    let start = Instant::now();
    for _ in 0..rounds {
        registry.publish(0, inv, 0b10).unwrap();
        std::hint::black_box(registry.sweep(1));
    }
    let both = start.elapsed().as_nanos() as f64 / rounds as f64;
    // Sweep-only cost over empty queues.
    let start = Instant::now();
    for _ in 0..rounds {
        std::hint::black_box(registry.sweep(2));
    }
    let sweep_empty = start.elapsed().as_nanos() as f64 / rounds as f64;
    let publish = (both - sweep_empty).max(0.0) / 2.0; // split the pair
    (publish, both - publish)
}

fn main() {
    let scale = RunScale::from_args();
    print_title("Table 5 — breakdown of operations (Apache on 12 cores)");

    let linux = apache12(PolicyKind::Linux, scale);
    let latr = apache12(PolicyKind::latr_default(), scale);
    let model = latr_arch::CostModel::calibrated();
    let linux_shootdown_cpu =
        model.ipi_send(1) + model.interrupt_overhead + model.invlpg + model.ack(1);

    println!("simulated (calibrated cost model):");
    println!(
        "  saving a Latr state          {:>8} ns   (paper: 132.3 ns)",
        model.latr_state_save
    );
    println!(
        "  single state sweep (hit)     {:>8} ns   (paper: 158.0 ns)",
        model.latr_sweep_hit
    );
    println!(
        "  single Linux TLB shootdown   {:>8} ns   (paper: 1594.2 ns)",
        linux_shootdown_cpu
    );
    println!(
        "  reduction                    {:>7.1} %   (paper: 81.8 %)",
        (1.0 - (model.latr_state_save + model.latr_sweep_hit) as f64 / linux_shootdown_cpu as f64)
            * 100.0
    );
    println!(
        "  linux shootdown wait (measured in-run): mean {:.0} ns",
        linux.shootdown_wait_ns.map_or(0.0, |s| s.mean)
    );
    println!(
        "  latr states saved {} / fallback IPI rounds {}",
        latr.shootdowns_per_sec as u64, latr.latr_fallbacks
    );

    let (publish_ns, sweep_ns) = measure_rt(12);
    println!("\nreal hardware (lock-free latr_core::rt on this machine):");
    println!("  rt publish (state save)      {publish_ns:>8.1} ns");
    println!("  rt sweep (one hit)           {sweep_ns:>8.1} ns");
}
