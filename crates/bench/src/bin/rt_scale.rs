//! Real-thread scaling benchmark: the lock-free rt runtime at 4–120 OS
//! threads, emitted as `BENCH_rt_scale.json`.
//!
//! Runs the munmap-heavy soft-TLB loop of [`latr_bench::rt_scale`] on
//! three engine stacks — the sharded/cached-frontier scaling path, the
//! reference mutex-and-scan path, and a synchronous mailbox "IPI"
//! baseline — and writes the measurements to `BENCH_rt_scale.json` in
//! the current directory. See EXPERIMENTS.md ("rt scaling") for how to
//! read the file.
//!
//! ```sh
//! cargo run --release -p latr-bench --bin rt_scale           # full run
//! cargo run --release -p latr-bench --bin rt_scale -- --quick
//! ```
//!
//! Exits non-zero if any point trips the reclamation canary (an item
//! collected before every core swept past its due tick): an unsafe run
//! disqualifies every speedup number in it.

use latr_bench::print_title;
use latr_bench::rt_scale::{
    canary_passed, ratios_vs, rt_scale_duration, rt_scale_json, rt_scale_threads,
    run_rt_scale_point, ScaleEngine,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_title("rt scaling — real threads, lazy engines vs sync-IPI baseline");
    println!(
        "{:<15} {:>8} {:>13} {:>10} {:>12} {:>12} {:>10} {:>7}",
        "engine", "threads", "ops/sec", "unmaps", "sweep p50", "sweep p99", "lag", "canary"
    );

    let mut points = Vec::new();
    for threads in rt_scale_threads(quick) {
        for engine in ScaleEngine::all() {
            let p = run_rt_scale_point(engine, threads, rt_scale_duration(quick, threads));
            println!(
                "{:<15} {:>8} {:>13.0} {:>10} {:>10}ns {:>10}ns {:>10.2} {:>7}",
                p.engine,
                p.threads,
                p.ops_per_sec,
                p.unmaps,
                p.sweep_p50_ns,
                p.sweep_p99_ns,
                p.reclaim_lag_ticks,
                if p.canary_ok { "ok" } else { "FAIL" },
            );
            points.push(p);
        }
    }

    println!();
    for (threads, r) in ratios_vs(&points, "lazy-reference") {
        println!("sharded vs reference at {threads:>3} threads: {r:.2}x (ops/sec)");
    }
    for (threads, r) in ratios_vs(&points, "sync-ipi") {
        println!("lazy vs sync-IPI     at {threads:>3} threads: {r:.2}x (ops/sec)");
    }

    let json = rt_scale_json(&points, quick);
    std::fs::write("BENCH_rt_scale.json", &json).expect("write BENCH_rt_scale.json");
    println!("\nwrote BENCH_rt_scale.json");

    if !canary_passed(&points) {
        eprintln!(
            "CANARY VIOLATED: an item was reclaimed before its grace elapsed — run is unsafe"
        );
        std::process::exit(2);
    }
}
