//! Table 4: L3 cache miss ratios, Linux vs Latr.
//!
//! Paper result: Latr's miss ratios are very close to (or better than)
//! Linux's — removed IPI handlers reduce pollution; the Latr states
//! occupy <1% of the LLC. Relative changes span −3.27%..+0.84%.

use latr_bench::{print_title, table4_rows, RunScale};

fn main() {
    let scale = RunScale::from_args();
    print_title("Table 4 — LLC miss ratios");
    println!(
        "{:<16} {:>12} {:>12} {:>16}",
        "application", "linux", "latr", "relative change"
    );
    for r in table4_rows(scale) {
        println!(
            "{:<16} {:>11.2}% {:>11.2}% {:>15.2}%",
            r.name,
            r.linux * 100.0,
            r.latr * 100.0,
            r.relative_change_pct()
        );
    }
    println!("\npaper: changes between −3.27% and +0.84%");
}
