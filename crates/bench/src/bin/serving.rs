//! Open-loop serving tail latency under every policy → `BENCH_serving.json`.
//!
//! Runs the open-loop serving workload (Poisson/bursty arrivals across
//! 24 processes on the 120-core preset, one mmap/touch/munmap cycle per
//! request) under Linux, ABIS, and Latr, plus Latr under two fault
//! plans, and reports the p50/p99/p999 request- and shootdown-latency
//! percentiles. Every variant is first gated by a small run repeated on
//! the fast, `reference`, and parallel engines, which must fingerprint
//! identically — a divergent engine disqualifies the curves.
//!
//! ```sh
//! cargo run --release -p latr-bench --bin serving           # ~1M requests/policy
//! cargo run --release -p latr-bench --bin serving -- --quick
//! ```
//!
//! Exits non-zero if any cross-engine gate fails.

use latr_bench::print_title;
use latr_bench::serving::{
    run_serving_gate, run_serving_point, serving_json, serving_requests_per_worker,
    serving_variants,
};
use latr_kernel::EngineBackend;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 0xC0FF;
    let engines = [
        EngineBackend::Fast,
        EngineBackend::Reference,
        EngineBackend::Parallel(4),
    ];
    print_title("Serving tail latency — open loop, 120 cores, per-policy percentiles");

    let variants = serving_variants();
    println!("cross-engine fingerprint gates (small runs):");
    let mut gates = Vec::new();
    for v in &variants {
        let gate = run_serving_gate(v, &engines, seed);
        println!(
            "  {:<18} {}",
            gate.label,
            if gate.passed() { "ok" } else { "DIVERGED" }
        );
        gates.push(gate);
    }

    println!();
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "variant", "requests", "wall (ms)", "p50 (us)", "p99 (us)", "p999 (us)", "events"
    );
    let mut curves = Vec::new();
    for v in &variants {
        let p = run_serving_point(
            EngineBackend::Fast,
            v,
            serving_requests_per_worker(quick),
            seed,
        );
        let us = |n: u64| n as f64 / 1e3;
        let s = p.request_ns.clone().expect("requests served");
        println!(
            "{:<18} {:>10} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>12}",
            p.label,
            p.requests,
            p.wall_ns as f64 / 1e6,
            us(s.p50),
            us(s.p99),
            us(s.p999),
            p.events,
        );
        curves.push(p);
    }

    let all_passed = gates.iter().all(|g| g.passed());
    println!();
    println!(
        "gates: {}",
        if all_passed {
            "fingerprints identical on every engine for every variant"
        } else {
            "DIVERGED — see the differential suite"
        }
    );

    let json = serving_json(&gates, &curves, quick);
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");

    if !all_passed {
        std::process::exit(1);
    }
}
