//! The open-loop tail-latency benchmark behind `BENCH_serving.json`
//! (PR 10).
//!
//! Runs [`latr_workloads::ServingWorkload`] on the 120-core preset under
//! each TLB-coherence policy (Linux, ABIS, Latr) plus Latr under two
//! fault plans (degraded mode as a first-class curve, not a footnote),
//! and reports the p50/p99/p999 of the request- and shootdown-latency
//! histograms. Requests arrive on an open loop — a worker stalled in a
//! synchronous shootdown keeps accumulating queueing delay — so the tail
//! percentiles, not the mean, are where the policies separate.
//!
//! Before the full-size measurement, every variant is gated: a small run
//! is repeated on the fast, `reference`, and parallel engines and must
//! produce bit-identical [`Machine::fingerprint`]s (the PR-4 pattern —
//! a fast engine that changes the simulation disqualifies itself).

use std::time::Instant;

use latr_arch::{MachinePreset, Topology};
use latr_core::LatrConfig;
use latr_faults::FaultPlan;
use latr_kernel::{metrics, EngineBackend, Machine, MachineConfig};
use latr_sim::{Summary, MILLISECOND, SECOND};
use latr_workloads::{ArrivalProcess, PolicyKind, ServingWorkload};

use crate::hotpath::fnv1a;

/// Which policy (and faults) one serving curve runs under.
#[derive(Clone, Debug)]
pub struct ServingVariant {
    /// Curve label: `"linux"`, `"abis"`, `"latr"`, `"latr+ipi-chaos"`,
    /// `"latr+sweep-chaos"`.
    pub label: &'static str,
    /// The TLB-coherence policy.
    pub policy: PolicyKind,
    /// Fault plan for the degraded-mode curves.
    pub faults: Option<FaultPlan>,
}

/// The benchmark's shape: the paper's 8-socket, 120-core machine.
pub fn serving_shape() -> (Topology, usize) {
    (Topology::preset(MachinePreset::LargeNuma8S120C), 120)
}

/// Worker processes: 24 address spaces × 5 worker threads each — many
/// mms for the per-`(mm, tick)` sweep grouping, few enough workers per
/// mm that `mmap_sem` contention stays Apache-shaped.
pub const SERVING_PROCS: usize = 24;

/// Requests each worker admits. Full mode totals 120 × 8400 = 1,008,000
/// simulated connections per policy; quick mode trims to a smoke run.
pub fn serving_requests_per_worker(quick: bool) -> u64 {
    if quick {
        50
    } else {
        8_400
    }
}

/// The measured curves: three clean policies plus Latr under two fault
/// plans — dropped/delayed IPIs (stressing the watchdog and retry
/// paths) and missed ticks + a stalled sweeper (stressing the gated
/// reclamation and escalation paths).
pub fn serving_variants() -> Vec<ServingVariant> {
    vec![
        ServingVariant {
            label: "linux",
            policy: PolicyKind::Linux,
            faults: None,
        },
        ServingVariant {
            label: "abis",
            policy: PolicyKind::Abis,
            faults: None,
        },
        ServingVariant {
            label: "latr",
            policy: PolicyKind::latr_default(),
            faults: None,
        },
        ServingVariant {
            label: "latr+ipi-chaos",
            policy: PolicyKind::latr_default(),
            // Overflow storms force publishes onto the fallback IPI path,
            // where the drops and delays then bite (a pure IPI plan is
            // inert for Latr — lazy sweeps send none).
            faults: Some(
                FaultPlan::default()
                    .with_ipi_drop(0.25)
                    .with_ipi_delay(0.25, 200_000)
                    .with_storm(2 * MILLISECOND, 10 * MILLISECOND)
                    .with_storm(100 * MILLISECOND, 150 * MILLISECOND),
            ),
        },
        ServingVariant {
            label: "latr+sweep-chaos",
            policy: PolicyKind::latr_default(),
            faults: Some(FaultPlan::default().with_tick_miss(0.30).with_stall(
                1,
                MILLISECOND,
                8 * MILLISECOND,
            )),
        },
    ]
}

/// One variant × engine measurement.
#[derive(Clone, Debug)]
pub struct ServingPoint {
    /// Variant label (see [`serving_variants`]).
    pub label: String,
    /// Engine label: `"fast"`, `"reference"`, or `"parallel:<n>"`.
    pub engine: String,
    /// Simulated cores.
    pub cores: usize,
    /// Requests served.
    pub requests: u64,
    /// Wall-clock nanoseconds for the run.
    pub wall_ns: u128,
    /// Events the queue delivered.
    pub events: u64,
    /// Request latency (arrival → munmap completion, ns).
    pub request_ns: Option<Summary>,
    /// Remote-shootdown wait (sync rounds only, ns).
    pub shootdown_ns: Option<Summary>,
    /// `munmap()` syscall latency (ns).
    pub munmap_ns: Option<Summary>,
    /// FNV-1a of the full fingerprint, for the cross-engine gate.
    pub fingerprint: u64,
}

/// Runs one serving curve on the chosen engine. The `Reference` engine
/// also runs the reference (scan-every-queue) Latr sweep, measuring the
/// full PR-4 baseline stack, exactly as the hotpath bench does.
pub fn run_serving_point(
    backend: EngineBackend,
    variant: &ServingVariant,
    requests_per_worker: u64,
    seed: u64,
) -> ServingPoint {
    let (topology, cores) = serving_shape();
    let mut config = MachineConfig::new(topology);
    config.seed = seed;
    config.trace_capacity = 0;
    config.oracle = false;
    config.engine = backend;
    config.faults = variant.faults.clone();
    let policy = match variant.policy {
        PolicyKind::Latr(_) => PolicyKind::Latr(LatrConfig {
            reference_sweep: backend == EngineBackend::Reference,
            ..LatrConfig::default()
        }),
        other => other,
    };
    let workload = ServingWorkload::new(cores, SERVING_PROCS, requests_per_worker)
        .with_arrivals(ArrivalProcess::Bursty {
            period: 4 * MILLISECOND,
            on_pct: 25,
            factor: 2.0,
        })
        .with_seed(seed ^ 0x5e21);
    let mut machine = Machine::new(config);
    let start = Instant::now();
    machine.run(Box::new(workload), policy.build(), 60 * SECOND);
    let wall = start.elapsed().as_nanos().max(1);
    let summary = |name: &str| machine.stats.histogram(name).map(|h| h.summary());
    ServingPoint {
        label: variant.label.to_string(),
        engine: backend.label(),
        cores,
        requests: machine.stats.counter(metrics::WORK_UNITS),
        wall_ns: wall,
        events: machine.events_delivered(),
        request_ns: summary(metrics::SERVING_REQUEST_NS),
        shootdown_ns: summary(metrics::SHOOTDOWN_NS),
        munmap_ns: summary(metrics::MUNMAP_NS),
        fingerprint: fnv1a(&machine.fingerprint()),
    }
}

/// Cross-engine gate for one variant: the same small run on every
/// engine, which must fingerprint identically.
#[derive(Clone, Debug)]
pub struct ServingGate {
    /// Variant label.
    pub label: String,
    /// `(engine label, fingerprint)` per engine.
    pub fingerprints: Vec<(String, u64)>,
}

impl ServingGate {
    /// Whether every engine agreed.
    pub fn passed(&self) -> bool {
        self.fingerprints.windows(2).all(|w| w[0].1 == w[1].1)
    }
}

/// Runs the cross-engine fingerprint gate for `variant`.
pub fn run_serving_gate(
    variant: &ServingVariant,
    engines: &[EngineBackend],
    seed: u64,
) -> ServingGate {
    let fingerprints = engines
        .iter()
        .map(|&e| {
            let p = run_serving_point(e, variant, serving_requests_per_worker(true), seed);
            (p.engine, p.fingerprint)
        })
        .collect();
    ServingGate {
        label: variant.label.to_string(),
        fingerprints,
    }
}

fn summary_json(s: &Option<Summary>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
            s.count, s.mean, s.p50, s.p90, s.p99, s.p999, s.max
        ),
    }
}

/// Renders the gate + curve set as the `BENCH_serving.json` document.
/// Hand-rolled like `hotpath_json`: flat schema, vendored serde stub.
pub fn serving_json(gates: &[ServingGate], curves: &[ServingPoint], quick: bool) -> String {
    use std::fmt::Write as _;
    let (_, cores) = serving_shape();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serving\",");
    let _ = writeln!(out, "  \"workload\": \"serving-open-loop\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"procs\": {SERVING_PROCS},");
    let _ = writeln!(
        out,
        "  \"requests_per_policy\": {},",
        cores as u64 * serving_requests_per_worker(quick)
    );
    let _ = writeln!(out, "  \"gates\": [");
    for (i, g) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        let fps: Vec<String> = g
            .fingerprints
            .iter()
            .map(|(e, f)| format!("\"{e}\": \"{f:016x}\""))
            .collect();
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"fingerprints_match\": {}, {}}}{comma}",
            g.label,
            g.passed(),
            fps.join(", "),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"curves\": [");
    for (i, p) in curves.iter().enumerate() {
        let comma = if i + 1 < curves.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"engine\": \"{}\", \"requests\": {}, \
             \"wall_ns\": {}, \"events\": {}, \"request_ns\": {}, \
             \"shootdown_ns\": {}, \"munmap_ns\": {}, \"fingerprint\": \"{:016x}\"}}{comma}",
            p.label,
            p.engine,
            p.requests,
            p.wall_ns,
            p.events,
            summary_json(&p.request_ns),
            summary_json(&p.shootdown_ns),
            summary_json(&p.munmap_ns),
            p.fingerprint,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"gates_passed\": {}",
        gates.iter().all(ServingGate::passed)
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_policies_and_chaos() {
        let vs = serving_variants();
        assert_eq!(vs.len(), 5);
        assert_eq!(vs.iter().filter(|v| v.faults.is_some()).count(), 2);
        let labels: Vec<_> = vs.iter().map(|v| v.label).collect();
        assert!(labels.contains(&"linux"));
        assert!(labels.contains(&"abis"));
        assert!(labels.contains(&"latr"));
    }

    #[test]
    fn json_is_well_formed() {
        let gate = ServingGate {
            label: "latr".to_string(),
            fingerprints: vec![("fast".to_string(), 7), ("reference".to_string(), 7)],
        };
        let point = ServingPoint {
            label: "latr".to_string(),
            engine: "fast".to_string(),
            cores: 120,
            requests: 10,
            wall_ns: 1,
            events: 1,
            request_ns: Some(Summary {
                count: 10,
                mean: 5.0,
                min: 1,
                p50: 4,
                p90: 8,
                p99: 9,
                p999: 10,
                max: 10,
            }),
            shootdown_ns: None,
            munmap_ns: None,
            fingerprint: 7,
        };
        let json = serving_json(&[gate], &[point], true);
        assert!(json.contains("\"gates_passed\": true"));
        assert!(json.contains("\"p999\": 10"));
        assert!(json.contains("\"shootdown_ns\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n}"), "no trailing comma:\n{json}");
    }

    #[test]
    fn gate_detects_divergence() {
        let gate = ServingGate {
            label: "latr".to_string(),
            fingerprints: vec![("fast".to_string(), 7), ("reference".to_string(), 8)],
        };
        assert!(!gate.passed());
        assert!(serving_json(&[gate], &[], true).contains("\"gates_passed\": false"));
    }
}
