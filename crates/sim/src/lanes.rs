//! The lane-sharded parallel simulation engine (ISSUE 9).
//!
//! [`LaneSet`] is a drop-in replacement for [`EventQueue`](crate::EventQueue)
//! that partitions pending events into per-worker **lanes**, each backed by
//! its own calendar queue and maintained by a real OS thread. Simulated time
//! is cut into **epochs** whose width derives from the scheduler-tick
//! quantum; the engine is a conservative-lookahead design in the classic
//! PDES sense:
//!
//! * **Coordinator** (the thread calling [`schedule`](LaneSet::schedule) /
//!   [`pop`](LaneSet::pop)) executes event handlers strictly in global
//!   `(time, id)` order — the *exact* order the sequential engines deliver,
//!   with the same schedule-order id as the same-instant tiebreaker. This
//!   is what keeps `Machine::fingerprint()` bit-identical regardless of
//!   worker count: the merge order is `(time, lane, seq)`-deterministic,
//!   never wall-clock arrival.
//! * **Workers** own the lane calendars. At each epoch barrier every worker
//!   drains its lane's inbox (events filed during the finished epoch that
//!   fall beyond it) into its calendar and extracts the next epoch's events
//!   into a sorted *ready run* handed to the coordinator. Within an epoch
//!   the coordinator never touches a calendar and a worker never sees an
//!   event inside the coordinator's window — the lookahead invariant.
//! * Events scheduled *inside* the current window (handler-to-handler
//!   causality, e.g. op completions) stay coordinator-local in per-lane
//!   **staging** heaps, so they are deliverable immediately without any
//!   cross-thread traffic.
//!
//! Cancellation is not supported (the kernel's machine loop never cancels);
//! that keeps pops free of the cancelled-set hash probe the sequential
//! queues pay per event.
//!
//! The epoch/handoff protocol itself is [`EpochBarrier`]; under
//! `--cfg loom` its lock comes from the vendored loom shim so the
//! `loom_lanes` test can exhaustively model the generation handshake.

use crate::event::{Calendar, EventId, ScheduledEvent};
use crate::time::Time;
use crate::Nanos;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Lock shim: `parking_lot` normally, **loom** under `--cfg loom` (same
/// two-world pattern as `crates/core/src/rt/sync.rs`).
mod sync {
    #[cfg(not(loom))]
    pub use parking_lot::Mutex;
    // The vendored `parking_lot` is a shim over `std::sync::Mutex` whose
    // guard *is* `std::sync::MutexGuard`, so std's `Condvar` pairs with it.
    #[cfg(not(loom))]
    pub use std::sync::Condvar;

    #[cfg(loom)]
    pub use loom::sync::{Condvar, Mutex};
}

/// State of the epoch handshake, all under one lock so the protocol is a
/// plain state machine (loom models the lock as a scheduling point).
#[derive(Debug)]
struct BarrierState {
    /// Epoch generation: bumped once per [`EpochBarrier::open`].
    gen: u64,
    /// Horizon (exclusive, ns) of the epoch `gen` opened.
    horizon_ns: u64,
    /// Workers that have acknowledged `gen`.
    acks: u64,
    /// Set once; workers exit their loops.
    shutdown: bool,
}

/// The epoch barrier: coordinator `open`s a generation with a horizon,
/// workers `wait_open` / `ack` it exactly once each, the coordinator
/// `wait_acked`s for all of them. Exposed (doc-hidden) so the loom test
/// can model-check the handshake.
#[doc(hidden)]
#[derive(Debug)]
pub struct EpochBarrier {
    workers: u64,
    state: sync::Mutex<BarrierState>,
    /// Coordinator → workers: a new generation opened (or shutdown).
    work_cv: sync::Condvar,
    /// Workers → coordinator: another ack landed.
    done_cv: sync::Condvar,
}

impl EpochBarrier {
    #[doc(hidden)]
    pub fn new(workers: usize) -> Self {
        EpochBarrier {
            workers: workers as u64,
            state: sync::Mutex::new(BarrierState {
                gen: 0,
                horizon_ns: 0,
                // Generation 0 never runs, so it starts fully acked.
                acks: workers as u64,
                shutdown: false,
            }),
            work_cv: sync::Condvar::new(),
            done_cv: sync::Condvar::new(),
        }
    }

    /// Coordinator: opens the next epoch with the given horizon. The
    /// horizon must be monotone — each epoch looks strictly further ahead.
    /// Returns the new generation.
    #[doc(hidden)]
    pub fn open(&self, horizon_ns: u64) -> u64 {
        let mut s = self.state.lock();
        debug_assert!(horizon_ns > s.horizon_ns || s.gen == 0);
        debug_assert_eq!(
            s.acks, self.workers,
            "opened before the last epoch was acked"
        );
        s.gen += 1;
        s.horizon_ns = horizon_ns;
        s.acks = 0;
        let gen = s.gen;
        drop(s);
        self.work_cv.notify_all();
        gen
    }

    /// Worker: blocks until a generation newer than `my_gen` opens (or
    /// shutdown). Returns the new `(generation, horizon_ns)`.
    #[doc(hidden)]
    pub fn wait_open(&self, my_gen: u64) -> Option<(u64, u64)> {
        let mut s = self.state.lock();
        loop {
            if s.shutdown {
                return None;
            }
            if s.gen > my_gen {
                return Some((s.gen, s.horizon_ns));
            }
            #[cfg(not(loom))]
            {
                s = self.work_cv.wait(s).expect("barrier lock poisoned");
            }
            #[cfg(loom)]
            {
                s = self.work_cv.wait(s);
            }
        }
    }

    /// Worker: acknowledges `gen` after finishing its barrier work.
    /// Exactly once per worker per generation — over-acking panics.
    #[doc(hidden)]
    pub fn ack(&self, gen: u64) {
        let mut s = self.state.lock();
        assert_eq!(s.gen, gen, "ack for a generation that is not current");
        s.acks += 1;
        assert!(
            s.acks <= self.workers,
            "epoch acked more times than there are workers"
        );
        drop(s);
        self.done_cv.notify_all();
    }

    /// Coordinator: blocks until all workers have acked `gen`.
    #[doc(hidden)]
    pub fn wait_acked(&self, gen: u64) {
        let mut s = self.state.lock();
        loop {
            debug_assert_eq!(s.gen, gen);
            if s.acks == self.workers {
                return;
            }
            #[cfg(not(loom))]
            {
                s = self.done_cv.wait(s).expect("barrier lock poisoned");
            }
            #[cfg(loom)]
            {
                s = self.done_cv.wait(s);
            }
        }
    }

    /// Coordinator: wakes every worker into its exit path.
    #[doc(hidden)]
    pub fn shutdown(&self) {
        let mut s = self.state.lock();
        s.shutdown = true;
        drop(s);
        self.work_cv.notify_all();
    }

    /// The horizon of the currently open generation (ns). For assertions.
    #[doc(hidden)]
    pub fn horizon_ns(&self) -> u64 {
        self.state.lock().horizon_ns
    }
}

/// Worker-owned side of one lane: the calendar plus the handoff slots.
struct LaneCore<E> {
    calendar: Calendar<E>,
    /// Events filed by the coordinator during the current epoch that fall
    /// at or beyond its horizon. Drained into the calendar at the next
    /// barrier. Never contains an event inside the coordinator's window —
    /// that is the lookahead invariant the loom test checks.
    inbox: Vec<ScheduledEvent<E>>,
    /// The extraction result the worker hands back: the next epoch's
    /// events, ascending by `(time, id)`.
    ready: Vec<ScheduledEvent<E>>,
    /// Min `(time, id)` left in the calendar after extraction.
    next_head: Option<(Time, EventId)>,
    /// Anchor for calendar inserts: the horizon of the last-acked epoch.
    anchor: Time,
    /// Scratch for `extract_until`'s far-heap merge.
    scratch: Vec<ScheduledEvent<E>>,
}

/// Shared between the coordinator and the workers.
struct Shared<E> {
    lanes: Vec<sync::Mutex<LaneCore<E>>>,
    barrier: EpochBarrier,
}

impl<E: Send> Shared<E> {
    /// One worker's barrier duty for its lane: drain the inbox into the
    /// calendar, extract everything below the new horizon into the ready
    /// run, republish the calendar head.
    fn barrier_work(&self, lane: usize, horizon: Time) {
        let mut core = self.lanes[lane].lock();
        let core = &mut *core;
        let anchor = core.anchor;
        for ev in core.inbox.drain(..) {
            debug_assert!(ev.time >= anchor, "inbox event inside an already-run epoch");
            core.calendar.insert(ev, anchor);
        }
        debug_assert!(
            core.ready.is_empty(),
            "ready run of the previous epoch not consumed"
        );
        core.calendar
            .extract_until(horizon, &mut core.ready, &mut core.scratch);
        // Descending, so the coordinator pops the minimum from the tail.
        core.ready.reverse();
        core.next_head = core.calendar.peek_min_key();
        core.anchor = horizon;
    }
}

fn worker_loop<E: Send>(shared: Arc<Shared<E>>, lane: usize) {
    let mut my_gen = 0u64;
    while let Some((gen, horizon_ns)) = shared.barrier.wait_open(my_gen) {
        my_gen = gen;
        shared.barrier_work(lane, Time::from_ns(horizon_ns));
        shared.barrier.ack(gen);
    }
}

/// Coordinator-side view of one lane.
struct LaneFront<E> {
    /// The current epoch's ready run, **descending** by `(time, id)` so
    /// the minimum pops from the tail.
    run: Vec<ScheduledEvent<E>>,
    /// Events scheduled during the current epoch that land inside it:
    /// poppable immediately, never cross a thread. `ScheduledEvent`'s
    /// `Ord` is reversed, so this `BinaryHeap` pops earliest-first.
    staging: BinaryHeap<ScheduledEvent<E>>,
    /// Min `(time, id)` this lane holds beyond the current window: the
    /// calendar head reported at the last barrier, folded with every inbox
    /// push since. Drives epoch skip-ahead.
    beyond: Option<(Time, EventId)>,
}

impl<E> LaneFront<E> {
    /// The lane's minimum poppable `(time, id)` in the current window.
    fn front_key(&self) -> Option<(Time, EventId)> {
        let run = self.run.last().map(|ev| (ev.time, ev.id));
        let staged = self.staging.peek().map(|ev| (ev.time, ev.id));
        match (run, staged) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The lane-sharded engine. Mirrors the [`EventQueue`](crate::EventQueue)
/// surface the kernel's machine loop uses (`schedule`, `schedule_after`,
/// `pop`, `peek_time`, `now`, `delivered`); see the module docs for the
/// design.
pub struct LaneSet<E: Send + 'static> {
    shared: Arc<Shared<E>>,
    workers: Vec<JoinHandle<()>>,
    /// Maps a payload to its home lane (any deterministic map is sound —
    /// homing only balances load, the merge order fixes delivery).
    home: Box<dyn Fn(&E) -> usize>,
    fronts: Vec<LaneFront<E>>,
    /// Exclusive upper bound of the current window.
    horizon: Time,
    /// Epoch width in nanoseconds (derived from the tick quantum).
    width: Nanos,
    gen: u64,
    next_id: u64,
    now: Time,
    popped: u64,
    /// Undelivered events across runs, staging, inboxes and calendars.
    pending: usize,
    /// Test-only negative control: merge same-instant events by lane
    /// rotation (modelling wall-clock arrival) instead of the schedule-id
    /// tiebreak. See `set_unsound_merge`.
    unsound_merge: bool,
}

impl<E: Send + 'static> LaneSet<E> {
    /// Builds a lane set with `workers` lanes/threads and the given epoch
    /// width (ns). `home` assigns every payload to a lane; values are
    /// taken modulo the lane count.
    pub fn new(workers: usize, width: Nanos, home: Box<dyn Fn(&E) -> usize>) -> Self {
        let workers_n = workers.max(1);
        let width = width.max(1);
        let lanes = (0..workers_n)
            .map(|_| {
                sync::Mutex::new(LaneCore {
                    calendar: Calendar::new(),
                    inbox: Vec::new(),
                    ready: Vec::new(),
                    next_head: None,
                    anchor: Time::ZERO,
                    scratch: Vec::new(),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            lanes,
            barrier: EpochBarrier::new(workers_n),
        });
        let handles = (0..workers_n)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("latr-lane-{lane}"))
                    .spawn(move || worker_loop(shared, lane))
                    .expect("spawn lane worker")
            })
            .collect();
        let fronts = (0..workers_n)
            .map(|_| LaneFront {
                run: Vec::new(),
                staging: BinaryHeap::new(),
                beyond: None,
            })
            .collect();
        LaneSet {
            shared,
            workers: handles,
            home,
            fronts,
            horizon: Time::from_ns(width),
            width,
            gen: 0,
            next_id: 0,
            now: Time::ZERO,
            popped: 0,
            pending: 0,
            unsound_merge: false,
        }
    }

    /// Number of lanes (= worker threads).
    pub fn lanes(&self) -> usize {
        self.fronts.len()
    }

    /// Current simulated time (instant of the most recent pop).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of undelivered events.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedules `payload` at absolute instant `time`. Same contract as
    /// [`EventQueue::schedule`](crate::EventQueue::schedule): ids are
    /// minted in call order and tie-break same-instant events, and
    /// scheduling into the past panics.
    pub fn schedule(&mut self, time: Time, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {:?} < {:?}",
            time,
            self.now
        );
        let id = EventId::from_raw(self.next_id);
        self.next_id += 1;
        self.pending += 1;
        let lane = (self.home)(&payload) % self.fronts.len();
        let ev = ScheduledEvent { time, id, payload };
        if time < self.horizon {
            // Inside the window: deliverable this epoch, coordinator-local.
            self.fronts[lane].staging.push(ev);
        } else {
            // Beyond the window: handed to the lane worker at the next
            // barrier. Never readable by the worker before then, and never
            // poppable before its epoch opens — the lookahead bound.
            let key = (time, id);
            let beyond = &mut self.fronts[lane].beyond;
            *beyond = Some(beyond.map_or(key, |b| b.min(key)));
            self.shared.lanes[lane].lock().inbox.push(ev);
        }
        id
    }

    /// Schedules `payload` `delta` nanoseconds after the current clock.
    pub fn schedule_after(&mut self, delta: Nanos, payload: E) -> EventId {
        self.schedule(self.now + delta, payload)
    }

    /// The lane holding the minimum poppable `(time, id)` in the current
    /// window, if any.
    fn min_lane(&self) -> Option<usize> {
        if self.unsound_merge {
            return self.min_lane_unsound();
        }
        let mut best: Option<((Time, EventId), usize)> = None;
        for (i, front) in self.fronts.iter().enumerate() {
            if let Some(key) = front.front_key() {
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Negative-control merge: earliest time wins, but same-instant ties
    /// go to whichever lane the rotation visits first — the order a
    /// wall-clock (arrival-order) merge would produce. Deliberately NOT
    /// equivalent to the sequential engines' id tiebreak.
    fn min_lane_unsound(&self) -> Option<usize> {
        let n = self.fronts.len();
        let start = self.popped as usize % n;
        let mut best: Option<(Time, usize)> = None;
        for off in 0..n {
            let i = (start + off) % n;
            if let Some((t, _)) = self.fronts[i].front_key() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Pops the earliest pending event in global `(time, id)` order,
    /// advancing the clock (and, transparently, the epoch).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            if let Some(lane) = self.min_lane() {
                let front = &mut self.fronts[lane];
                let run_key = front.run.last().map(|ev| (ev.time, ev.id));
                let staged_key = front.staging.peek().map(|ev| (ev.time, ev.id));
                let take_run = match (run_key, staged_key) {
                    (Some(r), Some(s)) => r < s,
                    (Some(_), None) => true,
                    _ => false,
                };
                let ev = if take_run {
                    front.run.pop().expect("run front")
                } else {
                    front.staging.pop().expect("staged front")
                };
                debug_assert!(ev.time >= self.now, "lane merge went backwards in time");
                debug_assert!(ev.time < self.horizon || self.unsound_merge);
                self.now = ev.time;
                self.popped += 1;
                self.pending -= 1;
                return Some((ev.time, ev.payload));
            }
            if self.pending == 0 {
                return None;
            }
            self.advance_epoch();
        }
    }

    /// The instant of the earliest pending event, advancing the epoch as
    /// needed (mirrors `EventQueue::peek_time`'s `&mut self` laziness).
    pub fn peek_time(&mut self) -> Option<Time> {
        loop {
            let min = self
                .fronts
                .iter()
                .filter_map(LaneFront::front_key)
                .min()
                .map(|(t, _)| t);
            if let Some(t) = min {
                return Some(t);
            }
            if self.pending == 0 {
                return None;
            }
            self.advance_epoch();
        }
    }

    /// Runs one epoch barrier: picks the next horizon (skipping empty
    /// epochs straight to the one holding the global minimum), has every
    /// worker drain its inbox and extract its ready run in parallel, then
    /// adopts the runs and reported calendar heads.
    fn advance_epoch(&mut self) {
        debug_assert!(self.fronts.iter().all(|f| f.front_key().is_none()));
        let m = self
            .fronts
            .iter()
            .filter_map(|f| f.beyond)
            .min()
            .expect("pending events must be visible in some lane")
            .0
            .as_ns();
        // The epoch containing `m`, aligned to the width grid.
        let new_h = Time::from_ns(((m / self.width) + 1) * self.width);
        debug_assert!(new_h > self.horizon || self.gen == 0);
        self.gen = self.shared.barrier.open(new_h.as_ns());
        self.shared.barrier.wait_acked(self.gen);
        for (i, front) in self.fronts.iter_mut().enumerate() {
            let mut core = self.shared.lanes[i].lock();
            debug_assert!(core.inbox.is_empty());
            front.run.clear();
            std::mem::swap(&mut front.run, &mut core.ready);
            front.beyond = core.next_head;
        }
        self.horizon = new_h;
    }

    /// Test-only: switches the cross-lane merge to the unsound
    /// wall-clock-arrival order (see `min_lane_unsound`). The negative
    /// control for the determinism suite — runs stay reproducible but are
    /// NOT equivalent to the sequential engines whenever same-instant
    /// events straddle lanes.
    #[doc(hidden)]
    pub fn set_unsound_merge(&mut self, unsound: bool) {
        self.unsound_merge = unsound;
    }
}

impl<E: Send + 'static> Drop for LaneSet<E> {
    fn drop(&mut self) {
        self.shared.barrier.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::event::{EventQueue, QueueBackend};
    use crate::rng::SimRng;
    use crate::MILLISECOND;

    fn lane_set(workers: usize) -> LaneSet<u64> {
        // Home by payload low bits: arbitrary but deterministic.
        LaneSet::new(workers, MILLISECOND, Box::new(|e: &u64| *e as usize))
    }

    /// The lane engine must deliver the exact `(time, id, payload)`
    /// sequence of both sequential queues, for any worker count and any
    /// interleaving of schedules and pops.
    #[test]
    fn lane_set_matches_sequential_queues() {
        for workers in [1usize, 2, 3, 4, 8] {
            for seed in 0..6u64 {
                let mut rng = SimRng::new(0x1A4E5 + seed);
                let mut lanes = lane_set(workers);
                let mut fast = EventQueue::with_backend(QueueBackend::Fast);
                let mut refq = EventQueue::with_backend(QueueBackend::Reference);
                let mut payload = 0u64;
                for _ in 0..3_000 {
                    if rng.below(10) < 6 {
                        let delta = match rng.below(5) {
                            0 => 0,
                            1 => rng.below(64),
                            2 => rng.below(10_000),
                            3 => rng.below(2_000_000),
                            _ => rng.below(30_000_000),
                        };
                        let t = lanes.now() + delta;
                        let id = lanes.schedule(t, payload);
                        assert_eq!(id, fast.schedule(t, payload));
                        assert_eq!(id, refq.schedule(t, payload));
                        payload += 1;
                    } else {
                        assert_eq!(lanes.peek_time(), fast.peek_time());
                        let (a, b, c) = (lanes.pop(), fast.pop(), refq.pop());
                        assert_eq!(a, b);
                        assert_eq!(b, c);
                        assert_eq!(lanes.now(), fast.now());
                    }
                }
                loop {
                    let (a, b) = (lanes.pop(), fast.pop());
                    assert_eq!(a, b);
                    assert_eq!(refq.pop(), b);
                    if a.is_none() {
                        break;
                    }
                }
                assert_eq!(lanes.delivered(), fast.delivered());
            }
        }
    }

    /// Same-instant events scheduled from one handler must pop in schedule
    /// (id) order even when homed to different lanes.
    #[test]
    fn same_instant_cross_lane_ties_pop_in_schedule_order() {
        let mut lanes = lane_set(4);
        // All at t=5ms (beyond the first window), lanes 3,2,1,0.
        for p in [3u64, 2, 1, 0] {
            lanes.schedule(Time::from_ns(5_000_000), p);
        }
        let order: Vec<u64> = std::iter::from_fn(|| lanes.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 2, 1, 0], "schedule order, not lane order");
    }

    /// The unsound wall-clock merge must break exactly that guarantee —
    /// the negative control the determinism suite relies on.
    #[test]
    fn unsound_merge_breaks_same_instant_order() {
        let mut lanes = lane_set(4);
        lanes.set_unsound_merge(true);
        for p in [3u64, 2, 1, 0] {
            lanes.schedule(Time::from_ns(5_000_000), p);
        }
        let order: Vec<u64> = std::iter::from_fn(|| lanes.pop().map(|(_, e)| e)).collect();
        assert_ne!(
            order,
            vec![3, 2, 1, 0],
            "rotation order must differ from id order"
        );
    }

    /// Epochs skip straight across long silent stretches.
    #[test]
    fn empty_epochs_are_skipped() {
        let mut lanes = lane_set(2);
        lanes.schedule(Time::from_ns(10), 0);
        // 10 simulated seconds of nothing.
        lanes.schedule(Time::from_ns(10_000_000_000), 1);
        assert_eq!(lanes.pop().unwrap().0, Time::from_ns(10));
        assert_eq!(lanes.pop().unwrap().0, Time::from_ns(10_000_000_000));
        assert!(lanes.pop().is_none());
    }

    /// Dropping a lane set with pending events must not hang the workers.
    #[test]
    fn drop_with_pending_events_joins_workers() {
        let mut lanes = lane_set(4);
        for p in 0..64u64 {
            lanes.schedule(Time::from_ns(1_000 + p), p);
        }
        drop(lanes);
    }
}
