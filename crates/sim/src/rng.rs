//! Deterministic random-number generation for simulations.
//!
//! [`SimRng`] wraps a small, fast xoshiro256**-style generator seeded
//! explicitly, so that every simulation run is exactly reproducible from its
//! configuration. It also implements [`rand::RngCore`] so workloads can use
//! the full `rand` distribution machinery on top of it.

use rand::RngCore;

/// A deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// ```
/// use latr_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to spread the seed across the full state, avoiding the
        // all-zero state xoshiro cannot escape.
        let mut sm = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each core or
    /// workload its own stream without correlation.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times (request arrivals, context
    /// switches). Returns at least 1 to keep event times advancing.
    pub fn exp(&mut self, mean: f64) -> u64 {
        let u = 1.0 - self.f64(); // avoid ln(0)
        let v = -mean * u.ln();
        v.max(1.0) as u64
    }

    /// Sample a normally distributed value (Box–Muller) with the given mean
    /// and standard deviation, clamped at zero.
    pub fn gauss(&mut self, mean: f64, sd: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + sd * z).max(0.0)
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} out of range");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(13);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(17);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| r.exp(1000.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((900.0..1100.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gauss_mean_is_close() {
        let mut r = SimRng::new(19);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.gauss(500.0, 50.0)).sum();
        let mean = total / n as f64;
        assert!((490.0..510.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(23);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SimRng::new(29);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
