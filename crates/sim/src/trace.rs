//! Lightweight bounded trace ring for debugging simulations.
//!
//! Simulations emit short human-readable trace entries; the ring keeps the
//! most recent `capacity` of them. The bench binary `timelines` uses this to
//! regenerate the paper's Figure 2/3 event timelines.

use crate::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// One trace record: an instant, a subsystem tag and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: Time,
    /// Short subsystem tag, e.g. `"ipi"`, `"latr"`, `"sched"`.
    pub tag: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<6} {}",
            self.time.to_string(),
            self.tag,
            self.message
        )
    }
}

/// A bounded ring buffer of [`TraceEntry`] records.
///
/// Disabled by default (capacity 0) so the hot path pays only a branch.
///
/// ```
/// use latr_sim::{TraceRing, Time};
/// let mut ring = TraceRing::with_capacity(2);
/// ring.push(Time::from_ns(1), "a", "first".into());
/// ring.push(Time::from_ns(2), "b", "second".into());
/// ring.push(Time::from_ns(3), "c", "third".into());
/// let tags: Vec<&str> = ring.iter().map(|e| e.tag).collect();
/// assert_eq!(tags, vec!["b", "c"]); // oldest evicted
/// ```
#[derive(Debug, Default)]
pub struct TraceRing {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
}

impl TraceRing {
    /// Creates a disabled ring (capacity 0); all pushes are dropped.
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a ring retaining the most recent `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// Whether pushes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an entry, evicting the oldest when full. No-op when disabled.
    pub fn push(&mut self, time: Time, tag: &'static str, message: String) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { time, tag, message });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Drops all retained entries, keeping the capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_drops_everything() {
        let mut ring = TraceRing::disabled();
        ring.push(Time::ZERO, "x", "dropped".into());
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = TraceRing::with_capacity(3);
        for i in 0..5 {
            ring.push(Time::from_ns(i), "t", format!("e{i}"));
        }
        assert_eq!(ring.len(), 3);
        let msgs: Vec<&str> = ring.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn display_contains_tag_and_message() {
        let e = TraceEntry {
            time: Time::from_ns(1500),
            tag: "ipi",
            message: "deliver to core 3".into(),
        };
        let s = e.to_string();
        assert!(s.contains("ipi"));
        assert!(s.contains("deliver to core 3"));
        assert!(s.contains("1.500us"));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut ring = TraceRing::with_capacity(2);
        ring.push(Time::ZERO, "t", "a".into());
        ring.clear();
        assert!(ring.is_empty());
        ring.push(Time::ZERO, "t", "b".into());
        assert_eq!(ring.len(), 1);
    }
}
