//! Simulated time.
//!
//! All simulation time is measured in integer nanoseconds from the start of
//! the run. [`Time`] is an absolute instant; [`Nanos`] (a plain `u64`) is a
//! duration. Keeping durations as raw `u64` keeps cost-model arithmetic
//! terse, while the [`Time`] newtype prevents accidentally mixing instants
//! with durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// An absolute instant of simulated time, in nanoseconds since the start of
/// the simulation.
///
/// `Time` is totally ordered and supports adding a [`Nanos`] duration and
/// subtracting another `Time` (yielding a duration).
///
/// ```
/// use latr_sim::{Time, MICROSECOND};
/// let t = Time::ZERO + 5 * MICROSECOND;
/// assert_eq!(t.as_ns(), 5_000);
/// assert_eq!(t - Time::ZERO, 5_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel when computing minima.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the start of the simulation.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Returns the instant as nanoseconds since the start of the simulation.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the instant in (fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / MICROSECOND as f64
    }

    /// Returns the instant in (fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later than
    /// `self`.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Nanos {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of `self` and `other`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Nanos> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Nanos) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<Nanos> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Nanos;
    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Nanos {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        self.0 - rhs.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECOND {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= MILLISECOND {
            write!(f, "{:.3}ms", self.0 as f64 / MILLISECOND as f64)
        } else if self.0 >= MICROSECOND {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration() {
        let t = Time::from_ns(100) + 50;
        assert_eq!(t.as_ns(), 150);
    }

    #[test]
    fn add_assign_duration() {
        let mut t = Time::from_ns(1);
        t += 2;
        assert_eq!(t, Time::from_ns(3));
    }

    #[test]
    fn subtract_instants() {
        assert_eq!(Time::from_ns(150) - Time::from_ns(100), 50);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn subtract_reversed_panics_in_debug() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Time::from_ns(1).saturating_since(Time::from_ns(2)), 0);
        assert_eq!(Time::from_ns(5).saturating_since(Time::from_ns(2)), 3);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Time::from_ns(5).to_string(), "5ns");
        assert_eq!(Time::from_ns(5_000).to_string(), "5.000us");
        assert_eq!(Time::from_ns(5_000_000).to_string(), "5.000ms");
        assert_eq!(Time::from_ns(5_000_000_000).to_string(), "5.000s");
    }

    #[test]
    fn conversions() {
        let t = Time::from_ns(2_500_000_000);
        assert!((t.as_secs() - 2.5).abs() < 1e-12);
        assert!((t.as_us() - 2_500_000.0).abs() < 1e-9);
    }
}
