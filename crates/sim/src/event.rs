//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number makes ordering of same-instant events
//! deterministic (FIFO by scheduling order), which in turn makes every
//! simulation run exactly reproducible from its seed and configuration.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, unique within one [`EventQueue`].
///
/// Can be used with [`EventQueue::cancel`] to lazily remove a scheduled
/// event before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

/// An event plus its scheduling metadata, as stored inside the queue.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: Time,
    /// Queue-unique id, also the tiebreaker for same-instant events.
    pub id: EventId,
    /// The caller-supplied payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A deterministic discrete-event queue over payload type `E`.
///
/// ```
/// use latr_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(3), 'c');
/// q.schedule(Time::from_ns(1), 'a');
/// q.schedule(Time::from_ns(1), 'b'); // same instant: FIFO order
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// The instant of the most recently popped event (the simulation clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending (including lazily cancelled ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute instant `time`.
    ///
    /// Returns an [`EventId`] usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock: the simulation
    /// cannot deliver events into the past.
    pub fn schedule(&mut self, time: Time, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {:?} < {:?}",
            time,
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(ScheduledEvent { time, id, payload });
        id
    }

    /// Schedules `payload` to fire `delta` nanoseconds after the current
    /// clock.
    pub fn schedule_after(&mut self, delta: crate::Nanos, payload: E) -> EventId {
        self.schedule(self.now + delta, payload)
    }

    /// Lazily cancels a scheduled event. The event stays in the heap but is
    /// skipped when it reaches the front. Cancelling an already-delivered or
    /// unknown id is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pops the earliest pending event, advancing the clock to its instant.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue time went backwards");
            self.now = ev.time;
            self.popped += 1;
            return Some((ev.time, ev.payload));
        }
        None
    }

    /// The instant of the earliest pending (non-cancelled) event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        // Cancelled events may sit at the front; we must skip them without
        // mutating. Cheap in practice because cancellation is rare.
        self.heap
            .iter()
            .filter(|ev| !self.cancelled.contains(&ev.id))
            .map(|ev| ev.time)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_ns(10), 1));
        assert_eq!(q.pop().unwrap(), (Time::from_ns(20), 2));
        assert_eq!(q.pop().unwrap(), (Time::from_ns(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(42), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(42));
    }

    #[test]
    fn schedule_after_is_relative_to_clock() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(100), 0);
        q.pop();
        q.schedule_after(5, 1);
        assert_eq!(q.pop().unwrap(), (Time::from_ns(105), 1));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(100), 0);
        q.pop();
        q.schedule(Time::from_ns(50), 1);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(2), 'b');
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1, 'b');
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ns(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.cancel(a); // already delivered
        q.schedule(Time::from_ns(2), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(7), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
    }

    #[test]
    fn delivered_counts_only_real_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(2), 'b');
        q.cancel(a);
        q.pop();
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_ns(1), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
