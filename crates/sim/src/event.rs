//! Deterministic event queue.
//!
//! Two interchangeable backends deliver the exact same `(time, sequence)`
//! order, which makes every simulation run reproducible from its seed and
//! configuration:
//!
//! * [`QueueBackend::Fast`] — a calendar (bucket) queue keyed on the event
//!   instant. `schedule`/`pop`/`peek_time` are O(1) amortised: the heap
//!   that used to dominate large-topology runs (and its O(n) cancel-aware
//!   peek) is gone from the hot path. Buckets are pre-sized arenas that
//!   keep their capacity across drains, so steady-state operation does not
//!   touch the allocator.
//! * [`QueueBackend::Reference`] — the original binary min-heap with the
//!   linear cancel-aware peek, kept alive as the executable specification.
//!   The differential suite (`tests/differential.rs`) runs both backends
//!   on identical inputs and asserts bit-identical behaviour.
//!
//! The default backend is `Fast`; building `latr-sim` with the
//! `reference` cargo feature flips the default (both backends are always
//! compiled, so one process can construct and compare the two).

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, unique within one [`EventQueue`].
///
/// Can be used with [`EventQueue::cancel`] to lazily remove a scheduled
/// event before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// Builds an id from its raw counter value. Only the queue
    /// implementations in this crate mint ids; the raw value is the
    /// schedule-order sequence number that tie-breaks same-instant events.
    pub(crate) fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }
}

/// An event plus its scheduling metadata, as stored inside the queue.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: Time,
    /// Queue-unique id, also the tiebreaker for same-instant events.
    pub id: EventId,
    /// The caller-supplied payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Which event-queue implementation an [`EventQueue`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueBackend {
    /// Calendar/bucket queue: the production hot path.
    Fast,
    /// Binary heap with linear cancel-aware peek: the executable spec.
    Reference,
}

impl Default for QueueBackend {
    /// `Fast`, unless the crate is built with the `reference` feature.
    fn default() -> Self {
        if cfg!(feature = "reference") {
            QueueBackend::Reference
        } else {
            QueueBackend::Fast
        }
    }
}

/// Nanoseconds per calendar bucket (512 ns): small enough that a bucket
/// holds a handful of events even at 120 simulated cores.
const BUCKET_SHIFT: u32 = 9;
/// Buckets in the ring: 4096 × 512 ns ≈ 2.1 ms of horizon, comfortably
/// above the 1 ms scheduler-tick period that dominates scheduling deltas.
const NUM_BUCKETS: usize = 1 << 12;
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;
const OCC_WORDS: usize = NUM_BUCKETS / 64;
/// Entries each ring bucket holds without allocating (24 B apiece, so the
/// warm ring costs 4096 × 16 × 24 B ≈ 1.5 MiB — constant per machine).
const BUCKET_PREALLOC: usize = 16;

/// A bucketed event's key plus the slab handle of its payload. Buckets
/// and the far heap shuffle these 24-byte `Copy` records; the payload sits
/// still in the arena until delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    time: Time,
    id: EventId,
    handle: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed, like `ScheduledEvent`: earliest-first out of a max-heap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// The calendar backend: a ring of time buckets over a far-future
/// overflow heap, with payloads parked in a free-listed slab arena.
///
/// Invariants (checked in debug builds):
/// * every bucketed event's absolute bucket index lies in
///   `[cur, cur + NUM_BUCKETS)`, so ring slots are unambiguous;
/// * every event in `far` was beyond that horizon when it was filed and is
///   migrated into the ring (at most once — `cur` is monotone while events
///   are pending) as the cursor approaches it;
/// * every `Entry::handle` in a bucket or the far heap names a `Some` slot
///   in `slots`, and every `Some` slot is named by exactly one entry.
///
/// Steady state is allocation-free: delivered handles go on the free list
/// and bucket `Vec`s keep their capacity across drains, so a stable
/// pending-event population recycles storage instead of touching the
/// allocator. Every ring bucket is pre-sized at construction — event
/// phases drift across the ring over simulated time, so lazily-grown
/// buckets would keep first-touching virgin slots arbitrarily deep into
/// a run. Only a bucket holding more than [`BUCKET_PREALLOC`]
/// same-512ns-window events (a wide same-instant broadcast) ever grows,
/// and that growth is monotone per slot.
#[derive(Debug)]
pub(crate) struct Calendar<E> {
    /// Ring of buckets, each sorted *descending* by `(time, id)` so the
    /// minimum pops from the end in O(1).
    buckets: Vec<Vec<Entry>>,
    /// One occupancy bit per bucket: finding the next non-empty bucket is
    /// a word scan, not a ring walk.
    occ: [u64; OCC_WORDS],
    /// Second occupancy level: bit `w` set iff `occ[w] != 0`. `OCC_WORDS`
    /// is exactly 64, so one u64 summarises the whole ring and
    /// `next_occupied` is O(1) instead of a word walk — the scan cost that
    /// made sparse (few-core) runs slower than the reference heap.
    summary: u64,
    /// Absolute index of the earliest possibly-occupied bucket.
    cur: u64,
    /// Events currently in the ring.
    near: usize,
    /// Events beyond the ring horizon (keys only; payloads in `slots`).
    far: BinaryHeap<Entry>,
    /// The payload arena. `free` lists the `None` slots for reuse.
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

const _: () = assert!(OCC_WORDS == 64, "summary word covers the whole ring");

impl<E> Calendar<E> {
    pub(crate) fn new() -> Self {
        Calendar {
            buckets: (0..NUM_BUCKETS)
                .map(|_| Vec::with_capacity(BUCKET_PREALLOC))
                .collect(),
            occ: [0; OCC_WORDS],
            summary: 0,
            cur: 0,
            near: 0,
            far: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.near + self.far.len()
    }

    fn bucket_of(time: Time) -> u64 {
        time.as_ns() >> BUCKET_SHIFT
    }

    /// Parks a payload in the arena, reusing a freed slot when one exists.
    fn arena_alloc(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none());
                self.slots[h as usize] = Some(payload);
                h
            }
            None => {
                let h = u32::try_from(self.slots.len()).expect("arena handle overflow");
                self.slots.push(Some(payload));
                h
            }
        }
    }

    /// Takes a payload out of the arena and recycles its slot.
    fn arena_take(&mut self, handle: u32) -> E {
        let payload = self.slots[handle as usize].take().expect("live handle");
        self.free.push(handle);
        payload
    }

    #[inline]
    fn occ_set(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1 << (slot % 64);
        self.summary |= 1 << (slot / 64);
    }

    #[inline]
    fn occ_clear(&mut self, slot: usize) {
        let w = slot / 64;
        self.occ[w] &= !(1 << (slot % 64));
        if self.occ[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    pub(crate) fn insert(&mut self, ev: ScheduledEvent<E>, now: Time) {
        let b = Self::bucket_of(ev.time);
        if self.near == 0 {
            // Empty ring: re-anchor the cursor at the clock. Every future
            // schedule lands at or after `now`, so this is the lowest
            // bound the window will ever need — and it repairs the one
            // case where lazy-cancellation skipping left `cur` ahead of
            // the clock (see `pop_min`).
            self.cur = Self::bucket_of(now);
        }
        let entry = Entry {
            time: ev.time,
            id: ev.id,
            handle: self.arena_alloc(ev.payload),
        };
        if b >= self.cur + NUM_BUCKETS as u64 {
            self.far.push(entry);
            return;
        }
        debug_assert!(b >= self.cur, "event filed behind the cursor");
        self.insert_near(b, entry);
    }

    fn insert_near(&mut self, b: u64, entry: Entry) {
        let slot = (b & BUCKET_MASK) as usize;
        let v = &mut self.buckets[slot];
        let key = (entry.time, entry.id);
        let pos = v.partition_point(|e| (e.time, e.id) > key);
        v.insert(pos, entry);
        self.occ_set(slot);
        self.near += 1;
    }

    /// Moves every far event that now fits the ring horizon into it.
    fn drain_far(&mut self) {
        while let Some(f) = self.far.peek() {
            if Self::bucket_of(f.time) >= self.cur + NUM_BUCKETS as u64 {
                break;
            }
            let entry = self.far.pop().expect("peeked");
            let b = Self::bucket_of(entry.time);
            self.insert_near(b, entry);
        }
    }

    /// Absolute index of the first occupied bucket at or after `from`,
    /// assuming at least one ring bucket is occupied. O(1): one masked
    /// probe of the starting word, then the one-word summary locates the
    /// next non-empty word (cyclically) without walking the ring.
    fn next_occupied(&self, from: u64) -> u64 {
        debug_assert!(self.summary != 0, "next_occupied on an empty ring");
        let start = (from & BUCKET_MASK) as usize;
        let w0 = start / 64;
        let mut bits = self.occ[w0] & (!0u64 << (start % 64));
        let w = if bits != 0 {
            w0
        } else {
            // Words strictly after `w0`, wrapping to the full summary when
            // the tail is empty (ring distance arithmetic absorbs the wrap).
            let above = if w0 == 63 {
                0
            } else {
                self.summary & (!0u64 << (w0 + 1))
            };
            let w = if above != 0 {
                above.trailing_zeros() as usize
            } else {
                self.summary.trailing_zeros() as usize
            };
            bits = self.occ[w];
            w
        };
        let slot = w * 64 + bits.trailing_zeros() as usize;
        let dist = (slot as u64).wrapping_sub(start as u64) & BUCKET_MASK;
        from + dist
    }

    /// Removes and returns the minimum event. The cursor advances to its
    /// bucket; the caller re-anchors via `insert` if it discards events
    /// (lazy cancellation) without advancing the clock.
    pub(crate) fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        if self.near == 0 {
            let f = self.far.peek()?;
            self.cur = Self::bucket_of(f.time);
        }
        self.drain_far();
        debug_assert!(self.near > 0);
        let nb = self.next_occupied(self.cur);
        self.cur = nb;
        let slot = (nb & BUCKET_MASK) as usize;
        let entry = self.buckets[slot].pop().expect("occupied bucket");
        if self.buckets[slot].is_empty() {
            self.occ_clear(slot);
        }
        self.near -= 1;
        Some(ScheduledEvent {
            time: entry.time,
            id: entry.id,
            payload: self.arena_take(entry.handle),
        })
    }

    /// Drains every pending event with `time < horizon` into `out`,
    /// ascending by `(time, id)`, and advances the cursor to the horizon's
    /// bucket. The lane engine calls this once per epoch barrier; inserts
    /// after the call are guaranteed by the lane engine to be at or beyond
    /// the previous horizon, so they never land behind the cursor.
    ///
    /// `scratch` is caller-owned reusable storage for merging far-heap
    /// events that fall below the horizon (rare: only schedules placed
    /// beyond the ring span ever reach the far heap). Only sound on a
    /// calendar with no lazily-cancelled events pending — the lane engine
    /// does not support cancellation.
    pub(crate) fn extract_until(
        &mut self,
        horizon: Time,
        out: &mut Vec<ScheduledEvent<E>>,
        scratch: &mut Vec<ScheduledEvent<E>>,
    ) {
        let start = out.len();
        let hb = Self::bucket_of(horizon);
        while self.near > 0 {
            let nb = self.next_occupied(self.cur);
            if nb > hb {
                break;
            }
            self.cur = nb;
            let slot = (nb & BUCKET_MASK) as usize;
            if nb < hb {
                // Whole bucket is below the horizon: buckets are sorted
                // descending, so draining from the back yields ascending
                // order.
                while let Some(entry) = self.buckets[slot].pop() {
                    debug_assert!(entry.time < horizon);
                    self.near -= 1;
                    out.push(ScheduledEvent {
                        time: entry.time,
                        id: entry.id,
                        payload: self.arena_take(entry.handle),
                    });
                }
                self.occ_clear(slot);
            } else {
                // Boundary bucket: only the sub-horizon prefix comes out.
                while self.buckets[slot]
                    .last()
                    .is_some_and(|entry| entry.time < horizon)
                {
                    let entry = self.buckets[slot].pop().expect("checked");
                    self.near -= 1;
                    out.push(ScheduledEvent {
                        time: entry.time,
                        id: entry.id,
                        payload: self.arena_take(entry.handle),
                    });
                }
                if self.buckets[slot].is_empty() {
                    self.occ_clear(slot);
                }
                break;
            }
        }
        // All remaining ring events are at or beyond the horizon's bucket,
        // so the cursor may jump there even across long empty stretches.
        self.cur = self.cur.max(hb);
        // Far-heap events below the horizon. They were filed when they lay
        // beyond the ring span from the then-cursor, but the cursor has
        // moved since, so they may interleave with the ring events already
        // drained — merge the two ascending runs.
        if self.far.peek().is_some_and(|f| f.time < horizon) {
            scratch.clear();
            scratch.extend(out.drain(start..));
            let mut far_below: Vec<Entry> = Vec::new();
            while self.far.peek().is_some_and(|f| f.time < horizon) {
                far_below.push(self.far.pop().expect("peeked"));
            }
            let mut ring = scratch.drain(..).peekable();
            let mut far_it = far_below.into_iter().peekable();
            loop {
                let take_far = match (ring.peek(), far_it.peek()) {
                    (Some(r), Some(f)) => (f.time, f.id) < (r.time, r.id),
                    (None, Some(_)) => true,
                    _ => false,
                };
                if take_far {
                    let entry = far_it.next().expect("peeked");
                    out.push(ScheduledEvent {
                        time: entry.time,
                        id: entry.id,
                        payload: self.slots[entry.handle as usize]
                            .take()
                            .expect("live handle"),
                    });
                    self.free.push(entry.handle);
                } else {
                    match ring.next() {
                        Some(ev) => out.push(ev),
                        None => break,
                    }
                }
            }
        }
        debug_assert!(out[start..]
            .windows(2)
            .all(|w| (w[0].time, w[0].id) < (w[1].time, w[1].id)));
    }

    /// The minimum pending `(time, id)` without popping or advancing the
    /// cursor. Assumes no lazily-cancelled events (lane-engine use).
    pub(crate) fn peek_min_key(&self) -> Option<(Time, EventId)> {
        let near = if self.near > 0 {
            let nb = self.next_occupied(self.cur);
            let slot = (nb & BUCKET_MASK) as usize;
            self.buckets[slot].last().map(|e| (e.time, e.id))
        } else {
            None
        };
        let far = self.far.peek().map(|e| (e.time, e.id));
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The minimum pending `(time, id)` after dropping cancelled events
    /// from the front. Unlike `pop_min` this never advances the cursor, so
    /// it is safe to schedule earlier-but-future events afterwards.
    fn peek_skip(&mut self, cancelled: &mut HashSet<EventId>) -> Option<Time> {
        loop {
            if self.near == 0 {
                let e = self.far.peek()?;
                if cancelled.remove(&e.id) {
                    let entry = self.far.pop().expect("peeked");
                    drop(self.arena_take(entry.handle));
                    continue;
                }
                return Some(e.time);
            }
            self.drain_far();
            let nb = self.next_occupied(self.cur);
            let slot = (nb & BUCKET_MASK) as usize;
            let front = *self.buckets[slot].last().expect("occupied bucket");
            if cancelled.remove(&front.id) {
                self.buckets[slot].pop();
                if self.buckets[slot].is_empty() {
                    self.occ_clear(slot);
                }
                self.near -= 1;
                drop(self.arena_take(front.handle));
                continue;
            }
            return Some(front.time);
        }
    }
}

#[derive(Debug)]
enum Backend<E> {
    // Boxed: the calendar's inline occupancy words dwarf the heap variant.
    Fast(Box<Calendar<E>>),
    Reference(BinaryHeap<ScheduledEvent<E>>),
}

/// A deterministic discrete-event queue over payload type `E`.
///
/// ```
/// use latr_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(3), 'c');
/// q.schedule(Time::from_ns(1), 'a');
/// q.schedule(Time::from_ns(1), 'b'); // same instant: FIFO order
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_id: u64,
    cancelled: HashSet<EventId>,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`Time::ZERO`] on the default
    /// backend ([`QueueBackend::default`]).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty queue on an explicitly chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Fast => Backend::Fast(Box::new(Calendar::new())),
                QueueBackend::Reference => Backend::Reference(BinaryHeap::new()),
            },
            next_id: 0,
            cancelled: HashSet::new(),
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Fast(_) => QueueBackend::Fast,
            Backend::Reference(_) => QueueBackend::Reference,
        }
    }

    /// The instant of the most recently popped event (the simulation clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending (including lazily cancelled ones
    /// that have not yet been skipped past).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Fast(c) => c.len(),
            Backend::Reference(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` to fire at absolute instant `time`.
    ///
    /// Returns an [`EventId`] usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock: the simulation
    /// cannot deliver events into the past.
    pub fn schedule(&mut self, time: Time, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {:?} < {:?}",
            time,
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let ev = ScheduledEvent { time, id, payload };
        match &mut self.backend {
            Backend::Fast(c) => c.insert(ev, self.now),
            Backend::Reference(h) => h.push(ev),
        }
        id
    }

    /// Schedules `payload` to fire `delta` nanoseconds after the current
    /// clock.
    pub fn schedule_after(&mut self, delta: crate::Nanos, payload: E) -> EventId {
        self.schedule(self.now + delta, payload)
    }

    /// Lazily cancels a scheduled event. The event stays in the queue but
    /// is skipped when it reaches the front. Cancelling an already-delivered
    /// or unknown id is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pops the earliest pending event, advancing the clock to its instant.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            let ev = match &mut self.backend {
                Backend::Fast(c) => c.pop_min(),
                Backend::Reference(h) => h.pop(),
            }?;
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue time went backwards");
            self.now = ev.time;
            self.popped += 1;
            return Some((ev.time, ev.payload));
        }
    }

    /// The instant of the earliest pending (non-cancelled) event, if any.
    ///
    /// Takes `&mut self` because the fast backend discards cancelled
    /// events it skips past (an observable no-op: lazy cancellation only
    /// ever removes them later anyway). The reference backend scans
    /// without mutating, exactly as the original implementation did.
    pub fn peek_time(&mut self) -> Option<Time> {
        match &mut self.backend {
            Backend::Fast(c) => c.peek_skip(&mut self.cancelled),
            Backend::Reference(h) => {
                // Cancelled events may sit at the front; we must skip them
                // without popping. Cheap in practice because cancellation
                // is rare.
                let cancelled = &self.cancelled;
                h.iter()
                    .filter(|ev| !cancelled.contains(&ev.id))
                    .map(|ev| ev.time)
                    .min()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [QueueBackend; 2] {
        [QueueBackend::Fast, QueueBackend::Reference]
    }

    #[test]
    fn pops_in_time_order() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(Time::from_ns(30), 3);
            q.schedule(Time::from_ns(10), 1);
            q.schedule(Time::from_ns(20), 2);
            assert_eq!(q.pop().unwrap(), (Time::from_ns(10), 1));
            assert_eq!(q.pop().unwrap(), (Time::from_ns(20), 2));
            assert_eq!(q.pop().unwrap(), (Time::from_ns(30), 3));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn same_instant_is_fifo() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            for i in 0..100 {
                q.schedule(Time::from_ns(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(Time::from_ns(42), ());
            assert_eq!(q.now(), Time::ZERO);
            q.pop();
            assert_eq!(q.now(), Time::from_ns(42));
        }
    }

    #[test]
    fn schedule_after_is_relative_to_clock() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(Time::from_ns(100), 0);
            q.pop();
            q.schedule_after(5, 1);
            assert_eq!(q.pop().unwrap(), (Time::from_ns(105), 1));
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(100), 0);
        q.pop();
        q.schedule(Time::from_ns(50), 1);
    }

    #[test]
    fn cancel_skips_event() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            let a = q.schedule(Time::from_ns(1), 'a');
            q.schedule(Time::from_ns(2), 'b');
            q.cancel(a);
            assert_eq!(q.pop().unwrap().1, 'b');
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn cancel_unknown_is_noop() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            let a = q.schedule(Time::from_ns(1), 'a');
            assert_eq!(q.pop().unwrap().1, 'a');
            q.cancel(a); // already delivered
            q.schedule(Time::from_ns(2), 'b');
            assert_eq!(q.pop().unwrap().1, 'b');
        }
    }

    #[test]
    fn peek_time_skips_cancelled() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            let a = q.schedule(Time::from_ns(1), 'a');
            q.schedule(Time::from_ns(7), 'b');
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        }
    }

    #[test]
    fn delivered_counts_only_real_events() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            let a = q.schedule(Time::from_ns(1), 'a');
            q.schedule(Time::from_ns(2), 'b');
            q.cancel(a);
            q.pop();
            assert_eq!(q.delivered(), 1);
        }
    }

    #[test]
    fn len_and_is_empty() {
        for b in backends() {
            let mut q: EventQueue<()> = EventQueue::with_backend(b);
            assert!(q.is_empty());
            q.schedule(Time::from_ns(1), ());
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn default_backend_tracks_feature() {
        let q: EventQueue<()> = EventQueue::new();
        let expect = if cfg!(feature = "reference") {
            QueueBackend::Reference
        } else {
            QueueBackend::Fast
        };
        assert_eq!(q.backend(), expect);
    }

    #[test]
    fn far_future_events_cross_the_ring_horizon() {
        let mut q = EventQueue::with_backend(QueueBackend::Fast);
        // Way beyond the 2.1 ms ring horizon.
        q.schedule(Time::from_ns(50_000_000), 'z');
        q.schedule(Time::from_ns(10), 'a');
        q.schedule(Time::from_ns(3_000_000), 'm'); // beyond horizon from t=0
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
        assert_eq!(q.pop().unwrap().1, 'a');
        // After the clock advances, 'm' migrates into the ring.
        assert_eq!(q.pop().unwrap(), (Time::from_ns(3_000_000), 'm'));
        // And scheduling between the clock and the far tail still works.
        q.schedule(Time::from_ns(3_000_001), 'n');
        assert_eq!(q.pop().unwrap().1, 'n');
        assert_eq!(q.pop().unwrap().1, 'z');
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_corrupt_cursor_for_earlier_schedules() {
        let mut q = EventQueue::with_backend(QueueBackend::Fast);
        q.schedule(Time::from_ns(100), 0);
        q.pop();
        // Peek at a far-ahead event, then schedule something earlier (but
        // still in the future). It must pop first.
        let far = q.schedule(Time::from_ns(2_000_000), 9);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2_000_000)));
        q.schedule(Time::from_ns(200), 1);
        assert_eq!(q.pop().unwrap(), (Time::from_ns(200), 1));
        q.cancel(far);
        assert!(q.pop().is_none());
    }

    #[test]
    fn all_cancelled_then_reschedule_earlier() {
        // Popping through cancelled events advances the calendar cursor
        // without advancing the clock; a subsequent earlier-but-future
        // schedule must still be delivered (the empty-ring re-anchor).
        let mut q = EventQueue::with_backend(QueueBackend::Fast);
        q.schedule(Time::from_ns(1_000), 0);
        q.pop();
        let a = q.schedule(Time::from_ns(500_000), 1);
        q.cancel(a);
        assert!(q.pop().is_none());
        q.schedule(Time::from_ns(2_000), 2);
        assert_eq!(q.pop().unwrap(), (Time::from_ns(2_000), 2));
    }

    /// The two backends must deliver identical `(time, id, payload)`
    /// sequences for arbitrary interleavings of schedule/cancel/pop.
    #[test]
    fn backends_agree_on_random_interleavings() {
        use crate::rng::SimRng;
        for seed in 0..8u64 {
            let mut rng = SimRng::new(0xE4E47 + seed);
            let mut fast = EventQueue::with_backend(QueueBackend::Fast);
            let mut refq = EventQueue::with_backend(QueueBackend::Reference);
            let mut live: Vec<EventId> = Vec::new();
            let mut next_payload = 0u64;
            for _ in 0..4_000 {
                match rng.below(10) {
                    // Schedule: mixed deltas spanning bucket widths, ties,
                    // and the far horizon.
                    0..=5 => {
                        let delta = match rng.below(5) {
                            0 => 0,
                            1 => rng.below(64),
                            2 => rng.below(10_000),
                            3 => rng.below(1_000_000),
                            _ => rng.below(20_000_000),
                        };
                        let t = fast.now() + delta;
                        let id_f = fast.schedule(t, next_payload);
                        let id_r = refq.schedule(t, next_payload);
                        assert_eq!(id_f, id_r);
                        live.push(id_f);
                        next_payload += 1;
                    }
                    6 => {
                        if !live.is_empty() {
                            let i = rng.below(live.len() as u64) as usize;
                            let id = live.swap_remove(i);
                            fast.cancel(id);
                            refq.cancel(id);
                        }
                    }
                    _ => {
                        assert_eq!(fast.peek_time(), refq.peek_time());
                        assert_eq!(fast.pop(), refq.pop());
                        assert_eq!(fast.now(), refq.now());
                    }
                }
            }
            // Drain both to the end.
            loop {
                let (a, b) = (fast.pop(), refq.pop());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(fast.delivered(), refq.delivered());
        }
    }
}
