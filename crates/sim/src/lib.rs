//! # latr-sim — discrete-event simulation engine
//!
//! This crate provides the foundation every other crate in the Latr
//! reproduction builds on: simulated time, a deterministic event queue,
//! a seedable random-number generator, statistics collection (counters and
//! log-scale histograms), and a lightweight trace ring for debugging.
//!
//! The engine is deliberately generic: it knows nothing about cores, TLBs or
//! page tables. The kernel crate defines the event payload type and drives
//! the loop.
//!
//! ## Example
//!
//! ```
//! use latr_sim::{EventQueue, Time, Nanos};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Time::from_ns(10), "b");
//! q.schedule(Time::from_ns(5), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_ns(), e), (5, "a"));
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_ns(), e), (10, "b"));
//! ```

mod event;
mod lanes;
mod rng;
mod stats;
mod time;
mod trace;

pub use event::{EventId, EventQueue, QueueBackend, ScheduledEvent};
pub use lanes::{EpochBarrier, LaneSet};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, StatsRegistry, Summary};
pub use time::{Nanos, Time, MICROSECOND, MILLISECOND, SECOND};
pub use trace::{TraceEntry, TraceRing};
