//! Statistics collection: counters, log-scale histograms and summaries.
//!
//! Experiments accumulate measurements into a [`StatsRegistry`]; the bench
//! harness reads the resulting [`Summary`] values to print the paper's
//! tables and figures.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }
    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HdrHistogram-style log-bucketed histogram of `u64` samples
/// (latencies in nanoseconds, sizes in pages, ...).
///
/// Buckets have ~1.6% relative width (64 sub-buckets per power of two),
/// giving accurate percentiles across nine orders of magnitude with a fixed
/// 4 KiB footprint.
///
/// ```
/// use latr_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 500] { h.record(v); }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.50) >= 290 && h.percentile(0.50) <= 310);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    // 64 sub-buckets per each of 58 powers of two above 64.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
const N_BUCKETS: usize = ((64 - SUB_BUCKET_BITS) as usize) * SUB_BUCKETS as usize;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64;
        let shift = msb - SUB_BUCKET_BITS as u64 + 1;
        let base = shift * SUB_BUCKETS;
        let offset = (value >> shift) & (SUB_BUCKETS - 1);
        (base + SUB_BUCKETS + offset) as usize - SUB_BUCKETS as usize
    }

    fn bucket_value(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_BUCKETS {
            return index;
        }
        let shift = (index - SUB_BUCKETS) / SUB_BUCKETS + 1;
        let offset = index % SUB_BUCKETS;
        // Midpoint of the bucket for an unbiased estimate. The recorded
        // value was `offset << shift` up to bucket width `1 << shift`.
        (offset << shift) + (1 << shift) / 2
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value).min(N_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value).min(N_BUCKETS - 1);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Produces a compact summary of the distribution.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max,
        }
    }
}

/// A compact distribution summary produced by [`Histogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (the serving bench's tail headline).
    pub p999: u64,
    /// Maximum sample.
    pub max: u64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p90={} p99={} p999={} max={}",
            self.count, self.mean, self.min, self.p50, self.p90, self.p99, self.p999, self.max
        )
    }
}

/// FNV-1a over the key bytes: metric names are short static strings inside
/// a single-process simulator, so a keyed DoS-resistant hash buys nothing
/// and costs ~3× per lookup on the event hot path.
#[derive(Debug)]
pub struct FnvNameHasher(u64);

impl Default for FnvNameHasher {
    fn default() -> Self {
        FnvNameHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvNameHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type NameMap = HashMap<Box<str>, u32, BuildHasherDefault<FnvNameHasher>>;

/// A named collection of counters and histograms.
///
/// Experiment code records into well-known metric names; the harness reads
/// them out after the run. Readout iterates in name order so output is
/// deterministic; the *write* path interns each name once and then runs on
/// a hash probe plus an index — no per-record allocation, which is what the
/// zero-steady-state-allocation contract of the fast engine requires
/// (`tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct StatsRegistry {
    counter_idx: NameMap,
    counter_names: Vec<Box<str>>,
    counter_vals: Vec<Counter>,
    hist_idx: NameMap,
    hist_names: Vec<Box<str>>,
    hist_vals: Vec<Histogram>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    #[cold]
    fn intern_counter(&mut self, name: &str) -> usize {
        let i = self.counter_vals.len() as u32;
        self.counter_idx.insert(name.into(), i);
        self.counter_names.push(name.into());
        self.counter_vals.push(Counter::new());
        i as usize
    }

    #[cold]
    fn intern_hist(&mut self, name: &str) -> usize {
        let i = self.hist_vals.len() as u32;
        self.hist_idx.insert(name.into(), i);
        self.hist_names.push(name.into());
        self.hist_vals.push(Histogram::new());
        i as usize
    }

    /// Increments the named counter by one, creating it if needed.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter, creating it if needed.
    #[inline]
    pub fn add(&mut self, name: &str, n: u64) {
        let i = match self.counter_idx.get(name) {
            Some(&i) => i as usize,
            None => self.intern_counter(name),
        };
        self.counter_vals[i].add(n);
    }

    /// Current value of the named counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_idx
            .get(name)
            .map_or(0, |&i| self.counter_vals[i as usize].get())
    }

    /// Records a sample into the named histogram, creating it if needed.
    #[inline]
    pub fn record(&mut self, name: &str, value: u64) {
        let i = match self.hist_idx.get(name) {
            Some(&i) => i as usize,
            None => self.intern_hist(name),
        };
        self.hist_vals[i].record(value);
    }

    /// Returns the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hist_idx
            .get(name)
            .map(|&i| &self.hist_vals[i as usize])
    }

    /// Indices of `names` sorted by name (readout is cold; the write path
    /// never pays for ordering).
    fn name_order(names: &[Box<str>]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..names.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));
        order
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        Self::name_order(&self.counter_names)
            .into_iter()
            .map(move |i| {
                (
                    &*self.counter_names[i as usize],
                    self.counter_vals[i as usize].get(),
                )
            })
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        Self::name_order(&self.hist_names)
            .into_iter()
            .map(move |i| (&*self.hist_names[i as usize], &self.hist_vals[i as usize]))
    }

    /// Removes all recorded data while keeping the registry usable.
    pub fn clear(&mut self) {
        self.counter_idx.clear();
        self.counter_names.clear();
        self.counter_vals.clear();
        self.hist_idx.clear();
        self.hist_names.clear();
        self.hist_vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert!((h.mean() - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn histogram_percentile_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5) as f64;
        assert!((4800.0..5200.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(0.99) as f64;
        assert!((9600.0..10_000.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_percentile_clamped_to_range() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.percentile(0.0), 1_000_000);
        assert_eq!(h.percentile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_empty_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn histogram_record_n() {
        let mut h = Histogram::new();
        h.record_n(500, 10);
        h.record_n(500, 0);
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 500.0).abs() < 5.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn histogram_huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn summary_display_is_nonempty() {
        let mut h = Histogram::new();
        h.record(5);
        assert!(h.summary().to_string().contains("n=1"));
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut r = StatsRegistry::new();
        r.inc("shootdowns");
        r.add("shootdowns", 2);
        r.record("munmap_ns", 1500);
        r.record("munmap_ns", 2500);
        assert_eq!(r.counter("shootdowns"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.histogram("munmap_ns").unwrap().count(), 2);
        assert!(r.histogram("missing").is_none());
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["shootdowns"]);
        r.clear();
        assert_eq!(r.counter("shootdowns"), 0);
    }
}
