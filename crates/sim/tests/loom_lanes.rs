//! Loom model checking of the lane-engine epoch/handoff protocol
//! (ISSUE 9, satellite 3).
//!
//! Compile and run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p latr-sim --test loom_lanes --release
//! ```
//!
//! Under `--cfg loom` the [`latr_sim::EpochBarrier`]'s lock comes from
//! the vendored mini-loom shim (`third_party/loom`), whose scheduler
//! explores thread interleavings around every `Mutex::lock` with a
//! bounded number of forced preemptions. The vendored shim models
//! sequential consistency only — exactly what a mutex-protected state
//! machine needs.
//!
//! What the models pin down, per the ISSUE:
//!
//! * **Exactly-once epoch advance per worker**: every worker acks every
//!   generation exactly once, in generation order, under every explored
//!   interleaving (the barrier itself panics on over-acking, so the
//!   model run doubles as an assertion sweep).
//! * **Lookahead confinement**: a worker never observes a cross-lane
//!   event from beyond the lookahead window — everything it drains from
//!   its inbox at the generation-`g` barrier was filed at or after the
//!   previous horizon (the coordinator kept anything nearer to itself),
//!   and nothing below the *new* horizon remains hidden in the inbox
//!   after the drain (the ready run is complete).
//! * **Horizon monotonicity**: the horizons a worker observes strictly
//!   increase across generations.

#![cfg(loom)]

use latr_sim::EpochBarrier;
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Two workers, two epochs, with the coordinator filing cross-lane items
/// into the inboxes while the workers run: the full handoff dance of
/// `LaneSet::advance_epoch` + `Shared::barrier_work`, reduced to the
/// shared-state skeleton (the calendars themselves are worker-private and
/// need no modeling).
#[test]
fn barrier_handoff_confines_events_to_the_lookahead_window() {
    loom::model(|| {
        const WORKERS: usize = 2;
        const HORIZONS: [u64; 2] = [100, 200];

        // Per-lane inboxes: (time, filed_under_horizon) pairs.
        type Inboxes = Vec<Mutex<Vec<(u64, u64)>>>;
        let barrier = Arc::new(EpochBarrier::new(WORKERS));
        let inboxes: Arc<Inboxes> =
            Arc::new((0..WORKERS).map(|_| Mutex::new(Vec::new())).collect());

        let handles: Vec<_> = (0..WORKERS)
            .map(|lane| {
                let barrier = Arc::clone(&barrier);
                let inboxes = Arc::clone(&inboxes);
                thread::spawn(move || {
                    let mut my_gen = 0u64;
                    let mut prev_horizon = 0u64;
                    let mut acked = Vec::new();
                    // A worker's calendar, reduced to the times it holds.
                    let mut calendar: Vec<u64> = Vec::new();
                    while let Some((gen, horizon)) = barrier.wait_open(my_gen) {
                        // Exactly-once, in-order epoch advance: the next
                        // generation is always the successor of the last
                        // one this worker acked.
                        assert_eq!(gen, my_gen + 1, "worker skipped or replayed a generation");
                        // Horizon monotonicity.
                        assert!(
                            horizon > prev_horizon,
                            "horizon went backwards: {horizon} after {prev_horizon}"
                        );
                        my_gen = gen;
                        let drained: Vec<(u64, u64)> = inboxes[lane].lock().drain(..).collect();
                        for (time, filed_under) in drained {
                            // Lookahead confinement: everything the
                            // coordinator handed over was beyond the
                            // window it was filed under — events inside
                            // the window never cross a thread.
                            assert!(
                                time >= filed_under,
                                "lane {lane} observed a cross-lane event at t={time} \
                                 from inside the lookahead window (horizon {filed_under})"
                            );
                            calendar.push(time);
                        }
                        // Extract the ready run; the run is complete —
                        // nothing below the new horizon stays behind.
                        calendar.retain(|&t| t >= horizon);
                        assert!(calendar.iter().all(|&t| t >= horizon));
                        prev_horizon = horizon;
                        acked.push(gen);
                        barrier.ack(gen);
                    }
                    // Shutdown only after both epochs were acked once each.
                    assert_eq!(acked, vec![1, 2], "worker missed or duplicated an epoch");
                })
            })
            .collect();

        // Coordinator: file cross-lane events, run the epochs.
        let mut filed_under = 0u64; // current horizon at filing time
        for (epoch, &horizon) in HORIZONS.iter().enumerate() {
            // Cross-lane events land in the inbox only if they are at or
            // beyond the current window (nearer ones stay coordinator-
            // local in staging — not modeled, nothing shared).
            for lane in 0..WORKERS {
                let t = filed_under + 10 * (epoch as u64 + 1) + lane as u64;
                inboxes[lane].lock().push((t, filed_under));
            }
            let gen = barrier.open(horizon);
            assert_eq!(gen, epoch as u64 + 1);
            barrier.wait_acked(gen);
            // After the barrier every inbox is empty: the handoff left
            // nothing below (or above) the horizon hidden in the inbox.
            for lane in 0..WORKERS {
                assert!(
                    inboxes[lane].lock().is_empty(),
                    "lane {lane} inbox not fully drained at the generation-{gen} barrier"
                );
            }
            filed_under = horizon;
        }
        barrier.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Shutdown racing a worker that is between epochs: the worker must
/// either see the final generation and ack it, or see the shutdown — it
/// must never hang and never ack twice. Modeled with one worker so the
/// schedule space stays tractable with the race window wide open.
#[test]
fn shutdown_never_loses_an_ack_or_double_acks() {
    loom::model(|| {
        let barrier = Arc::new(EpochBarrier::new(1));
        let worker = {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut my_gen = 0u64;
                let mut acks = 0u32;
                while let Some((gen, _)) = barrier.wait_open(my_gen) {
                    my_gen = gen;
                    acks += 1;
                    barrier.ack(gen);
                }
                acks
            })
        };
        let gen = barrier.open(50);
        barrier.wait_acked(gen);
        barrier.shutdown();
        let acks = worker.join().unwrap();
        assert_eq!(
            acks, 1,
            "the single opened epoch must be acked exactly once"
        );
    });
}
