//! The per-address-space `mmap_sem` reader/writer semaphore.
//!
//! Linux serializes address-space mutation on `mm->mmap_sem`: `mmap`,
//! `munmap` and `mprotect` take it for writing — and in Linux 4.10 the
//! write side is held *through the TLB shootdown's ACK wait* — while page
//! faults take it for reading. This lock is the amplification mechanism
//! behind Fig. 9: with one munmap per request, every microsecond of
//! shootdown wait is a microsecond during which no other thread of the
//! process can fault or map, capping Apache's throughput regardless of
//! core count.
//!
//! The model is writer-preferring (as the kernel's rwsem is, to avoid
//! writer starvation): once a writer queues, new readers queue behind it.

use crate::task::TaskId;
use std::collections::VecDeque;

/// Acquisition mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (page faults).
    Read,
    /// Exclusive (mmap / munmap / mprotect).
    Write,
}

/// One address space's `mmap_sem`.
#[derive(Debug, Default)]
pub struct MmLock {
    writer: Option<TaskId>,
    readers: Vec<TaskId>,
    queue: VecDeque<(TaskId, LockMode)>,
}

impl MmLock {
    /// Creates an uncontended lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any holder exists.
    pub fn is_held(&self) -> bool {
        self.writer.is_some() || !self.readers.is_empty()
    }

    /// Current writer, if any.
    pub fn writer(&self) -> Option<TaskId> {
        self.writer
    }

    /// Tasks waiting.
    pub fn waiters(&self) -> usize {
        self.queue.len()
    }

    /// Attempts to acquire; on failure the task is queued and will be
    /// returned by a future [`release`](Self::release). Re-entrant
    /// acquisition is a bug and panics.
    ///
    /// # Panics
    ///
    /// Panics if `task` already holds or is already queued.
    pub fn acquire(&mut self, task: TaskId, mode: LockMode) -> bool {
        assert_ne!(self.writer, Some(task), "re-entrant mmap_sem write");
        assert!(
            !self.readers.contains(&task),
            "re-entrant mmap_sem read by {task:?}"
        );
        assert!(
            !self.queue.iter().any(|&(t, _)| t == task),
            "{task:?} queued twice"
        );
        let can = match mode {
            // Writer-preference: a queued writer blocks new readers.
            LockMode::Read => {
                self.writer.is_none() && !self.queue.iter().any(|&(_, m)| m == LockMode::Write)
            }
            LockMode::Write => self.writer.is_none() && self.readers.is_empty(),
        };
        if can {
            match mode {
                LockMode::Read => self.readers.push(task),
                LockMode::Write => self.writer = Some(task),
            }
            true
        } else {
            self.queue.push_back((task, mode));
            false
        }
    }

    /// Releases `task`'s hold and grants the lock onward. Returns the
    /// tasks that acquired as a result (one writer, or a batch of
    /// consecutive readers).
    ///
    /// # Panics
    ///
    /// Panics if `task` holds nothing.
    pub fn release(&mut self, task: TaskId) -> Vec<TaskId> {
        let mut granted = Vec::new();
        self.release_into(task, &mut granted);
        granted
    }

    /// [`release`](Self::release) appending the woken tasks to `out`
    /// instead of allocating — the op-completion hot path passes a scratch
    /// vector whose capacity survives across calls.
    pub fn release_into(&mut self, task: TaskId, out: &mut Vec<TaskId>) {
        if self.writer == Some(task) {
            self.writer = None;
        } else if let Some(pos) = self.readers.iter().position(|&t| t == task) {
            self.readers.swap_remove(pos);
        } else {
            panic!("{task:?} released mmap_sem it does not hold");
        }
        self.grant_into(out);
    }

    /// Wakes whatever the queue's head admits, appending grants to `out`.
    fn grant_into(&mut self, out: &mut Vec<TaskId>) {
        if self.writer.is_some() {
            return;
        }
        match self.queue.front() {
            Some(&(_, LockMode::Write)) if self.readers.is_empty() => {
                let (t, _) = self.queue.pop_front().expect("front exists");
                self.writer = Some(t);
                out.push(t);
            }
            Some(&(_, LockMode::Write)) => {}
            Some(&(_, LockMode::Read)) => {
                while let Some(&(t, LockMode::Read)) = self.queue.front() {
                    self.queue.pop_front();
                    self.readers.push(t);
                    out.push(t);
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn uncontended_acquires_succeed() {
        let mut l = MmLock::new();
        assert!(l.acquire(t(1), LockMode::Read));
        assert!(l.acquire(t(2), LockMode::Read));
        assert!(l.is_held());
        assert_eq!(l.release(t(1)), vec![]);
        assert_eq!(l.release(t(2)), vec![]);
        assert!(!l.is_held());
        assert!(l.acquire(t(3), LockMode::Write));
        assert_eq!(l.writer(), Some(t(3)));
    }

    #[test]
    fn writer_excludes_everyone() {
        let mut l = MmLock::new();
        assert!(l.acquire(t(1), LockMode::Write));
        assert!(!l.acquire(t(2), LockMode::Read));
        assert!(!l.acquire(t(3), LockMode::Write));
        assert_eq!(l.waiters(), 2);
        // Release grants the first waiter (a reader batch of one).
        assert_eq!(l.release(t(1)), vec![t(2)]);
        assert_eq!(l.release(t(2)), vec![t(3)]);
    }

    #[test]
    fn queued_writer_blocks_new_readers() {
        let mut l = MmLock::new();
        assert!(l.acquire(t(1), LockMode::Read));
        assert!(!l.acquire(t(2), LockMode::Write));
        // Writer-preference: t3 must queue behind the writer.
        assert!(!l.acquire(t(3), LockMode::Read));
        assert_eq!(l.release(t(1)), vec![t(2)]);
        assert_eq!(l.writer(), Some(t(2)));
        assert_eq!(l.release(t(2)), vec![t(3)]);
    }

    #[test]
    fn consecutive_readers_granted_as_batch() {
        let mut l = MmLock::new();
        assert!(l.acquire(t(1), LockMode::Write));
        assert!(!l.acquire(t(2), LockMode::Read));
        assert!(!l.acquire(t(3), LockMode::Read));
        assert!(!l.acquire(t(4), LockMode::Write));
        let granted = l.release(t(1));
        assert_eq!(granted, vec![t(2), t(3)]);
        // The writer waits for both readers.
        assert_eq!(l.release(t(2)), vec![]);
        assert_eq!(l.release(t(3)), vec![t(4)]);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_unheld_panics() {
        let mut l = MmLock::new();
        l.release(t(1));
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn reentrant_write_panics() {
        let mut l = MmLock::new();
        l.acquire(t(1), LockMode::Write);
        l.acquire(t(1), LockMode::Write);
    }

    #[test]
    #[should_panic(expected = "queued twice")]
    fn double_queue_panics() {
        let mut l = MmLock::new();
        l.acquire(t(1), LockMode::Write);
        l.acquire(t(2), LockMode::Read);
        l.acquire(t(2), LockMode::Read);
    }
}
