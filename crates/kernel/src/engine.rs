//! Engine selection: which simulation engine drives the machine.
//!
//! [`EngineBackend`] generalizes the old `event_queue: QueueBackend` config
//! knob. `Fast` and `Reference` are the two sequential engines from PR 4
//! (calendar queue vs. binary heap); `Parallel(n)` is the lane-sharded
//! engine from `latr_sim::LaneSet`, which runs `n` real worker threads that
//! maintain per-lane calendars under conservative-lookahead epoch barriers.
//!
//! All three deliver the **exact same event sequence** — `(time, id)` order
//! with ids minted in schedule order — so `Machine::fingerprint()` is
//! bit-identical across engines and across worker counts. The three-way
//! differential matrix in `tests/differential.rs` enforces this.
//!
//! Lane homing: each event is assigned to a lane by the core (or task, for
//! core-less events) it concerns, with cores partitioned into contiguous
//! blocks. Homing is pure load balancing — delivery order comes from the
//! engine's deterministic merge, so *any* deterministic homing function
//! would produce the same simulation.

use crate::event::Event;
use latr_sim::{EventId, EventQueue, LaneSet, Nanos, QueueBackend, Time};

/// Which simulation engine drives the run (see the module docs).
///
/// The default follows the `reference` cargo feature, exactly like
/// `QueueBackend` / the reclaim backend: the feature only flips defaults,
/// every variant is always compiled and runtime-selectable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineBackend {
    /// Sequential engine over the calendar-queue backend (PR 4).
    Fast,
    /// Sequential engine over the binary-heap executable spec.
    Reference,
    /// Lane-sharded engine with this many worker threads. `Parallel(1)`
    /// still exercises the full barrier protocol on one lane.
    Parallel(usize),
}

impl Default for EngineBackend {
    fn default() -> Self {
        if cfg!(feature = "reference") {
            EngineBackend::Reference
        } else {
            EngineBackend::Fast
        }
    }
}

impl EngineBackend {
    /// Parses `"fast"`, `"reference"`, or `"parallel:<n>"` (as used by the
    /// bench bins' CLI).
    pub fn parse(s: &str) -> Option<EngineBackend> {
        match s {
            "fast" => Some(EngineBackend::Fast),
            "reference" => Some(EngineBackend::Reference),
            _ => s
                .strip_prefix("parallel:")
                .and_then(|n| n.parse().ok())
                .filter(|&n: &usize| n > 0)
                .map(EngineBackend::Parallel),
        }
    }

    /// Short label for stats/bench output.
    pub fn label(self) -> String {
        match self {
            EngineBackend::Fast => "fast".into(),
            EngineBackend::Reference => "reference".into(),
            EngineBackend::Parallel(n) => format!("parallel:{n}"),
        }
    }
}

/// Maps an event to the simulated core it concerns (best effort; `None`
/// means machine-global).
fn event_cpu(event: &Event, ncpus: usize) -> Option<usize> {
    match *event {
        Event::OpComplete { cpu, .. } => Some(cpu.0 as usize),
        Event::SchedTick(cpu) => Some(cpu.0 as usize),
        Event::IpiDeliver { target, .. } => Some(target.0 as usize),
        // Task-homed events: tasks are pinned round-robin across cores, so
        // the task id modulo the core count is a stable stand-in.
        Event::TaskStep(task) | Event::NumaFaultRetry { task, .. } | Event::LockGranted(task) => {
            Some(task.0 as usize % ncpus)
        }
        // Machine-global bookkeeping congregates on lane 0.
        Event::AckArrive { .. }
        | Event::TxnRetry(_)
        | Event::ReclaimTick
        | Event::NumaScan(_)
        | Event::PolicyTimer(_) => None,
    }
}

/// The simulation queue the machine loop runs on: one of the sequential
/// [`EventQueue`]s or the lane-sharded [`LaneSet`]. Mirrors the exact API
/// surface `Machine` uses.
pub(crate) enum SimQueue {
    Single(EventQueue<Event>),
    Lanes(LaneSet<Event>),
}

impl SimQueue {
    /// Builds the queue for the chosen backend. `ncpus` drives lane homing
    /// and `tick_period` (the scheduler-tick quantum) sets the epoch
    /// width: cross-lane causality (IPI latency, sweep completion, op
    /// costs) is exchanged at tick-quantum-wide barrier epochs.
    pub(crate) fn new(backend: EngineBackend, ncpus: usize, tick_period: Nanos) -> SimQueue {
        match backend {
            EngineBackend::Fast => SimQueue::Single(EventQueue::with_backend(QueueBackend::Fast)),
            EngineBackend::Reference => {
                SimQueue::Single(EventQueue::with_backend(QueueBackend::Reference))
            }
            EngineBackend::Parallel(workers) => {
                let workers = workers.max(1);
                let ncpus = ncpus.max(1);
                // Core c lives in lane c·n/ncpus: contiguous blocks, so a
                // mm's sweep activity clusters instead of striping.
                let home = move |event: &Event| match event_cpu(event, ncpus) {
                    Some(cpu) => (cpu.min(ncpus - 1)) * workers / ncpus,
                    None => 0,
                };
                SimQueue::Lanes(LaneSet::new(workers, tick_period, Box::new(home)))
            }
        }
    }

    #[inline]
    pub(crate) fn now(&self) -> Time {
        match self {
            SimQueue::Single(q) => q.now(),
            SimQueue::Lanes(q) => q.now(),
        }
    }

    #[inline]
    pub(crate) fn delivered(&self) -> u64 {
        match self {
            SimQueue::Single(q) => q.delivered(),
            SimQueue::Lanes(q) => q.delivered(),
        }
    }

    #[inline]
    pub(crate) fn schedule(&mut self, time: Time, event: Event) -> EventId {
        match self {
            SimQueue::Single(q) => q.schedule(time, event),
            SimQueue::Lanes(q) => q.schedule(time, event),
        }
    }

    #[inline]
    pub(crate) fn schedule_after(&mut self, delta: Nanos, event: Event) -> EventId {
        match self {
            SimQueue::Single(q) => q.schedule_after(delta, event),
            SimQueue::Lanes(q) => q.schedule_after(delta, event),
        }
    }

    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<Time> {
        match self {
            SimQueue::Single(q) => q.peek_time(),
            SimQueue::Lanes(q) => q.peek_time(),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(Time, Event)> {
        match self {
            SimQueue::Single(q) => q.pop(),
            SimQueue::Lanes(q) => q.pop(),
        }
    }

    /// Test-only: switches a parallel engine's cross-lane merge to the
    /// unsound wall-clock-arrival order (the determinism suite's negative
    /// control). No-op on the sequential engines.
    pub(crate) fn set_unsound_merge(&mut self, unsound: bool) {
        if let SimQueue::Lanes(q) = self {
            q.set_unsound_merge(unsound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_arch::CpuId;
    use latr_sim::MILLISECOND;

    #[test]
    fn backend_parse_round_trips() {
        for b in [
            EngineBackend::Fast,
            EngineBackend::Reference,
            EngineBackend::Parallel(4),
        ] {
            assert_eq!(EngineBackend::parse(&b.label()), Some(b));
        }
        assert_eq!(EngineBackend::parse("parallel:0"), None);
        assert_eq!(EngineBackend::parse("bogus"), None);
    }

    #[test]
    fn default_follows_reference_feature() {
        let expect = if cfg!(feature = "reference") {
            EngineBackend::Reference
        } else {
            EngineBackend::Fast
        };
        assert_eq!(EngineBackend::default(), expect);
    }

    #[test]
    fn homing_partitions_cores_into_contiguous_blocks() {
        let ncpus = 120;
        let workers = 4;
        let lane_of = |cpu: u16| {
            let e = Event::SchedTick(CpuId(cpu));
            (event_cpu(&e, ncpus).unwrap().min(ncpus - 1)) * workers / ncpus
        };
        assert_eq!(lane_of(0), 0);
        assert_eq!(lane_of(29), 0);
        assert_eq!(lane_of(30), 1);
        assert_eq!(lane_of(119), 3);
        // Monotone: contiguous blocks, never striped.
        let mut prev = 0;
        for cpu in 0..120u16 {
            let l = lane_of(cpu);
            assert!(l >= prev && l < workers);
            prev = l;
        }
    }

    #[test]
    fn sim_queue_variants_deliver_identically() {
        let mk = |b| SimQueue::new(b, 8, MILLISECOND);
        let mut queues = [
            mk(EngineBackend::Fast),
            mk(EngineBackend::Reference),
            mk(EngineBackend::Parallel(3)),
        ];
        for t in [0u64, 5, 5, 2_000_000, 1_500_000, 7_777_777] {
            let ev = Event::SchedTick(CpuId((t % 8) as u16));
            let ids: Vec<_> = queues
                .iter_mut()
                .map(|q| q.schedule(Time::from_ns(t.max(q.now().as_ns())), ev))
                .collect();
            assert!(ids.windows(2).all(|w| w[0] == w[1]));
        }
        loop {
            let popped: Vec<_> = queues.iter_mut().map(SimQueue::pop).collect();
            assert!(popped.windows(2).all(|w| w[0] == w[1]));
            if popped[0].is_none() {
                break;
            }
        }
    }
}
