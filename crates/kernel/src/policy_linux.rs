//! The Linux 4.10 baseline TLB-coherence policy (§2.1).
//!
//! Every remote invalidation is a synchronous, IPI-based shootdown to the
//! process' `mm_cpumask`: the initiator programs the APIC once per target,
//! remote cores take an interrupt, invalidate (or full-flush above the
//! 33-entry threshold — already applied by the machine) and ACK through the
//! cache-coherence fabric; the initiator spins until every ACK arrives.

use crate::machine::Machine;
use crate::shootdown::{FlushKind, FlushOutcome, TlbPolicy};
use crate::task::TaskId;
use latr_arch::CpuId;
use latr_mem::{MmId, Pfn, VaRange, Vpn};

/// The stock Linux shootdown policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinuxPolicy;

impl LinuxPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        LinuxPolicy
    }
}

impl TlbPolicy for LinuxPolicy {
    fn name(&self) -> &'static str {
        "linux"
    }

    fn flush_others(
        &mut self,
        machine: &mut Machine,
        initiator: CpuId,
        _task: Option<TaskId>,
        mm: MmId,
        _range: VaRange,
        pages: &[(Vpn, Pfn)],
        _kind: FlushKind,
        start_delay: latr_sim::Nanos,
    ) -> FlushOutcome {
        let mut targets = machine.mm(mm).cpumask;
        targets.clear(initiator);
        if targets.is_empty() || pages.is_empty() {
            // Nothing cached remotely: purely local flush.
            return FlushOutcome::Deferred {
                local_ns: 0,
                defer_reclaim: false,
            };
        }
        let vpns: Vec<Vpn> = pages.iter().map(|&(v, _)| v).collect();
        let txn = machine.begin_sync_shootdown(initiator, mm, vpns, targets, start_delay);
        FlushOutcome::Sync { txn, local_ns: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::ops::{Op, Workload};
    use latr_arch::{MachinePreset, Topology};
    use latr_sim::MICROSECOND;

    /// A tiny workload: every task maps one page, touches it, unmaps it,
    /// repeats `rounds` times, then exits.
    struct MapTouchUnmap {
        cores: usize,
        rounds: u32,
        progress: Vec<u32>,
        phase: Vec<u8>,
    }

    impl MapTouchUnmap {
        fn new(cores: usize, rounds: u32) -> Self {
            MapTouchUnmap {
                cores,
                rounds,
                progress: vec![0; cores],
                phase: vec![0; cores],
            }
        }
    }

    impl Workload for MapTouchUnmap {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            for c in 0..self.cores {
                machine.spawn_task(mm, CpuId(c as u16));
            }
        }

        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            let i = task.index();
            if self.progress[i] >= self.rounds {
                return Op::Exit;
            }
            let op = match self.phase[i] {
                0 => Op::MmapAnon { pages: 1 },
                1 => {
                    let r = machine.task(task).last_mmap.expect("mapped");
                    Op::Access {
                        vpn: r.start,
                        write: true,
                    }
                }
                _ => {
                    let r = machine.task(task).last_mmap.expect("mapped");
                    Op::Munmap { range: r }
                }
            };
            self.phase[i] = (self.phase[i] + 1) % 3;
            if self.phase[i] == 0 {
                self.progress[i] += 1;
            }
            op
        }
    }

    fn run_linux(cores: usize, rounds: u32) -> Machine {
        let mut machine = Machine::new(MachineConfig::new(Topology::preset(
            MachinePreset::Commodity2S16C,
        )));
        machine.run(
            Box::new(MapTouchUnmap::new(cores, rounds)),
            Box::new(LinuxPolicy::new()),
            latr_sim::SECOND,
        );
        machine
    }

    #[test]
    fn single_core_unmaps_need_no_ipis() {
        let m = run_linux(1, 10);
        assert_eq!(m.stats.counter(crate::metrics::SHOOTDOWNS), 0);
        assert_eq!(m.stats.counter(crate::metrics::IPIS_SENT), 0);
        assert_eq!(
            m.stats
                .histogram(crate::metrics::MUNMAP_NS)
                .unwrap()
                .count(),
            10
        );
    }

    #[test]
    fn multi_core_unmaps_send_ipis_to_all_sharers() {
        let m = run_linux(4, 5);
        let shootdowns = m.stats.counter(crate::metrics::SHOOTDOWNS);
        assert_eq!(shootdowns, 4 * 5);
        // Most rounds target the 3 other cores; late rounds may see fewer
        // sharers because tasks retire at staggered times.
        let ipis = m.stats.counter(crate::metrics::IPIS_SENT);
        assert!(ipis >= shootdowns && ipis <= shootdowns * 3, "ipis {ipis}");
        assert_eq!(m.stats.counter(crate::metrics::IPIS_HANDLED), ipis);
    }

    #[test]
    fn munmap_latency_grows_with_cores() {
        let m2 = run_linux(2, 20);
        let m16 = run_linux(16, 20);
        let l2 = m2
            .stats
            .histogram(crate::metrics::MUNMAP_NS)
            .unwrap()
            .mean();
        let l16 = m16
            .stats
            .histogram(crate::metrics::MUNMAP_NS)
            .unwrap()
            .mean();
        assert!(
            l16 > l2 * 1.8,
            "expected strong growth: 2 cores {l2:.0}ns, 16 cores {l16:.0}ns"
        );
        // All 16 cores unmap concurrently here, so each munmap also eats
        // 15 cores' worth of incoming IPI handlers — well above the paper's
        // single-initiator 8 µs (that anchor is pinned by the Fig. 6
        // microbenchmark in latr-workloads). Sanity-bound it instead.
        assert!(
            (6.0 * MICROSECOND as f64..40.0 * MICROSECOND as f64).contains(&l16),
            "16-core munmap {l16:.0}ns out of range"
        );
    }

    #[test]
    fn invariants_hold_throughout() {
        let m = run_linux(8, 10);
        assert_eq!(m.check_reclamation_invariant(), None);
        assert_eq!(m.check_mapping_coherence(), None);
    }

    #[test]
    fn frames_are_released_after_shootdown() {
        let m = run_linux(4, 5);
        // All anonymous pages freed: allocator back to empty.
        assert_eq!(m.frames.allocated_count(), 0);
    }
}
