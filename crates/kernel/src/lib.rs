//! # latr-kernel — the simulated operating system
//!
//! A discrete-event model of the parts of Linux 4.10 that Latr patches:
//! per-core scheduling with 1 ms ticks, address spaces with demand paging,
//! the `mmap`/`munmap`/`madvise`/`mprotect` syscall paths, page faults,
//! IPI-based TLB shootdowns, and AutoNUMA page migration.
//!
//! The centrepiece is [`Machine`]: it owns the event queue, the cores (each
//! with a real TLB model), the address spaces (real page tables and VMA
//! trees over a refcounting frame allocator) and a pluggable
//! [`TlbPolicy`] deciding what happens when remote TLBs must be
//! invalidated:
//!
//! * [`LinuxPolicy`] — the baseline: synchronous, IPI-based shootdowns
//!   with Linux's batching and full-flush heuristics (§2.1);
//! * [`AbisPolicy`] — the ABIS baseline: access-bit tracking narrows the
//!   IPI target set at a per-page bookkeeping cost (§2.3);
//! * `LatrPolicy` — lives in the `latr-core` crate (the paper's
//!   contribution) and plugs in through the same trait.
//!
//! Workloads drive tasks through [`Op`]s; the machine executes them against
//! the memory substrate, charging time from the calibrated
//! [`latr_arch::CostModel`].

mod engine;
mod event;
mod machine;
mod mmlock;
mod numa;
mod ops;
mod policy_abis;
mod policy_linux;
mod shootdown;
mod task;

pub use engine::EngineBackend;
pub use event::Event;
pub use machine::{Core, InvariantViolation, Machine, MachineConfig, ReclaimPackage};
pub use mmlock::{LockMode, MmLock};
pub use numa::{NumaConfig, NumaStats};
pub use ops::{Op, OpResult, Workload};
pub use policy_abis::AbisPolicy;
pub use policy_linux::LinuxPolicy;
pub use shootdown::{FlushKind, FlushOutcome, NoopPolicy, ShootdownTxn, TlbPolicy, TxnId};
pub use task::{Task, TaskId, TaskState};

/// Well-known statistics names recorded by the machine; workloads and the
/// bench harness share these constants instead of scattering string
/// literals.
pub mod metrics {
    /// Remote-invalidation rounds initiated (one per munmap/madvise/
    /// mprotect/NUMA-scan that needed remote cores) — "TLB shootdowns" in
    /// the paper's figures.
    pub const SHOOTDOWNS: &str = "shootdowns";
    /// Individual IPIs sent.
    pub const IPIS_SENT: &str = "ipis_sent";
    /// IPI interrupts handled on remote cores.
    pub const IPIS_HANDLED: &str = "ipis_handled";
    /// End-to-end latency of `munmap()` calls (ns histogram).
    pub const MUNMAP_NS: &str = "munmap_ns";
    /// Latency of the remote-shootdown portion of an munmap (ns histogram).
    pub const SHOOTDOWN_NS: &str = "shootdown_ns";
    /// End-to-end latency of `madvise(DONTNEED/FREE)` calls.
    pub const MADVISE_NS: &str = "madvise_ns";
    /// Page faults taken.
    pub const PAGE_FAULTS: &str = "page_faults";
    /// NUMA hint faults taken.
    pub const HINT_FAULTS: &str = "hint_faults";
    /// Pages migrated across NUMA nodes.
    pub const MIGRATIONS: &str = "migrations";
    /// Context switches performed.
    pub const CONTEXT_SWITCHES: &str = "context_switches";
    /// Scheduler ticks delivered.
    pub const SCHED_TICKS: &str = "sched_ticks";
    /// Workload-level completed units (requests, iterations).
    pub const WORK_UNITS: &str = "work_units";
    /// Latr states saved (written by the Latr policy).
    pub const LATR_STATES_SAVED: &str = "latr_states_saved";
    /// Latr sweeps that invalidated at least one entry.
    pub const LATR_SWEEP_HITS: &str = "latr_sweep_hits";
    /// Latr fallback IPI rounds (state queue full).
    pub const LATR_FALLBACK_IPIS: &str = "latr_fallback_ipis";
    /// Frames whose reclamation Latr deferred.
    pub const LATR_DEFERRED_FRAMES: &str = "latr_deferred_frames";
    /// ABIS access-bit tracking operations.
    pub const ABIS_TRACK_OPS: &str = "abis_track_ops";
    /// IPI deliveries dropped by the fault injector.
    pub const FAULTS_IPI_DROPPED: &str = "faults_ipi_dropped";
    /// IPI deliveries delayed by the fault injector.
    pub const FAULTS_IPI_DELAYED: &str = "faults_ipi_delayed";
    /// Scheduler ticks skipped by the fault injector.
    pub const FAULTS_TICKS_MISSED: &str = "faults_ticks_missed";
    /// Scheduler ticks jittered late by the fault injector.
    pub const FAULTS_TICK_JITTER: &str = "faults_tick_jitter";
    /// Sweeps suppressed because the core was inside an injected stall.
    pub const FAULTS_SWEEP_STALLS: &str = "faults_sweep_stalls";
    /// State publishes forced to overflow by an injected storm.
    pub const FAULTS_FORCED_OVERFLOWS: &str = "faults_forced_overflows";
    /// Shootdown retransmit rounds (lost-IPI recovery; injection only).
    pub const IPI_RETRIES: &str = "ipi_retries";
    /// Latr watchdog escalations: states whose bitmask outlived
    /// `watchdog_ticks` and were finished with targeted IPIs.
    pub const LATR_WATCHDOG_ESCALATIONS: &str = "latr_watchdog_escalations";
    /// Targeted IPIs sent by the watchdog (subset of `ipis_sent`).
    pub const LATR_WATCHDOG_IPIS: &str = "latr_watchdog_ipis";
    /// Adaptive-fallback transitions into synchronous mode.
    pub const LATR_ADAPTIVE_ENTERS: &str = "latr_adaptive_enters";
    /// Adaptive-fallback transitions back to lazy mode.
    pub const LATR_ADAPTIVE_EXITS: &str = "latr_adaptive_exits";
    /// Operations routed synchronously while adaptive fallback was active.
    pub const LATR_ADAPTIVE_SYNC_OPS: &str = "latr_adaptive_sync_ops";
    /// Publish→release latency of lazily reclaimed packages (ns histogram).
    pub const LATR_RECLAIM_LATENCY_NS: &str = "latr_reclaim_latency_ns";
    /// Frames actually released by Latr's deferred reclamation.
    pub const LATR_RECLAIM_RELEASED_FRAMES: &str = "latr_reclaim_released_frames";
    /// Allocations that found every free list empty and took the stall
    /// path (the direct-reclaim analogue).
    pub const ALLOC_STALLS: &str = "alloc_stalls";
    /// Time spent stalled in allocation (ns histogram; p50/p99/p999 are
    /// the storm-resilience headline numbers).
    pub const ALLOC_STALL_NS: &str = "alloc_stall_ns";
    /// Allocations that failed even after the stall-and-retry path.
    pub const OOM_EVENTS: &str = "oom_events";
    /// Nodes crossing their low watermark (Normal → Low transitions).
    pub const MEM_PRESSURE_LOW_EVENTS: &str = "mem_pressure_low_events";
    /// Nodes crossing their min watermark (reserve floor breached).
    pub const MEM_PRESSURE_MIN_EVENTS: &str = "mem_pressure_min_events";
    /// Nodes recovering back above the low watermark.
    pub const MEM_PRESSURE_RECOVERIES: &str = "mem_pressure_recoveries";
    /// Injected allocation-burst windows applied.
    pub const FAULTS_ALLOC_BURSTS: &str = "faults_alloc_bursts";
    /// Reclamation-kthread ticks suppressed by an injected reclaim stall.
    pub const FAULTS_RECLAIM_STALLS: &str = "faults_reclaim_stalls";
    /// Injected watermark-flap windows applied.
    pub const FAULTS_WATERMARK_FLAPS: &str = "faults_watermark_flaps";
    /// Gated reclamation packages expedited by memory pressure (their
    /// owner swept out of turn).
    pub const LATR_EXPEDITED_SWEEPS: &str = "latr_expedited_sweeps";
    /// Targeted IPIs sent by pressure expedition (subset of `ipis_sent`).
    pub const LATR_EXPEDITED_IPIS: &str = "latr_expedited_ipis";
    /// Pressure→release latency of expedited packages (ns histogram; the
    /// escalation tick bound is asserted over its max).
    pub const LATR_EXPEDITE_LATENCY_NS: &str = "latr_expedite_latency_ns";
    /// Sync-mode entries forced by min-watermark pressure (subset of
    /// `latr_adaptive_enters`).
    pub const LATR_PRESSURE_SYNC_ENTERS: &str = "latr_pressure_sync_enters";
    /// Gated packages already past their reclaim deadline but still held
    /// because the gating state's CPU bitmask has not cleared — counted
    /// every reclamation tick, watchdog or no watchdog, so the
    /// degradation counters stay honest when `watchdog_ticks = 0`.
    pub const LATR_GATE_HELD: &str = "latr_gate_held";
    /// Open-loop request latency of the serving workload, arrival to
    /// munmap completion (ns histogram; the `BENCH_serving.json` tail
    /// curves are its p50/p99/p999).
    pub const SERVING_REQUEST_NS: &str = "serving_request_ns";
}
