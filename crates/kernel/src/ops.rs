//! Workload operations and the workload trait.
//!
//! A [`Workload`] is a deterministic op generator: the machine asks it for
//! the next [`Op`] of a task, executes the op against the memory substrate
//! (charging simulated time), and reports completion. This keeps workloads
//! completely decoupled from the event loop.

use crate::machine::Machine;
use crate::task::TaskId;
use latr_mem::{FileId, Prot, VaRange, Vpn};
use latr_sim::Nanos;

/// One operation a task can perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Burn CPU for the given time (application work).
    Compute(Nanos),
    /// Touch one page (TLB lookup, possibly a page walk or fault).
    Access {
        /// The page to touch.
        vpn: Vpn,
        /// Whether the access writes.
        write: bool,
    },
    /// Touch `accesses` uniformly random pages of `range` — a compact way
    /// to model a working set without one event per load.
    AccessBatch {
        /// Pages to choose from.
        range: VaRange,
        /// Number of accesses to model.
        accesses: u32,
        /// Whether the accesses write.
        write: bool,
    },
    /// `mmap(MAP_ANONYMOUS)` of `pages` pages; the resulting range is
    /// stored in the task's `last_mmap`.
    MmapAnon {
        /// Number of pages.
        pages: u64,
    },
    /// `mmap()` of a page-cache file; the range lands in `last_mmap`.
    MmapFile {
        /// Which file.
        file: FileId,
        /// First file page to map.
        offset: u64,
        /// Number of pages.
        pages: u64,
    },
    /// `munmap()` of a range — the paper's headline free operation.
    Munmap {
        /// Range to unmap.
        range: VaRange,
    },
    /// `madvise(MADV_FREE)` of a range — frees frames, keeps the VMA.
    MadviseFree {
        /// Range to free.
        range: VaRange,
    },
    /// `mprotect()` — always a synchronous shootdown (Table 1: lazy not
    /// possible).
    Mprotect {
        /// Range to re-protect.
        range: VaRange,
        /// New protection.
        prot: Prot,
    },
    /// `mremap()` to a fresh virtual range — a physical-address-visible
    /// remap, synchronous in every policy (Table 1). The new range lands
    /// in the task's `last_mmap`.
    Mremap {
        /// Range to move.
        range: VaRange,
    },
    /// Swap a range's pages out to backing store (Table 1 "Page swap":
    /// lazy-able — the frames are reclaimed like a free operation and the
    /// next touch swaps back in).
    SwapOut {
        /// Range to swap out.
        range: VaRange,
    },
    /// KSM-style deduplication over a range (Table 1: lazy-able): pages
    /// are write-protected (synchronously — an ownership change), then
    /// odd pages are merged onto their even neighbours and the duplicate
    /// frames freed lazily.
    Dedup {
        /// Range to deduplicate (pairs of pages).
        range: VaRange,
    },
    /// Physical-memory compaction over a range (Table 1: lazy-able like
    /// migration): pages are lazily unmapped exactly like AutoNUMA hints
    /// and the next touch migrates them to fresh frames.
    Compact {
        /// Range to compact.
        range: VaRange,
    },
    /// `fork()` the task's address space: every writable page becomes
    /// CoW (write-protected in the parent too — the Table 1 "Ownership"
    /// row, synchronous in every policy). The child `MmId` lands in the
    /// task's `last_fork`.
    Fork,
    /// Voluntarily context-switch (models schedule() + back).
    Yield,
    /// Sleep without consuming CPU (closed-loop pacing).
    Sleep(Nanos),
    /// Terminate the task.
    Exit,
}

/// What the machine reports back to the workload when an op finishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpResult {
    /// The op that completed.
    pub op: Op,
    /// End-to-end latency of the op in simulated nanoseconds.
    pub latency: Nanos,
}

/// A deterministic op generator driving the machine.
///
/// Implementations create their processes/tasks in [`setup`](Self::setup),
/// then feed ops one at a time. All randomness must come from the machine's
/// seeded RNG (or a fork of it) so runs are reproducible.
///
/// The [`Any`](std::any::Any) supertrait lets harnesses downcast the box
/// returned by [`Machine::run`] to read workload-collected observations
/// back out.
pub trait Workload: std::any::Any {
    /// Creates processes, address spaces, files and tasks on the machine.
    /// Called once before the simulation starts.
    fn setup(&mut self, machine: &mut Machine);

    /// Produces the next op for `task`. Returning [`Op::Exit`] retires the
    /// task; the simulation ends when all tasks have exited (or at the
    /// configured horizon).
    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op;

    /// Observes a completed op (for pacing, bookkeeping, request counting).
    /// The default does nothing.
    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        let _ = (machine, task, result);
    }

    /// Short name for reports.
    fn name(&self) -> &str {
        "workload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_comparable_and_copy() {
        let a = Op::Compute(5);
        let b = a;
        assert_eq!(a, b);
        assert_ne!(Op::Yield, Op::Exit);
    }

    #[test]
    fn op_result_carries_latency() {
        let r = OpResult {
            op: Op::Sleep(3),
            latency: 3,
        };
        assert_eq!(r.latency, 3);
    }
}
