//! The simulated machine: cores, address spaces, event loop, syscalls.
//!
//! One [`Machine`] is one experiment run: a topology, a cost model, a
//! [`TlbPolicy`](crate::TlbPolicy), a [`Workload`] and a seed. Tasks are
//! pinned one-per-core (the paper pins workers and disables
//! hyperthreading); context switching is modelled through explicit
//! [`Op::Yield`] ops, and cross-CPU interference flows through interrupt
//! "time debt" injected into whatever op a core is executing when an IPI
//! lands.

use crate::engine::{EngineBackend, SimQueue};
use crate::event::Event;
use crate::mmlock::{LockMode, MmLock};
use crate::numa::{NumaConfig, NumaRuntime, NumaStats};
use crate::ops::{Op, OpResult, Workload};
use crate::shootdown::{FlushKind, FlushOutcome, ShootdownTxn, TlbPolicy, TxnId};
use crate::task::{Task, TaskId, TaskState};
use latr_arch::{CostModel, CpuId, CpuMask, IpiFabric, LlcModel, Tlb, TlbEntry, Topology};
use latr_faults::{FaultInjector, FaultPlan, IpiFault, TickFault};
use latr_mem::{
    AllocError, FileId, FrameAllocator, MapKind, MmId, MmStruct, PageCache, Pfn, Pressure, Prot,
    PteFlags, VaRange, Vpn,
};
use latr_sim::{Nanos, SimRng, StatsRegistry, Time, TraceRing};
use std::collections::HashMap;

/// Configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// The machine layout (sockets, cores, TLB sizes).
    pub topology: Topology,
    /// The latency constants.
    pub costs: CostModel,
    /// RNG seed; same seed + same workload = identical run.
    pub seed: u64,
    /// Physical frames per NUMA node.
    pub frames_per_node: u64,
    /// Trace ring capacity (0 = tracing off).
    pub trace_capacity: usize,
    /// Baseline LLC miss ratio of the application (Table 4 modelling).
    pub llc_base_miss_ratio: f64,
    /// Whether PCIDs tag TLB entries (§4.5; Linux 4.10 default is off).
    pub pcid_enabled: bool,
    /// Tickless kernel (§7, `CONFIG_NO_HZ`): idle cores skip their
    /// scheduler ticks entirely. Safe for Latr because an idle core is in
    /// no `mm_cpumask`, so no state ever names it; its TLB was flushed on
    /// the way to idle.
    pub tickless: bool,
    /// AutoNUMA configuration.
    pub numa: NumaConfig,
    /// Whether the translation-coherence oracle shadows the run (needs the
    /// `oracle` cargo feature, on by default). The oracle is a pure
    /// observer; it costs some memory and time but never changes behaviour.
    pub oracle: bool,
    /// Deterministic fault plan to inject (chaos testing). `None` — and
    /// any plan for which [`FaultPlan::is_active`] is false — leaves the
    /// run event-for-event identical to a build without fault injection:
    /// the injector's RNG is forked off the seed, never the main stream,
    /// and the IPI retransmit timer is only armed while a plan is active.
    pub faults: Option<FaultPlan>,
    /// Which simulation engine drives the run: the two sequential engines
    /// (`Fast` calendar queue, `Reference` heap — the executable spec) or
    /// the lane-sharded `Parallel(n)` engine with `n` worker threads. All
    /// deliver the exact same event order, so fingerprints are
    /// bit-identical across engines; the default follows the `reference`
    /// cargo feature.
    pub engine: EngineBackend,
    /// Per-node low (early-warning) free-frame watermark. Crossing it
    /// fires the policy's [`TlbPolicy::on_memory_pressure`] hook so lazy
    /// reclamation can be expedited before the pool drains. `0` together
    /// with `min_watermark_frames = 0` disables pressure signalling — the
    /// default, which keeps healthy runs event-identical to builds
    /// without the pressure layer.
    pub low_watermark_frames: u64,
    /// Per-node min (reserve floor) watermark; must be ≤ the low one.
    /// Below it forward progress must not depend on lazy timing any more
    /// (Latr falls back to synchronous shootdown per mm).
    pub min_watermark_frames: u64,
}

impl MachineConfig {
    /// A config over the given topology with calibrated costs and sensible
    /// defaults (NUMA balancing off, as in §6.1's free-operation runs).
    pub fn new(topology: Topology) -> Self {
        MachineConfig {
            topology,
            costs: CostModel::calibrated(),
            seed: 0x1a7_12a7,
            frames_per_node: 1 << 20, // 4 GiB per node — ample for workloads
            trace_capacity: 0,
            llc_base_miss_ratio: 0.05,
            pcid_enabled: false,
            tickless: false,
            numa: NumaConfig::disabled(),
            oracle: cfg!(feature = "oracle"),
            faults: None,
            engine: EngineBackend::default(),
            low_watermark_frames: 0,
            min_watermark_frames: 0,
        }
    }

    /// Enables memory-pressure signalling with the given per-node
    /// watermarks (in frames).
    pub fn with_watermarks(mut self, low: u64, min: u64) -> Self {
        self.low_watermark_frames = low;
        self.min_watermark_frames = min;
        self
    }
}

/// Per-core execution state.
#[derive(Debug)]
pub struct Core {
    /// This core's id.
    pub id: CpuId,
    /// The core's TLB model.
    pub tlb: Tlb,
    /// The task pinned here, if any.
    pub current: Option<TaskId>,
}

/// The per-core scalars touched on every event, in structure-of-arrays
/// layout: `Core` carries the TLB model (kilobytes per core), so keeping
/// these flags inside it strides each access across the whole `Core`
/// array. Packed into four dense vectors they fit a handful of cache
/// lines for all 120 cores of the large preset.
#[derive(Debug, Default)]
struct CoreHot {
    /// Whether an op is in flight.
    busy: Vec<bool>,
    /// Interrupt time injected into the in-flight op.
    debt: Vec<Nanos>,
    /// Guards stale `OpComplete` events after debt rescheduling.
    op_generation: Vec<u64>,
    /// When the in-flight op started (for op latency accounting).
    op_started: Vec<Time>,
}

impl CoreHot {
    fn new(ncpus: usize) -> CoreHot {
        CoreHot {
            busy: vec![false; ncpus],
            debt: vec![0; ncpus],
            op_generation: vec![0; ncpus],
            op_started: vec![Time::ZERO; ncpus],
        }
    }
}

/// FNV-1a parameters for the incremental event-stream fingerprint.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold_u64(h: &mut u64, x: u64) {
    // Word-at-a-time polynomial accumulation: one multiply per word
    // instead of the eight dependent byte rounds FNV-1a would cost on
    // the per-event path. Each step is a bijection of the running state
    // (odd multiplier, then add), so a differing word can never cancel
    // out of the fold; `fold_finish` adds the avalanche when the value
    // is rendered.
    *h = h.wrapping_mul(FNV_PRIME).wrapping_add(x);
}

/// Finalizer applied when the running fold is *read*: two xor-shift
/// multiply rounds (splitmix64's) so low-entropy tails still flip high
/// and low digits of the rendered value.
fn fold_finish(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one delivered event into the running fingerprint: the delivery
/// time plus a compact `(tag, a, b, c)` encoding of the payload. Engines
/// deliver the exact same `(time, id)` sequence, so the fold is
/// bit-identical across `fast`/`reference`/`parallel:<n>`.
fn fold_event(fold: &mut u64, time: Time, event: &Event) {
    let (tag, a, b, c) = match *event {
        Event::TaskStep(t) => (1, t.0 as u64, 0, 0),
        Event::OpComplete {
            cpu,
            task,
            generation,
        } => (2, cpu.0 as u64, task.0 as u64, generation),
        Event::SchedTick(cpu) => (3, cpu.0 as u64, 0, 0),
        Event::IpiDeliver { target, txn } => (4, target.0 as u64, txn.0, 0),
        Event::AckArrive { txn, from } => (5, txn.0, from.0 as u64, 0),
        Event::TxnRetry(txn) => (6, txn.0, 0, 0),
        Event::ReclaimTick => (7, 0, 0, 0),
        Event::NumaScan(mm) => (8, mm.0 as u64, 0, 0),
        Event::NumaFaultRetry { task, vpn } => (9, task.0 as u64, vpn, 0),
        Event::PolicyTimer(token) => (10, token, 0, 0),
        Event::LockGranted(t) => (11, t.0 as u64, 0, 0),
    };
    fold_u64(fold, time.as_ns());
    fold_u64(fold, tag);
    fold_u64(fold, a);
    fold_u64(fold, b);
    fold_u64(fold, c);
}

/// A deferred-release package: the frames and VA range whose reuse must
/// wait for the TLB shootdown to complete.
#[derive(Debug, Clone)]
pub struct ReclaimPackage {
    /// The address space the VA belongs to.
    pub mm: MmId,
    /// Frame references to drop.
    pub frames: Vec<Pfn>,
    /// VA range to unblock.
    pub va: Option<VaRange>,
}

/// The simulated machine. See the module documentation for the model.
pub struct Machine {
    topology: Topology,
    costs: CostModel,
    fabric: IpiFabric,
    queue: SimQueue,
    /// Per-core state, indexed by CPU id.
    pub cores: Vec<Core>,
    /// The per-event core scalars, in structure-of-arrays layout.
    hot: CoreHot,
    mms: Vec<MmStruct>,
    /// Dense copy of each mm's PCID (`mm_pcid[mm] == mms[mm].pcid`): the
    /// TLB paths read a PCID on every access, and a `u16` array is
    /// cache-dense where `MmStruct` is hundreds of bytes wide.
    mm_pcid: Vec<u16>,
    /// Persistent PCID → address-space index (slot per PCID value, which
    /// is 12-bit). Maintained by `create_process`; replaces the per-call
    /// map the coherence checker used to build.
    pcid_mms: Vec<Vec<u32>>,
    /// The physical frame allocator.
    pub frames: FrameAllocator,
    /// The shared page cache.
    pub page_cache: PageCache,
    tasks: Vec<Task>,
    /// Metric counters and histograms for the run.
    pub stats: StatsRegistry,
    /// Debug trace ring.
    pub trace: TraceRing,
    /// The run's deterministic RNG.
    pub rng: SimRng,
    /// The LLC perturbation model.
    pub llc: LlcModel,
    policy: Option<Box<dyn TlbPolicy>>,
    workload: Option<Box<dyn Workload>>,
    txns: HashMap<u64, ShootdownTxn>,
    next_txn: u64,
    pending_reclaim: Option<ReclaimPackage>,
    numa: NumaRuntime,
    pcid_enabled: bool,
    tickless: bool,
    live_tasks: usize,
    end_time: Time,
    // Hint faults waiting for a lazy NUMA unmap to finish (§4.4).
    blocked_faults: HashMap<u32, (Vpn, bool)>,
    // Per-task in-flight ops (keyed by raw task id).
    in_flight: HashMap<u32, Op>,
    // Pages currently swapped out, keyed by (mm, vpn).
    swapped: std::collections::HashSet<(u32, u64)>,
    // Pages the compactor wants migrated on their next (hint) fault.
    compact_pending: std::collections::HashSet<(u32, u64)>,
    // Per-mm mmap_sem locks, parallel to `mms`.
    locks: Vec<MmLock>,
    // mmap_sem holds per task.
    lock_held: HashMap<u32, LockMode>,
    // Ops waiting for the mmap_sem.
    parked: HashMap<u32, Op>,
    // Scratch vectors for the unmap/op-completion hot paths: taken with
    // `mem::take`, cleared, filled, and put back, so their capacity
    // survives across events and the steady state never allocates.
    scratch_removed: Vec<(Vpn, latr_mem::Pte)>,
    scratch_pages: Vec<(Vpn, Pfn)>,
    scratch_vmas: Vec<latr_mem::Vma>,
    scratch_granted: Vec<TaskId>,
    // Recycled `ReclaimPackage::frames` vectors: `release_reclaim` parks
    // the emptied vector here and the next unmap reuses it.
    frame_vec_pool: Vec<Vec<Pfn>>,
    // Running FNV-1a fold over the delivered event stream (time + payload
    // per event) — the O(1) incremental fingerprint.
    fold: u64,
    // The fault injector executing the configured plan, when one is active.
    injector: Option<FaultInjector>,
    // Last-signalled pressure per node (edge detection for watermark events).
    pressure_level: Vec<latr_mem::Pressure>,
    // Frames whose final reference is parked in a lazy-reclamation queue
    // (the reclamation-debt ledger; see `note_reclaim_debt`).
    debt_parked: std::collections::HashSet<Pfn>,
    // Frames grabbed by injected allocation bursts, one slot per plan site.
    burst_held: Vec<Vec<Pfn>>,
    // Whether each burst window has been applied (edge detection).
    burst_applied: Vec<bool>,
    // Whether each watermark-flap window has been counted.
    flap_counted: Vec<bool>,
    // The coherence oracle shadowing this run, when enabled.
    #[cfg(feature = "oracle")]
    oracle: Option<latr_verify::CoherenceOracle>,
}

impl Machine {
    /// Builds a machine from its configuration.
    pub fn new(config: MachineConfig) -> Self {
        let ncpus = config.topology.num_cpus();
        #[cfg(feature = "oracle")]
        let oracle_on = config.oracle;
        let cores = (0..ncpus)
            .map(|i| Core {
                id: CpuId(i as u16),
                tlb: Tlb::new(
                    config.topology.l1_dtlb_entries() as usize,
                    config.topology.l2_tlb_entries() as usize,
                ),
                current: None,
            })
            .collect();
        let mut frames = FrameAllocator::new(config.topology.num_nodes(), config.frames_per_node);
        frames.set_watermarks(config.low_watermark_frames, config.min_watermark_frames);
        let (num_bursts, num_flaps) = config
            .faults
            .as_ref()
            .map_or((0, 0), |p| (p.bursts.len(), p.flaps.len()));
        let num_nodes = config.topology.num_nodes();
        #[allow(unused_mut)]
        let mut machine = Machine {
            fabric: IpiFabric::new(config.topology.clone(), config.costs.clone()),
            queue: SimQueue::new(config.engine, ncpus, config.costs.sched_tick_period),
            cores,
            hot: CoreHot::new(ncpus),
            mms: Vec::new(),
            mm_pcid: Vec::new(),
            pcid_mms: vec![Vec::new(); 1 << 12],
            frames,
            page_cache: PageCache::new(),
            tasks: Vec::new(),
            stats: StatsRegistry::new(),
            trace: TraceRing::with_capacity(config.trace_capacity),
            rng: SimRng::new(config.seed),
            llc: LlcModel::new(config.llc_base_miss_ratio),
            policy: None,
            workload: None,
            txns: HashMap::new(),
            next_txn: 0,
            pending_reclaim: None,
            numa: NumaRuntime::new(config.numa),
            pcid_enabled: config.pcid_enabled,
            tickless: config.tickless,
            live_tasks: 0,
            end_time: Time::MAX,
            topology: config.topology,
            costs: config.costs,
            blocked_faults: HashMap::new(),
            in_flight: HashMap::new(),
            swapped: std::collections::HashSet::new(),
            compact_pending: std::collections::HashSet::new(),
            locks: Vec::new(),
            lock_held: HashMap::new(),
            parked: HashMap::new(),
            scratch_removed: Vec::new(),
            scratch_pages: Vec::new(),
            scratch_vmas: Vec::new(),
            scratch_granted: Vec::new(),
            frame_vec_pool: Vec::new(),
            fold: FNV_OFFSET,
            injector: config.faults.filter(FaultPlan::is_active).map(|plan| {
                // The injector's randomness comes from a fork keyed off the
                // machine seed, so attaching a plan never perturbs the main
                // RNG stream (the fork here uses a throwaway root).
                let mut root = SimRng::new(config.seed);
                FaultInjector::new(plan, root.fork(latr_faults::FAULT_STREAM))
            }),
            pressure_level: vec![latr_mem::Pressure::Normal; num_nodes],
            debt_parked: std::collections::HashSet::new(),
            burst_held: vec![Vec::new(); num_bursts],
            burst_applied: vec![false; num_bursts],
            flap_counted: vec![false; num_flaps],
            #[cfg(feature = "oracle")]
            oracle: oracle_on.then(|| latr_verify::CoherenceOracle::new(ncpus)),
        };
        #[cfg(feature = "oracle")]
        if machine.oracle.is_some() {
            // Exact shadow mirroring needs the TLB to report capacity
            // evictions; the wrappers drain the log after every fill.
            for core in &mut machine.cores {
                core.tlb.set_eviction_tracking(true);
            }
        }
        machine
    }

    // ---- accessors --------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The scheduler tick period.
    pub fn tick_period(&self) -> Nanos {
        self.costs.sched_tick_period
    }

    /// An address space by id.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id.
    pub fn mm(&self, id: MmId) -> &MmStruct {
        &self.mms[id.0 as usize]
    }

    /// Mutable access to an address space.
    pub fn mm_mut(&mut self, id: MmId) -> &mut MmStruct {
        &mut self.mms[id.0 as usize]
    }

    /// A task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Number of address spaces.
    pub fn num_mms(&self) -> usize {
        self.mms.len()
    }

    /// All tasks (for workloads to enumerate).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The address space currently active on `cpu`.
    pub fn current_mm(&self, cpu: CpuId) -> Option<MmId> {
        self.cores[cpu.index()]
            .current
            .map(|t| self.tasks[t.index()].mm)
    }

    /// NUMA balancing statistics for the run.
    pub fn numa_stats(&self) -> &NumaStats {
        self.numa.stats()
    }

    // ---- fault injection ---------------------------------------------------

    /// Whether an injected overflow storm wants the current state publish
    /// to fail. Counts the forced overflow; the policy calls this once per
    /// publish attempt.
    pub fn fault_force_overflow(&mut self) -> bool {
        let now = self.now();
        let forced = self
            .injector
            .as_ref()
            .is_some_and(|inj| inj.storm_active(now));
        if forced {
            self.stats.inc(crate::metrics::FAULTS_FORCED_OVERFLOWS);
        }
        forced
    }

    /// Whether an overflow storm is active right now, without counting
    /// anything — the adaptive-fallback hysteresis peeks at this to avoid
    /// flapping back to lazy mode mid-storm.
    pub fn fault_storm_active(&self) -> bool {
        let now = self.now();
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.storm_active(now))
    }

    /// Whether `cpu` is inside an injected sweep stall right now.
    pub fn fault_stalled(&self, cpu: CpuId) -> bool {
        let now = self.now();
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.stalled(cpu.index(), now))
    }

    /// Whether an injected reclaim-stall window covers this instant — the
    /// reclamation kthread must skip its tick (the storm that lets debt
    /// pile up while allocations keep draining the pool).
    pub fn fault_reclaim_stalled(&self) -> bool {
        let now = self.now();
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.reclaim_stalled(now))
    }

    /// The injected watermark boost right now (watermark-flap fault
    /// sites raise the effective watermarks for their window, making the
    /// pressure classification flap without any real allocation).
    pub fn watermark_boost(&self) -> u64 {
        let now = self.now();
        self.injector.as_ref().map_or(0, |inj| inj.flap_boost(now))
    }

    // ---- coherence oracle --------------------------------------------------
    //
    // Every TLB and frame-lifetime mutation below goes through a thin
    // wrapper that mirrors the action into the shadow oracle
    // (crates/verify) when it is enabled. The `oracle_note_*` methods are
    // always present — policies call them unconditionally — but compile to
    // no-ops without the `oracle` feature.

    /// The oracle's verdict: the first coherence violation detected, if
    /// any. `None` when the run is clean (or the oracle is disabled).
    #[cfg(feature = "oracle")]
    pub fn oracle_violation(&self) -> Option<&latr_verify::Violation> {
        self.oracle.as_ref().and_then(|o| o.violation())
    }

    /// How many events the oracle observed (0 when disabled); lets tests
    /// assert the oracle actually shadowed the run.
    #[cfg(feature = "oracle")]
    pub fn oracle_events_observed(&self) -> u64 {
        self.oracle.as_ref().map_or(0, |o| o.events_observed())
    }

    /// Called by the policy when it publishes a Latr state, so the oracle
    /// tracks the pending bitmask and the publish→sweep ordering edge.
    pub fn oracle_note_publish(
        &mut self,
        initiator: CpuId,
        mm: MmId,
        range: VaRange,
        targets: CpuMask,
        migration: bool,
    ) {
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_publish(initiator, mm, range, targets, migration, now);
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = (initiator, mm, range, targets, migration);
    }

    /// Called by the policy when `cpu` sweeps the states covering
    /// `(mm, range)`: its local invalidations are done and its bits clear.
    pub fn oracle_note_sweep(&mut self, cpu: CpuId, mm: MmId, range: VaRange) {
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_sweep(cpu, mm, range, now);
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = (cpu, mm, range);
    }

    /// Installs a translation into `cpu`'s TLB, mirroring the fill — and
    /// any capacity evictions it displaced — into the oracle.
    fn tlb_insert(&mut self, cpu: CpuId, entry: TlbEntry) {
        self.cores[cpu.index()].tlb.insert(entry);
        #[cfg(feature = "oracle")]
        if self.oracle.is_some() {
            let now = self.now();
            let evicted = self.cores[cpu.index()].tlb.take_evicted();
            let allocated = self.frames.is_allocated(Pfn(entry.pfn));
            if let Some(o) = self.oracle.as_mut() {
                o.note_evictions(cpu, &evicted, now);
                o.note_fill(
                    cpu,
                    entry.pcid,
                    Vpn(entry.vpn),
                    Pfn(entry.pfn),
                    allocated,
                    now,
                );
            }
        }
    }

    /// TLB lookup on `cpu`; a hit is mirrored as an access through the
    /// cached translation (the oracle checks the frame is still live).
    fn tlb_lookup(&mut self, cpu: CpuId, pcid: u16, vpn: Vpn) -> Option<TlbEntry> {
        let hit = self.cores[cpu.index()].tlb.lookup(pcid, vpn.0);
        #[cfg(feature = "oracle")]
        if self.oracle.is_some() {
            let now = self.now();
            // An L2→L1 promotion can itself displace an L1 slot.
            let evicted = self.cores[cpu.index()].tlb.take_evicted();
            let allocated = hit.map(|e| self.frames.is_allocated(Pfn(e.pfn)));
            if let Some(o) = self.oracle.as_mut() {
                o.note_evictions(cpu, &evicted, now);
                if let (Some(e), Some(allocated)) = (hit, allocated) {
                    o.note_hit(cpu, pcid, vpn, Pfn(e.pfn), allocated, now);
                }
            }
        }
        hit
    }

    /// Invalidates one page of `cpu`'s TLB (`INVLPG`).
    fn tlb_invalidate(&mut self, cpu: CpuId, pcid: u16, vpn: Vpn) -> bool {
        let any = self.cores[cpu.index()].tlb.invalidate_page(pcid, vpn.0);
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_invalidate(cpu, pcid, vpn, now);
            }
        }
        any
    }

    /// Flushes `cpu`'s whole TLB.
    fn tlb_flush_all(&mut self, cpu: CpuId) {
        self.cores[cpu.index()].tlb.flush_all();
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_flush_all(cpu, now);
            }
        }
    }

    /// Allocates a frame near `node` on behalf of `cpu`, checking reuse
    /// against the oracle's shadow TLBs.
    fn frame_alloc(&mut self, cpu: CpuId, node: latr_arch::NodeId) -> Result<Pfn, AllocError> {
        let pfn = self.frames.alloc(node);
        #[cfg(feature = "oracle")]
        if let Ok(p) = pfn {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_alloc(latr_verify::Ctx::Cpu(cpu), p, now);
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = cpu;
        pfn
    }

    /// Like [`frame_alloc`](Self::frame_alloc) but with no fallback node.
    fn frame_alloc_exact(
        &mut self,
        cpu: CpuId,
        node: latr_arch::NodeId,
    ) -> Result<Pfn, AllocError> {
        let pfn = self.frames.alloc_exact(node);
        #[cfg(feature = "oracle")]
        if let Ok(p) = pfn {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_alloc(latr_verify::Ctx::Cpu(cpu), p, now);
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = cpu;
        pfn
    }

    /// [`frame_alloc_exact`](Self::frame_alloc_exact) attributed to a
    /// kernel thread — the injected allocation-burst sites, which model an
    /// external consumer draining the node (another subsystem's storm).
    fn frame_alloc_exact_kthread(&mut self, node: latr_arch::NodeId) -> Result<Pfn, AllocError> {
        let pfn = self.frames.alloc_exact(node);
        #[cfg(feature = "oracle")]
        if let Ok(p) = pfn {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_alloc(latr_verify::Ctx::Kthread, p, now);
            }
        }
        pfn
    }

    /// Drops one reference to `pfn`, attributed to `cpu` (or to the
    /// reclamation kthread when `None`). A drop to refcount zero makes the
    /// frame reusable — the moment the oracle checks nothing still caches
    /// a translation to it.
    ///
    /// # Panics
    ///
    /// Panics on a typed [`latr_mem::FreeError`]: the kernel's own frame
    /// bookkeeping dropping a reference it does not hold is unrecoverable.
    fn frame_dec_ref(&mut self, cpu: Option<CpuId>, pfn: Pfn) -> u32 {
        let rc = self
            .frames
            .dec_ref(pfn)
            .unwrap_or_else(|e| panic!("kernel frame bookkeeping broken: {e}"));
        #[cfg(feature = "oracle")]
        if rc == 0 {
            let now = self.now();
            let ctx = cpu.map_or(latr_verify::Ctx::Kthread, latr_verify::Ctx::Cpu);
            if let Some(o) = self.oracle.as_mut() {
                o.note_free(ctx, pfn, now);
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = cpu;
        rc
    }

    /// [`PageCache::frame_for`] with alloc mirroring: a first-touch fill
    /// allocates the backing frame inside the cache, detected via the
    /// allocator's total-allocation counter.
    fn page_cache_frame_for(
        &mut self,
        cpu: CpuId,
        file: FileId,
        page: u64,
        node: latr_arch::NodeId,
    ) -> Result<Pfn, AllocError> {
        #[cfg(feature = "oracle")]
        let before = self.frames.total_allocations();
        let pfn = self
            .page_cache
            .frame_for(file, page, node, &mut self.frames);
        #[cfg(feature = "oracle")]
        if let Ok(p) = pfn {
            if self.frames.total_allocations() > before {
                let now = self.now();
                if let Some(o) = self.oracle.as_mut() {
                    o.note_alloc(latr_verify::Ctx::Cpu(cpu), p, now);
                }
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = cpu;
        pfn
    }

    // ---- memory pressure ---------------------------------------------------
    //
    // Per-node low/min watermarks (Linux zone-watermark analogue) guard
    // against LATR's worst case: the free pool draining while perfectly
    // freed frames sit gated in lazy reclamation. Crossings are edge
    // detected and fed to the policy; allocation failures take a stall
    // path that lets the policy expedite reclamation before the machine
    // declares OOM.

    /// Whether watermark pressure signalling is configured on this run.
    pub fn pressure_enabled(&self) -> bool {
        self.frames.low_watermark() > 0 || self.frames.min_watermark() > 0
    }

    /// Current pressure of `node`, including any injected watermark flap.
    pub fn pressure_of(&self, node: latr_arch::NodeId) -> Pressure {
        self.frames.pressure_boosted(node, self.watermark_boost())
    }

    /// The worst pressure across all nodes.
    pub fn worst_pressure(&self) -> Pressure {
        let boost = self.watermark_boost();
        (0..self.frames.nodes())
            .map(|n| {
                self.frames
                    .pressure_boosted(latr_arch::NodeId(n as u8), boost)
            })
            .max()
            .unwrap_or(Pressure::Normal)
    }

    /// Frames on `node` parked in lazy reclamation (freed by the VM, final
    /// reference held by a deferred queue).
    pub fn reclaim_debt(&self, node: latr_arch::NodeId) -> u64 {
        self.frames.reclaim_debt(node)
    }

    /// Machine-wide reclamation debt.
    pub fn reclaim_debt_total(&self) -> u64 {
        self.frames.reclaim_debt_total()
    }

    /// Re-evaluates every node against its watermarks, counting
    /// transitions and firing [`TlbPolicy::on_memory_pressure`] on each
    /// edge. A no-op when watermarks are unconfigured, so healthy runs
    /// stay event-identical. Safe to call while the policy is detached
    /// (the hook is simply skipped; the policy re-reads pressure on its
    /// next tick).
    pub fn poll_pressure(&mut self) {
        if !self.pressure_enabled() {
            return;
        }
        let boost = self.watermark_boost();
        for n in 0..self.frames.nodes() {
            let node = latr_arch::NodeId(n as u8);
            let level = self.frames.pressure_boosted(node, boost);
            let prev = self.pressure_level[n];
            if level == prev {
                continue;
            }
            self.pressure_level[n] = level;
            match level {
                Pressure::Min => self.stats.inc(crate::metrics::MEM_PRESSURE_MIN_EVENTS),
                Pressure::Low if prev == Pressure::Normal => {
                    self.stats.inc(crate::metrics::MEM_PRESSURE_LOW_EVENTS);
                }
                Pressure::Low => {} // easing back from Min; recovery counts at Normal
                Pressure::Normal => self.stats.inc(crate::metrics::MEM_PRESSURE_RECOVERIES),
            }
            if self.trace.is_enabled() {
                let now = self.now();
                let free = self.frames.free_on_node(node);
                self.trace.push(
                    now,
                    "pressure",
                    format!("node{n} {prev:?} -> {level:?} ({free} frames free)"),
                );
            }
            if self.policy.is_some() {
                self.with_policy(|p, m| p.on_memory_pressure(m, node, level));
            }
        }
    }

    /// The allocation-stall slow path: every free list is empty, so the
    /// faulting CPU stalls while the policy expedites reclamation (the
    /// direct-reclaim analogue). Returns the stall time to charge to the
    /// faulting op; the caller retries the allocation once afterwards.
    fn alloc_stall(&mut self, cpu: CpuId, node: latr_arch::NodeId) -> Nanos {
        self.stats.inc(crate::metrics::ALLOC_STALLS);
        let released = if self.policy.is_some() {
            self.with_policy(|p, m| p.on_alloc_stall(m, cpu, node))
        } else {
            0
        };
        let stall = if released > 0 {
            // The policy freed `released` frames synchronously; the staller
            // pays their release plus one PTE-ish bookkeeping op.
            self.costs.frame_op * released + self.costs.pte_op
        } else {
            // Nothing reclaimable right now: the task waits out a
            // scheduler tick hoping background reclamation catches up.
            self.costs.sched_tick_period
        };
        self.stats.record(crate::metrics::ALLOC_STALL_NS, stall);
        if self.trace.is_enabled() {
            let now = self.now();
            self.trace.push(
                now,
                "pressure",
                format!(
                    "{cpu} alloc stall on node{} ({released} frames expedited)",
                    node.0
                ),
            );
        }
        stall
    }

    /// [`frame_alloc`](Self::frame_alloc) through the stall path: on
    /// exhaustion, stall, let the policy expedite, retry once. The second
    /// failure is a real OOM event. Returns the outcome plus the stall
    /// time the caller must charge to the faulting op.
    fn frame_alloc_stalling(
        &mut self,
        cpu: CpuId,
        node: latr_arch::NodeId,
    ) -> (Result<Pfn, AllocError>, Nanos) {
        match self.frame_alloc(cpu, node) {
            Ok(p) => {
                self.poll_pressure();
                (Ok(p), 0)
            }
            Err(_) => {
                let stall = self.alloc_stall(cpu, node);
                let retry = self.frame_alloc(cpu, node);
                if retry.is_err() {
                    self.stats.inc(crate::metrics::OOM_EVENTS);
                }
                self.poll_pressure();
                (retry, stall)
            }
        }
    }

    /// Notes reclamation debt for a package the policy is about to defer:
    /// each frame whose parked reference is the final one is a
    /// freed-but-parked frame on its home node until the package is
    /// released through
    /// [`release_reclaim_deferred`](Self::release_reclaim_deferred).
    pub fn note_reclaim_debt(&mut self, pkg: &ReclaimPackage) {
        for &pfn in &pkg.frames {
            if self.frames.refcount(pfn) == 1 && self.debt_parked.insert(pfn) {
                let node = self.frames.node_of(pfn);
                self.frames.note_debt(node, 1);
            }
        }
    }

    /// [`release_reclaim`](Self::release_reclaim) for packages that went
    /// through [`note_reclaim_debt`](Self::note_reclaim_debt): settles the
    /// debt ledger, releases the frames, and re-polls the watermarks so a
    /// recovery is signalled as soon as the pool refills.
    pub fn release_reclaim_deferred(&mut self, pkg: ReclaimPackage) {
        for &pfn in &pkg.frames {
            if self.debt_parked.remove(&pfn) {
                let node = self.frames.node_of(pfn);
                self.frames.settle_debt(node, 1);
            }
        }
        self.release_reclaim(pkg);
        self.poll_pressure();
    }

    /// Applies the plan's pressure fault sites at the reclamation tick:
    /// allocation bursts grab frames on their node for the window and
    /// return them afterwards; watermark flaps are counted on their
    /// rising edge; reclaim-stall windows count each tick they suppress.
    fn pressure_faults_tick(&mut self) {
        let now = self.now();
        let (bursts, flaps, stalled) = match self.injector.as_ref() {
            Some(inj) => (
                inj.plan().bursts.clone(),
                inj.plan().flaps.clone(),
                inj.reclaim_stalled(now),
            ),
            None => return,
        };
        if stalled {
            self.stats.inc(crate::metrics::FAULTS_RECLAIM_STALLS);
        }
        for (i, b) in bursts.iter().enumerate() {
            let active = b.active_at(now.as_ns());
            if active && !self.burst_applied[i] {
                self.burst_applied[i] = true;
                self.stats.inc(crate::metrics::FAULTS_ALLOC_BURSTS);
                let node = latr_arch::NodeId(b.node);
                for _ in 0..b.frames {
                    match self.frame_alloc_exact_kthread(node) {
                        Ok(p) => self.burst_held[i].push(p),
                        // Node already dry: the burst has done its damage.
                        Err(_) => break,
                    }
                }
                if self.trace.is_enabled() {
                    let grabbed = self.burst_held[i].len();
                    self.trace.push(
                        now,
                        "fault",
                        format!("allocation burst grabs {grabbed} frames on node{}", b.node),
                    );
                }
            } else if !active && self.burst_applied[i] && !self.burst_held[i].is_empty() {
                let held = std::mem::take(&mut self.burst_held[i]);
                if self.trace.is_enabled() {
                    self.trace.push(
                        now,
                        "fault",
                        format!(
                            "allocation burst returns {} frames to node{}",
                            held.len(),
                            b.node
                        ),
                    );
                }
                for p in held {
                    self.frame_dec_ref(None, p);
                }
            }
        }
        for (i, f) in flaps.iter().enumerate() {
            if f.active_at(now.as_ns()) && !self.flap_counted[i] {
                self.flap_counted[i] = true;
                self.stats.inc(crate::metrics::FAULTS_WATERMARK_FLAPS);
            }
        }
    }

    // ---- setup -------------------------------------------------------------

    /// Creates a new process (address space). When PCIDs are enabled each
    /// mm gets a distinct tag (§4.5).
    pub fn create_process(&mut self) -> MmId {
        let id = MmId(self.mms.len() as u32);
        let mut mm = MmStruct::new(id);
        if self.pcid_enabled {
            mm.pcid = (id.0 % 4094 + 1) as u16;
        }
        self.mm_pcid.push(mm.pcid);
        self.pcid_mms[mm.pcid as usize].push(id.0);
        self.mms.push(mm);
        self.locks.push(MmLock::new());
        id
    }

    /// Dense PCID lookup for the TLB hot paths.
    #[inline]
    fn pcid_of(&self, mm: MmId) -> u16 {
        self.mm_pcid[mm.0 as usize]
    }

    /// Spawns a task of `mm` pinned to `core`.
    ///
    /// # Panics
    ///
    /// Panics if the core already has a task (the simulation pins one task
    /// per core).
    pub fn spawn_task(&mut self, mm: MmId, core: CpuId) -> TaskId {
        assert!(
            self.cores[core.index()].current.is_none(),
            "{core} already has a task"
        );
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task::new(id, mm, core));
        self.cores[core.index()].current = Some(id);
        self.mms[mm.0 as usize].cpu_activated(core);
        self.live_tasks += 1;
        id
    }

    /// Registers a page-cache file of `pages` pages.
    pub fn register_file(&mut self, pages: u64) -> FileId {
        self.page_cache.register_file(pages)
    }

    // ---- the event loop ----------------------------------------------------

    /// Runs `workload` under `policy` for `duration` simulated nanoseconds
    /// (or until all tasks exit). Returns the boxes for post-run
    /// inspection.
    pub fn run(
        &mut self,
        mut workload: Box<dyn Workload>,
        policy: Box<dyn TlbPolicy>,
        duration: Nanos,
    ) -> (Box<dyn Workload>, Box<dyn TlbPolicy>) {
        workload.setup(self);
        assert!(self.live_tasks > 0, "workload created no tasks");
        self.workload = Some(workload);
        self.policy = Some(policy);
        self.end_time = self.now() + duration;

        // Kick every task.
        for i in 0..self.tasks.len() {
            self.queue
                .schedule_after(0, Event::TaskStep(TaskId(i as u32)));
        }
        // Staggered scheduler ticks: "these scheduler ticks are not
        // synchronized across all the cores" (§3).
        let period = self.costs.sched_tick_period;
        for cpu in 0..self.cores.len() {
            let stagger = (period * cpu as u64) / self.cores.len() as u64;
            self.queue
                .schedule_after(stagger.max(1), Event::SchedTick(CpuId(cpu as u16)));
        }
        // Background reclamation tick (used by Latr's kernel thread).
        self.queue.schedule_after(period, Event::ReclaimTick);
        // AutoNUMA scanner.
        if self.numa.config().enabled {
            let scan = self.numa.config().scan_period;
            for mm in 0..self.mms.len() {
                self.queue
                    .schedule_after(scan, Event::NumaScan(MmId(mm as u32)));
            }
        }

        while let Some(next) = self.queue.peek_time() {
            if next > self.end_time || self.live_tasks == 0 {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked");
            fold_event(&mut self.fold, time, &event);
            self.handle(event);
        }

        // The run is over: the shutdown drain below frees parked frames
        // "after the final event", which is not a race — stop checking.
        #[cfg(feature = "oracle")]
        if let Some(o) = self.oracle.as_mut() {
            o.close();
        }
        let mut policy = self.policy.take().expect("policy present");
        policy.on_shutdown(self);
        // Reap forked-but-never-run address spaces so leak checks see a
        // clean machine (their cpumask never had a CPU, so no TLB can
        // cache their translations).
        for i in 0..self.mms.len() {
            if self.mms[i].cpumask.is_empty() {
                self.exit_mmap(MmId(i as u32), None);
            }
        }
        let workload = self.workload.take().expect("workload present");
        (workload, policy)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::TaskStep(task) => self.task_step(task),
            Event::OpComplete {
                cpu,
                task,
                generation,
            } => self.op_complete(cpu, task, generation),
            Event::SchedTick(cpu) => self.sched_tick(cpu),
            Event::IpiDeliver { target, txn } => self.ipi_deliver(target, txn),
            Event::AckArrive { txn, from } => self.ack_arrive(txn, from),
            Event::TxnRetry(txn) => self.txn_retry(txn),
            Event::ReclaimTick => {
                // Pressure fault sites (allocation bursts, watermark
                // flaps) apply before the policy's tick so the kthread
                // observes the world it must react to.
                self.pressure_faults_tick();
                self.poll_pressure();
                self.with_policy(|policy, machine| policy.on_reclaim_tick(machine));
                let period = self.costs.sched_tick_period;
                self.queue.schedule_after(period, Event::ReclaimTick);
            }
            Event::NumaScan(mm) => self.numa_scan(mm),
            Event::NumaFaultRetry { task, vpn } => self.numa_fault_retry(task, Vpn(vpn)),
            Event::PolicyTimer(token) => {
                self.with_policy(|policy, machine| policy.on_timer(machine, token));
            }
            Event::LockGranted(task) => self.lock_granted(task),
        }
    }

    /// Runs `f` with the policy detached so it can borrow the machine.
    fn with_policy<R>(&mut self, f: impl FnOnce(&mut dyn TlbPolicy, &mut Machine) -> R) -> R {
        let mut policy = self.policy.take().expect("policy re-entered");
        let r = f(policy.as_mut(), self);
        self.policy = Some(policy);
        r
    }

    fn with_workload<R>(&mut self, f: impl FnOnce(&mut dyn Workload, &mut Machine) -> R) -> R {
        let mut w = self.workload.take().expect("workload re-entered");
        let r = f(w.as_mut(), self);
        self.workload = Some(w);
        r
    }

    // ---- mmap_sem ------------------------------------------------------------

    /// Acquires `task`'s mm lock, or parks the task until it is granted.
    /// Returns whether the lock is held after the call. Idempotent for a
    /// task that already holds the requested mode (re-execution after a
    /// grant).
    fn acquire_mm_lock(&mut self, task: TaskId, mode: LockMode) -> bool {
        if self.lock_held.get(&task.0).copied() == Some(mode) {
            return true;
        }
        let mm = self.tasks[task.index()].mm;
        if self.locks[mm.0 as usize].acquire(task, mode) {
            self.lock_held.insert(task.0, mode);
            true
        } else {
            self.stats.inc("mmap_sem_waits");
            false
        }
    }

    fn release_mm_lock(&mut self, task: TaskId) {
        if self.lock_held.remove(&task.0).is_some() {
            let mm = self.tasks[task.index()].mm;
            let mut granted = std::mem::take(&mut self.scratch_granted);
            granted.clear();
            self.locks[mm.0 as usize].release_into(task, &mut granted);
            for &g in &granted {
                self.queue.schedule_after(0, Event::LockGranted(g));
            }
            self.scratch_granted = granted;
        }
    }

    fn lock_granted(&mut self, task: TaskId) {
        if !self.tasks[task.index()].is_live() {
            // The grantee exited while queued; pass the lock on.
            let mm = self.tasks[task.index()].mm;
            let mut granted = std::mem::take(&mut self.scratch_granted);
            granted.clear();
            self.locks[mm.0 as usize].release_into(task, &mut granted);
            for &g in &granted {
                self.queue.schedule_after(0, Event::LockGranted(g));
            }
            self.scratch_granted = granted;
            return;
        }
        let mode = if self.locks[self.tasks[task.index()].mm.0 as usize].writer() == Some(task) {
            LockMode::Write
        } else {
            LockMode::Read
        };
        self.lock_held.insert(task.0, mode);
        let op = self
            .parked
            .remove(&task.0)
            .expect("granted task has a parked op");
        self.execute_op(task, op);
    }

    /// Whether executing `op` requires the mm lock, and in which mode.
    fn lock_mode_for(&self, task: TaskId, op: &Op) -> Option<LockMode> {
        match *op {
            Op::MmapAnon { .. }
            | Op::MmapFile { .. }
            | Op::Munmap { .. }
            | Op::MadviseFree { .. }
            | Op::Mprotect { .. }
            | Op::Mremap { .. }
            | Op::SwapOut { .. }
            | Op::Dedup { .. }
            | Op::Compact { .. }
            | Op::Fork => Some(LockMode::Write),
            Op::Access { vpn, write } => {
                // Only a fault takes mmap_sem (for reading); a plain TLB
                // refill walks the page table locklessly.
                let t = &self.tasks[task.index()];
                let mm = &self.mms[t.mm.0 as usize];
                if let Some(entry) = self.cores[t.core.index()].tlb.peek(mm.pcid, vpn.0) {
                    if !write || entry.writable {
                        return None;
                    }
                }
                match mm.page_table.lookup(vpn) {
                    Some(pte) if !pte.flags.numa_hint && (!write || pte.flags.writable) => None,
                    _ => Some(LockMode::Read),
                }
            }
            _ => None,
        }
    }

    // ---- task stepping -----------------------------------------------------

    fn task_step(&mut self, task: TaskId) {
        if !self.tasks[task.index()].is_live() {
            return;
        }
        let op = self.with_workload(|w, m| w.next_op(m, task));
        self.execute_op(task, op);
    }

    fn execute_op(&mut self, task_id: TaskId, op: Op) {
        if let Some(mode) = self.lock_mode_for(task_id, &op) {
            if !self.acquire_mm_lock(task_id, mode) {
                self.parked.insert(task_id.0, op);
                return;
            }
        }
        let cpu = self.tasks[task_id.index()].core;
        match op {
            Op::Compute(ns) => {
                self.llc.charge_app_accesses(ns / 10);
                self.begin_op(cpu, task_id, op, ns.max(1));
            }
            Op::Sleep(ns) => {
                // Sleeping consumes no CPU: step again later, reporting the
                // op as complete immediately.
                self.tasks[task_id.index()].ops_completed += 1;
                self.with_workload(|w, m| {
                    w.on_op_complete(m, task_id, OpResult { op, latency: ns })
                });
                self.queue
                    .schedule_after(ns.max(1), Event::TaskStep(task_id));
            }
            Op::Yield => {
                self.stats.inc(crate::metrics::CONTEXT_SWITCHES);
                let mut cost = self.costs.context_switch;
                // An injected sweep stall suppresses the context-switch
                // sweep too (the core is inside a non-preemptible section;
                // the "switch" models involuntary kernel work).
                let now = self.now();
                let stalled = self
                    .injector
                    .as_ref()
                    .is_some_and(|inj| inj.stalled(cpu.index(), now));
                if stalled {
                    self.stats.inc(crate::metrics::FAULTS_SWEEP_STALLS);
                } else {
                    cost += self.with_policy(|p, m| p.on_context_switch(m, cpu));
                }
                if !self.pcid_enabled {
                    // CR3 write on the way back flushes the TLB (§4.5).
                    self.tlb_flush_all(cpu);
                    cost += self.costs.full_flush;
                }
                self.begin_op(cpu, task_id, op, cost.max(1));
            }
            Op::Access { vpn, write } => {
                match self.access_page(task_id, vpn, write) {
                    AccessOutcome::Done(cost) => self.begin_op(cpu, task_id, op, cost.max(1)),
                    AccessOutcome::BlockedOnNuma => {
                        // Op stays in flight; a NumaFaultRetry will finish it.
                        self.blocked_faults.insert(task_id.0, (vpn, write));
                        self.hot.busy[cpu.index()] = true;
                        self.hot.op_started[cpu.index()] = self.now();
                        let retry = self.numa.config().fault_retry;
                        self.queue.schedule_after(
                            retry,
                            Event::NumaFaultRetry {
                                task: task_id,
                                vpn: vpn.0,
                            },
                        );
                    }
                }
            }
            Op::AccessBatch {
                range,
                accesses,
                write,
            } => {
                let mut cost = 0;
                for _ in 0..accesses {
                    let page = range.start.0 + self.rng.below(range.pages.max(1));
                    match self.access_page(task_id, Vpn(page), write) {
                        AccessOutcome::Done(c) => cost += c,
                        // Batches model steady-state working sets; a blocked
                        // hint fault inside one is treated as its retry
                        // latency.
                        AccessOutcome::BlockedOnNuma => cost += self.numa.config().fault_retry,
                    }
                }
                self.begin_op(cpu, task_id, op, cost.max(1));
            }
            Op::MmapAnon { pages } => {
                let mm = self.tasks[task_id.index()].mm;
                let range = self.mm_mut(mm).mmap_anon(pages, Prot::READ_WRITE);
                self.tasks[task_id.index()].last_mmap = Some(range);
                let cost = self.costs.syscall_overhead + self.costs.vma_op;
                self.begin_op(cpu, task_id, op, cost);
            }
            Op::MmapFile {
                file,
                offset,
                pages,
            } => {
                let mm = self.tasks[task_id.index()].mm;
                let range = self.mm_mut(mm).mmap_file(file, offset, pages, Prot::READ);
                self.tasks[task_id.index()].last_mmap = Some(range);
                let cost = self.costs.syscall_overhead + self.costs.vma_op;
                self.begin_op(cpu, task_id, op, cost);
            }
            Op::Munmap { range } => self.do_unmap(task_id, op, range, FlushKind::Unmap),
            Op::MadviseFree { range } => self.do_unmap(task_id, op, range, FlushKind::MadviseFree),
            Op::Mprotect { range, prot } => self.do_mprotect(task_id, op, range, prot),
            Op::Mremap { range } => self.do_mremap(task_id, op, range),
            Op::SwapOut { range } => self.do_swap_out(task_id, op, range),
            Op::Dedup { range } => self.do_dedup(task_id, op, range),
            Op::Compact { range } => self.do_compact(task_id, op, range),
            Op::Fork => self.do_fork(task_id, op),
            Op::Exit => {
                debug_assert!(
                    !self.lock_held.contains_key(&task_id.0),
                    "task exits while holding mmap_sem"
                );
                let t = &mut self.tasks[task_id.index()];
                t.state = TaskState::Done;
                let mm = t.mm;
                let core = t.core;
                self.cores[core.index()].current = None;
                self.mms[mm.0 as usize].cpu_deactivated(core);
                // Leaving a core idle flushes its TLB on the way out
                // (idle lazy-TLB would defer this; either way no stale
                // user entries survive for the next owner).
                self.tlb_flush_all(core);
                // Last thread out tears the address space down
                // (exit_mmap): with an empty mm_cpumask no remote TLBs can
                // cache its translations, so frames free immediately.
                if self.mms[mm.0 as usize].cpumask.is_empty() {
                    self.exit_mmap(mm, Some(core));
                }
                self.live_tasks -= 1;
            }
        }
    }

    /// Starts an op of the given CPU cost; completion is scheduled and may
    /// be delayed by interrupt debt.
    fn begin_op(&mut self, cpu: CpuId, task: TaskId, _op: Op, cost: Nanos) {
        let now = self.now();
        let i = cpu.index();
        self.hot.busy[i] = true;
        self.hot.op_started[i] = now;
        self.hot.op_generation[i] += 1;
        let generation = self.hot.op_generation[i];
        self.queue.schedule_after(
            cost,
            Event::OpComplete {
                cpu,
                task,
                generation,
            },
        );
        // Stash the op so completion can report it.
        self.in_flight.insert(task.0, _op);
    }

    fn op_complete(&mut self, cpu: CpuId, task: TaskId, generation: u64) {
        let now = self.now();
        let i = cpu.index();
        if generation != self.hot.op_generation[i] {
            return; // superseded by a debt extension
        }
        if self.hot.debt[i] > 0 {
            let debt = self.hot.debt[i];
            self.hot.debt[i] = 0;
            self.hot.op_generation[i] += 1;
            let generation = self.hot.op_generation[i];
            self.queue.schedule_after(
                debt,
                Event::OpComplete {
                    cpu,
                    task,
                    generation,
                },
            );
            return;
        }
        self.hot.busy[i] = false;
        let latency = now - self.hot.op_started[i];
        let op = self
            .in_flight
            .remove(&task.0)
            .expect("completed op was in flight");
        self.tasks[task.index()].ops_completed += 1;
        self.release_mm_lock(task);
        match op {
            Op::Munmap { .. } => self.stats.record(crate::metrics::MUNMAP_NS, latency),
            Op::MadviseFree { .. } => self.stats.record(crate::metrics::MADVISE_NS, latency),
            _ => {}
        }
        self.with_workload(|w, m| w.on_op_complete(m, task, OpResult { op, latency }));
        if self.tasks[task.index()].is_live() {
            self.queue.schedule_after(0, Event::TaskStep(task));
        }
    }

    // ---- memory access & faults ---------------------------------------------

    fn access_page(&mut self, task_id: TaskId, vpn: Vpn, write: bool) -> AccessOutcome {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let pcid = self.pcid_of(mm_id);
        self.llc.charge_app_accesses(1);

        if let Some(entry) = self.tlb_lookup(cpu, pcid, vpn) {
            if !write || entry.writable {
                return AccessOutcome::Done(2); // TLB hit: ~free
            }
            // Write through a read-only entry: fall through to the fault
            // path after invalidating the stale entry.
            self.tlb_invalidate(cpu, pcid, vpn);
        }

        let mut cost = self.costs.tlb_miss_walk;
        let pte = self.mms[mm_id.0 as usize].page_table.lookup(vpn);
        match pte {
            Some(pte) if pte.flags.numa_hint => {
                // NUMA hint fault (§4.3).
                self.stats.inc(crate::metrics::HINT_FAULTS);
                let proceed = self.with_policy(|p, m| p.numa_fault_may_proceed(m, mm_id, vpn));
                if !proceed {
                    return AccessOutcome::BlockedOnNuma;
                }
                cost += self.numa_hint_fault(task_id, vpn, write);
                AccessOutcome::Done(cost)
            }
            Some(pte) => {
                let mut pte = pte;
                let mut writable = pte.flags.writable;
                if write && !writable {
                    let vma_allows_write = self.mms[mm_id.0 as usize]
                        .vmas
                        .find(vpn)
                        .map(|v| v.prot.write)
                        .unwrap_or(false);
                    if vma_allows_write {
                        // Copy-on-write break: a new private frame, and an
                        // ownership change that must reach every core
                        // synchronously (Table 1's CoW row — identical
                        // under every policy, charged analytically).
                        cost += self.cow_break(task_id, vpn, &mut pte);
                        writable = true;
                    } else {
                        // True protection fault.
                        cost += self.costs.page_fault;
                        self.stats.inc("protection_faults");
                    }
                }
                self.mms[mm_id.0 as usize].page_table.update(vpn, |p| {
                    p.flags.accessed = true;
                    if write && writable {
                        p.flags.dirty = true;
                    }
                });
                self.tlb_insert(
                    cpu,
                    TlbEntry {
                        pcid,
                        vpn: vpn.0,
                        pfn: pte.pfn.0,
                        writable,
                    },
                );
                AccessOutcome::Done(cost)
            }
            None => {
                // Demand-paging fault.
                cost += self.demand_fault(task_id, vpn, write);
                AccessOutcome::Done(cost)
            }
        }
    }

    /// Breaks copy-on-write sharing of `vpn`: allocates a private frame,
    /// copies, re-points the PTE writable, and charges the synchronous
    /// ownership-change shootdown. Updates `pte` to the new entry and
    /// returns the CPU cost.
    fn cow_break(&mut self, task_id: TaskId, vpn: Vpn, pte: &mut latr_mem::Pte) -> Nanos {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let node = self.topology.node_of(cpu);
        let mut cost = self.costs.page_fault;
        self.stats.inc("cow_breaks");
        let old = pte.pfn;
        if self.frames.refcount(old) > 1 {
            let (alloc, stall) = self.frame_alloc_stalling(cpu, node);
            cost += stall;
            let Ok(new) = alloc else {
                return cost;
            };
            cost += self.costs.page_copy + self.costs.frame_op;
            self.frame_dec_ref(Some(cpu), old);
            pte.pfn = new;
        }
        pte.flags.writable = true;
        let new_pfn = pte.pfn;
        self.mms[mm_id.0 as usize].page_table.update(vpn, |p| {
            p.pfn = new_pfn;
            p.flags.writable = true;
        });
        cost += self.costs.pte_op;
        let pcid = self.pcid_of(mm_id);
        self.tlb_invalidate(cpu, pcid, vpn);
        // Remote read-only translations of the old frame must go before
        // the writer proceeds. (`CpuMask` is `Copy`; iterating a snapshot
        // avoids collecting the sharers into a heap vector.)
        let sharers = self.mms[mm_id.0 as usize].cpumask;
        let remote = sharers.count().saturating_sub(1);
        if remote > 0 {
            cost += self.costs.estimate_linux_shootdown(&self.topology, remote);
            for sharer in sharers.iter() {
                if sharer != cpu {
                    self.invalidate_tlb_pages(sharer, mm_id, &[vpn]);
                }
            }
        }
        cost
    }

    fn demand_fault(&mut self, task_id: TaskId, vpn: Vpn, write: bool) -> Nanos {
        self.stats.inc(crate::metrics::PAGE_FAULTS);
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let node = self.topology.node_of(cpu);
        let mut cost = self.costs.page_fault;

        let vma = match self.mms[mm_id.0 as usize].vmas.find(vpn) {
            Some(v) => *v,
            None => {
                // Access to unmapped VA: a segfault. The paper's §4.4 notes
                // Latr turns use-after-unmap into a (delayed) fault; we
                // count it and treat the op as a no-op.
                self.stats.inc("segfaults");
                return cost;
            }
        };
        if self.swapped.remove(&(mm_id.0, vpn.0)) {
            // Swap-in: the page's previous contents come back from the
            // backing store.
            cost += self.costs.swap_in;
            self.stats.inc("swap_ins");
        }
        let pfn = match vma.kind {
            MapKind::Anon => {
                let (alloc, stall) = self.frame_alloc_stalling(cpu, node);
                cost += stall;
                match alloc {
                    Ok(p) => p,
                    Err(_) => return cost,
                }
            }
            MapKind::File { .. } => {
                let (file, page) = vma.file_page_of(vpn).expect("file vma");
                let first = self.page_cache_frame_for(cpu, file, page, node);
                let read_in = match first {
                    Ok(p) => Ok(p),
                    Err(_) => {
                        // Same stall-then-retry dance as the anon path; a
                        // page-cache read-in is an allocation like any other.
                        cost += self.alloc_stall(cpu, node);
                        let retry = self.page_cache_frame_for(cpu, file, page, node);
                        if retry.is_err() {
                            self.stats.inc(crate::metrics::OOM_EVENTS);
                        }
                        self.poll_pressure();
                        retry
                    }
                };
                match read_in {
                    Ok(p) => {
                        // The mapping holds its own reference.
                        self.frames
                            .inc_ref(p)
                            .expect("page cache holds a live reference");
                        p
                    }
                    Err(_) => return cost,
                }
            }
        };
        cost += self.costs.frame_op + self.costs.pte_op;
        let writable = vma.prot.write;
        let mm = &mut self.mms[mm_id.0 as usize];
        mm.page_table.map(
            vpn,
            pfn,
            PteFlags {
                writable,
                accessed: true,
                dirty: write && writable,
                numa_hint: false,
            },
        );
        let pcid = mm.pcid;
        self.tlb_insert(
            cpu,
            TlbEntry {
                pcid,
                vpn: vpn.0,
                pfn: pfn.0,
                writable,
            },
        );
        cost
    }

    // ---- unmap paths ----------------------------------------------------------

    fn do_unmap(&mut self, task_id: TaskId, op: Op, range: VaRange, kind: FlushKind) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;

        // The unmap hot path runs on scratch vectors (capacity retained
        // across calls) and a recycled frames vector: in steady state it
        // performs no heap allocation, which `tests/zero_alloc.rs` gates.
        // VMA bookkeeping (munmap removes VMAs; madvise keeps them).
        if kind == FlushKind::Unmap {
            let mut vmas = std::mem::take(&mut self.scratch_vmas);
            vmas.clear();
            self.mms[mm_id.0 as usize].munmap_vmas_into(&range, &mut vmas);
            self.scratch_vmas = vmas;
        }
        let mut removed = std::mem::take(&mut self.scratch_removed);
        removed.clear();
        self.mms[mm_id.0 as usize]
            .page_table
            .unmap_range_into(&range, &mut removed);
        let mut pages = std::mem::take(&mut self.scratch_pages);
        pages.clear();
        pages.extend(removed.iter().map(|&(v, pte)| (v, pte.pfn)));
        // Unmapping cancels any swap/compaction bookkeeping for the range.
        for vpn in range.iter() {
            self.swapped.remove(&(mm_id.0, vpn.0));
            self.compact_pending.remove(&(mm_id.0, vpn.0));
        }

        // Initiator-side cost: syscall, VMA surgery, PTE clears, per-sharer
        // bookkeeping, local TLB invalidation.
        let mut local = self.costs.syscall_overhead + self.costs.vma_op;
        local += self.costs.pte_op * removed.len() as u64;
        let sharer_mask = self.mms[mm_id.0 as usize].cpumask;
        for sharer in sharer_mask.iter() {
            if sharer != cpu {
                local += self
                    .costs
                    .unmap_per_sharer(self.topology.cpu_hops(cpu, sharer));
            }
        }
        local += self.costs.local_invalidation(removed.len() as u32);
        let pcid = self.pcid_of(mm_id);
        if removed.len() as u32 > self.costs.full_flush_threshold {
            self.tlb_flush_all(cpu);
        } else {
            for &(vpn, _) in &removed {
                self.tlb_invalidate(cpu, pcid, vpn);
            }
        }

        // Block the VA and stage the frames; who releases them depends on
        // the policy's outcome.
        let blocked_va = if kind == FlushKind::Unmap && !range.is_empty() {
            self.mms[mm_id.0 as usize].block_va(range);
            Some(range)
        } else {
            None
        };
        let mut frames = self.frame_vec_pool.pop().unwrap_or_default();
        frames.extend(pages.iter().map(|&(_, p)| p));
        self.pending_reclaim = Some(ReclaimPackage {
            mm: mm_id,
            frames,
            va: blocked_va,
        });

        let outcome = self.with_policy(|p, m| {
            p.flush_others(m, cpu, Some(task_id), mm_id, range, &pages, kind, local)
        });
        self.scratch_removed = removed;
        self.scratch_pages = pages;
        self.finish_flush(task_id, cpu, op, local, outcome);
    }

    fn do_mprotect(&mut self, task_id: TaskId, op: Op, range: VaRange, prot: Prot) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;

        self.mms[mm_id.0 as usize].vmas.protect_range(&range, prot);
        let mut pages = Vec::new();
        let mut count = 0u32;
        for vpn in range.iter() {
            if let Some(pte) = self.mms[mm_id.0 as usize].page_table.update(vpn, |p| {
                p.flags.writable = prot.write;
            }) {
                pages.push((vpn, pte.pfn));
                count += 1;
            }
        }
        let mut local = self.costs.syscall_overhead + self.costs.vma_op;
        local += self.costs.pte_op * count as u64;
        local += self.costs.local_invalidation(count);
        let pcid = self.pcid_of(mm_id);
        for &(vpn, _) in &pages {
            self.tlb_invalidate(cpu, pcid, vpn);
        }
        // Permission changes must reach the whole system synchronously
        // (Table 1); frames are untouched.
        self.pending_reclaim = Some(ReclaimPackage {
            mm: mm_id,
            frames: Vec::new(),
            va: None,
        });
        let outcome = self.with_policy(|p, m| {
            p.flush_others(
                m,
                cpu,
                Some(task_id),
                mm_id,
                range,
                &pages,
                FlushKind::Synchronous,
                local,
            )
        });
        self.finish_flush(task_id, cpu, op, local, outcome);
    }

    /// Applies a policy's flush decision to the in-flight op.
    fn finish_flush(
        &mut self,
        task_id: TaskId,
        cpu: CpuId,
        op: Op,
        local_ns: Nanos,
        outcome: FlushOutcome,
    ) {
        match outcome {
            FlushOutcome::Sync {
                txn,
                local_ns: extra,
            } => {
                // Reclaim package must have been attached to the txn.
                assert!(
                    self.pending_reclaim.is_none(),
                    "sync outcome must route reclaim through the txn"
                );
                self.tasks[task_id.index()].state = TaskState::BlockedOnShootdown;
                let wait_start = self.now() + local_ns + extra;
                let t = self
                    .txns
                    .get_mut(&txn.0)
                    .expect("sync outcome with unknown txn");
                t.blocked_task = Some(task_id);
                t.wait_started = wait_start;
                self.hot.busy[cpu.index()] = true;
                self.hot.op_started[cpu.index()] = self.now();
                self.in_flight.insert(task_id.0, op);
                // Completion comes from the last ACK.
            }
            FlushOutcome::Deferred {
                local_ns: extra,
                defer_reclaim,
            } => {
                if defer_reclaim {
                    assert!(
                        self.pending_reclaim.is_none(),
                        "deferring policy must take the reclaim package"
                    );
                } else if let Some(pkg) = self.pending_reclaim.take() {
                    self.release_reclaim(pkg);
                }
                self.begin_op(cpu, task_id, op, (local_ns + extra).max(1));
            }
        }
    }

    /// `mremap()` to a fresh range: the mapping moves, so the old
    /// translations must be invalidated synchronously under every policy
    /// (Table 1's "Remap" row).
    fn do_mremap(&mut self, task_id: TaskId, op: Op, range: VaRange) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let pcid = self.pcid_of(mm_id);

        let pieces = self.mms[mm_id.0 as usize].munmap_vmas(&range);
        let moved = self.mms[mm_id.0 as usize].page_table.unmap_range(&range);
        let new_range = self.mms[mm_id.0 as usize].find_free_va(range.pages.max(1));
        // Re-create the VMA pieces at the new base.
        for piece in pieces {
            let offset = piece.range.start.0 - range.start.0;
            self.mms[mm_id.0 as usize].vmas.insert(latr_mem::Vma {
                range: VaRange::new(new_range.start.offset(offset), piece.range.pages),
                kind: piece.kind,
                prot: piece.prot,
            });
        }
        // Move the PTEs: same frames, new virtual pages.
        for &(vpn, pte) in &moved {
            let offset = vpn.0 - range.start.0;
            self.mms[mm_id.0 as usize].page_table.map(
                new_range.start.offset(offset),
                pte.pfn,
                pte.flags,
            );
        }
        self.tasks[task_id.index()].last_mmap = Some(new_range);
        self.stats.inc("mremaps");

        let mut local = self.costs.syscall_overhead + 2 * self.costs.vma_op;
        local += 2 * self.costs.pte_op * moved.len() as u64;
        local += self.costs.local_invalidation(moved.len() as u32);
        if moved.len() as u32 > self.costs.full_flush_threshold {
            self.tlb_flush_all(cpu);
        } else {
            for &(vpn, _) in &moved {
                self.tlb_invalidate(cpu, pcid, vpn);
            }
        }
        let pages: Vec<(Vpn, Pfn)> = moved.iter().map(|&(v, p)| (v, p.pfn)).collect();
        self.mms[mm_id.0 as usize].block_va(range);
        self.pending_reclaim = Some(ReclaimPackage {
            mm: mm_id,
            frames: Vec::new(),
            va: Some(range),
        });
        let outcome = self.with_policy(|p, m| {
            p.flush_others(
                m,
                cpu,
                Some(task_id),
                mm_id,
                range,
                &pages,
                FlushKind::Synchronous,
                local,
            )
        });
        self.finish_flush(task_id, cpu, op, local, outcome);
    }

    /// Swaps a range out: PTEs cleared, frames released after the (lazy-
    /// able) shootdown, pages marked so the next touch pays a swap-in.
    fn do_swap_out(&mut self, task_id: TaskId, op: Op, range: VaRange) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let pcid = self.pcid_of(mm_id);

        let removed = self.mms[mm_id.0 as usize].page_table.unmap_range(&range);
        for &(vpn, _) in &removed {
            self.swapped.insert((mm_id.0, vpn.0));
        }
        self.stats.add("swap_outs", removed.len() as u64);

        let mut local = self.costs.syscall_overhead;
        local += (self.costs.pte_op + self.costs.swap_out) * removed.len() as u64;
        local += self.costs.local_invalidation(removed.len() as u32);
        if removed.len() as u32 > self.costs.full_flush_threshold {
            self.tlb_flush_all(cpu);
        } else {
            for &(vpn, _) in &removed {
                self.tlb_invalidate(cpu, pcid, vpn);
            }
        }
        let pages: Vec<(Vpn, Pfn)> = removed.iter().map(|&(v, p)| (v, p.pfn)).collect();
        self.pending_reclaim = Some(ReclaimPackage {
            mm: mm_id,
            frames: pages.iter().map(|&(_, p)| p).collect(),
            va: None,
        });
        let outcome = self.with_policy(|p, m| {
            p.flush_others(
                m,
                cpu,
                Some(task_id),
                mm_id,
                range,
                &pages,
                FlushKind::Swap,
                local,
            )
        });
        self.finish_flush(task_id, cpu, op, local, outcome);
    }

    /// KSM-style deduplication: write-protect page pairs (a synchronous
    /// ownership change, charged analytically and identical under every
    /// policy), merge odd pages onto their even neighbours, then free the
    /// duplicate frames through the policy's (lazy-able) flush — stale
    /// read-only translations keep reading identical bytes until swept.
    fn do_dedup(&mut self, task_id: TaskId, op: Op, range: VaRange) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let pcid = self.pcid_of(mm_id);

        let mut local = self.costs.syscall_overhead;
        let mut lazy_pages: Vec<(Vpn, Pfn)> = Vec::new();
        let mut dup_frames: Vec<Pfn> = Vec::new();
        let mut protected = 0u32;
        let mut k = 0;
        while k + 1 < range.pages {
            let a = range.start.offset(k);
            let b = range.start.offset(k + 1);
            k += 2;
            let (Some(pa), Some(pb)) = (
                self.mms[mm_id.0 as usize].page_table.lookup(a),
                self.mms[mm_id.0 as usize].page_table.lookup(b),
            ) else {
                continue;
            };
            if pa.flags.numa_hint || pb.flags.numa_hint || pa.pfn == pb.pfn {
                continue;
            }
            local += self.costs.page_compare;
            // Write-protect both sides (sync part).
            for vpn in [a, b] {
                let pte = self.mms[mm_id.0 as usize]
                    .page_table
                    .update(vpn, |p| p.flags.writable = false)
                    .expect("present above");
                let _ = pte;
                protected += 1;
                self.tlb_invalidate(cpu, pcid, vpn);
            }
            // Merge b onto a's frame; the duplicate frame frees lazily.
            self.frames
                .inc_ref(pa.pfn)
                .expect("dedup source frame is mapped, hence live");
            self.mms[mm_id.0 as usize]
                .page_table
                .update(b, |p| p.pfn = pa.pfn);
            dup_frames.push(pb.pfn);
            lazy_pages.push((b, pb.pfn));
            local += 3 * self.costs.pte_op;
            self.stats.inc("dedup_merges");
        }
        local += self.costs.local_invalidation(protected);
        // The protection change must be system-wide before merging is
        // safe; charge the synchronous round analytically (identical for
        // every policy — Table 1's ownership row).
        let remote = self.mms[mm_id.0 as usize].cpumask.count().saturating_sub(1);
        if protected > 0 && remote > 0 {
            local += self.costs.estimate_linux_shootdown(&self.topology, remote);
            // Remote cores drop the protected translations now.
            let vpns: Vec<Vpn> = lazy_pages
                .iter()
                .flat_map(|&(b, _)| [Vpn(b.0 - 1), b])
                .collect();
            let sharers: Vec<CpuId> = self.mms[mm_id.0 as usize].cpumask.iter().collect();
            for sharer in sharers {
                if sharer != cpu {
                    self.invalidate_tlb_pages(sharer, mm_id, &vpns);
                }
            }
        }
        self.pending_reclaim = Some(ReclaimPackage {
            mm: mm_id,
            frames: dup_frames,
            va: None,
        });
        let outcome = self.with_policy(|p, m| {
            p.flush_others(
                m,
                cpu,
                Some(task_id),
                mm_id,
                range,
                &lazy_pages,
                FlushKind::MadviseFree,
                local,
            )
        });
        self.finish_flush(task_id, cpu, op, local, outcome);
    }

    /// Physical-memory compaction: lazily unmap the range exactly like
    /// AutoNUMA hint-unmaps; the next touch migrates each page to a fresh
    /// frame (§7 notes compaction "performs similar mechanism as
    /// AutoNUMA's page migration").
    fn do_compact(&mut self, task_id: TaskId, op: Op, range: VaRange) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let mut local = self.costs.syscall_overhead;
        let candidates: Vec<Vpn> = self.mms[mm_id.0 as usize]
            .page_table
            .mapped_in(&range)
            .into_iter()
            .filter(|(_, pte)| !pte.flags.numa_hint)
            .map(|(v, _)| v)
            .collect();
        for vpn in candidates {
            self.compact_pending.insert((mm_id.0, vpn.0));
            self.stats.inc("compact_pages");
            local += self.costs.pte_op / 2; // scan + isolate bookkeeping
            let handled = self.with_policy(|p, m| p.numa_hint_unmap(m, cpu, mm_id, vpn));
            if !handled {
                self.sync_numa_hint_unmap(cpu, mm_id, vpn);
            }
        }
        self.begin_op(cpu, task_id, op, local.max(1));
    }

    /// `fork()`: clone the address space with copy-on-write semantics.
    /// Every writable parent page becomes read-only in both address
    /// spaces — an ownership change that must reach all cores
    /// synchronously (Table 1).
    fn do_fork(&mut self, task_id: TaskId, op: Op) {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let parent = task.mm;
        let pcid = self.pcid_of(parent);
        let child = self.create_process();
        self.stats.inc("forks");

        let vmas: Vec<latr_mem::Vma> = self.mms[parent.0 as usize].vmas.iter().copied().collect();
        let mut downgraded: Vec<(Vpn, Pfn)> = Vec::new();
        let mut local = self.costs.syscall_overhead + self.costs.vma_op * vmas.len() as u64;
        for vma in vmas {
            self.mms[child.0 as usize].vmas.insert(vma);
            let present = self.mms[parent.0 as usize].page_table.mapped_in(&vma.range);
            for (vpn, pte) in present {
                if pte.flags.numa_hint {
                    continue;
                }
                // Share the frame read-only on both sides.
                self.frames
                    .inc_ref(pte.pfn)
                    .expect("forked frame is mapped, hence live");
                let mut flags = pte.flags;
                let was_writable = flags.writable;
                flags.writable = false;
                self.mms[child.0 as usize]
                    .page_table
                    .map(vpn, pte.pfn, flags);
                local += 2 * self.costs.pte_op;
                if was_writable {
                    self.mms[parent.0 as usize]
                        .page_table
                        .update(vpn, |p| p.flags.writable = false);
                    self.tlb_invalidate(cpu, pcid, vpn);
                    downgraded.push((vpn, pte.pfn));
                }
            }
        }
        local += self.costs.local_invalidation(downgraded.len() as u32);
        self.tasks[task_id.index()].last_fork = Some(child);

        if downgraded.is_empty() {
            self.begin_op(cpu, task_id, op, local.max(1));
            return;
        }
        let range = VaRange::new(
            downgraded.first().expect("non-empty").0,
            downgraded.last().expect("non-empty").0 .0
                - downgraded.first().expect("non-empty").0 .0
                + 1,
        );
        self.pending_reclaim = Some(ReclaimPackage {
            mm: parent,
            frames: Vec::new(),
            va: None,
        });
        let outcome = self.with_policy(|p, m| {
            p.flush_others(
                m,
                cpu,
                Some(task_id),
                parent,
                range,
                &downgraded,
                FlushKind::Synchronous,
                local,
            )
        });
        self.finish_flush(task_id, cpu, op, local, outcome);
    }

    // ---- synchronous shootdown machinery ---------------------------------------

    /// Creates a synchronous shootdown transaction from `initiator` to
    /// `targets`, scheduling the IPI deliveries after `start_delay` of
    /// initiator-side work. The staged reclaim package (if any) rides on
    /// the transaction and is applied when the last ACK arrives.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty — policies must handle that case as a
    /// purely local flush.
    pub fn begin_sync_shootdown(
        &mut self,
        initiator: CpuId,
        mm: MmId,
        pages: Vec<Vpn>,
        targets: CpuMask,
        start_delay: Nanos,
    ) -> TxnId {
        assert!(!targets.is_empty(), "sync shootdown needs targets");
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.stats.inc(crate::metrics::SHOOTDOWNS);
        self.stats
            .add(crate::metrics::IPIS_SENT, targets.count() as u64);
        let start = self.now() + start_delay;
        self.schedule_ipi_deliveries(initiator, &targets, start, id);
        if self.injector.is_some() {
            // Injected plans can drop deliveries; arm the retransmit timer
            // so a lost IPI stalls the round by at most one tick period.
            self.queue
                .schedule(start + self.costs.sched_tick_period, Event::TxnRetry(id));
        }
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_ipi_send(initiator, id.0, targets, now);
            }
        }
        let reclaim = self.pending_reclaim.take();
        let (frames_to_release, va_to_unblock) = match reclaim {
            Some(pkg) => (pkg.frames, pkg.va),
            None => (Vec::new(), None),
        };
        self.txns.insert(
            id.0,
            ShootdownTxn {
                id,
                initiator,
                blocked_task: None,
                mm,
                pending: {
                    let mut m = targets;
                    m.clear(initiator);
                    m
                },
                pages,
                frames_to_release,
                va_to_unblock,
                started: self.now(),
                wait_started: start,
            },
        );
        if self.trace.is_enabled() {
            self.trace.push(
                self.now(),
                "ipi",
                format!(
                    "{initiator} multicasts shootdown to {} cores",
                    targets.count()
                ),
            );
        }
        id
    }

    /// Multicasts `IpiDeliver` events for one shootdown round, routing
    /// each delivery through the fault injector (drop / delay / deliver).
    fn schedule_ipi_deliveries(
        &mut self,
        initiator: CpuId,
        targets: &CpuMask,
        start: Time,
        txn: TxnId,
    ) {
        let schedule = self.fabric.multicast(initiator, targets, start);
        for &(target, at) in &schedule.deliveries {
            let fault = self
                .injector
                .as_mut()
                .map_or(IpiFault::Deliver, FaultInjector::ipi_fault);
            let at = match fault {
                IpiFault::Drop => {
                    self.stats.inc(crate::metrics::FAULTS_IPI_DROPPED);
                    if self.trace.is_enabled() {
                        let now = self.now();
                        self.trace
                            .push(now, "fault", format!("IPI to {target} dropped"));
                    }
                    continue;
                }
                IpiFault::Delay(d) => {
                    self.stats.inc(crate::metrics::FAULTS_IPI_DELAYED);
                    at + d
                }
                IpiFault::Deliver => at,
            };
            self.queue.schedule(at, Event::IpiDeliver { target, txn });
        }
    }

    /// Retransmit timer: while a synchronous round still has un-ACKed
    /// targets, re-multicast to exactly those cores and re-arm. Duplicate
    /// deliveries are harmless — a completed transaction's events are
    /// dropped by the `txns` lookup, and re-clearing a pending bit is
    /// idempotent. Only runs under an active fault plan.
    fn txn_retry(&mut self, txn_id: TxnId) {
        let (initiator, pending) = match self.txns.get(&txn_id.0) {
            Some(t) => (t.initiator, t.pending),
            None => return, // completed; let the timer die
        };
        if pending.is_empty() {
            return;
        }
        self.stats.inc(crate::metrics::IPI_RETRIES);
        self.stats
            .add(crate::metrics::IPIS_SENT, pending.count() as u64);
        let start = self.now();
        self.schedule_ipi_deliveries(initiator, &pending, start, txn_id);
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                // Overwrites the txn's send clock with a later one — safe:
                // the retransmitted IPIs happen-after this instant.
                o.note_ipi_send(initiator, txn_id.0, pending, now);
            }
        }
        self.queue.schedule(
            start + self.costs.sched_tick_period,
            Event::TxnRetry(txn_id),
        );
        if self.trace.is_enabled() {
            self.trace.push(
                start,
                "fault",
                format!(
                    "{initiator} retransmits shootdown to {} cores",
                    pending.count()
                ),
            );
        }
    }

    fn ipi_deliver(&mut self, target: CpuId, txn_id: TxnId) {
        // Take the page list out of the transaction instead of cloning it
        // (one heap allocation per IPI otherwise); it is restored before
        // this handler returns.
        let (initiator, pages, pcid) = match self.txns.get_mut(&txn_id.0) {
            Some(t) => {
                let pcid = self.mm_pcid[t.mm.0 as usize];
                (t.initiator, std::mem::take(&mut t.pages), pcid)
            }
            None => return, // already completed (shouldn't happen)
        };
        self.stats.inc(crate::metrics::IPIS_HANDLED);
        self.llc.charge_interrupt();

        // "Handling interrupts on remote cores ... might be delayed due
        // to temporarily disabled interrupts" (§2.1): a busy core defers
        // the handler by a uniformly random disabled window.
        let busy = self.hot.busy[target.index()];
        let irq_delay = if busy {
            self.rng.below(self.costs.irq_disabled_max)
        } else {
            0
        };
        // The handler happens-after the initiator's send: join clocks
        // before mirroring the handler's invalidations.
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_ipi_deliver(target, txn_id.0, now);
            }
        }
        if pages.len() as u32 > self.costs.full_flush_threshold {
            self.tlb_flush_all(target);
        } else {
            for vpn in &pages {
                self.tlb_invalidate(target, pcid, *vpn);
            }
        }
        let handler =
            self.costs.interrupt_overhead + self.costs.local_invalidation(pages.len() as u32);
        // The handler steals time from whatever the core was doing.
        if self.hot.busy[target.index()] {
            self.hot.debt[target.index()] += handler;
        }
        let ack_latency = self.fabric.ack_latency(initiator, target);
        self.queue.schedule_after(
            irq_delay + handler + ack_latency,
            Event::AckArrive {
                txn: txn_id,
                from: target,
            },
        );
        if self.trace.is_enabled() {
            self.trace.push(
                self.now(),
                "ipi",
                format!("{target} handles shootdown IPI ({} pages)", pages.len()),
            );
        }
        if let Some(t) = self.txns.get_mut(&txn_id.0) {
            t.pages = pages;
        }
    }

    fn ack_arrive(&mut self, txn_id: TxnId, from: CpuId) {
        let (initiator, done) = {
            let txn = match self.txns.get_mut(&txn_id.0) {
                Some(t) => t,
                None => return,
            };
            txn.pending.clear(from);
            (txn.initiator, txn.pending.is_empty())
        };
        // The initiator happens-after the acknowledging core's handler.
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_ack(initiator, from, txn_id.0, done, now);
            }
        }
        #[cfg(not(feature = "oracle"))]
        let _ = initiator;
        if !done {
            return;
        }
        let txn = self.txns.remove(&txn_id.0).expect("txn present");
        let wait = self.now().saturating_since(txn.wait_started);
        self.stats.record(crate::metrics::SHOOTDOWN_NS, wait);
        // Tell the policy before releasing: a watchdog-escalated round
        // must clear the escalated state's bits so gated reclamation sees
        // it retired.
        self.with_policy(|p, m| p.on_sync_complete(m, &txn));
        // Frames free on the initiating core, after every ACK (the sync
        // protocol's guarantee).
        self.release_reclaim_on(
            Some(txn.initiator),
            ReclaimPackage {
                mm: txn.mm,
                frames: txn.frames_to_release,
                va: txn.va_to_unblock,
            },
        );
        if let Some(task_id) = txn.blocked_task {
            self.tasks[task_id.index()].state = TaskState::Running;
            let cpu = txn.initiator;
            self.hot.op_generation[cpu.index()] += 1;
            let generation = self.hot.op_generation[cpu.index()];
            self.queue.schedule_after(
                0,
                Event::OpComplete {
                    cpu,
                    task: task_id,
                    generation,
                },
            );
        }
    }

    /// Tears down an address space whose last task exited: unmaps every
    /// VMA and drops the mapping references on their frames.
    fn exit_mmap(&mut self, mm_id: MmId, on: Option<CpuId>) {
        let ranges: Vec<VaRange> = self.mms[mm_id.0 as usize]
            .vmas
            .iter()
            .map(|v| v.range)
            .collect();
        for range in ranges {
            self.mms[mm_id.0 as usize].munmap_vmas(&range);
            let removed = self.mms[mm_id.0 as usize].page_table.unmap_range(&range);
            for (_, pte) in removed {
                self.frame_dec_ref(on, pte.pfn);
            }
            for vpn in range.iter() {
                self.swapped.remove(&(mm_id.0, vpn.0));
                self.compact_pending.remove(&(mm_id.0, vpn.0));
            }
        }
    }

    // ---- reclamation helpers ------------------------------------------------------

    /// Takes the reclaim package staged by the current unmap, transferring
    /// ownership of frame release and VA unblocking to the caller (the
    /// Latr policy's lazy lists).
    pub fn take_pending_reclaim(&mut self) -> Option<ReclaimPackage> {
        self.pending_reclaim.take()
    }

    /// Releases a reclaim package: drops one reference per frame and
    /// unblocks the VA range. Frees are attributed to the reclamation
    /// kthread (callers are `kreclaimd`-style deferred paths; the
    /// synchronous-ACK path uses [`release_reclaim_on`](Self::release_reclaim_on)
    /// internally).
    pub fn release_reclaim(&mut self, pkg: ReclaimPackage) {
        self.release_reclaim_on(None, pkg);
    }

    /// [`release_reclaim`](Self::release_reclaim) with an explicit
    /// releasing core (`None` = the reclamation kthread).
    fn release_reclaim_on(&mut self, on: Option<CpuId>, mut pkg: ReclaimPackage) {
        for pfn in pkg.frames.drain(..) {
            self.frame_dec_ref(on, pfn);
        }
        // Park the emptied frames vector for the next unmap to reuse (the
        // pool is bounded by the number of packages concurrently staged).
        if pkg.frames.capacity() > 0 && self.frame_vec_pool.len() < 64 {
            self.frame_vec_pool.push(pkg.frames);
        }
        if let Some(va) = pkg.va {
            self.mms[pkg.mm.0 as usize].unblock_va(&va);
        }
    }

    /// Invalidates `pages` of `mm` in `cpu`'s TLB, applying the full-flush
    /// threshold. Returns how many entries were actually present. Used by
    /// Latr's state sweep.
    pub fn invalidate_tlb_pages(&mut self, cpu: CpuId, mm: MmId, pages: &[Vpn]) -> usize {
        let pcid = self.pcid_of(mm);
        if pages.len() as u32 > self.costs.full_flush_threshold {
            self.tlb_flush_all(cpu);
            pages.len()
        } else {
            pages
                .iter()
                .filter(|&&vpn| self.tlb_invalidate(cpu, pcid, vpn))
                .count()
        }
    }

    /// The PCID a sweep burst invalidates under — resolved once per
    /// `(mm, tick)` group by the policy's batch-apply path and fed to
    /// [`invalidate_tlb_range_pcid`](Self::invalidate_tlb_range_pcid)
    /// for every state in the group.
    pub fn sweep_pcid(&self, mm: MmId) -> u16 {
        self.pcid_of(mm)
    }

    /// [`invalidate_tlb_pages`](Self::invalidate_tlb_pages) for one
    /// contiguous state range with the PCID already resolved. The
    /// full-flush threshold still applies per range, and the oracle sees
    /// the same per-page stream, so a grouped sweep is bit-identical to
    /// the one-call-per-state form — it just skips the per-state
    /// `mm → pcid` lookup and the scratch page vector.
    pub fn invalidate_tlb_range_pcid(&mut self, cpu: CpuId, pcid: u16, range: VaRange) -> usize {
        if range.pages as u32 > self.costs.full_flush_threshold {
            self.tlb_flush_all(cpu);
            range.pages as usize
        } else {
            range
                .iter()
                .filter(|&vpn| self.tlb_invalidate(cpu, pcid, vpn))
                .count()
        }
    }

    /// Adds interrupt-style time debt to whatever `cpu` is executing.
    pub fn charge_debt(&mut self, cpu: CpuId, ns: Nanos) {
        if self.hot.busy[cpu.index()] {
            self.hot.debt[cpu.index()] += ns;
        }
    }

    /// Schedules a [`TlbPolicy::on_timer`] callback after `delay`.
    pub fn schedule_policy_timer(&mut self, delay: Nanos, token: u64) {
        self.queue.schedule_after(delay, Event::PolicyTimer(token));
    }

    // ---- scheduler ticks --------------------------------------------------------

    fn sched_tick(&mut self, cpu: CpuId) {
        let period = self.costs.sched_tick_period;
        // Tickless kernels skip the tick on idle cores (§7): an idle core
        // is in no mm_cpumask, so no Latr state can name it, and its TLB
        // was flushed when it went idle.
        if self.tickless && self.cores[cpu.index()].current.is_none() {
            self.stats.inc("ticks_skipped_idle");
            self.queue.schedule_after(period, Event::SchedTick(cpu));
            return;
        }
        // Consult the fault plan: a stalled core keeps time (and its next
        // tick) but must not sweep; a missed tick is skipped entirely; a
        // jittered tick pushes the *next* one late, modelling a slow timer.
        let mut next_in = period;
        if self.injector.is_some() {
            let now = self.now();
            let fault = self
                .injector
                .as_mut()
                .map_or(TickFault::Run, |inj| inj.tick_fault(cpu.index(), now));
            match fault {
                TickFault::Stalled => {
                    self.stats.inc(crate::metrics::FAULTS_SWEEP_STALLS);
                    self.queue.schedule_after(period, Event::SchedTick(cpu));
                    return;
                }
                TickFault::Miss => {
                    self.stats.inc(crate::metrics::FAULTS_TICKS_MISSED);
                    self.queue.schedule_after(period, Event::SchedTick(cpu));
                    return;
                }
                TickFault::Jitter(d) => {
                    self.stats.inc(crate::metrics::FAULTS_TICK_JITTER);
                    next_in = period + d;
                }
                TickFault::Run => {}
            }
        }
        self.stats.inc(crate::metrics::SCHED_TICKS);
        let mut cost = self.costs.sched_tick_work;
        cost += self.with_policy(|p, m| p.on_sched_tick(m, cpu));
        self.charge_debt(cpu, cost);
        self.queue.schedule_after(next_in, Event::SchedTick(cpu));
    }

    // ---- AutoNUMA ------------------------------------------------------------------

    fn numa_scan(&mut self, mm_id: MmId) {
        let batch = self
            .numa
            .next_scan_batch(mm_id, &self.mms[mm_id.0 as usize]);
        if !batch.is_empty() {
            // task_numa_work runs in the context of one of the process'
            // tasks; charge the first CPU in the cpumask.
            let cpu = self.mms[mm_id.0 as usize]
                .cpumask
                .first()
                .unwrap_or(CpuId(0));
            for vpn in batch {
                let handled = self.with_policy(|p, m| p.numa_hint_unmap(m, cpu, mm_id, vpn));
                if !handled {
                    self.sync_numa_hint_unmap(cpu, mm_id, vpn);
                }
            }
        }
        let period = self.numa.config().scan_period;
        self.queue.schedule_after(period, Event::NumaScan(mm_id));
    }

    /// The Linux path: set the hint protection and synchronously shoot the
    /// page down everywhere (Fig. 3a).
    fn sync_numa_hint_unmap(&mut self, cpu: CpuId, mm_id: MmId, vpn: Vpn) {
        self.apply_numa_hint(cpu, mm_id, vpn);
        let mut targets = self.mms[mm_id.0 as usize].cpumask;
        targets.clear(cpu);
        if targets.is_empty() {
            return;
        }
        self.pending_reclaim = None;
        let _txn = self.begin_sync_shootdown(cpu, mm_id, vec![vpn], targets, 0);
        // The scanner runs in task context: the initiating CPU eats the
        // synchronous wait as debt.
        let est = self
            .costs
            .estimate_linux_shootdown(&self.topology, targets.count());
        self.charge_debt(cpu, est);
    }

    /// Sets the NUMA-hint protection on a PTE and invalidates the calling
    /// CPU's own TLB entry. Shared by the sync path and Latr's first
    /// sweeper (§4.3: "the first core performs the page table unmap").
    pub fn apply_numa_hint(&mut self, cpu: CpuId, mm_id: MmId, vpn: Vpn) {
        let pcid = self.pcid_of(mm_id);
        self.mms[mm_id.0 as usize]
            .page_table
            .update(vpn, |p| p.flags.numa_hint = true);
        self.tlb_invalidate(cpu, pcid, vpn);
    }

    fn numa_fault_retry(&mut self, task_id: TaskId, vpn: Vpn) {
        if !self.tasks[task_id.index()].is_live() {
            return;
        }
        let Some(&(blocked_vpn, write)) = self.blocked_faults.get(&task_id.0) else {
            return;
        };
        debug_assert_eq!(blocked_vpn, vpn);
        let mm_id = self.tasks[task_id.index()].mm;
        let proceed = self.with_policy(|p, m| p.numa_fault_may_proceed(m, mm_id, vpn));
        if !proceed {
            let retry = self.numa.config().fault_retry;
            self.queue.schedule_after(
                retry,
                Event::NumaFaultRetry {
                    task: task_id,
                    vpn: vpn.0,
                },
            );
            return;
        }
        self.blocked_faults.remove(&task_id.0);
        let cost = self.numa_hint_fault(task_id, vpn, write);
        let cpu = self.tasks[task_id.index()].core;
        self.hot.op_generation[cpu.index()] += 1;
        let generation = self.hot.op_generation[cpu.index()];
        self.queue.schedule_after(
            cost.max(1),
            Event::OpComplete {
                cpu,
                task: task_id,
                generation,
            },
        );
    }

    /// Handles a NUMA hint fault that may proceed: clears the hint and
    /// possibly migrates the page toward the faulting node. Returns the
    /// fault's CPU cost.
    fn numa_hint_fault(&mut self, task_id: TaskId, vpn: Vpn, write: bool) -> Nanos {
        let task = &self.tasks[task_id.index()];
        let cpu = task.core;
        let mm_id = task.mm;
        let node = self.topology.node_of(cpu);
        let mut cost = self.costs.page_fault;
        // The policy has just allowed this hint fault to proceed; the
        // oracle checks every bit of any covering migration state cleared
        // first (§4.4).
        #[cfg(feature = "oracle")]
        {
            let now = self.now();
            if let Some(o) = self.oracle.as_mut() {
                o.note_migration_proceed(cpu, mm_id, vpn, now);
            }
        }

        let Some(pte) = self.mms[mm_id.0 as usize].page_table.lookup(vpn) else {
            return cost;
        };
        let home = self.frames.node_of(pte.pfn);
        let force_compact = self.compact_pending.remove(&(mm_id.0, vpn.0));
        // Compaction migrates within the home node (defragmentation);
        // NUMA balancing migrates toward the accessing node.
        let target = if force_compact { home } else { node };
        let migrate = force_compact || self.numa.should_migrate(mm_id, vpn, node, home);
        if migrate {
            if let Ok(new_pfn) = self.frame_alloc_exact(cpu, target) {
                // Copy, remap, release the old frame. The migration itself
                // performs a synchronous unmap+flush in both Linux and Latr
                // (§4.3 leaves the migration path unmodified); charge its
                // analytic cost.
                cost += self.costs.page_copy + self.costs.pte_op + self.costs.frame_op;
                let remote = self.mms[mm_id.0 as usize].cpumask.count().saturating_sub(1);
                if remote > 0 {
                    cost += self.costs.estimate_linux_shootdown(&self.topology, remote);
                }
                let old = pte.pfn;
                self.mms[mm_id.0 as usize].page_table.update(vpn, |p| {
                    p.pfn = new_pfn;
                    p.flags.numa_hint = false;
                    p.flags.accessed = true;
                });
                self.frame_dec_ref(Some(cpu), old);
                self.stats.inc(crate::metrics::MIGRATIONS);
                self.numa.note_migration();
            } else {
                // Target node full: abort the migration, keep the page.
                self.mms[mm_id.0 as usize]
                    .page_table
                    .update(vpn, |p| p.flags.numa_hint = false);
            }
        } else {
            self.mms[mm_id.0 as usize]
                .page_table
                .update(vpn, |p| p.flags.numa_hint = false);
        }
        let pte = self.mms[mm_id.0 as usize].page_table.lookup(vpn).unwrap();
        let pcid = self.pcid_of(mm_id);
        self.tlb_insert(
            cpu,
            TlbEntry {
                pcid,
                vpn: vpn.0,
                pfn: pte.pfn.0,
                writable: pte.flags.writable,
            },
        );
        if write {
            self.mms[mm_id.0 as usize]
                .page_table
                .update(vpn, |p| p.flags.dirty = true);
        }
        cost
    }

    // ---- invariant checking (used heavily by tests) -------------------------------

    /// Checks the paper's central invariant (§3): every translation cached
    /// in any TLB must point at a frame that is still allocated (a
    /// refcount above zero). Returns the first violation, or `None` when
    /// the machine is consistent.
    pub fn check_reclamation_invariant(&self) -> Option<InvariantViolation> {
        for core in &self.cores {
            for entry in core.tlb.iter_entries() {
                if !self.frames.is_allocated(Pfn(entry.pfn)) {
                    return Some(InvariantViolation::StaleTranslationToFreedFrame {
                        cpu: core.id,
                        vpn: entry.vpn,
                        pfn: entry.pfn,
                    });
                }
            }
        }
        None
    }

    /// Checks that no TLB disagrees with the page tables about a *present*
    /// mapping's target frame — stale entries may only point at frames that
    /// are still referenced (that is the Latr relaxation), but a *present*
    /// PTE must never be cached with a different frame.
    pub fn check_mapping_coherence(&self) -> Option<InvariantViolation> {
        // The pcid → address-space relation is maintained persistently by
        // `create_process` (entries × mms would blow up on 120-core runs
        // where the checkers execute inside test loops).
        for core in &self.cores {
            for entry in core.tlb.iter_entries() {
                for &i in &self.pcid_mms[entry.pcid as usize] {
                    let i = i as usize;
                    if let Some(pte) = self.mms[i].page_table.lookup(Vpn(entry.vpn)) {
                        if !pte.flags.numa_hint && pte.pfn.0 != entry.pfn {
                            return Some(InvariantViolation::MappingMismatch {
                                cpu: core.id,
                                vpn: entry.vpn,
                                cached: entry.pfn,
                                mapped: pte.pfn.0,
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Number of events the queue has delivered so far — the simulator's
    /// raw unit of work, reported by the hot-path benchmarks.
    pub fn events_delivered(&self) -> u64 {
        self.queue.delivered()
    }

    /// Test-only: switches a `Parallel` engine's cross-lane merge to the
    /// unsound wall-clock-arrival order (the determinism suite's negative
    /// control — see `tests/par_determinism.rs`). No-op on the sequential
    /// engines. Call before [`Machine::run`].
    #[doc(hidden)]
    pub fn set_unsound_merge(&mut self, unsound: bool) {
        self.queue.set_unsound_merge(unsound);
    }

    /// Fingerprints the run for determinism and differential comparisons:
    /// final clock, delivered-event count, every counter, every histogram
    /// summary, and the rendered trace ring. Two runs (or two engines) are
    /// event-identical iff their fingerprints are byte-identical — counters
    /// and histograms live in ordered maps, so the rendering is stable
    /// across processes and builds.
    /// The incremental event-stream fingerprint: a polynomial fold over
    /// every delivered event's `(time, payload)`, updated in O(1) per
    /// event and finalized on read. Two runs deliver identical event
    /// streams iff their folds match — the determinism gate the benches
    /// use without paying for the full [`fingerprint`](Self::fingerprint)
    /// render. The fold is also a line of the rendered fingerprint, so
    /// the differential suites gate it automatically.
    pub fn fingerprint_fold(&self) -> u64 {
        fold_finish(self.fold)
    }

    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "end={}", self.now().as_ns());
        let _ = writeln!(out, "events={}", self.queue.delivered());
        let _ = writeln!(out, "fold={:016x}", fold_finish(self.fold));
        for (name, value) in self.stats.counters() {
            let _ = writeln!(out, "{name}={value}");
        }
        for (name, hist) in self.stats.histograms() {
            let _ = writeln!(out, "{name}: {}", hist.summary());
        }
        for entry in self.trace.iter() {
            let _ = writeln!(out, "{entry}");
        }
        out
    }
}

/// A machine-level safety violation found by the invariant checkers.
///
/// The [`Display`](std::fmt::Display) form matches the strings the checkers
/// used to return directly, so assertion messages (and tests grepping
/// them) are unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A TLB caches a translation to a frame whose refcount reached zero —
    /// the §3 reclamation invariant is broken and the core could access
    /// reused memory.
    StaleTranslationToFreedFrame {
        /// The core whose TLB holds the stale entry.
        cpu: CpuId,
        /// The cached virtual page number.
        vpn: u64,
        /// The freed frame it still points at.
        pfn: u64,
    },
    /// A TLB disagrees with a *present* PTE about the target frame (stale
    /// entries may only point at still-referenced frames — that is the
    /// Latr relaxation — but never shadow a live remapping).
    MappingMismatch {
        /// The core whose TLB holds the conflicting entry.
        cpu: CpuId,
        /// The cached virtual page number.
        vpn: u64,
        /// The frame the TLB caches.
        cached: u64,
        /// The frame the PTE actually maps.
        mapped: u64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            InvariantViolation::StaleTranslationToFreedFrame { cpu, vpn, pfn } => {
                write!(f, "{cpu} caches vpn {vpn:#x} -> freed frame {pfn:#x}")
            }
            InvariantViolation::MappingMismatch {
                cpu,
                vpn,
                cached,
                mapped,
            } => {
                write!(
                    f,
                    "{cpu} caches vpn {vpn:#x} -> {cached:#x} but PTE says {mapped:#x}"
                )
            }
        }
    }
}

enum AccessOutcome {
    Done(Nanos),
    BlockedOnNuma,
}
