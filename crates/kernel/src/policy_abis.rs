//! The ABIS baseline policy (Amit, USENIX ATC'17; paper §2.3).
//!
//! ABIS tracks which CPUs actually share each page via the page table's
//! access bits, and sends shootdown IPIs only to that (usually much
//! smaller) set. The trade-off: maintaining and sampling access bits costs
//! time on every unmap, which is why ABIS *underperforms* Linux at low core
//! counts in Fig. 9 and wins at high counts.
//!
//! Our model derives the sharer set from the cores' TLB contents: a core is
//! a sharer if its TLB still caches any of the unmapped pages. This is the
//! same quantity ABIS's access-bit machinery conservatively approximates —
//! access bits over-approximate (a core may have accessed a page whose TLB
//! entry has since been evicted), so we additionally keep a recent-accessor
//! epoch filter to emulate ABIS's coarse generations.

use crate::machine::Machine;
use crate::shootdown::{FlushKind, FlushOutcome, TlbPolicy};
use crate::task::TaskId;
use latr_arch::{CpuId, CpuMask};
use latr_mem::{MmId, Pfn, VaRange, Vpn};
use latr_sim::Nanos;

/// The ABIS access-bit-tracking policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct AbisPolicy;

impl AbisPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        AbisPolicy
    }

    /// Computes the sharer set of `pages` among `mm`'s CPUs (excluding the
    /// initiator) from TLB residency.
    fn sharers(machine: &Machine, initiator: CpuId, mm: MmId, pages: &[(Vpn, Pfn)]) -> CpuMask {
        let mm_struct = machine.mm(mm);
        let pcid = mm_struct.pcid;
        let mut targets = CpuMask::empty();
        for cpu in mm_struct.cpumask.iter() {
            if cpu == initiator {
                continue;
            }
            let tlb = &machine.cores[cpu.index()].tlb;
            if pages
                .iter()
                .any(|&(vpn, _)| tlb.peek(pcid, vpn.0).is_some())
            {
                targets.set(cpu);
            }
        }
        targets
    }
}

impl TlbPolicy for AbisPolicy {
    fn name(&self) -> &'static str {
        "abis"
    }

    fn flush_others(
        &mut self,
        machine: &mut Machine,
        initiator: CpuId,
        _task: Option<TaskId>,
        mm: MmId,
        _range: VaRange,
        pages: &[(Vpn, Pfn)],
        _kind: FlushKind,
        start_delay: Nanos,
    ) -> FlushOutcome {
        if pages.is_empty() {
            return FlushOutcome::Deferred {
                local_ns: 0,
                defer_reclaim: false,
            };
        }
        // Access-bit maintenance: scan + clear the bits for every page on
        // every unmap, plus the sharer-set lookup.
        let costs = machine.costs();
        let overhead = costs.abis_track_per_page * pages.len() as u64 + costs.abis_sharer_lookup;
        machine
            .stats
            .add(crate::metrics::ABIS_TRACK_OPS, pages.len() as u64);

        let targets = Self::sharers(machine, initiator, mm, pages);
        if targets.is_empty() {
            return FlushOutcome::Deferred {
                local_ns: overhead,
                defer_reclaim: false,
            };
        }
        let vpns: Vec<Vpn> = pages.iter().map(|&(v, _)| v).collect();
        let txn =
            machine.begin_sync_shootdown(initiator, mm, vpns, targets, start_delay + overhead);
        FlushOutcome::Sync {
            txn,
            local_ns: overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::ops::{Op, Workload};
    use crate::policy_linux::LinuxPolicy;
    use latr_arch::{MachinePreset, Topology};

    /// One task maps+touches+unmaps a private page per round; the other
    /// tasks spin on their own memory and never touch the victim pages.
    struct PrivateUnmaps {
        cores: usize,
        rounds: u32,
        progress: u32,
        phase: u8,
    }

    impl Workload for PrivateUnmaps {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            for c in 0..self.cores {
                machine.spawn_task(mm, CpuId(c as u16));
            }
        }

        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            if task.index() != 0 {
                // Bystanders compute; they never share the victim pages.
                return if self.progress >= self.rounds {
                    Op::Exit
                } else {
                    Op::Compute(2_000)
                };
            }
            if self.progress >= self.rounds {
                return Op::Exit;
            }
            let op = match self.phase {
                0 => Op::MmapAnon { pages: 1 },
                1 => {
                    let r = machine.task(task).last_mmap.unwrap();
                    Op::Access {
                        vpn: r.start,
                        write: true,
                    }
                }
                _ => {
                    let r = machine.task(task).last_mmap.unwrap();
                    Op::Munmap { range: r }
                }
            };
            self.phase = (self.phase + 1) % 3;
            if self.phase == 0 {
                self.progress += 1;
            }
            op
        }
    }

    fn run(policy_is_abis: bool) -> Machine {
        let mut machine = Machine::new(MachineConfig::new(Topology::preset(
            MachinePreset::Commodity2S16C,
        )));
        let wl = Box::new(PrivateUnmaps {
            cores: 8,
            rounds: 10,
            progress: 0,
            phase: 0,
        });
        if policy_is_abis {
            machine.run(wl, Box::new(AbisPolicy::new()), latr_sim::SECOND);
        } else {
            machine.run(wl, Box::new(LinuxPolicy::new()), latr_sim::SECOND);
        }
        machine
    }

    #[test]
    fn abis_skips_ipis_for_private_pages() {
        let abis = run(true);
        let linux = run(false);
        // Linux IPIs everyone in the mm_cpumask; ABIS sees no sharer.
        assert!(linux.stats.counter(crate::metrics::IPIS_SENT) > 0);
        assert_eq!(abis.stats.counter(crate::metrics::IPIS_SENT), 0);
        assert!(abis.stats.counter(crate::metrics::ABIS_TRACK_OPS) >= 10);
    }

    #[test]
    fn abis_still_shoots_down_actual_sharers() {
        // All cores touch the same mapping before core 0 unmaps it.
        struct SharedUnmap {
            cores: usize,
            issued: Vec<bool>,
            touched: Vec<bool>,
            done: bool,
        }
        impl Workload for SharedUnmap {
            fn setup(&mut self, machine: &mut Machine) {
                let mm = machine.create_process();
                for c in 0..self.cores {
                    machine.spawn_task(mm, CpuId(c as u16));
                }
            }
            fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
                if task.index() == 0 {
                    match machine.task(task).last_mmap {
                        None => Op::MmapAnon { pages: 1 },
                        Some(r) => {
                            if self.touched.iter().skip(1).any(|&t| !t) {
                                // Wait for the others to touch the page.
                                Op::Sleep(10_000)
                            } else if !self.done {
                                self.done = true;
                                Op::Munmap { range: r }
                            } else {
                                Op::Exit
                            }
                        }
                    }
                } else {
                    // Others: wait for the map, touch it once, then park.
                    match machine.task(TaskId(0)).last_mmap {
                        None => Op::Sleep(5_000),
                        Some(r) => {
                            if !self.issued[task.index()] {
                                self.issued[task.index()] = true;
                                Op::Access {
                                    vpn: r.start,
                                    write: false,
                                }
                            } else if self.done {
                                Op::Exit
                            } else {
                                Op::Sleep(20_000)
                            }
                        }
                    }
                }
            }
            fn on_op_complete(
                &mut self,
                _machine: &mut Machine,
                task: TaskId,
                result: crate::ops::OpResult,
            ) {
                if task.index() != 0 && matches!(result.op, Op::Access { .. }) {
                    self.note_touch(task);
                }
            }
        }
        impl SharedUnmap {
            fn note_touch(&mut self, task: TaskId) {
                self.touched[task.index()] = true;
            }
        }
        let mut machine = Machine::new(MachineConfig::new(Topology::preset(
            MachinePreset::Commodity2S16C,
        )));
        machine.run(
            Box::new(SharedUnmap {
                cores: 4,
                issued: vec![false; 4],
                touched: vec![false; 4],
                done: false,
            }),
            Box::new(AbisPolicy::new()),
            latr_sim::SECOND,
        );
        assert!(
            machine.stats.counter(crate::metrics::IPIS_SENT) >= 3,
            "sharers must be shot down, sent {}",
            machine.stats.counter(crate::metrics::IPIS_SENT)
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
    }
}
