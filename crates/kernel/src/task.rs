//! Tasks (threads) and their scheduling state.

use latr_arch::CpuId;
use latr_mem::{MmId, VaRange};
use serde::{Deserialize, Serialize};

/// Identifier of a task (thread), dense from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task index as a `usize` for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Lifecycle state of a task.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TaskState {
    /// Executing ops.
    Running,
    /// Blocked on a synchronous shootdown's ACKs.
    BlockedOnShootdown,
    /// Finished ([`crate::Op::Exit`]).
    Done,
}

/// One thread of a simulated process, pinned to a core (the paper's
/// benchmarks pin workers and disable hyperthreading).
#[derive(Clone, Debug)]
pub struct Task {
    /// This task's id.
    pub id: TaskId,
    /// The address space the task runs in. Threads of one process share an
    /// `MmId`.
    pub mm: MmId,
    /// The core the task is pinned to.
    pub core: CpuId,
    /// Lifecycle state.
    pub state: TaskState,
    /// Result of the task's most recent `MmapAnon`/`MmapFile`/`Mremap` op,
    /// for the workload to pick up.
    pub last_mmap: Option<VaRange>,
    /// Result of the task's most recent `Fork` op.
    pub last_fork: Option<MmId>,
    /// Monotonic count of ops completed, for debugging and workload pacing.
    pub ops_completed: u64,
}

impl Task {
    /// Creates a runnable task pinned to `core` in address space `mm`.
    pub fn new(id: TaskId, mm: MmId, core: CpuId) -> Self {
        Task {
            id,
            mm,
            core,
            state: TaskState::Running,
            last_mmap: None,
            last_fork: None,
            ops_completed: 0,
        }
    }

    /// Whether the task still has work to do.
    pub fn is_live(&self) -> bool {
        self.state != TaskState::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_is_running() {
        let t = Task::new(TaskId(3), MmId(1), CpuId(2));
        assert_eq!(t.state, TaskState::Running);
        assert!(t.is_live());
        assert_eq!(t.id.index(), 3);
        assert!(t.last_mmap.is_none());
    }

    #[test]
    fn done_task_is_not_live() {
        let mut t = Task::new(TaskId(0), MmId(0), CpuId(0));
        t.state = TaskState::Done;
        assert!(!t.is_live());
    }
}
