//! AutoNUMA: periodic address-space scanning and page migration (§2.1,
//! §4.3).
//!
//! A background scanner walks each process' anonymous pages in chunks,
//! turning present PTEs into *NUMA-hint* PTEs (Linux's `change_prot_numa`).
//! The next access takes a hint fault; if a page is touched twice in a row
//! from the same remote node, it migrates there. In stock Linux every
//! hint-unmap is a synchronous shootdown; Latr records a state instead and
//! lets the first sweeping core perform the unmap.

use latr_arch::NodeId;
use latr_mem::{MapKind, MmId, MmStruct, Vpn};
use latr_sim::{Nanos, MILLISECOND};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// AutoNUMA configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaConfig {
    /// Whether balancing runs at all (§6.1 disables it except for the
    /// Fig. 11 experiments).
    pub enabled: bool,
    /// How often each address space is visited.
    pub scan_period: Nanos,
    /// Pages hint-unmapped per visit.
    pub pages_per_scan: usize,
    /// Retry interval for hint faults blocked by an in-flight lazy unmap.
    pub fault_retry: Nanos,
}

impl NumaConfig {
    /// Balancing off.
    pub fn disabled() -> Self {
        NumaConfig {
            enabled: false,
            scan_period: 10 * MILLISECOND,
            pages_per_scan: 0,
            fault_retry: MILLISECOND / 10,
        }
    }

    /// Balancing on with defaults resembling Linux's
    /// `numa_balancing_scan_period_min` scaled to simulation horizons.
    pub fn enabled_default() -> Self {
        NumaConfig {
            enabled: true,
            scan_period: 10 * MILLISECOND,
            pages_per_scan: 64,
            fault_retry: MILLISECOND / 10,
        }
    }
}

/// Counters kept by the NUMA runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaStats {
    /// Hint-unmaps performed (sync or lazy).
    pub hint_unmaps: u64,
    /// Pages migrated.
    pub migrations: u64,
}

/// Internal scanning/migration state (owned by the machine).
#[derive(Debug)]
pub(crate) struct NumaRuntime {
    config: NumaConfig,
    stats: NumaStats,
    cursors: HashMap<u32, u64>,
    fault_history: HashMap<(u32, u64), NodeId>,
}

impl NumaRuntime {
    pub(crate) fn new(config: NumaConfig) -> Self {
        NumaRuntime {
            config,
            stats: NumaStats::default(),
            cursors: HashMap::new(),
            fault_history: HashMap::new(),
        }
    }

    pub(crate) fn config(&self) -> &NumaConfig {
        &self.config
    }

    pub(crate) fn stats(&self) -> &NumaStats {
        &self.stats
    }

    pub(crate) fn note_migration(&mut self) {
        self.stats.migrations += 1;
    }

    /// Picks the next chunk of anonymous, present, un-hinted pages of `mm`
    /// to hint-unmap, advancing (and wrapping) the per-mm cursor.
    pub(crate) fn next_scan_batch(&mut self, mm_id: MmId, mm: &MmStruct) -> Vec<Vpn> {
        if !self.config.enabled || self.config.pages_per_scan == 0 {
            return Vec::new();
        }
        let cursor = self.cursors.entry(mm_id.0).or_insert(0);
        let mut batch = Vec::with_capacity(self.config.pages_per_scan);
        let mut wrapped = false;
        let mut pos = *cursor;
        'outer: loop {
            for vma in mm.vmas.iter() {
                if !matches!(vma.kind, MapKind::Anon) {
                    continue;
                }
                for vpn in vma.range.iter() {
                    if vpn.0 < pos {
                        continue;
                    }
                    if let Some(pte) = mm.page_table.lookup(vpn) {
                        if !pte.flags.numa_hint {
                            batch.push(vpn);
                            if batch.len() >= self.config.pages_per_scan {
                                *cursor = vpn.0 + 1;
                                break 'outer;
                            }
                        }
                    }
                }
            }
            if wrapped || batch.len() >= self.config.pages_per_scan {
                if let Some(last) = batch.last() {
                    *cursor = last.0 + 1;
                } else {
                    *cursor = 0;
                }
                break;
            }
            // Wrap once to the beginning of the address space.
            wrapped = true;
            pos = 0;
        }
        self.stats.hint_unmaps += batch.len() as u64;
        batch
    }

    /// The two-touch migration filter: migrate when the same remote node
    /// faults a page twice in a row (§2.1).
    pub(crate) fn should_migrate(
        &mut self,
        mm: MmId,
        vpn: Vpn,
        accessing: NodeId,
        home: NodeId,
    ) -> bool {
        let key = (mm.0, vpn.0);
        if accessing == home {
            self.fault_history.remove(&key);
            return false;
        }
        match self.fault_history.get(&key) {
            Some(&last) if last == accessing => {
                self.fault_history.remove(&key);
                true
            }
            _ => {
                self.fault_history.insert(key, accessing);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_mem::{Pfn, Prot, PteFlags};

    fn runtime() -> NumaRuntime {
        NumaRuntime::new(NumaConfig {
            enabled: true,
            scan_period: MILLISECOND,
            pages_per_scan: 4,
            fault_retry: 1000,
        })
    }

    fn mm_with_pages(n: u64) -> MmStruct {
        let mut mm = MmStruct::new(MmId(0));
        let range = mm.mmap_anon(n, Prot::READ_WRITE);
        for (i, vpn) in range.iter().enumerate() {
            mm.page_table.map(vpn, Pfn(i as u64), PteFlags::default());
        }
        mm
    }

    #[test]
    fn disabled_scan_yields_nothing() {
        let mut rt = NumaRuntime::new(NumaConfig::disabled());
        let mm = mm_with_pages(8);
        assert!(rt.next_scan_batch(MmId(0), &mm).is_empty());
    }

    #[test]
    fn scan_walks_in_chunks_and_wraps() {
        let mut rt = runtime();
        let mm = mm_with_pages(6);
        let b1 = rt.next_scan_batch(MmId(0), &mm);
        assert_eq!(b1.len(), 4);
        let b2 = rt.next_scan_batch(MmId(0), &mm);
        // Remaining 2 pages, then wraps to the front for 2 more.
        assert_eq!(b2.len(), 4);
        assert_ne!(b1[0], b2[0]);
        assert_eq!(rt.stats().hint_unmaps, 8);
    }

    #[test]
    fn scan_skips_already_hinted_pages() {
        let mut rt = runtime();
        let mut mm = mm_with_pages(4);
        for vpn in mm
            .vmas
            .iter()
            .next()
            .unwrap()
            .range
            .iter()
            .collect::<Vec<_>>()
        {
            mm.page_table.update(vpn, |p| p.flags.numa_hint = true);
        }
        assert!(rt.next_scan_batch(MmId(0), &mm).is_empty());
    }

    #[test]
    fn two_touch_migration_rule() {
        let mut rt = runtime();
        let mm = MmId(0);
        let vpn = Vpn(7);
        // First remote touch: no migration yet.
        assert!(!rt.should_migrate(mm, vpn, NodeId(1), NodeId(0)));
        // Second touch from the same remote node: migrate.
        assert!(rt.should_migrate(mm, vpn, NodeId(1), NodeId(0)));
        // History cleared: next touch starts over.
        assert!(!rt.should_migrate(mm, vpn, NodeId(1), NodeId(0)));
    }

    #[test]
    fn local_touch_resets_history() {
        let mut rt = runtime();
        let mm = MmId(0);
        let vpn = Vpn(7);
        assert!(!rt.should_migrate(mm, vpn, NodeId(1), NodeId(0)));
        // Local access clears the streak.
        assert!(!rt.should_migrate(mm, vpn, NodeId(0), NodeId(0)));
        assert!(!rt.should_migrate(mm, vpn, NodeId(1), NodeId(0)));
        assert!(rt.should_migrate(mm, vpn, NodeId(1), NodeId(0)));
    }

    #[test]
    fn alternating_nodes_never_migrate() {
        let mut rt = runtime();
        let mm = MmId(0);
        let vpn = Vpn(9);
        for i in 0..10 {
            let node = NodeId(1 + (i % 2) as u8);
            assert!(!rt.should_migrate(mm, vpn, node, NodeId(0)));
        }
    }
}
