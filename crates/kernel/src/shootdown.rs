//! The TLB-coherence policy interface and shootdown transactions.
//!
//! Every PTE-invalidating path in the machine funnels through a
//! [`TlbPolicy`]. The policy decides whether remote TLBs are invalidated
//! *synchronously* (IPIs + ACK wait, blocking the initiator — Linux, ABIS,
//! and Latr's fallback) or *lazily* (record state, return immediately —
//! Latr). Synchronous rounds are tracked as [`ShootdownTxn`]s by the
//! machine, which turns them into `IpiDeliver`/`AckArrive` events.

use crate::machine::Machine;
use crate::task::TaskId;
use latr_arch::{CpuId, CpuMask};
use latr_mem::{MmId, Pfn, VaRange, Vpn};
use latr_sim::{Nanos, Time};

/// Identifier of an in-flight synchronous shootdown transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

/// Why a flush is being requested — policies may treat these differently
/// (Table 1: free and migration can be lazy; permission changes cannot).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushKind {
    /// `munmap()` — full unmap of VAs and release of frames.
    Unmap,
    /// `madvise(MADV_FREE/DONTNEED)` — frames freed, VMA retained.
    MadviseFree,
    /// Pages swapped out — frames freed after the (lazy-able) shootdown.
    Swap,
    /// `mprotect()` / CoW / mremap — must be synchronous everywhere.
    Synchronous,
    /// AutoNUMA hint-unmap during address-space scanning.
    NumaHint,
}

/// What the policy decided to do about remote TLBs.
#[derive(Clone, Copy, Debug)]
pub enum FlushOutcome {
    /// The initiator blocks until every target ACKs; the machine has
    /// created transaction `txn` (via [`Machine::begin_sync_shootdown`])
    /// and will complete the op when the last ACK arrives. `local_ns` is
    /// initiator-side CPU work to charge before the wait begins.
    Sync {
        /// The transaction to wait on.
        txn: TxnId,
        /// Initiator-side work before the ACK wait.
        local_ns: Nanos,
    },
    /// No remote work needed now. The op completes after `local_ns`
    /// additional initiator-side work. If `defer_reclaim` is set the
    /// machine must NOT release frames or unblock the VA range — the
    /// policy has taken ownership of reclamation (Latr's lazy lists).
    Deferred {
        /// Initiator-side work (e.g. Latr's state save).
        local_ns: Nanos,
        /// Whether the policy took ownership of freeing frames/VA.
        defer_reclaim: bool,
    },
}

/// A synchronous shootdown round in flight.
#[derive(Clone, Debug)]
pub struct ShootdownTxn {
    /// The transaction id.
    pub id: TxnId,
    /// The initiating core.
    pub initiator: CpuId,
    /// The task blocked on this round (`None` for kernel-context rounds
    /// like the NUMA scanner's).
    pub blocked_task: Option<TaskId>,
    /// The address space whose pages are being invalidated.
    pub mm: MmId,
    /// Remote cores that have not ACKed yet.
    pub pending: CpuMask,
    /// Pages each remote core must invalidate (`INVLPG` each, or a full
    /// flush above the threshold).
    pub pages: Vec<Vpn>,
    /// Frames to release when the round completes (empty when the caller
    /// handles frames itself).
    pub frames_to_release: Vec<Pfn>,
    /// VA range to unblock in the mm when the round completes.
    pub va_to_unblock: Option<VaRange>,
    /// When the round started (for shootdown-latency accounting).
    pub started: Time,
    /// When the initiator finished local work and began waiting.
    pub wait_started: Time,
}

/// A TLB-coherence policy: Linux, ABIS, or Latr.
///
/// All hooks receive the [`Machine`] with the policy itself detached
/// (the machine uses an `Option::take` dance), so policies may freely call
/// machine helpers. The [`Any`](std::any::Any) supertrait lets harnesses
/// downcast the box returned by [`Machine::run`] to inspect policy state.
pub trait TlbPolicy: std::any::Any {
    /// Short name for reports ("linux", "abis", "latr").
    fn name(&self) -> &'static str;

    /// Called when `initiator` invalidated `pages` of `mm` locally and
    /// remote TLBs may be stale. Must decide sync vs lazy. `start_delay`
    /// is the initiator-side work (syscall, PTE clears, local
    /// invalidation) that precedes any remote activity — synchronous
    /// policies pass it (plus their own overhead) to
    /// [`Machine::begin_sync_shootdown`] so IPIs leave only after the
    /// local work completes.
    #[allow(clippy::too_many_arguments)]
    fn flush_others(
        &mut self,
        machine: &mut Machine,
        initiator: CpuId,
        task: Option<TaskId>,
        mm: MmId,
        range: VaRange,
        pages: &[(Vpn, Pfn)],
        kind: FlushKind,
        start_delay: Nanos,
    ) -> FlushOutcome;

    /// Scheduler tick on `cpu`. Returns CPU time to charge to whatever is
    /// running there (Latr's state sweep).
    fn on_sched_tick(&mut self, machine: &mut Machine, cpu: CpuId) -> Nanos {
        let _ = (machine, cpu);
        0
    }

    /// Context switch on `cpu` (same hook semantics as the tick).
    fn on_context_switch(&mut self, machine: &mut Machine, cpu: CpuId) -> Nanos {
        let _ = (machine, cpu);
        0
    }

    /// Periodic background reclamation tick (Latr's kernel thread).
    fn on_reclaim_tick(&mut self, machine: &mut Machine) {
        let _ = machine;
    }

    /// A NUMA node crossed (or recovered across) a free-frame watermark;
    /// `level` is the new pressure. Latr expedites its oldest gated
    /// reclamation below the low watermark and falls back to synchronous
    /// shootdown below the min watermark; synchronous policies have
    /// nothing parked and ignore it.
    fn on_memory_pressure(
        &mut self,
        machine: &mut Machine,
        node: latr_arch::NodeId,
        level: latr_mem::Pressure,
    ) {
        let _ = (machine, node, level);
    }

    /// An allocation on `cpu` found every free list empty (the
    /// direct-reclaim stall). Returns how many frames the policy released
    /// synchronously; the machine charges the stall to the faulting op
    /// and retries the allocation once.
    fn on_alloc_stall(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        node: latr_arch::NodeId,
    ) -> u64 {
        let _ = (machine, cpu, node);
        0
    }

    /// The AutoNUMA scanner wants to hint-unmap `vpn` of `mm` from `cpu`.
    /// Returns `true` if the policy handled it lazily; `false` means the
    /// machine should perform the synchronous hint-unmap itself.
    fn numa_hint_unmap(&mut self, machine: &mut Machine, cpu: CpuId, mm: MmId, vpn: Vpn) -> bool {
        let _ = (machine, cpu, mm, vpn);
        false
    }

    /// Whether a NUMA hint fault on `vpn` may proceed (§4.4: not before
    /// every core has invalidated the lazily-unmapped entry).
    fn numa_fault_may_proceed(&mut self, machine: &mut Machine, mm: MmId, vpn: Vpn) -> bool {
        let _ = (machine, mm, vpn);
        true
    }

    /// A synchronous shootdown transaction completed (last ACK arrived).
    /// Policies that escalate lazy states into targeted sync rounds (the
    /// Latr sweep watchdog) use this to mark the escalated state's bits
    /// clear and retire it.
    fn on_sync_complete(&mut self, machine: &mut Machine, txn: &ShootdownTxn) {
        let _ = (machine, txn);
    }

    /// A policy timer scheduled via [`Machine::schedule_policy_timer`]
    /// fired.
    fn on_timer(&mut self, machine: &mut Machine, token: u64) {
        let _ = (machine, token);
    }

    /// End of simulation; flush any deferred state (Latr drains its lazy
    /// lists so leak checks pass).
    fn on_shutdown(&mut self, machine: &mut Machine) {
        let _ = machine;
    }
}

/// A no-op policy for tests: never flushes remote TLBs and never defers
/// reclamation. **Unsafe as an OS design** — it exists to test the machine
/// plumbing and to demonstrate (in property tests) that the reclamation
/// invariant actually requires a real policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopPolicy;

impl TlbPolicy for NoopPolicy {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn flush_others(
        &mut self,
        _machine: &mut Machine,
        _initiator: CpuId,
        _task: Option<TaskId>,
        _mm: MmId,
        _range: VaRange,
        _pages: &[(Vpn, Pfn)],
        _kind: FlushKind,
        _start_delay: Nanos,
    ) -> FlushOutcome {
        FlushOutcome::Deferred {
            local_ns: 0,
            defer_reclaim: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_policy_defers_nothing() {
        let p = NoopPolicy;
        assert_eq!(p.name(), "noop");
    }

    #[test]
    fn flush_outcome_debug() {
        let d = FlushOutcome::Deferred {
            local_ns: 5,
            defer_reclaim: true,
        };
        assert!(format!("{d:?}").contains("Deferred"));
    }
}
