//! The kernel's event vocabulary.

use crate::shootdown::TxnId;
use crate::task::TaskId;
use latr_arch::CpuId;
use latr_mem::MmId;

/// Everything that can happen in the simulated machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A task is ready to issue its next op.
    TaskStep(TaskId),
    /// A task's in-flight op finishes (unless interrupt debt delays it).
    OpComplete {
        /// Core executing the op.
        cpu: CpuId,
        /// The task whose op completes.
        task: TaskId,
        /// Generation guard: stale completions (superseded by debt
        /// rescheduling) are dropped.
        generation: u64,
    },
    /// Per-core scheduler tick (1 ms, staggered across cores).
    SchedTick(CpuId),
    /// An IPI lands on a core.
    IpiDeliver {
        /// The interrupted core.
        target: CpuId,
        /// The shootdown transaction it belongs to.
        txn: TxnId,
    },
    /// A shootdown ACK reaches the initiating core.
    AckArrive {
        /// The transaction being acknowledged.
        txn: TxnId,
        /// The responding core.
        from: CpuId,
    },
    /// Retransmit timer for a synchronous shootdown: re-multicast to the
    /// cores that have not ACKed yet. Only scheduled when a fault plan is
    /// active — lost IPIs exist only under injection, and fault-free runs
    /// must stay event-for-event identical to builds without this timer.
    TxnRetry(TxnId),
    /// Periodic policy housekeeping (Latr's background reclamation thread).
    ReclaimTick,
    /// The AutoNUMA scanner visits an address space.
    NumaScan(MmId),
    /// A NUMA hint fault retried after being blocked by an in-flight lazy
    /// unmap (§4.4: the fault may proceed only once every CPU has
    /// invalidated).
    NumaFaultRetry {
        /// The faulting task.
        task: TaskId,
        /// The page being faulted.
        vpn: u64,
    },
    /// A policy-requested timer with an opaque token.
    PolicyTimer(u64),
    /// A task parked on an `mmap_sem` acquires the lock.
    LockGranted(TaskId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_compare() {
        assert_eq!(Event::ReclaimTick, Event::ReclaimTick);
        assert_ne!(Event::TaskStep(TaskId(1)), Event::TaskStep(TaskId(2)));
    }
}
