//! Inert marker attributes for the rt concurrency protocol.
//!
//! These attributes change nothing at compile time — each one returns its
//! item untouched. They exist so source code can carry machine-readable
//! protocol annotations that `latr-lint` (the protocol-aware static
//! analyzer, see `crates/lint`) keys its call-graph walks off:
//!
//! * [`macro@hot_path`] marks a function as a hot-path *root*: everything
//!   reachable from it must be allocation-free and may take the
//!   transition lock only via `try_lock` (PROTOCOL.toml, DESIGN.md §13).
//! * [`macro@alloc_ok`] marks a function as a sanctioned cold-path
//!   allocation point: the hot-path walk does not descend into it. Every
//!   use must justify itself in a comment (e.g. "only taken while cores
//!   are excluded").
//!
//! A plain proc-macro pass-through is used instead of
//! `#[register_tool]`-style tool attributes so the annotations work on
//! stable Rust with no extra compiler flags.

use proc_macro::TokenStream;

/// Marks a hot-path root for `latr-lint`'s reachability walks. Inert.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Marks a sanctioned cold-path allocation point: `latr-lint`'s
/// allocation-freedom walk stops here. Inert.
#[proc_macro_attribute]
pub fn alloc_ok(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
