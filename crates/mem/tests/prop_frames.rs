//! Property tests for [`FrameAllocator`] invariants under memory
//! pressure (DESIGN.md §14): random interleavings of allocation,
//! refcounting, and reclamation-debt bookkeeping against a model
//! multiset, driven to exhaustion so the watermark and OOM paths are
//! exercised — not just the happy path.
//!
//! Invariants checked after **every** step:
//!
//! * conservation — per node, `free + allocated == total` and
//!   `debt <= allocated` ([`FrameAllocator::conservation_holds`]);
//! * no double-allocation — a frame handed out while live in the model
//!   is a bug, whatever the pressure;
//! * refcounts equal the model multiset exactly;
//! * pressure is a pure function of the free count and the watermarks;
//! * `min_free` is a true running minimum of the free count.

use latr_arch::NodeId;
use latr_mem::{AllocError, FrameAllocator, Pfn, Pressure};
use proptest::prelude::*;
use std::collections::HashMap;

const NODES: usize = 2;
const PER_NODE: u64 = 24;

/// One scripted step against the allocator.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// `alloc` with cross-node fallback.
    Alloc(u8),
    /// `alloc_exact` — fails with `NodeExhausted` instead of falling back.
    AllocExact(u8),
    /// `inc_ref` the i-th live frame (mod the live count).
    IncRef(u8),
    /// `dec_ref` the i-th live frame (mod the live count).
    DecRef(u8),
    /// Note reclamation debt for one live single-reference frame.
    NoteDebt,
    /// Settle one noted debt.
    SettleDebt,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u8>().prop_map(|n| Step::Alloc(n % NODES as u8)),
        any::<u8>().prop_map(|n| Step::AllocExact(n % NODES as u8)),
        any::<u8>().prop_map(Step::IncRef),
        any::<u8>().prop_map(Step::DecRef),
        Just(Step::NoteDebt),
        Just(Step::SettleDebt),
    ]
}

proptest! {
    #[test]
    fn allocator_invariants_hold_under_pressure(
        steps in prop::collection::vec(step_strategy(), 1..400),
        low in 0u64..12,
        min_gap in 0u64..6,
    ) {
        let min = low.saturating_sub(min_gap);
        let mut fa = FrameAllocator::new(NODES, PER_NODE);
        fa.set_watermarks(low, min);
        // Model: pfn → refcount, plus per-node noted-debt frames.
        let mut refs: HashMap<u64, u32> = HashMap::new();
        let mut order: Vec<Pfn> = Vec::new();
        let mut debt: Vec<Vec<Pfn>> = vec![Vec::new(); NODES];
        let mut min_free_seen = (NODES as u64) * PER_NODE;

        for step in steps {
            match step {
                Step::Alloc(node) => match fa.alloc(NodeId(node)) {
                    Ok(p) => {
                        prop_assert!(
                            !refs.contains_key(&p.0),
                            "double-alloc of {p:?} while live"
                        );
                        refs.insert(p.0, 1);
                        order.push(p);
                    }
                    Err(e) => {
                        prop_assert_eq!(e, AllocError::OutOfMemory { node: NodeId(node) });
                        prop_assert_eq!(refs.len() as u64, NODES as u64 * PER_NODE);
                    }
                },
                Step::AllocExact(node) => match fa.alloc_exact(NodeId(node)) {
                    Ok(p) => {
                        prop_assert!(!refs.contains_key(&p.0));
                        prop_assert_eq!(fa.node_of(p), NodeId(node));
                        refs.insert(p.0, 1);
                        order.push(p);
                    }
                    Err(e) => {
                        prop_assert_eq!(e, AllocError::NodeExhausted { node: NodeId(node) });
                        prop_assert_eq!(fa.free_on_node(NodeId(node)), 0);
                    }
                },
                Step::IncRef(i) => {
                    if !order.is_empty() {
                        let p = order[i as usize % order.len()];
                        let got = fa.inc_ref(p).expect("live frame takes a ref");
                        let r = refs.get_mut(&p.0).expect("model has it");
                        *r += 1;
                        prop_assert_eq!(got, *r);
                        order.push(p);
                    }
                }
                Step::DecRef(i) => {
                    if !order.is_empty() {
                        let idx = i as usize % order.len();
                        let p = order.swap_remove(idx);
                        // Frames with noted debt keep their last reference
                        // until the debt settles (the machine's ledger
                        // settles before releasing) — skip those here.
                        if refs[&p.0] == 1 && debt[fa.node_of(p).0 as usize].contains(&p) {
                            order.push(p);
                            continue;
                        }
                        let got = fa.dec_ref(p).expect("tracked reference");
                        let r = refs.get_mut(&p.0).expect("model has it");
                        *r -= 1;
                        prop_assert_eq!(got, *r);
                        if *r == 0 {
                            refs.remove(&p.0);
                        }
                    }
                }
                Step::NoteDebt => {
                    // Pick a live single-reference frame with no debt yet —
                    // mirrors the machine's `debt_parked` ledger, which
                    // only notes refcount-1 frames once.
                    let cand = order.iter().copied().find(|p| {
                        refs[&p.0] == 1 && !debt[fa.node_of(*p).0 as usize].contains(p)
                    });
                    if let Some(p) = cand {
                        let node = fa.node_of(p);
                        fa.note_debt(node, 1);
                        debt[node.0 as usize].push(p);
                    }
                }
                Step::SettleDebt => {
                    for n in 0..NODES {
                        if let Some(_p) = debt[n].pop() {
                            fa.settle_debt(NodeId(n as u8), 1);
                            break;
                        }
                    }
                }
            }

            // ---- invariants, every step --------------------------------
            prop_assert!(fa.conservation_holds());
            let mut free_total = 0u64;
            for n in 0..NODES {
                let node = NodeId(n as u8);
                let free = fa.free_on_node(node) as u64;
                free_total += free;
                let allocated = fa.allocated_on_node(node);
                prop_assert_eq!(free + allocated, PER_NODE, "node {} totals", n);
                prop_assert_eq!(fa.reclaim_debt(node), debt[n].len() as u64);
                prop_assert!(fa.reclaim_debt(node) <= allocated);
                // Pressure is a pure function of free vs the watermarks.
                let expect = if free < min {
                    Pressure::Min
                } else if free < low {
                    Pressure::Low
                } else {
                    Pressure::Normal
                };
                prop_assert_eq!(fa.pressure(node), expect);
                // Boosting watermarks never lowers pressure.
                prop_assert!(fa.pressure_boosted(node, 4) >= fa.pressure(node));
            }
            prop_assert_eq!(
                fa.reclaim_debt_total(),
                debt.iter().map(|d| d.len() as u64).sum::<u64>()
            );
            // Refcounts match the model multiset exactly.
            prop_assert_eq!(fa.allocated_count(), refs.len());
            for (&pfn, &r) in &refs {
                prop_assert_eq!(fa.refcount(Pfn(pfn)), r);
            }
            // min_free is a true running minimum.
            min_free_seen = min_free_seen.min(free_total);
            let tracked: u64 = (0..NODES)
                .map(|n| fa.min_free_on_node(NodeId(n as u8)))
                .sum();
            prop_assert!(fa.min_free() <= free_total);
            prop_assert!(tracked <= min_free_seen, "per-node minima sum below any global low point");
        }

        // Teardown: settle all debt, drop every reference; nothing leaks.
        for n in 0..NODES {
            let node = NodeId(n as u8);
            let owed = debt[n].len() as u64;
            if owed > 0 {
                fa.settle_debt(node, owed);
            }
        }
        for p in order {
            fa.dec_ref(p).expect("teardown reference");
        }
        prop_assert_eq!(fa.allocated_count(), 0);
        prop_assert_eq!(fa.reclaim_debt_total(), 0);
        prop_assert!(fa.conservation_holds());
    }

    /// Exhaustion round-trip: drain the machine to OOM, verify Min
    /// pressure everywhere, free everything, verify full recovery with
    /// `min_free` pinned at the low point.
    #[test]
    fn exhaustion_and_recovery(seed_order in prop::collection::vec(0u8..NODES as u8, 0..8)) {
        let mut fa = FrameAllocator::new(NODES, PER_NODE);
        fa.set_watermarks(6, 2);
        let mut live = Vec::new();
        // A few seeded allocs in arbitrary node order, then drain.
        for n in seed_order {
            live.push(fa.alloc(NodeId(n)).expect("machine not full yet"));
        }
        while let Ok(p) = fa.alloc(NodeId(0)) {
            live.push(p);
        }
        prop_assert_eq!(live.len() as u64, NODES as u64 * PER_NODE);
        prop_assert_eq!(fa.alloc(NodeId(1)), Err(AllocError::OutOfMemory { node: NodeId(1) }));
        for n in 0..NODES {
            prop_assert_eq!(fa.pressure(NodeId(n as u8)), Pressure::Min);
            prop_assert_eq!(fa.min_free_on_node(NodeId(n as u8)), 0);
        }
        prop_assert!(fa.conservation_holds());
        for p in live {
            fa.dec_ref(p).expect("live frame");
        }
        for n in 0..NODES {
            let node = NodeId(n as u8);
            prop_assert_eq!(fa.pressure(node), Pressure::Normal);
            prop_assert_eq!(fa.free_on_node(node) as u64, PER_NODE);
            // The low point survives recovery — it is the storm's record.
            prop_assert_eq!(fa.min_free_on_node(node), 0);
        }
        prop_assert!(fa.conservation_holds());
    }
}
