//! Shared file-backed pages (the page cache).
//!
//! Apache's request loop `mmap()`s the requested file and `munmap()`s it
//! after serving (§6.2.2) — the file's frames live in the page cache and
//! are *shared* between every worker that has the file mapped. Unmapping
//! drops a reference but the cache keeps its own, so file frames are not
//! freed by munmap; what must still be shot down are the TLB entries.

use crate::addr::Pfn;
use crate::frame::{AllocError, FrameAllocator};
use latr_arch::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a cached file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// The page cache: file pages resident in memory.
///
/// ```
/// use latr_mem::{PageCache, FrameAllocator, FileId};
/// use latr_arch::NodeId;
/// let mut fa = FrameAllocator::new(1, 64);
/// let mut pc = PageCache::new();
/// let f = pc.register_file(4); // 4-page file
/// let a = pc.frame_for(f, 0, NodeId(0), &mut fa).unwrap();
/// let b = pc.frame_for(f, 0, NodeId(0), &mut fa).unwrap();
/// assert_eq!(a, b); // same cached frame
/// ```
#[derive(Debug, Default)]
pub struct PageCache {
    frames: HashMap<(FileId, u64), Pfn>,
    file_pages: HashMap<FileId, u64>,
    next_file: u32,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file of `pages` pages and returns its id.
    pub fn register_file(&mut self, pages: u64) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.file_pages.insert(id, pages);
        id
    }

    /// Size of a file in pages.
    ///
    /// # Panics
    ///
    /// Panics for an unregistered file.
    pub fn file_pages(&self, file: FileId) -> u64 {
        *self
            .file_pages
            .get(&file)
            .unwrap_or_else(|| panic!("unknown file {file:?}"))
    }

    /// Returns the resident frame for `(file, page)`, reading it in (one
    /// frame allocation on `node`, refcount owned by the cache) on first
    /// touch. [`AllocError`] when the machine is out of memory.
    ///
    /// # Panics
    ///
    /// Panics if `page` is beyond the file's size.
    pub fn frame_for(
        &mut self,
        file: FileId,
        page: u64,
        node: NodeId,
        frames: &mut FrameAllocator,
    ) -> Result<Pfn, AllocError> {
        assert!(
            page < self.file_pages(file),
            "page {page} beyond end of {file:?}"
        );
        if let Some(&pfn) = self.frames.get(&(file, page)) {
            return Ok(pfn);
        }
        let pfn = frames.alloc(node)?;
        self.frames.insert((file, page), pfn);
        Ok(pfn)
    }

    /// Whether `(file, page)` is resident.
    pub fn is_resident(&self, file: FileId, page: u64) -> bool {
        self.frames.contains_key(&(file, page))
    }

    /// Evicts one file page, dropping the cache's frame reference. Returns
    /// the frame that backed it, if it was resident.
    pub fn evict(&mut self, file: FileId, page: u64, frames: &mut FrameAllocator) -> Option<Pfn> {
        let pfn = self.frames.remove(&(file, page))?;
        frames
            .dec_ref(pfn)
            .expect("page cache held a reference on its resident frame");
        Some(pfn)
    }

    /// Number of resident pages across all files.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_distinct_ids() {
        let mut pc = PageCache::new();
        let a = pc.register_file(1);
        let b = pc.register_file(2);
        assert_ne!(a, b);
        assert_eq!(pc.file_pages(a), 1);
        assert_eq!(pc.file_pages(b), 2);
    }

    #[test]
    fn first_touch_allocates_then_caches() {
        let mut fa = FrameAllocator::new(1, 8);
        let mut pc = PageCache::new();
        let f = pc.register_file(2);
        let p0 = pc.frame_for(f, 0, NodeId(0), &mut fa).unwrap();
        assert_eq!(fa.total_allocations(), 1);
        let again = pc.frame_for(f, 0, NodeId(0), &mut fa).unwrap();
        assert_eq!(p0, again);
        assert_eq!(fa.total_allocations(), 1);
        let p1 = pc.frame_for(f, 1, NodeId(0), &mut fa).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(pc.resident_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn out_of_bounds_page_panics() {
        let mut fa = FrameAllocator::new(1, 8);
        let mut pc = PageCache::new();
        let f = pc.register_file(1);
        pc.frame_for(f, 1, NodeId(0), &mut fa);
    }

    #[test]
    #[should_panic(expected = "unknown file")]
    fn unknown_file_panics() {
        let pc = PageCache::new();
        pc.file_pages(FileId(99));
    }

    #[test]
    fn evict_releases_frame() {
        let mut fa = FrameAllocator::new(1, 2);
        let mut pc = PageCache::new();
        let f = pc.register_file(1);
        let pfn = pc.frame_for(f, 0, NodeId(0), &mut fa).unwrap();
        assert!(pc.is_resident(f, 0));
        assert_eq!(pc.evict(f, 0, &mut fa), Some(pfn));
        assert!(!pc.is_resident(f, 0));
        assert!(!fa.is_allocated(pfn));
        assert_eq!(pc.evict(f, 0, &mut fa), None);
    }

    #[test]
    fn exhaustion_surfaces_as_typed_error() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut pc = PageCache::new();
        let f = pc.register_file(2);
        assert!(pc.frame_for(f, 0, NodeId(0), &mut fa).is_ok());
        assert_eq!(
            pc.frame_for(f, 1, NodeId(0), &mut fa),
            Err(AllocError::OutOfMemory { node: NodeId(0) })
        );
    }
}
