//! Page-granular address types.
//!
//! The simulation works at 4 KiB page granularity throughout (the machines
//! are configured without transparent huge pages, as in the paper's §6.1).
//! [`Vpn`]/[`Pfn`] are virtual/physical page numbers; [`VirtAddr`]/
//! [`PhysAddr`] are byte addresses; [`VaRange`] is a contiguous,
//! page-aligned virtual range — the unit every unmap/shootdown operates on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Base-2 log of the page size.
pub const PAGE_SHIFT: u64 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// A virtual byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VirtAddr(pub u64);

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

/// A virtual page number (`VirtAddr >> PAGE_SHIFT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Vpn(pub u64);

/// A physical frame number (`PhysAddr >> PAGE_SHIFT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Pfn(pub u64);

impl VirtAddr {
    /// The page containing this address.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Whether the address is page-aligned.
    #[inline]
    pub fn is_page_aligned(self) -> bool {
        self.0 & (PAGE_SIZE - 1) == 0
    }
}

impl PhysAddr {
    /// The frame containing this address.
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }
}

impl Vpn {
    /// The first byte address of this page.
    #[inline]
    pub fn addr(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The page `n` pages after this one.
    #[inline]
    pub fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl Pfn {
    /// The first byte address of this frame.
    #[inline]
    pub fn addr(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl From<VirtAddr> for Vpn {
    fn from(a: VirtAddr) -> Vpn {
        a.vpn()
    }
}

impl From<Vpn> for VirtAddr {
    fn from(v: Vpn) -> VirtAddr {
        v.addr()
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// A contiguous, page-aligned virtual address range: `pages` pages starting
/// at page `start`.
///
/// ```
/// use latr_mem::{VaRange, Vpn};
/// let r = VaRange::new(Vpn(0x100), 3);
/// assert!(r.contains(Vpn(0x102)));
/// assert!(!r.contains(Vpn(0x103)));
/// assert_eq!(r.iter().count(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VaRange {
    /// First page of the range.
    pub start: Vpn,
    /// Number of pages.
    pub pages: u64,
}

impl VaRange {
    /// Creates a range of `pages` pages starting at `start`.
    pub fn new(start: Vpn, pages: u64) -> Self {
        VaRange { start, pages }
    }

    /// One page past the end of the range.
    #[inline]
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }

    /// Whether `vpn` lies inside the range.
    #[inline]
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start && vpn < self.end()
    }

    /// Whether the two ranges share any page. Empty ranges overlap
    /// nothing.
    pub fn overlaps(&self, other: &VaRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Iterates over the pages of the range in order.
    pub fn iter(&self) -> impl Iterator<Item = Vpn> + '_ {
        (self.start.0..self.end().0).map(Vpn)
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersection(&self, other: &VaRange) -> Option<VaRange> {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        if start < end {
            Some(VaRange {
                start,
                pages: end.0 - start.0,
            })
        } else {
            None
        }
    }
}

impl fmt::Debug for VaRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.start.0, self.end().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_roundtrip() {
        let a = VirtAddr(0x1234_5000);
        assert!(a.is_page_aligned());
        assert_eq!(a.vpn(), Vpn(0x1_2345));
        assert_eq!(a.vpn().addr(), a);
        assert!(!VirtAddr(0x1234_5001).is_page_aligned());
    }

    #[test]
    fn phys_roundtrip() {
        let p = PhysAddr(0x9000);
        assert_eq!(p.pfn(), Pfn(9));
        assert_eq!(Pfn(9).addr(), p);
    }

    #[test]
    fn vpn_offset() {
        assert_eq!(Vpn(10).offset(5), Vpn(15));
    }

    #[test]
    fn conversions() {
        let v: Vpn = VirtAddr(0x3000).into();
        assert_eq!(v, Vpn(3));
        let a: VirtAddr = Vpn(3).into();
        assert_eq!(a, VirtAddr(0x3000));
    }

    #[test]
    fn range_contains_and_end() {
        let r = VaRange::new(Vpn(10), 4);
        assert_eq!(r.end(), Vpn(14));
        assert!(r.contains(Vpn(10)));
        assert!(r.contains(Vpn(13)));
        assert!(!r.contains(Vpn(14)));
        assert!(!r.contains(Vpn(9)));
    }

    #[test]
    fn range_overlap_cases() {
        let a = VaRange::new(Vpn(10), 4); // [10,14)
        assert!(a.overlaps(&VaRange::new(Vpn(12), 10)));
        assert!(a.overlaps(&VaRange::new(Vpn(8), 3)));
        assert!(a.overlaps(&VaRange::new(Vpn(10), 4)));
        assert!(!a.overlaps(&VaRange::new(Vpn(14), 2)));
        assert!(!a.overlaps(&VaRange::new(Vpn(6), 4)));
        assert!(!a.overlaps(&VaRange::new(Vpn(12), 0)));
    }

    #[test]
    fn range_intersection() {
        let a = VaRange::new(Vpn(10), 4);
        let b = VaRange::new(Vpn(12), 6);
        assert_eq!(a.intersection(&b), Some(VaRange::new(Vpn(12), 2)));
        assert_eq!(a.intersection(&VaRange::new(Vpn(20), 2)), None);
    }

    #[test]
    fn range_iter_in_order() {
        let pages: Vec<u64> = VaRange::new(Vpn(5), 3).iter().map(|v| v.0).collect();
        assert_eq!(pages, vec![5, 6, 7]);
    }

    #[test]
    fn empty_range() {
        let r = VaRange::new(Vpn(5), 0);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
        assert!(!r.contains(Vpn(5)));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", VirtAddr(0x1000)), "va:0x1000");
        assert_eq!(format!("{:?}", Vpn(0x10)), "vpn:0x10");
        assert_eq!(format!("{:?}", Pfn(0x10)), "pfn:0x10");
        assert_eq!(format!("{:?}", VaRange::new(Vpn(1), 2)), "[0x1..0x3)");
    }
}
