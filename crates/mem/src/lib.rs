//! # latr-mem — memory-management substrate
//!
//! The virtual-memory machinery the simulated kernel (and the Latr policy)
//! operates on:
//!
//! * [`addr`] — page-granular address newtypes ([`VirtAddr`], [`PhysAddr`],
//!   [`Vpn`], [`Pfn`], [`VaRange`]);
//! * [`frame`] — a per-NUMA-node physical frame allocator with reference
//!   counts ([`FrameAllocator`]);
//! * [`page_table`] — a real 4-level, 512-way radix page table with
//!   accessed/dirty bits and NUMA-hint PTEs ([`PageTable`]);
//! * [`vma`] — virtual memory areas and the per-address-space VMA tree
//!   ([`Vma`], [`VmaTree`]);
//! * [`mm`] — the address space (`mm_struct` analogue) tying the above
//!   together, including the *lazy-reclaim block list* Latr uses to keep
//!   virtual addresses out of circulation (§4.2);
//! * [`page_cache`] — file-backed shared pages (what Apache serves).
//!
//! Everything is deterministic, allocation-only simulation state — no
//! unsafe, no real memory mapping.

pub mod addr;
pub mod frame;
pub mod mm;
pub mod page_cache;
pub mod page_table;
pub mod vma;

pub use addr::{Pfn, PhysAddr, VaRange, VirtAddr, Vpn, PAGE_SHIFT, PAGE_SIZE};
pub use frame::{AllocError, FrameAllocator, FreeError, Pressure};
pub use mm::{MmId, MmStruct};
pub use page_cache::{FileId, PageCache};
pub use page_table::{PageTable, Pte, PteFlags};
pub use vma::{MapKind, Prot, Vma, VmaTree};
