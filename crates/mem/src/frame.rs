//! Physical frame allocator.
//!
//! A per-NUMA-node free-list allocator with per-frame reference counts.
//! Reference counting is what enforces the paper's key invariant for free
//! operations: "since the physical page reference count is non-zero, Latr
//! ensures that the physical pages are not reused" (§4.2). A frame returns
//! to the free list only when its last reference is dropped.
//!
//! Frames are numbered node-major: node `n` owns
//! `[n * frames_per_node, (n+1) * frames_per_node)`, so a frame's home node
//! is recoverable from its number — which the AutoNUMA model relies on.
//!
//! # Memory pressure
//!
//! Lazy reclamation parks freed frames for up to an epoch before they
//! return to the free lists, so under allocation storms the pool can drain
//! while perfectly-freed memory sits gated in reclamation queues. The
//! allocator therefore tracks, per node:
//!
//! - **watermarks** (`low` / `min`, à la Linux's zone watermarks): free-count
//!   thresholds the kernel polices to trigger expedited reclamation and, at
//!   the floor, synchronous fallback;
//! - **reclamation debt**: frames that have been fully freed by the VM but
//!   are still parked in a lazy-reclamation queue (refcount still held), so
//!   `free + allocated == total` and `debt <= allocated` hold at all times.
//!
//! Misuse is a typed, recoverable error — [`AllocError`] for exhaustion and
//! [`FreeError`] for refcount underflow / references on free frames —
//! rather than a silent `None` or a panic deep in a sim run.

use crate::addr::Pfn;
use latr_arch::NodeId;
use std::collections::HashMap;
use std::fmt;

/// Why a frame allocation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// Every node's free list is empty (the `alloc` fallback path ran the
    /// whole machine dry). `node` is the node originally requested.
    OutOfMemory {
        /// The node the caller asked for.
        node: NodeId,
    },
    /// The requested node is exhausted and the caller demanded exactness
    /// (`alloc_exact`, the migration path).
    NodeExhausted {
        /// The exhausted node.
        node: NodeId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { node } => {
                write!(
                    f,
                    "out of memory: no free frames on any node (requested {node:?})"
                )
            }
            AllocError::NodeExhausted { node } => {
                write!(f, "node {node:?} exhausted (exact allocation, no fallback)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A refcount operation on a frame that is not allocated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FreeError {
    /// `dec_ref` on a frame whose refcount is already zero — a double free.
    DoubleFree {
        /// The frame freed twice.
        pfn: Pfn,
    },
    /// `inc_ref` on a free frame — taking a reference on memory nobody
    /// owns is always a bug.
    RefOnFree {
        /// The free frame.
        pfn: Pfn,
    },
}

impl fmt::Display for FreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreeError::DoubleFree { pfn } => write!(f, "double free of frame {pfn:?}"),
            FreeError::RefOnFree { pfn } => write!(f, "inc_ref on free frame {pfn:?}"),
        }
    }
}

impl std::error::Error for FreeError {}

/// How far below its watermarks a node's free pool has sunk.
///
/// Ordered: `Normal < Low < Min`, so `max()` across nodes gives the
/// machine's worst pressure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Pressure {
    /// Free frames above the low watermark; no action needed.
    Normal,
    /// Below the low watermark: expedite reclamation before the pool
    /// drains.
    Low,
    /// Below the min watermark: the reserve is being eaten; forward
    /// progress must not depend on lazy timing any more.
    Min,
}

/// The per-node, refcounting physical frame allocator.
///
/// ```
/// use latr_mem::FrameAllocator;
/// use latr_arch::NodeId;
/// let mut fa = FrameAllocator::new(2, 1024);
/// let f = fa.alloc(NodeId(1)).unwrap();
/// assert_eq!(fa.node_of(f), NodeId(1));
/// assert_eq!(fa.refcount(f), 1);
/// fa.inc_ref(f).unwrap();
/// assert_eq!(fa.dec_ref(f).unwrap(), 1); // still referenced
/// assert_eq!(fa.dec_ref(f).unwrap(), 0); // now free again
/// assert!(!fa.is_allocated(f));
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    frames_per_node: u64,
    free: Vec<Vec<Pfn>>,
    refcounts: HashMap<Pfn, u32>,
    /// Frames currently allocated on each node (`free + allocated == total`).
    allocated: Vec<u64>,
    /// Freed-but-parked frames per node: the VM dropped its last mapping but
    /// a lazy-reclamation queue still holds the final reference.
    debt: Vec<u64>,
    /// Low-water mark of each node's free list over the allocator's life.
    min_free: Vec<u64>,
    low_watermark: u64,
    min_watermark: u64,
    allocations: u64,
    frees: u64,
}

impl FrameAllocator {
    /// Creates an allocator with `nodes` NUMA nodes of `frames_per_node`
    /// frames each. Watermarks default to zero (pressure never reported);
    /// see [`FrameAllocator::set_watermarks`].
    ///
    /// # Panics
    ///
    /// Panics if there are no nodes or no frames.
    pub fn new(nodes: usize, frames_per_node: u64) -> Self {
        assert!(
            nodes > 0 && frames_per_node > 0,
            "allocator must own memory"
        );
        let free: Vec<Vec<Pfn>> = (0..nodes)
            .map(|n| {
                // Stack ordered so low frame numbers pop first; purely
                // cosmetic but keeps runs deterministic and debuggable.
                let base = n as u64 * frames_per_node;
                (0..frames_per_node).rev().map(|i| Pfn(base + i)).collect()
            })
            .collect();
        FrameAllocator {
            frames_per_node,
            free,
            refcounts: HashMap::new(),
            allocated: vec![0; nodes],
            debt: vec![0; nodes],
            min_free: vec![frames_per_node; nodes],
            low_watermark: 0,
            min_watermark: 0,
            allocations: 0,
            frees: 0,
        }
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.free.len()
    }

    /// Frames each node owns.
    pub fn frames_per_node(&self) -> u64 {
        self.frames_per_node
    }

    /// Sets the per-node low/min free-frame watermarks.
    ///
    /// # Panics
    ///
    /// Panics if `low < min` — the low watermark is the early-warning line
    /// and must sit at or above the floor.
    pub fn set_watermarks(&mut self, low: u64, min: u64) {
        assert!(low >= min, "low watermark {low} below min watermark {min}");
        self.low_watermark = low;
        self.min_watermark = min;
    }

    /// The low (early-warning) watermark.
    pub fn low_watermark(&self) -> u64 {
        self.low_watermark
    }

    /// The min (reserve floor) watermark.
    pub fn min_watermark(&self) -> u64 {
        self.min_watermark
    }

    /// Pressure on `node` with the watermarks raised by `boost` frames
    /// (fault injection flaps watermarks this way; pass 0 normally).
    pub fn pressure_boosted(&self, node: NodeId, boost: u64) -> Pressure {
        let free = self.free_on_node(node) as u64;
        if free < self.min_watermark.saturating_add(boost) {
            Pressure::Min
        } else if free < self.low_watermark.saturating_add(boost) {
            Pressure::Low
        } else {
            Pressure::Normal
        }
    }

    /// Pressure on `node` against the configured watermarks.
    pub fn pressure(&self, node: NodeId) -> Pressure {
        self.pressure_boosted(node, 0)
    }

    /// The home node of a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is outside the machine.
    pub fn node_of(&self, pfn: Pfn) -> NodeId {
        let node = pfn.0 / self.frames_per_node;
        assert!(
            (node as usize) < self.free.len(),
            "frame {pfn:?} outside machine"
        );
        NodeId(node as u8)
    }

    /// Allocates a frame on `node` with reference count 1, falling back to
    /// the other nodes in order if it is exhausted. Fails with
    /// [`AllocError::OutOfMemory`] when the whole machine is out of frames.
    pub fn alloc(&mut self, node: NodeId) -> Result<Pfn, AllocError> {
        let n = node.0 as usize;
        assert!(n < self.free.len(), "no such node {node:?}");
        let order = std::iter::once(n).chain((0..self.free.len()).filter(|&i| i != n));
        for candidate in order {
            if let Some(pfn) = self.free[candidate].pop() {
                self.note_alloc(candidate, pfn);
                return Ok(pfn);
            }
        }
        Err(AllocError::OutOfMemory { node })
    }

    /// Allocates a frame strictly on `node`; [`AllocError::NodeExhausted`]
    /// if that node is out (used by the migration path, which aborts rather
    /// than migrating to a different node).
    pub fn alloc_exact(&mut self, node: NodeId) -> Result<Pfn, AllocError> {
        let n = node.0 as usize;
        assert!(n < self.free.len(), "no such node {node:?}");
        match self.free[n].pop() {
            Some(pfn) => {
                self.note_alloc(n, pfn);
                Ok(pfn)
            }
            None => Err(AllocError::NodeExhausted { node }),
        }
    }

    fn note_alloc(&mut self, node: usize, pfn: Pfn) {
        self.refcounts.insert(pfn, 1);
        self.allocated[node] += 1;
        self.allocations += 1;
        let free = self.free[node].len() as u64;
        if free < self.min_free[node] {
            self.min_free[node] = free;
        }
    }

    /// Current reference count of a frame (0 when free).
    pub fn refcount(&self, pfn: Pfn) -> u32 {
        self.refcounts.get(&pfn).copied().unwrap_or(0)
    }

    /// Whether a frame is currently allocated.
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        self.refcount(pfn) > 0
    }

    /// Adds a reference (page shared by another mapping). Referencing a
    /// free frame is a hard [`FreeError::RefOnFree`]. Returns the new count.
    pub fn inc_ref(&mut self, pfn: Pfn) -> Result<u32, FreeError> {
        match self.refcounts.get_mut(&pfn) {
            Some(rc) => {
                *rc += 1;
                Ok(*rc)
            }
            None => Err(FreeError::RefOnFree { pfn }),
        }
    }

    /// Drops a reference; when the count reaches zero the frame returns to
    /// its home node's free list. Returns the new count. Dropping a
    /// reference on a free frame is a hard [`FreeError::DoubleFree`].
    pub fn dec_ref(&mut self, pfn: Pfn) -> Result<u32, FreeError> {
        let rc = self
            .refcounts
            .get_mut(&pfn)
            .ok_or(FreeError::DoubleFree { pfn })?;
        *rc -= 1;
        if *rc == 0 {
            self.refcounts.remove(&pfn);
            let node = self.node_of(pfn);
            self.free[node.0 as usize].push(pfn);
            self.allocated[node.0 as usize] -= 1;
            self.frees += 1;
            Ok(0)
        } else {
            Ok(*rc)
        }
    }

    /// Records `frames` frames on `node` entering lazy reclamation: freed
    /// by the VM, final reference parked in a deferred queue.
    ///
    /// # Panics
    ///
    /// Panics if debt would exceed the node's allocated frames — debt is a
    /// subset of allocations by construction.
    pub fn note_debt(&mut self, node: NodeId, frames: u64) {
        let n = node.0 as usize;
        self.debt[n] += frames;
        assert!(
            self.debt[n] <= self.allocated[n],
            "reclamation debt {} exceeds allocated {} on {node:?}",
            self.debt[n],
            self.allocated[n],
        );
    }

    /// Records `frames` frames on `node` leaving lazy reclamation (the
    /// parked reference was dropped or re-owned).
    ///
    /// # Panics
    ///
    /// Panics on underflow — settling debt that was never noted.
    pub fn settle_debt(&mut self, node: NodeId, frames: u64) {
        let n = node.0 as usize;
        assert!(
            self.debt[n] >= frames,
            "settling {frames} frames of debt on {node:?} but only {} noted",
            self.debt[n],
        );
        self.debt[n] -= frames;
    }

    /// Frames on `node` currently parked in lazy reclamation.
    pub fn reclaim_debt(&self, node: NodeId) -> u64 {
        self.debt[node.0 as usize]
    }

    /// Machine-wide reclamation debt.
    pub fn reclaim_debt_total(&self) -> u64 {
        self.debt.iter().sum()
    }

    /// Frames currently free on `node`.
    pub fn free_on_node(&self, node: NodeId) -> usize {
        self.free[node.0 as usize].len()
    }

    /// Frames currently allocated on `node` (including reclamation debt).
    pub fn allocated_on_node(&self, node: NodeId) -> u64 {
        self.allocated[node.0 as usize]
    }

    /// The fewest free frames `node` has ever had.
    pub fn min_free_on_node(&self, node: NodeId) -> u64 {
        self.min_free[node.0 as usize]
    }

    /// The fewest free frames any node has ever had.
    pub fn min_free(&self) -> u64 {
        self.min_free.iter().copied().min().unwrap_or(0)
    }

    /// Checks per-node conservation: `free + allocated == total` and
    /// `debt <= allocated` on every node. The proptest suite leans on this.
    pub fn conservation_holds(&self) -> bool {
        (0..self.free.len()).all(|n| {
            self.free[n].len() as u64 + self.allocated[n] == self.frames_per_node
                && self.debt[n] <= self.allocated[n]
        })
    }

    /// Total allocations performed.
    pub fn total_allocations(&self) -> u64 {
        self.allocations
    }

    /// Total frames fully freed.
    pub fn total_frees(&self) -> u64 {
        self.frees
    }

    /// Number of currently allocated frames.
    pub fn allocated_count(&self) -> usize {
        self.refcounts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_prefers_requested_node() {
        let mut fa = FrameAllocator::new(2, 8);
        let f = fa.alloc(NodeId(1)).unwrap();
        assert_eq!(fa.node_of(f), NodeId(1));
        assert_eq!(fa.free_on_node(NodeId(1)), 7);
        assert_eq!(fa.free_on_node(NodeId(0)), 8);
    }

    #[test]
    fn alloc_falls_back_when_node_full() {
        let mut fa = FrameAllocator::new(2, 2);
        let _a = fa.alloc(NodeId(0)).unwrap();
        let _b = fa.alloc(NodeId(0)).unwrap();
        let c = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.node_of(c), NodeId(1));
    }

    #[test]
    fn alloc_exact_refuses_fallback() {
        let mut fa = FrameAllocator::new(2, 1);
        let _a = fa.alloc_exact(NodeId(0)).unwrap();
        assert_eq!(
            fa.alloc_exact(NodeId(0)),
            Err(AllocError::NodeExhausted { node: NodeId(0) })
        );
        assert!(fa.alloc_exact(NodeId(1)).is_ok());
    }

    #[test]
    fn machine_exhaustion_is_typed() {
        let mut fa = FrameAllocator::new(2, 1);
        assert!(fa.alloc(NodeId(0)).is_ok());
        assert!(fa.alloc(NodeId(0)).is_ok());
        assert_eq!(
            fa.alloc(NodeId(0)),
            Err(AllocError::OutOfMemory { node: NodeId(0) })
        );
    }

    #[test]
    fn refcount_lifecycle() {
        let mut fa = FrameAllocator::new(1, 4);
        let f = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.refcount(f), 1);
        assert_eq!(fa.inc_ref(f).unwrap(), 2);
        assert_eq!(fa.inc_ref(f).unwrap(), 3);
        assert_eq!(fa.refcount(f), 3);
        assert_eq!(fa.dec_ref(f).unwrap(), 2);
        assert_eq!(fa.dec_ref(f).unwrap(), 1);
        assert!(fa.is_allocated(f));
        assert_eq!(fa.dec_ref(f).unwrap(), 0);
        assert!(!fa.is_allocated(f));
        assert_eq!(fa.free_on_node(NodeId(0)), 4);
    }

    #[test]
    fn freed_frame_is_reusable() {
        let mut fa = FrameAllocator::new(1, 1);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.dec_ref(f).unwrap();
        let g = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(f, g);
        assert_eq!(fa.total_allocations(), 2);
        assert_eq!(fa.total_frees(), 1);
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut fa = FrameAllocator::new(1, 1);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.dec_ref(f).unwrap();
        assert_eq!(fa.dec_ref(f), Err(FreeError::DoubleFree { pfn: f }));
        // The failed free must not have corrupted the free list.
        assert_eq!(fa.free_on_node(NodeId(0)), 1);
        assert!(fa.conservation_holds());
    }

    #[test]
    fn inc_ref_on_free_is_a_typed_error() {
        let mut fa = FrameAllocator::new(1, 1);
        assert_eq!(
            fa.inc_ref(Pfn(0)),
            Err(FreeError::RefOnFree { pfn: Pfn(0) })
        );
    }

    #[test]
    fn node_of_is_node_major() {
        let fa = FrameAllocator::new(4, 100);
        assert_eq!(fa.node_of(Pfn(0)), NodeId(0));
        assert_eq!(fa.node_of(Pfn(99)), NodeId(0));
        assert_eq!(fa.node_of(Pfn(100)), NodeId(1));
        assert_eq!(fa.node_of(Pfn(399)), NodeId(3));
    }

    #[test]
    fn allocated_count_tracks_live_frames() {
        let mut fa = FrameAllocator::new(1, 8);
        let a = fa.alloc(NodeId(0)).unwrap();
        let _b = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.allocated_count(), 2);
        fa.dec_ref(a).unwrap();
        assert_eq!(fa.allocated_count(), 1);
    }

    #[test]
    fn watermarks_classify_pressure() {
        let mut fa = FrameAllocator::new(1, 10);
        fa.set_watermarks(4, 2);
        assert_eq!(fa.pressure(NodeId(0)), Pressure::Normal);
        for _ in 0..6 {
            fa.alloc(NodeId(0)).unwrap();
        }
        // 4 free == low watermark: not yet below it.
        assert_eq!(fa.pressure(NodeId(0)), Pressure::Normal);
        fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.pressure(NodeId(0)), Pressure::Low);
        fa.alloc(NodeId(0)).unwrap();
        fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.pressure(NodeId(0)), Pressure::Min);
        // A boost (watermark flap) raises the bar.
        assert_eq!(fa.pressure_boosted(NodeId(0), 0), Pressure::Min);
        fa.set_watermarks(0, 0);
        assert_eq!(fa.pressure(NodeId(0)), Pressure::Normal);
        assert_eq!(fa.pressure_boosted(NodeId(0), 5), Pressure::Min);
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn inverted_watermarks_rejected() {
        let mut fa = FrameAllocator::new(1, 10);
        fa.set_watermarks(1, 2);
    }

    #[test]
    fn debt_and_conservation() {
        let mut fa = FrameAllocator::new(2, 4);
        let a = fa.alloc(NodeId(0)).unwrap();
        let b = fa.alloc(NodeId(0)).unwrap();
        assert!(fa.conservation_holds());
        // Both frames freed by the VM but parked in lazy reclamation: the
        // queue holds the final reference, the allocator holds the debt.
        fa.note_debt(NodeId(0), 2);
        assert_eq!(fa.reclaim_debt(NodeId(0)), 2);
        assert_eq!(fa.reclaim_debt(NodeId(1)), 0);
        assert_eq!(fa.reclaim_debt_total(), 2);
        assert!(fa.conservation_holds());
        // Reclamation releases them: debt settles, refs drop, frames free.
        fa.settle_debt(NodeId(0), 2);
        fa.dec_ref(a).unwrap();
        fa.dec_ref(b).unwrap();
        assert_eq!(fa.reclaim_debt_total(), 0);
        assert_eq!(fa.free_on_node(NodeId(0)), 4);
        assert!(fa.conservation_holds());
    }

    #[test]
    #[should_panic(expected = "exceeds allocated")]
    fn debt_cannot_exceed_allocations() {
        let mut fa = FrameAllocator::new(1, 4);
        let _a = fa.alloc(NodeId(0)).unwrap();
        fa.note_debt(NodeId(0), 2);
    }

    #[test]
    #[should_panic(expected = "settling")]
    fn settling_unnoted_debt_panics() {
        let mut fa = FrameAllocator::new(1, 4);
        fa.settle_debt(NodeId(0), 1);
    }

    #[test]
    fn min_free_tracks_low_water() {
        let mut fa = FrameAllocator::new(1, 4);
        assert_eq!(fa.min_free(), 4);
        let a = fa.alloc(NodeId(0)).unwrap();
        let b = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.min_free_on_node(NodeId(0)), 2);
        fa.dec_ref(a).unwrap();
        fa.dec_ref(b).unwrap();
        // Frees do not erase the low-water mark.
        assert_eq!(fa.min_free(), 2);
    }
}
