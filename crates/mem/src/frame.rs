//! Physical frame allocator.
//!
//! A per-NUMA-node free-list allocator with per-frame reference counts.
//! Reference counting is what enforces the paper's key invariant for free
//! operations: "since the physical page reference count is non-zero, Latr
//! ensures that the physical pages are not reused" (§4.2). A frame returns
//! to the free list only when its last reference is dropped.
//!
//! Frames are numbered node-major: node `n` owns
//! `[n * frames_per_node, (n+1) * frames_per_node)`, so a frame's home node
//! is recoverable from its number — which the AutoNUMA model relies on.

use crate::addr::Pfn;
use latr_arch::NodeId;
use std::collections::HashMap;

/// The per-node, refcounting physical frame allocator.
///
/// ```
/// use latr_mem::FrameAllocator;
/// use latr_arch::NodeId;
/// let mut fa = FrameAllocator::new(2, 1024);
/// let f = fa.alloc(NodeId(1)).unwrap();
/// assert_eq!(fa.node_of(f), NodeId(1));
/// assert_eq!(fa.refcount(f), 1);
/// fa.inc_ref(f);
/// assert_eq!(fa.dec_ref(f), 1); // still referenced
/// assert_eq!(fa.dec_ref(f), 0); // now free again
/// assert!(!fa.is_allocated(f));
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    frames_per_node: u64,
    free: Vec<Vec<Pfn>>,
    refcounts: HashMap<Pfn, u32>,
    allocations: u64,
    frees: u64,
}

impl FrameAllocator {
    /// Creates an allocator with `nodes` NUMA nodes of `frames_per_node`
    /// frames each.
    ///
    /// # Panics
    ///
    /// Panics if there are no nodes or no frames.
    pub fn new(nodes: usize, frames_per_node: u64) -> Self {
        assert!(
            nodes > 0 && frames_per_node > 0,
            "allocator must own memory"
        );
        let free = (0..nodes)
            .map(|n| {
                // Stack ordered so low frame numbers pop first; purely
                // cosmetic but keeps runs deterministic and debuggable.
                let base = n as u64 * frames_per_node;
                (0..frames_per_node).rev().map(|i| Pfn(base + i)).collect()
            })
            .collect();
        FrameAllocator {
            frames_per_node,
            free,
            refcounts: HashMap::new(),
            allocations: 0,
            frees: 0,
        }
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.free.len()
    }

    /// The home node of a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is outside the machine.
    pub fn node_of(&self, pfn: Pfn) -> NodeId {
        let node = pfn.0 / self.frames_per_node;
        assert!(
            (node as usize) < self.free.len(),
            "frame {pfn:?} outside machine"
        );
        NodeId(node as u8)
    }

    /// Allocates a frame on `node` with reference count 1, falling back to
    /// the other nodes in order if it is exhausted. Returns `None` when the
    /// whole machine is out of memory.
    pub fn alloc(&mut self, node: NodeId) -> Option<Pfn> {
        let n = node.0 as usize;
        assert!(n < self.free.len(), "no such node {node:?}");
        let order = std::iter::once(n).chain((0..self.free.len()).filter(|&i| i != n));
        for candidate in order {
            if let Some(pfn) = self.free[candidate].pop() {
                self.refcounts.insert(pfn, 1);
                self.allocations += 1;
                return Some(pfn);
            }
        }
        None
    }

    /// Allocates a frame strictly on `node`; `None` if that node is
    /// exhausted (used by the migration path, which aborts rather than
    /// migrating to a different node).
    pub fn alloc_exact(&mut self, node: NodeId) -> Option<Pfn> {
        let n = node.0 as usize;
        assert!(n < self.free.len(), "no such node {node:?}");
        let pfn = self.free[n].pop()?;
        self.refcounts.insert(pfn, 1);
        self.allocations += 1;
        Some(pfn)
    }

    /// Current reference count of a frame (0 when free).
    pub fn refcount(&self, pfn: Pfn) -> u32 {
        self.refcounts.get(&pfn).copied().unwrap_or(0)
    }

    /// Whether a frame is currently allocated.
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        self.refcount(pfn) > 0
    }

    /// Adds a reference (page shared by another mapping).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free — taking a reference on a free frame is
    /// always a bug.
    pub fn inc_ref(&mut self, pfn: Pfn) {
        let rc = self
            .refcounts
            .get_mut(&pfn)
            .unwrap_or_else(|| panic!("inc_ref on free frame {pfn:?}"));
        *rc += 1;
    }

    /// Drops a reference; when the count reaches zero the frame returns to
    /// its home node's free list. Returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free (double free).
    pub fn dec_ref(&mut self, pfn: Pfn) -> u32 {
        let rc = self
            .refcounts
            .get_mut(&pfn)
            .unwrap_or_else(|| panic!("dec_ref on free frame {pfn:?} (double free?)"));
        *rc -= 1;
        if *rc == 0 {
            self.refcounts.remove(&pfn);
            let node = self.node_of(pfn);
            self.free[node.0 as usize].push(pfn);
            self.frees += 1;
            0
        } else {
            *rc
        }
    }

    /// Frames currently free on `node`.
    pub fn free_on_node(&self, node: NodeId) -> usize {
        self.free[node.0 as usize].len()
    }

    /// Total allocations performed.
    pub fn total_allocations(&self) -> u64 {
        self.allocations
    }

    /// Total frames fully freed.
    pub fn total_frees(&self) -> u64 {
        self.frees
    }

    /// Number of currently allocated frames.
    pub fn allocated_count(&self) -> usize {
        self.refcounts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_prefers_requested_node() {
        let mut fa = FrameAllocator::new(2, 8);
        let f = fa.alloc(NodeId(1)).unwrap();
        assert_eq!(fa.node_of(f), NodeId(1));
        assert_eq!(fa.free_on_node(NodeId(1)), 7);
        assert_eq!(fa.free_on_node(NodeId(0)), 8);
    }

    #[test]
    fn alloc_falls_back_when_node_full() {
        let mut fa = FrameAllocator::new(2, 2);
        let _a = fa.alloc(NodeId(0)).unwrap();
        let _b = fa.alloc(NodeId(0)).unwrap();
        let c = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.node_of(c), NodeId(1));
    }

    #[test]
    fn alloc_exact_refuses_fallback() {
        let mut fa = FrameAllocator::new(2, 1);
        let _a = fa.alloc_exact(NodeId(0)).unwrap();
        assert!(fa.alloc_exact(NodeId(0)).is_none());
        assert!(fa.alloc_exact(NodeId(1)).is_some());
    }

    #[test]
    fn machine_exhaustion_returns_none() {
        let mut fa = FrameAllocator::new(2, 1);
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_none());
    }

    #[test]
    fn refcount_lifecycle() {
        let mut fa = FrameAllocator::new(1, 4);
        let f = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.refcount(f), 1);
        fa.inc_ref(f);
        fa.inc_ref(f);
        assert_eq!(fa.refcount(f), 3);
        assert_eq!(fa.dec_ref(f), 2);
        assert_eq!(fa.dec_ref(f), 1);
        assert!(fa.is_allocated(f));
        assert_eq!(fa.dec_ref(f), 0);
        assert!(!fa.is_allocated(f));
        assert_eq!(fa.free_on_node(NodeId(0)), 4);
    }

    #[test]
    fn freed_frame_is_reusable() {
        let mut fa = FrameAllocator::new(1, 1);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.dec_ref(f);
        let g = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(f, g);
        assert_eq!(fa.total_allocations(), 2);
        assert_eq!(fa.total_frees(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fa = FrameAllocator::new(1, 1);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.dec_ref(f);
        fa.dec_ref(f);
    }

    #[test]
    #[should_panic(expected = "inc_ref on free frame")]
    fn inc_ref_on_free_panics() {
        let mut fa = FrameAllocator::new(1, 1);
        fa.inc_ref(Pfn(0));
    }

    #[test]
    fn node_of_is_node_major() {
        let fa = FrameAllocator::new(4, 100);
        assert_eq!(fa.node_of(Pfn(0)), NodeId(0));
        assert_eq!(fa.node_of(Pfn(99)), NodeId(0));
        assert_eq!(fa.node_of(Pfn(100)), NodeId(1));
        assert_eq!(fa.node_of(Pfn(399)), NodeId(3));
    }

    #[test]
    fn allocated_count_tracks_live_frames() {
        let mut fa = FrameAllocator::new(1, 8);
        let a = fa.alloc(NodeId(0)).unwrap();
        let _b = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.allocated_count(), 2);
        fa.dec_ref(a);
        assert_eq!(fa.allocated_count(), 1);
    }
}
