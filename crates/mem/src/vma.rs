//! Virtual memory areas (VMAs) and the per-address-space VMA tree.
//!
//! A [`Vma`] describes one contiguous mapping (anonymous or file-backed)
//! with its protection. The [`VmaTree`] keeps VMAs sorted and
//! non-overlapping, supports containment/overlap queries, and implements
//! the splitting semantics of partial `munmap`/`mprotect`: removing or
//! re-protecting the middle of a VMA leaves correctly trimmed pieces
//! behind.

use crate::addr::{VaRange, Vpn};
use crate::page_cache::FileId;
use serde::{Deserialize, Serialize};

/// Mapping protection bits (a subset of `mmap`'s `PROT_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Prot {
    /// Read-only protection.
    pub const READ: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read-write protection.
    pub const READ_WRITE: Prot = Prot {
        read: true,
        write: true,
    };
}

/// What backs a mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapKind {
    /// Anonymous memory (heap, scratch buffers).
    Anon,
    /// A shared file mapping: page `i` of the VMA is page
    /// `offset + i` of the file.
    File {
        /// Which file.
        file: FileId,
        /// First file page mapped.
        offset: u64,
    },
}

/// One virtual memory area.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// The pages this VMA covers.
    pub range: VaRange,
    /// Anonymous or file-backed.
    pub kind: MapKind,
    /// Protection.
    pub prot: Prot,
}

impl Vma {
    /// For file VMAs, the file page backing `vpn`.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is outside the VMA.
    pub fn file_page_of(&self, vpn: Vpn) -> Option<(FileId, u64)> {
        assert!(self.range.contains(vpn), "{vpn:?} outside {:?}", self.range);
        match self.kind {
            MapKind::Anon => None,
            MapKind::File { file, offset } => Some((file, offset + (vpn.0 - self.range.start.0))),
        }
    }

    /// The sub-VMA covering `sub`, which must lie inside this VMA. File
    /// offsets are adjusted.
    fn slice(&self, sub: VaRange) -> Vma {
        debug_assert!(sub.start >= self.range.start && sub.end() <= self.range.end());
        let kind = match self.kind {
            MapKind::Anon => MapKind::Anon,
            MapKind::File { file, offset } => MapKind::File {
                file,
                offset: offset + (sub.start.0 - self.range.start.0),
            },
        };
        Vma {
            range: sub,
            kind,
            prot: self.prot,
        }
    }
}

/// The sorted, non-overlapping set of VMAs of one address space.
///
/// ```
/// use latr_mem::{VmaTree, Vma, VaRange, Vpn, MapKind, Prot};
/// let mut t = VmaTree::new();
/// t.insert(Vma { range: VaRange::new(Vpn(10), 10), kind: MapKind::Anon, prot: Prot::READ_WRITE });
/// assert!(t.find(Vpn(15)).is_some());
/// // Punch a hole in the middle: the VMA splits in two.
/// let removed = t.remove_range(&VaRange::new(Vpn(13), 4));
/// assert_eq!(removed.len(), 1);
/// assert!(t.find(Vpn(12)).is_some());
/// assert!(t.find(Vpn(14)).is_none());
/// assert!(t.find(Vpn(18)).is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct VmaTree {
    // Sorted by first page. A flat vector beats a BTreeMap here: address
    // spaces hold a handful of VMAs, binary search is cache-dense, and —
    // unlike a BTreeMap, which frees its root when the map empties — the
    // vector retains its capacity, so the map/unmap steady state performs
    // no heap allocation.
    vmas: Vec<Vma>,
}

impl VmaTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// Whether the tree has no VMAs.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Index of the first VMA starting at or after `vpn`.
    fn lower_bound(&self, vpn: u64) -> usize {
        self.vmas.partition_point(|v| v.range.start.0 < vpn)
    }

    /// The window `[lo, hi)` of VMAs overlapping `range` (every entry in
    /// the window overlaps; `range` must be non-empty).
    fn overlap_window(&self, range: &VaRange) -> (usize, usize) {
        let mut lo = self.lower_bound(range.start.0);
        // A VMA starting before the range may still reach into it.
        if lo > 0 && self.vmas[lo - 1].range.overlaps(range) {
            lo -= 1;
        }
        let hi = self.lower_bound(range.end().0);
        (lo, hi)
    }

    /// The VMA containing `vpn`, if any.
    pub fn find(&self, vpn: Vpn) -> Option<&Vma> {
        let i = self.vmas.partition_point(|v| v.range.start.0 <= vpn.0);
        self.vmas[..i].last().filter(|v| v.range.contains(vpn))
    }

    /// All VMAs overlapping `range`, in address order.
    pub fn overlapping(&self, range: &VaRange) -> Vec<Vma> {
        if range.is_empty() {
            return Vec::new();
        }
        let (lo, hi) = self.overlap_window(range);
        self.vmas[lo..hi].to_vec()
    }

    /// Whether any VMA overlaps `range`. Allocation-free.
    pub fn is_range_free(&self, range: &VaRange) -> bool {
        if range.is_empty() {
            return true;
        }
        let (lo, hi) = self.overlap_window(range);
        lo == hi
    }

    /// Inserts a VMA.
    ///
    /// # Panics
    ///
    /// Panics if the VMA is empty or overlaps an existing VMA.
    pub fn insert(&mut self, vma: Vma) {
        assert!(!vma.range.is_empty(), "empty VMA");
        assert!(
            self.is_range_free(&vma.range),
            "VMA {:?} overlaps existing mapping",
            vma.range
        );
        let pos = self.lower_bound(vma.range.start.0);
        self.vmas.insert(pos, vma);
    }

    /// Removes `range` from the tree, splitting boundary VMAs as needed.
    /// Returns the removed pieces (each piece is the intersection of one
    /// VMA with `range`, with file offsets adjusted).
    pub fn remove_range(&mut self, range: &VaRange) -> Vec<Vma> {
        let mut removed = Vec::new();
        self.remove_range_into(range, &mut removed);
        removed
    }

    /// [`remove_range`](Self::remove_range) appending the removed pieces
    /// to `out` instead of allocating — the unmap hot path passes a scratch
    /// vector whose capacity survives across calls.
    pub fn remove_range_into(&mut self, range: &VaRange, out: &mut Vec<Vma>) {
        if range.is_empty() {
            return;
        }
        let (lo, hi) = self.overlap_window(range);
        if lo == hi {
            return;
        }
        // Boundary remainders: at most the leftmost victim keeps a left
        // piece and the rightmost keeps a right piece.
        let mut left: Option<Vma> = None;
        let mut right: Option<Vma> = None;
        for &vma in &self.vmas[lo..hi] {
            if vma.range.start < range.start {
                let keep = VaRange {
                    start: vma.range.start,
                    pages: range.start.0 - vma.range.start.0,
                };
                left = Some(vma.slice(keep));
            }
            if vma.range.end() > range.end() {
                let keep = VaRange {
                    start: range.end(),
                    pages: vma.range.end().0 - range.end().0,
                };
                right = Some(vma.slice(keep));
            }
            let cut = vma.range.intersection(range).expect("overlap checked");
            out.push(vma.slice(cut));
        }
        // Rewrite the window with the surviving remainders in place.
        let mut write = lo;
        for v in [left, right].into_iter().flatten() {
            if write < hi {
                self.vmas[write] = v;
            } else {
                // Hole punched in the middle of a single VMA: both
                // remainders survive but the window held one slot.
                self.vmas.insert(write, v);
            }
            write += 1;
        }
        if write < hi {
            self.vmas.drain(write..hi);
        }
    }

    /// Changes the protection of `range`, splitting boundary VMAs. Returns
    /// the re-protected pieces. Pages of `range` not covered by any VMA are
    /// ignored (as `mprotect` over holes would fail; the kernel layer
    /// checks coverage first).
    pub fn protect_range(&mut self, range: &VaRange, prot: Prot) -> Vec<Vma> {
        let pieces = self.remove_range(range);
        let mut out = Vec::with_capacity(pieces.len());
        for mut piece in pieces {
            piece.prot = prot;
            self.insert(piece);
            out.push(piece);
        }
        out
    }

    /// Iterates over all VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.iter()
    }

    /// Finds the lowest free gap of `pages` pages at or above `floor`.
    pub fn find_gap(&self, floor: Vpn, pages: u64) -> Vpn {
        let mut candidate = floor;
        for vma in &self.vmas {
            if vma.range.end() <= candidate {
                continue;
            }
            if vma.range.start.0 >= candidate.0 + pages {
                break; // gap before this VMA fits
            }
            candidate = vma.range.end();
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon(start: u64, pages: u64) -> Vma {
        Vma {
            range: VaRange::new(Vpn(start), pages),
            kind: MapKind::Anon,
            prot: Prot::READ_WRITE,
        }
    }

    fn file(start: u64, pages: u64, file: u32, offset: u64) -> Vma {
        Vma {
            range: VaRange::new(Vpn(start), pages),
            kind: MapKind::File {
                file: FileId(file),
                offset,
            },
            prot: Prot::READ,
        }
    }

    #[test]
    fn find_locates_containing_vma() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 5));
        t.insert(anon(30, 5));
        assert_eq!(t.find(Vpn(12)).unwrap().range.start, Vpn(10));
        assert!(t.find(Vpn(20)).is_none());
        assert!(t.find(Vpn(9)).is_none());
        assert_eq!(t.find(Vpn(34)).unwrap().range.start, Vpn(30));
        assert!(t.find(Vpn(35)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn overlapping_insert_panics() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 5));
        t.insert(anon(14, 2));
    }

    #[test]
    #[should_panic(expected = "empty VMA")]
    fn empty_insert_panics() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 0));
    }

    #[test]
    fn overlapping_queries() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 5)); // [10,15)
        t.insert(anon(20, 5)); // [20,25)
        let hits = t.overlapping(&VaRange::new(Vpn(14), 7)); // [14,21)
        assert_eq!(hits.len(), 2);
        assert!(t.is_range_free(&VaRange::new(Vpn(15), 5)));
        assert!(!t.is_range_free(&VaRange::new(Vpn(24), 1)));
    }

    #[test]
    fn remove_exact_vma() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 5));
        let removed = t.remove_range(&VaRange::new(Vpn(10), 5));
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn remove_splits_middle() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 10)); // [10,20)
        let removed = t.remove_range(&VaRange::new(Vpn(13), 4)); // [13,17)
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].range, VaRange::new(Vpn(13), 4));
        assert_eq!(t.len(), 2);
        assert_eq!(t.find(Vpn(12)).unwrap().range, VaRange::new(Vpn(10), 3));
        assert_eq!(t.find(Vpn(17)).unwrap().range, VaRange::new(Vpn(17), 3));
        assert!(t.find(Vpn(13)).is_none());
    }

    #[test]
    fn remove_trims_edges_of_two_vmas() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 5)); // [10,15)
        t.insert(anon(15, 5)); // [15,20)
        let removed = t.remove_range(&VaRange::new(Vpn(13), 4)); // [13,17)
        assert_eq!(removed.len(), 2);
        assert_eq!(t.find(Vpn(10)).unwrap().range, VaRange::new(Vpn(10), 3));
        assert_eq!(t.find(Vpn(17)).unwrap().range, VaRange::new(Vpn(17), 3));
    }

    #[test]
    fn remove_over_hole_returns_nothing() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 2));
        let removed = t.remove_range(&VaRange::new(Vpn(50), 5));
        assert!(removed.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn file_offsets_adjust_on_split() {
        let mut t = VmaTree::new();
        t.insert(file(100, 10, 1, 0)); // file pages 0..10 at [100,110)
        let removed = t.remove_range(&VaRange::new(Vpn(104), 2));
        assert_eq!(removed.len(), 1);
        match removed[0].kind {
            MapKind::File { file: f, offset } => {
                assert_eq!(f, FileId(1));
                assert_eq!(offset, 4);
            }
            MapKind::Anon => panic!("expected file vma"),
        }
        // Right remainder starts at file page 6.
        let right = *t.find(Vpn(106)).unwrap();
        assert_eq!(right.file_page_of(Vpn(106)), Some((FileId(1), 6)));
    }

    #[test]
    fn file_page_of_anon_is_none() {
        let v = anon(10, 2);
        assert_eq!(v.file_page_of(Vpn(10)), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn file_page_of_outside_panics() {
        let v = file(10, 2, 1, 0);
        v.file_page_of(Vpn(12));
    }

    #[test]
    fn protect_range_splits_and_updates() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 10));
        let changed = t.protect_range(&VaRange::new(Vpn(12), 3), Prot::READ);
        assert_eq!(changed.len(), 1);
        assert_eq!(t.find(Vpn(13)).unwrap().prot, Prot::READ);
        assert_eq!(t.find(Vpn(11)).unwrap().prot, Prot::READ_WRITE);
        assert_eq!(t.find(Vpn(15)).unwrap().prot, Prot::READ_WRITE);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn find_gap_skips_existing_vmas() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 5)); // [10,15)
        t.insert(anon(17, 3)); // [17,20)
        assert_eq!(t.find_gap(Vpn(0), 5), Vpn(0));
        assert_eq!(t.find_gap(Vpn(10), 2), Vpn(15));
        assert_eq!(t.find_gap(Vpn(10), 3), Vpn(20));
        assert_eq!(t.find_gap(Vpn(18), 1), Vpn(20));
    }

    #[test]
    fn iter_is_sorted() {
        let mut t = VmaTree::new();
        t.insert(anon(30, 1));
        t.insert(anon(10, 1));
        t.insert(anon(20, 1));
        let starts: Vec<u64> = t.iter().map(|v| v.range.start.0).collect();
        assert_eq!(starts, vec![10, 20, 30]);
    }
}
