//! The address space: Linux's `mm_struct` analogue.
//!
//! An [`MmStruct`] ties together the VMA tree, the page table, the
//! `mm_cpumask` (which CPUs currently run this address space — the set an
//! IPI shootdown must target) and Latr's *blocked-VA list*: virtual ranges
//! that have been lazily unmapped and must not be handed out again until
//! the lazy TLB shootdown completes ("the lazy virtual address list is
//! traversed during any memory allocation, and the addresses in the lazy
//! list are not reused", §4.2).

use crate::addr::{VaRange, Vpn};
use crate::page_cache::FileId;
use crate::page_table::PageTable;
use crate::vma::{MapKind, Prot, Vma, VmaTree};
use latr_arch::{CpuId, CpuMask};
use serde::{Deserialize, Serialize};

/// Identifier of an address space (process).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MmId(pub u32);

/// Default lowest page of the mmap area (0x0000_5555_0000 >> 12).
const MMAP_FLOOR: Vpn = Vpn(0x5_5550);

/// One address space.
pub struct MmStruct {
    /// This address space's id.
    pub id: MmId,
    /// The 4-level page table.
    pub page_table: PageTable,
    /// The VMA tree.
    pub vmas: VmaTree,
    /// CPUs currently running a thread of this address space — the IPI
    /// target set Linux computes for a shootdown.
    pub cpumask: CpuMask,
    /// The PCID this address space is tagged with in TLBs
    /// ([`latr_arch::PCID_NONE`] when PCIDs are disabled, as in
    /// Linux 4.10).
    pub pcid: u16,
    blocked: Vec<VaRange>,
    va_floor: Vpn,
}

impl MmStruct {
    /// Creates an empty address space.
    pub fn new(id: MmId) -> Self {
        MmStruct {
            id,
            page_table: PageTable::new(),
            vmas: VmaTree::new(),
            cpumask: CpuMask::empty(),
            pcid: latr_arch::PCID_NONE,
            blocked: Vec::new(),
            va_floor: MMAP_FLOOR,
        }
    }

    /// Finds a free virtual range of `pages` pages, skipping both existing
    /// VMAs and the blocked (lazily reclaimed) list. Does not insert
    /// anything.
    pub fn find_free_va(&self, pages: u64) -> VaRange {
        assert!(pages > 0, "cannot allocate an empty range");
        let mut floor = self.va_floor;
        loop {
            let start = self.vmas.find_gap(floor, pages);
            let candidate = VaRange::new(start, pages);
            match self
                .blocked
                .iter()
                .filter(|b| b.overlaps(&candidate))
                .map(|b| b.end())
                .max()
            {
                None => return candidate,
                Some(bump) => floor = bump,
            }
        }
    }

    /// Allocates a fresh anonymous VMA of `pages` pages and returns its
    /// range. PTE population is the kernel's job (demand paging).
    pub fn mmap_anon(&mut self, pages: u64, prot: Prot) -> VaRange {
        let range = self.find_free_va(pages);
        self.vmas.insert(Vma {
            range,
            kind: MapKind::Anon,
            prot,
        });
        range
    }

    /// Maps `pages` pages of `file` starting at file page `offset`.
    pub fn mmap_file(&mut self, file: FileId, offset: u64, pages: u64, prot: Prot) -> VaRange {
        let range = self.find_free_va(pages);
        self.vmas.insert(Vma {
            range,
            kind: MapKind::File { file, offset },
            prot,
        });
        range
    }

    /// Removes `range` from the VMA tree (splitting as needed), returning
    /// the removed VMA pieces. The caller unmaps PTEs and handles frames.
    pub fn munmap_vmas(&mut self, range: &VaRange) -> Vec<Vma> {
        self.vmas.remove_range(range)
    }

    /// [`munmap_vmas`](Self::munmap_vmas) appending the removed pieces to
    /// a caller-owned scratch vector (the allocation-free unmap path).
    pub fn munmap_vmas_into(&mut self, range: &VaRange, out: &mut Vec<Vma>) {
        self.vmas.remove_range_into(range, out);
    }

    /// Marks `range` as blocked from reuse until
    /// [`unblock_va`](Self::unblock_va) — the lazy-reclamation list.
    pub fn block_va(&mut self, range: VaRange) {
        debug_assert!(!range.is_empty());
        self.blocked.push(range);
    }

    /// Releases a previously blocked range for reuse. Returns whether the
    /// range was found.
    pub fn unblock_va(&mut self, range: &VaRange) -> bool {
        if let Some(pos) = self.blocked.iter().position(|b| b == range) {
            self.blocked.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Currently blocked ranges (test/debug aid).
    pub fn blocked_ranges(&self) -> &[VaRange] {
        &self.blocked
    }

    /// Notes that `cpu` started running this address space.
    pub fn cpu_activated(&mut self, cpu: CpuId) {
        self.cpumask.set(cpu);
    }

    /// Notes that `cpu` stopped running this address space.
    pub fn cpu_deactivated(&mut self, cpu: CpuId) {
        self.cpumask.clear(cpu);
    }
}

impl std::fmt::Debug for MmStruct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmStruct")
            .field("id", &self.id)
            .field("vmas", &self.vmas.len())
            .field("mapped_pages", &self.page_table.mapped_pages())
            .field("cpumask", &self.cpumask)
            .field("blocked", &self.blocked.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_anon_allocates_disjoint_ranges() {
        let mut mm = MmStruct::new(MmId(1));
        let a = mm.mmap_anon(4, Prot::READ_WRITE);
        let b = mm.mmap_anon(4, Prot::READ_WRITE);
        assert!(!a.overlaps(&b));
        assert_eq!(mm.vmas.len(), 2);
    }

    #[test]
    fn munmap_then_remap_reuses_va() {
        let mut mm = MmStruct::new(MmId(1));
        let a = mm.mmap_anon(4, Prot::READ_WRITE);
        mm.munmap_vmas(&a);
        let b = mm.mmap_anon(4, Prot::READ_WRITE);
        assert_eq!(a, b, "freed VA should be reused when not blocked");
    }

    #[test]
    fn blocked_va_is_not_reused() {
        let mut mm = MmStruct::new(MmId(1));
        let a = mm.mmap_anon(4, Prot::READ_WRITE);
        mm.munmap_vmas(&a);
        mm.block_va(a);
        let b = mm.mmap_anon(4, Prot::READ_WRITE);
        assert!(!a.overlaps(&b), "blocked range must be skipped");
        assert!(mm.unblock_va(&a));
        let c = mm.mmap_anon(4, Prot::READ_WRITE);
        assert_eq!(c, a, "unblocked range is reusable again");
    }

    #[test]
    fn unblock_unknown_range_is_false() {
        let mut mm = MmStruct::new(MmId(1));
        assert!(!mm.unblock_va(&VaRange::new(Vpn(1), 1)));
    }

    #[test]
    fn find_free_va_skips_consecutive_blocks() {
        let mut mm = MmStruct::new(MmId(1));
        let a = mm.find_free_va(2);
        mm.block_va(a);
        mm.block_va(VaRange::new(a.end(), 2));
        let b = mm.find_free_va(2);
        assert_eq!(b.start, a.end().offset(2));
    }

    #[test]
    fn file_mapping_keeps_backing_info() {
        let mut mm = MmStruct::new(MmId(1));
        let r = mm.mmap_file(FileId(3), 5, 2, Prot::READ);
        let vma = mm.vmas.find(r.start).unwrap();
        assert_eq!(vma.file_page_of(r.start.offset(1)), Some((FileId(3), 6)));
    }

    #[test]
    fn cpumask_tracks_activations() {
        let mut mm = MmStruct::new(MmId(1));
        mm.cpu_activated(CpuId(2));
        mm.cpu_activated(CpuId(5));
        assert_eq!(mm.cpumask.count(), 2);
        mm.cpu_deactivated(CpuId(2));
        assert!(!mm.cpumask.test(CpuId(2)));
        assert!(mm.cpumask.test(CpuId(5)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_page_allocation_panics() {
        let mm = MmStruct::new(MmId(1));
        mm.find_free_va(0);
    }

    #[test]
    fn debug_is_informative() {
        let mm = MmStruct::new(MmId(7));
        let s = format!("{mm:?}");
        assert!(s.contains("MmId(7)"));
    }
}
