//! A 4-level, 512-way radix page table with x86-style status bits.
//!
//! Levels mirror x86-64: PGD → PUD → PMD → PTE, each indexed by 9 bits of
//! the virtual page number. Leaf entries carry the frame number plus the
//! `accessed`/`dirty` bits (which the ABIS baseline samples) and a
//! `numa_hint` bit modelling the `PROT_NONE`-style protection AutoNUMA uses
//! to provoke hint faults.
//!
//! Intermediate tables are allocated on first use and freed when they
//! become empty, so sparse address spaces stay cheap.

use crate::addr::{Pfn, VaRange, Vpn};
use serde::{Deserialize, Serialize};

const LEVEL_BITS: u64 = 9;
const FANOUT: usize = 1 << LEVEL_BITS; // 512
const LEVELS: u32 = 4;
const INDEX_MASK: u64 = FANOUT as u64 - 1;

/// Permission and status bits of one leaf PTE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PteFlags {
    /// Write permission.
    pub writable: bool,
    /// Hardware-set on access (sampled and cleared by ABIS tracking).
    pub accessed: bool,
    /// Hardware-set on write.
    pub dirty: bool,
    /// AutoNUMA hint protection: the mapping is present but access faults,
    /// so the kernel can observe which node touches the page.
    pub numa_hint: bool,
}

/// One leaf page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pte {
    /// The mapped physical frame.
    pub pfn: Pfn,
    /// Permission/status bits.
    pub flags: PteFlags,
}

enum Node {
    Interior {
        children: Vec<Option<Box<Node>>>,
        live: usize,
    },
    Leaf {
        entries: Vec<Option<Pte>>,
        live: usize,
    },
}

impl Node {
    fn interior() -> Box<Node> {
        Box::new(Node::Interior {
            children: (0..FANOUT).map(|_| None).collect(),
            live: 0,
        })
    }

    fn leaf() -> Box<Node> {
        Box::new(Node::Leaf {
            entries: vec![None; FANOUT],
            live: 0,
        })
    }
}

/// The 4-level radix page table of one address space.
///
/// ```
/// use latr_mem::{PageTable, Pte, PteFlags, Pfn, Vpn};
/// let mut pt = PageTable::new();
/// pt.map(Vpn(0x12345), Pfn(7), PteFlags { writable: true, ..Default::default() });
/// assert_eq!(pt.lookup(Vpn(0x12345)).unwrap().pfn, Pfn(7));
/// let old = pt.unmap(Vpn(0x12345)).unwrap();
/// assert_eq!(old.pfn, Pfn(7));
/// assert!(pt.lookup(Vpn(0x12345)).is_none());
/// ```
pub struct PageTable {
    root: Box<Node>,
    mapped: u64,
    // Pruned (empty) nodes parked for reuse: a map/unmap steady state
    // cycles tables through these pools instead of the heap, so the unmap
    // hot path performs no allocation. Pool size is bounded by the peak
    // tree size. The pools hold `Box<Node>` on purpose — tree children
    // are boxed, and recycling the box is the whole point; `Vec<Node>`
    // would re-box (allocate) on every reuse.
    #[allow(clippy::vec_box)]
    free_interiors: Vec<Box<Node>>,
    #[allow(clippy::vec_box)]
    free_leaves: Vec<Box<Node>>,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            root: Node::interior(),
            mapped: 0,
            free_interiors: Vec::new(),
            free_leaves: Vec::new(),
        }
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    #[inline]
    fn index(vpn: Vpn, level: u32) -> usize {
        // level 0 is the root; level 3 holds leaves.
        let shift = LEVEL_BITS * (LEVELS - 1 - level) as u64;
        ((vpn.0 >> shift) & INDEX_MASK) as usize
    }

    /// Installs (or replaces) the mapping for `vpn`. Returns the previous
    /// PTE if one existed.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, flags: PteFlags) -> Option<Pte> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = Self::index(vpn, level);
            match node.as_mut() {
                Node::Interior { children, live } => {
                    if children[idx].is_none() {
                        children[idx] = Some(if level == LEVELS - 2 {
                            self.free_leaves.pop().unwrap_or_else(Node::leaf)
                        } else {
                            self.free_interiors.pop().unwrap_or_else(Node::interior)
                        });
                        *live += 1;
                    }
                    node = children[idx].as_mut().unwrap();
                }
                Node::Leaf { .. } => unreachable!("leaf at interior level"),
            }
        }
        let idx = Self::index(vpn, LEVELS - 1);
        match node.as_mut() {
            Node::Leaf { entries, live } => {
                let prev = entries[idx].replace(Pte { pfn, flags });
                if prev.is_none() {
                    *live += 1;
                    self.mapped += 1;
                }
                prev
            }
            Node::Interior { .. } => unreachable!("interior at leaf level"),
        }
    }

    /// Reads the PTE for `vpn` without modifying anything.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        let mut node = &self.root;
        for level in 0..LEVELS - 1 {
            let idx = Self::index(vpn, level);
            match node.as_ref() {
                Node::Interior { children, .. } => node = children[idx].as_ref()?,
                Node::Leaf { .. } => unreachable!(),
            }
        }
        match node.as_ref() {
            Node::Leaf { entries, .. } => entries[Self::index(vpn, LEVELS - 1)],
            Node::Interior { .. } => unreachable!(),
        }
    }

    /// Applies `f` to the PTE for `vpn`, if mapped, returning the updated
    /// entry. Used for permission changes, access-bit maintenance and NUMA
    /// hinting.
    pub fn update<F: FnOnce(&mut Pte)>(&mut self, vpn: Vpn, f: F) -> Option<Pte> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = Self::index(vpn, level);
            match node.as_mut() {
                Node::Interior { children, .. } => node = children[idx].as_mut()?,
                Node::Leaf { .. } => unreachable!(),
            }
        }
        match node.as_mut() {
            Node::Leaf { entries, .. } => {
                let pte = entries[Self::index(vpn, LEVELS - 1)].as_mut()?;
                f(pte);
                Some(*pte)
            }
            Node::Interior { .. } => unreachable!(),
        }
    }

    /// Removes the mapping for `vpn`, returning the old PTE. Empty
    /// intermediate tables are pruned.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let removed = Self::unmap_rec(
            &mut self.root,
            vpn,
            0,
            &mut self.free_interiors,
            &mut self.free_leaves,
        );
        if removed.is_some() {
            self.mapped -= 1;
        }
        removed
    }

    #[allow(clippy::vec_box)] // recycles the boxes themselves; see the pool fields
    fn unmap_rec(
        node: &mut Node,
        vpn: Vpn,
        level: u32,
        free_interiors: &mut Vec<Box<Node>>,
        free_leaves: &mut Vec<Box<Node>>,
    ) -> Option<Pte> {
        let idx = Self::index(vpn, level);
        match node {
            Node::Leaf { entries, live } => {
                let prev = entries[idx].take();
                if prev.is_some() {
                    *live -= 1;
                }
                prev
            }
            Node::Interior { children, live } => {
                let child = children[idx].as_mut()?;
                let prev = Self::unmap_rec(child, vpn, level + 1, free_interiors, free_leaves);
                if prev.is_some() {
                    let empty = match child.as_ref() {
                        Node::Leaf { live, .. } => *live == 0,
                        Node::Interior { live, .. } => *live == 0,
                    };
                    if empty {
                        // Park the pruned (already-empty) table for reuse
                        // rather than freeing it.
                        let pruned = children[idx].take().expect("child present above");
                        match pruned.as_ref() {
                            Node::Leaf { .. } => free_leaves.push(pruned),
                            Node::Interior { .. } => free_interiors.push(pruned),
                        }
                        *live -= 1;
                    }
                }
                prev
            }
        }
    }

    /// Collects the mapped pages of `range` as `(vpn, pte)` pairs, in
    /// ascending page order.
    pub fn mapped_in(&self, range: &VaRange) -> Vec<(Vpn, Pte)> {
        range
            .iter()
            .filter_map(|vpn| self.lookup(vpn).map(|pte| (vpn, pte)))
            .collect()
    }

    /// Unmaps every mapped page of `range`, returning the removed
    /// `(vpn, pte)` pairs in ascending order.
    pub fn unmap_range(&mut self, range: &VaRange) -> Vec<(Vpn, Pte)> {
        let mut out = Vec::new();
        self.unmap_range_into(range, &mut out);
        out
    }

    /// [`unmap_range`](Self::unmap_range) appending the removed pairs to
    /// `out` instead of allocating — the unmap hot path passes a scratch
    /// vector whose capacity survives across calls.
    pub fn unmap_range_into(&mut self, range: &VaRange, out: &mut Vec<(Vpn, Pte)>) {
        for vpn in range.iter() {
            if let Some(pte) = self.unmap(vpn) {
                out.push((vpn, pte));
            }
        }
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageTable({} pages mapped)", self.mapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> PteFlags {
        PteFlags {
            writable: true,
            ..Default::default()
        }
    }

    #[test]
    fn map_lookup_unmap_roundtrip() {
        let mut pt = PageTable::new();
        assert!(pt.lookup(Vpn(42)).is_none());
        pt.map(Vpn(42), Pfn(7), flags());
        let pte = pt.lookup(Vpn(42)).unwrap();
        assert_eq!(pte.pfn, Pfn(7));
        assert!(pte.flags.writable);
        assert_eq!(pt.unmap(Vpn(42)).unwrap().pfn, Pfn(7));
        assert!(pt.lookup(Vpn(42)).is_none());
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new();
        assert!(pt.map(Vpn(1), Pfn(10), flags()).is_none());
        let prev = pt.map(Vpn(1), Pfn(20), flags()).unwrap();
        assert_eq!(prev.pfn, Pfn(10));
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distinct_subtrees_do_not_interfere() {
        let mut pt = PageTable::new();
        // Pages that differ only in the top-level index.
        let a = Vpn(0);
        let b = Vpn(1 << 27); // different PGD slot
        pt.map(a, Pfn(1), flags());
        pt.map(b, Pfn(2), flags());
        assert_eq!(pt.lookup(a).unwrap().pfn, Pfn(1));
        assert_eq!(pt.lookup(b).unwrap().pfn, Pfn(2));
        pt.unmap(a);
        assert_eq!(pt.lookup(b).unwrap().pfn, Pfn(2));
    }

    #[test]
    fn sparse_addresses_across_all_levels() {
        let mut pt = PageTable::new();
        let pages: Vec<Vpn> = (0..100).map(|i| Vpn(i * 0x100_0007)).collect();
        for (i, &v) in pages.iter().enumerate() {
            pt.map(v, Pfn(i as u64), flags());
        }
        assert_eq!(pt.mapped_pages(), 100);
        for (i, &v) in pages.iter().enumerate() {
            assert_eq!(pt.lookup(v).unwrap().pfn, Pfn(i as u64));
        }
    }

    #[test]
    fn unmap_missing_returns_none() {
        let mut pt = PageTable::new();
        assert!(pt.unmap(Vpn(5)).is_none());
        pt.map(Vpn(5), Pfn(1), flags());
        pt.unmap(Vpn(5));
        assert!(pt.unmap(Vpn(5)).is_none());
    }

    #[test]
    fn update_modifies_in_place() {
        let mut pt = PageTable::new();
        pt.map(Vpn(9), Pfn(3), flags());
        let updated = pt
            .update(Vpn(9), |pte| {
                pte.flags.accessed = true;
                pte.flags.numa_hint = true;
            })
            .unwrap();
        assert!(updated.flags.accessed);
        assert!(pt.lookup(Vpn(9)).unwrap().flags.numa_hint);
        assert!(pt.update(Vpn(10), |_| ()).is_none());
    }

    #[test]
    fn range_operations() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            if i % 2 == 0 {
                pt.map(Vpn(100 + i), Pfn(i), flags());
            }
        }
        let r = VaRange::new(Vpn(100), 10);
        let mapped = pt.mapped_in(&r);
        assert_eq!(mapped.len(), 5);
        assert!(mapped.windows(2).all(|w| w[0].0 < w[1].0));
        let removed = pt.unmap_range(&r);
        assert_eq!(removed.len(), 5);
        assert_eq!(pt.mapped_pages(), 0);
        assert!(pt.mapped_in(&r).is_empty());
    }

    #[test]
    fn interior_tables_are_pruned() {
        let mut pt = PageTable::new();
        // Map and unmap a page; the root should have no live children left,
        // observable by mapping a sibling afterwards still working.
        pt.map(Vpn(0xABCDE), Pfn(1), flags());
        pt.unmap(Vpn(0xABCDE));
        match pt.root.as_ref() {
            Node::Interior { live, .. } => assert_eq!(*live, 0),
            Node::Leaf { .. } => panic!("root must be interior"),
        }
        pt.map(Vpn(0xABCDE), Pfn(2), flags());
        assert_eq!(pt.lookup(Vpn(0xABCDE)).unwrap().pfn, Pfn(2));
    }

    #[test]
    fn adjacent_pages_share_a_leaf() {
        let mut pt = PageTable::new();
        pt.map(Vpn(512), Pfn(1), flags());
        pt.map(Vpn(513), Pfn(2), flags());
        pt.unmap(Vpn(512));
        // 513 must survive its neighbour's unmap.
        assert_eq!(pt.lookup(Vpn(513)).unwrap().pfn, Pfn(2));
    }

    #[test]
    fn debug_shows_mapped_count() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), flags());
        assert_eq!(format!("{pt:?}"), "PageTable(1 pages mapped)");
    }
}
