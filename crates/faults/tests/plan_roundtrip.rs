//! Property tests for the fault-plan wire format: any plan the builders
//! can express must survive `to_config_string` → `parse` bit-for-bit,
//! including awkward floats (probabilities are raw `f64`s and rely on
//! Display/FromStr shortest-round-trip semantics).

use latr_faults::{FaultPlan, OverflowStorm, StalledCore};
use proptest::prelude::*;

fn arb_prob() -> impl Strategy<Value = f64> {
    // Mix exact binary fractions with arbitrary mantissas in [0, 1].
    prop_oneof![
        (0u32..65).prop_map(|n| f64::from(n) / 64.0),
        (0u64..u64::MAX).prop_map(|bits| (bits >> 11) as f64 / (1u64 << 53) as f64),
    ]
}

proptest! {
    #[test]
    fn plan_round_trips_through_config_string(
        ipi in (arb_prob(), arb_prob(), 0u64..10_000_000),
        tick in (arb_prob(), arb_prob(), 0u64..10_000_000),
        stalls in prop::collection::vec((0u16..64, 0u64..1_000_000_000, 1u64..100_000_000), 0..4),
        storms in prop::collection::vec((0u64..1_000_000_000, 1u64..100_000_000), 0..4),
    ) {
        let mut plan = FaultPlan::default()
            .with_ipi_drop(ipi.0)
            .with_ipi_delay(ipi.1, ipi.2)
            .with_tick_miss(tick.0)
            .with_tick_jitter(tick.1, tick.2);
        for (cpu, at, duration) in stalls {
            plan.stalls.push(StalledCore { cpu, at, duration });
        }
        for (at, duration) in storms {
            plan.storms.push(OverflowStorm { at, duration });
        }
        let text = plan.to_config_string();
        prop_assert_eq!(FaultPlan::parse(&text), Ok(plan));
    }

    #[test]
    fn parse_never_panics_on_arbitrary_input(
        bytes in prop::collection::vec(0u8..128, 0..200),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = FaultPlan::parse(&text);
    }
}
