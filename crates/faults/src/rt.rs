//! Thread-fault injection for the real-thread `rt` runtime.
//!
//! The simulator's [`FaultInjector`](crate::FaultInjector) perturbs a
//! deterministic machine, so every fault lands at an exact simulated
//! nanosecond. Real OS threads have no such clock — the reproducible unit
//! is the *round*: one iteration of a worker's publish/sweep loop. A
//! [`ThreadFaultPlan`] is therefore phrased in rounds, and a
//! [`ThreadFaultInjector`] hands each worker its own forked RNG stream
//! ([`ThreadFaultStream`]) so the fault sequence a given thread sees is a
//! pure function of (plan, seed, thread id) — independent of OS
//! scheduling, thread count, or what any *other* thread draws.
//!
//! Faults modeled, mirroring the failure modes the rt robustness layer
//! (`latr_core::rt`) must survive:
//!
//! * **Sweeper stalls** — a preemption window: the thread keeps running
//!   but must skip its sweep for a span of rounds, starving the cached
//!   frontier until the [`FrontierWatchdog`] excludes it.
//! * **Dropped wakeups** — a `publish_batch` completes but the publisher
//!   skips whatever notification it would have sent, so sweepers only
//!   notice the work on their own schedule.
//! * **Delayed announces** — the sweeper sweeps but suppresses its
//!   frontier announce (an *unannounced* sweep), so the cached frontier
//!   lags until a forced refresh.
//! * **Thread death** — scheduled, not probabilistic: at a given round
//!   the thread either panics mid-sweep (exercising the `SweepGuard`
//!   panic fence) or silently stops (exercising the watchdog path).
//!
//! [`FrontierWatchdog`]: ../latr_core/rt/struct.FrontierWatchdog.html

use latr_sim::SimRng;

use crate::THREAD_FAULT_STREAM;

/// A scheduled thread death: at `at_round`, thread `thread` either
/// panics mid-sweep (`panic = true`) or returns from its loop without a
/// word (`panic = false`, a silent hang/exit the watchdog must catch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadDeath {
    /// Worker thread index the death applies to.
    pub thread: u16,
    /// Round at which the death fires (checked before any other fault).
    pub at_round: u64,
    /// Panic mid-sweep rather than exiting silently.
    pub panic: bool,
}

/// Per-round probabilistic and scheduled faults for real worker threads.
/// Construct with [`ThreadFaultPlan::default`] (no faults) plus the
/// chainable `with_*` builders; pure data, no randomness.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThreadFaultPlan {
    /// Probability in `[0, 1]` that a round opens a sweeper stall.
    pub stall_prob: f64,
    /// Length of each stall, in rounds.
    pub stall_rounds: u64,
    /// Probability in `[0, 1]` that a publish round drops its wakeup.
    pub wakeup_drop_prob: f64,
    /// Probability in `[0, 1]` that a sweep round suppresses its
    /// frontier announce.
    pub announce_delay_prob: f64,
    /// Scheduled thread deaths.
    pub deaths: Vec<ThreadDeath>,
}

impl ThreadFaultPlan {
    /// Open a stall of `rounds` rounds with probability `prob` per round.
    #[must_use]
    pub fn with_stalls(mut self, prob: f64, rounds: u64) -> Self {
        self.stall_prob = prob;
        self.stall_rounds = rounds;
        self
    }

    /// Drop each publish wakeup independently with probability `prob`.
    #[must_use]
    pub fn with_wakeup_drops(mut self, prob: f64) -> Self {
        self.wakeup_drop_prob = prob;
        self
    }

    /// Suppress each sweep's frontier announce with probability `prob`.
    #[must_use]
    pub fn with_announce_delays(mut self, prob: f64) -> Self {
        self.announce_delay_prob = prob;
        self
    }

    /// Kill `thread` at `at_round` — by panic if `panic`, silently
    /// otherwise.
    #[must_use]
    pub fn with_death(mut self, thread: u16, at_round: u64, panic: bool) -> Self {
        self.deaths.push(ThreadDeath {
            thread,
            at_round,
            panic,
        });
        self
    }

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        *self != ThreadFaultPlan::default()
    }

    /// Range-check every knob, mirroring [`FaultPlan::validate`]: all
    /// probabilities in `[0, 1]` (NaN rejected), a non-zero stall
    /// probability needs a non-zero stall length, and at most one death
    /// per thread (a thread only dies once).
    ///
    /// [`FaultPlan::validate`]: crate::FaultPlan::validate
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0, 1], got {p}"))
            }
        };
        prob("stall_prob", self.stall_prob)?;
        prob("wakeup_drop_prob", self.wakeup_drop_prob)?;
        prob("announce_delay_prob", self.announce_delay_prob)?;
        if self.stall_prob > 0.0 && self.stall_rounds == 0 {
            return Err("stall_prob > 0 requires stall_rounds > 0".into());
        }
        for (i, d) in self.deaths.iter().enumerate() {
            if self.deaths[..i].iter().any(|e| e.thread == d.thread) {
                return Err(format!("thread {} has more than one death", d.thread));
            }
        }
        Ok(())
    }
}

/// Outcome of consulting a [`ThreadFaultStream`] for one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadFault {
    /// Round runs normally.
    Run,
    /// The thread is inside a stall window: publish, but skip the sweep.
    Stalled,
    /// Publish and sweep, but drop the post-publish wakeup.
    DropWakeup,
    /// Sweep without announcing to the frontier.
    DelayAnnounce,
    /// The thread dies this round: panic mid-sweep if `panic`, else
    /// return silently. Fires exactly once.
    Die {
        /// Die by panicking (vs. a silent exit).
        panic: bool,
    },
}

/// A validated [`ThreadFaultPlan`] bound to a run seed. Cheap to clone
/// and [`Send`]; each worker calls [`stream`](Self::stream) with its own
/// index to get an independent deterministic fault stream.
#[derive(Clone, Debug)]
pub struct ThreadFaultInjector {
    plan: ThreadFaultPlan,
    seed: u64,
}

impl ThreadFaultInjector {
    /// Bind `plan` to `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`ThreadFaultPlan::validate`] — an
    /// invalid plan would silently inject nothing (or never terminate a
    /// stall), which is worse than failing loudly at construction.
    pub fn new(plan: ThreadFaultPlan, seed: u64) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid ThreadFaultPlan: {e}");
        }
        ThreadFaultInjector { plan, seed }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &ThreadFaultPlan {
        &self.plan
    }

    /// The per-thread fault stream for worker `thread`. The RNG is
    /// forked from the seed per thread (golden-ratio mixing so adjacent
    /// indices land on unrelated streams), so adding or removing workers
    /// never shifts the faults any *other* worker sees.
    pub fn stream(&self, thread: u16) -> ThreadFaultStream {
        let tag = THREAD_FAULT_STREAM ^ u64::from(thread).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ThreadFaultStream {
            death: self
                .plan
                .deaths
                .iter()
                .find(|d| d.thread == thread)
                .copied(),
            plan: self.plan.clone(),
            thread,
            rng: SimRng::new(self.seed).fork(tag),
            stalled_until: 0,
            died: false,
        }
    }
}

/// One worker thread's view of the fault plan: consult
/// [`fault_at`](Self::fault_at) once per round.
#[derive(Clone, Debug)]
pub struct ThreadFaultStream {
    plan: ThreadFaultPlan,
    death: Option<ThreadDeath>,
    thread: u16,
    rng: SimRng,
    /// Exclusive end of the current stall window, in rounds.
    stalled_until: u64,
    died: bool,
}

impl ThreadFaultStream {
    /// The worker index this stream was forked for.
    pub fn thread(&self) -> u16 {
        self.thread
    }

    /// Decide the fate of round `round`. Scheduled deaths are checked
    /// first and consume no randomness; an open stall window likewise
    /// resolves purely from the round number. The remaining draws happen
    /// in a fixed order (stall, wakeup drop, announce delay) so a stream
    /// is reproducible for a fixed (plan, seed, thread, round sequence).
    pub fn fault_at(&mut self, round: u64) -> ThreadFault {
        if !self.died {
            if let Some(d) = self.death {
                if round >= d.at_round {
                    self.died = true;
                    return ThreadFault::Die { panic: d.panic };
                }
            }
        }
        if round < self.stalled_until {
            return ThreadFault::Stalled;
        }
        if self.plan.stall_prob > 0.0 && self.rng.chance(self.plan.stall_prob) {
            self.stalled_until = round + self.plan.stall_rounds;
            return ThreadFault::Stalled;
        }
        if self.plan.wakeup_drop_prob > 0.0 && self.rng.chance(self.plan.wakeup_drop_prob) {
            return ThreadFault::DropWakeup;
        }
        if self.plan.announce_delay_prob > 0.0 && self.rng.chance(self.plan.announce_delay_prob) {
            return ThreadFault::DelayAnnounce;
        }
        ThreadFault::Run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive_and_faultless() {
        assert!(!ThreadFaultPlan::default().is_active());
        let inj = ThreadFaultInjector::new(ThreadFaultPlan::default(), 42);
        let mut s = inj.stream(0);
        for round in 0..256 {
            assert_eq!(s.fault_at(round), ThreadFault::Run);
        }
    }

    #[test]
    fn streams_are_deterministic_and_per_thread_independent() {
        let plan = ThreadFaultPlan::default()
            .with_stalls(0.1, 5)
            .with_wakeup_drops(0.2)
            .with_announce_delays(0.3);
        let inj = ThreadFaultInjector::new(plan, 7);
        for thread in [0u16, 3, 119] {
            let mut a = inj.stream(thread);
            let mut b = inj.stream(thread);
            for round in 0..512 {
                assert_eq!(a.fault_at(round), b.fault_at(round));
            }
        }
        // Different threads draw from unrelated streams: over 512 rounds
        // at these rates the sequences cannot coincide.
        let (mut a, mut b) = (inj.stream(0), inj.stream(1));
        let differs = (0..512).any(|r| a.fault_at(r) != b.fault_at(r));
        assert!(differs, "thread 0 and 1 saw identical fault sequences");
    }

    #[test]
    fn stall_windows_cover_their_rounds() {
        let plan = ThreadFaultPlan::default().with_stalls(1.0, 4);
        let mut s = ThreadFaultInjector::new(plan, 1).stream(0);
        // prob 1 ⇒ round 0 opens a stall through round 3; round 4 draws
        // again and (prob 1) opens the next window immediately.
        for round in 0..16 {
            assert_eq!(s.fault_at(round), ThreadFault::Stalled, "round {round}");
        }
    }

    #[test]
    fn death_fires_exactly_once_then_the_stream_continues() {
        let plan = ThreadFaultPlan::default().with_death(2, 10, true);
        let inj = ThreadFaultInjector::new(plan, 3);
        let mut s = inj.stream(2);
        for round in 0..10 {
            assert_eq!(s.fault_at(round), ThreadFault::Run);
        }
        assert_eq!(s.fault_at(10), ThreadFault::Die { panic: true });
        // A harness that (incorrectly) keeps polling after a death must
        // not see it fire twice.
        assert_eq!(s.fault_at(11), ThreadFault::Run);
        // Other threads never see this death.
        let mut other = inj.stream(1);
        for round in 0..64 {
            assert_ne!(other.fault_at(round), ThreadFault::Die { panic: true });
        }
    }

    #[test]
    fn late_joining_thread_still_dies() {
        // A thread that first polls after its scheduled round dies on its
        // first poll rather than never.
        let plan = ThreadFaultPlan::default().with_death(0, 5, false);
        let mut s = ThreadFaultInjector::new(plan, 9).stream(0);
        assert_eq!(s.fault_at(40), ThreadFault::Die { panic: false });
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(ThreadFaultPlan::default()
            .with_stalls(1.5, 10)
            .validate()
            .is_err());
        assert!(ThreadFaultPlan::default()
            .with_stalls(0.5, 0)
            .validate()
            .is_err());
        assert!(ThreadFaultPlan::default()
            .with_wakeup_drops(-0.1)
            .validate()
            .is_err());
        assert!(ThreadFaultPlan::default()
            .with_announce_delays(f64::NAN)
            .validate()
            .is_err());
        assert!(ThreadFaultPlan::default()
            .with_death(1, 5, true)
            .with_death(1, 9, false)
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid ThreadFaultPlan")]
    fn injector_panics_on_invalid_plan() {
        let _ = ThreadFaultInjector::new(ThreadFaultPlan::default().with_stalls(2.0, 1), 0);
    }
}
