//! # latr-faults — deterministic fault injection
//!
//! Latr's correctness argument (§4) leans on two liveness assumptions:
//! every core sweeps within a scheduler tick, and every IPI is delivered
//! promptly. Real machines violate both — deep C-states and long
//! non-preemptible sections stall sweepers, interrupt delivery is delayed
//! or (on buggy fabrics) lost, and bursty workloads overflow the 64-entry
//! state queues. This crate turns those conditions into *reproducible
//! experiments*:
//!
//! * [`FaultPlan`] — a declarative description of what goes wrong and
//!   when: IPI drop/delay probabilities, tick miss/jitter probabilities,
//!   per-core sweep stalls ([`StalledCore`]), queue-overflow storms
//!   ([`OverflowStorm`]), and the memory-pressure sites — allocation
//!   bursts ([`AllocBurst`]), reclamation-kthread stalls
//!   ([`ReclaimStall`]) and watermark flaps ([`WatermarkFlap`]). Plans
//!   round-trip through a stable text format
//!   ([`FaultPlan::to_config_string`] / [`FaultPlan::parse`]) so chaos
//!   runs can be named, diffed and replayed.
//! * [`FaultInjector`] — the runtime half: a plan plus a forked
//!   [`latr_sim::SimRng`] stream. Every probabilistic decision comes from
//!   that stream, so an identical plan + seed reproduces the *exact same*
//!   faults at the exact same simulated instants. The stream is forked
//!   from (not shared with) the machine's main RNG: enabling fault
//!   injection never perturbs the workload's own randomness.
//!
//! The machine (`latr-kernel`) consults the injector at each injection
//! site — IPI multicast, scheduler tick, sweep hooks, state publish — and
//! counts every injected fault in its stats registry. The graceful-
//! degradation mechanisms that answer these faults (sweep watchdog,
//! adaptive IPI fallback) live in `latr-core`.

mod inject;
mod plan;
pub mod rt;

pub use inject::{FaultInjector, IpiFault, TickFault};
pub use plan::{
    AllocBurst, FaultPlan, IpiFaults, OverflowStorm, PlanParseError, ReclaimStall, StalledCore,
    TickFaults, WatermarkFlap,
};
pub use rt::{ThreadDeath, ThreadFault, ThreadFaultInjector, ThreadFaultPlan, ThreadFaultStream};

/// Stream tag used to fork the injector's RNG off the machine seed; any
/// fixed constant works, it only has to be stable across runs.
pub const FAULT_STREAM: u64 = 0xFA017;

/// Stream tag for the real-thread fault injector ([`ThreadFaultInjector`]);
/// distinct from [`FAULT_STREAM`] so a run using both stays decorrelated,
/// and XOR-mixed with the worker index so every thread gets its own stream.
pub const THREAD_FAULT_STREAM: u64 = 0x007F_A017;
