//! Runtime fault injection.
//!
//! The injector owns its own forked [`SimRng`] stream so its draws never
//! interleave with the machine's workload randomness: a run with a plan
//! attached differs from the fault-free run only by the injected faults
//! themselves, and two runs with the same (plan, seed) are bit-identical.

use latr_sim::{Nanos, SimRng, Time};

use crate::plan::FaultPlan;

/// Outcome of consulting the injector for one IPI delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpiFault {
    /// Deliver normally.
    Deliver,
    /// The IPI is lost; the sender must eventually retransmit.
    Drop,
    /// The IPI arrives late by this many nanoseconds.
    Delay(Nanos),
}

/// Outcome of consulting the injector for one scheduler tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickFault {
    /// Tick runs normally.
    Run,
    /// The core is inside a scheduled sweep stall: the tick fires (time
    /// keeps advancing) but must not sweep.
    Stalled,
    /// The timer interrupt is missed entirely: skip the tick's work.
    Miss,
    /// The tick runs but the *next* tick should be scheduled this many
    /// nanoseconds late.
    Jitter(Nanos),
}

/// A [`FaultPlan`] bound to a forked RNG stream. One injector drives one
/// simulation run; create a fresh one per run.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
}

impl FaultInjector {
    /// Bind `plan` to `rng`. The rng should be forked from the machine
    /// seed with [`crate::FAULT_STREAM`] so the main stream is unaffected.
    pub fn new(plan: FaultPlan, rng: SimRng) -> Self {
        FaultInjector { plan, rng }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one IPI delivery. Draw order is fixed (drop,
    /// then delay, then delay magnitude) so traces are reproducible.
    pub fn ipi_fault(&mut self) -> IpiFault {
        if self.plan.ipi.drop_prob > 0.0 && self.rng.chance(self.plan.ipi.drop_prob) {
            return IpiFault::Drop;
        }
        if self.plan.ipi.delay_prob > 0.0 && self.rng.chance(self.plan.ipi.delay_prob) {
            let max = self.plan.ipi.delay_max;
            if max > 0 {
                return IpiFault::Delay(self.rng.below(max + 1));
            }
        }
        IpiFault::Deliver
    }

    /// Decide the fate of `cpu`'s scheduler tick at time `now`. Scheduled
    /// stalls are checked first and consume no randomness — a stalled
    /// core's outcome is a pure function of time, keeping the RNG stream
    /// aligned across plans that differ only in stall windows.
    pub fn tick_fault(&mut self, cpu: usize, now: Time) -> TickFault {
        if self.stalled(cpu, now) {
            return TickFault::Stalled;
        }
        if self.plan.tick.miss_prob > 0.0 && self.rng.chance(self.plan.tick.miss_prob) {
            return TickFault::Miss;
        }
        if self.plan.tick.jitter_prob > 0.0 && self.rng.chance(self.plan.tick.jitter_prob) {
            let max = self.plan.tick.jitter_max;
            if max > 0 {
                return TickFault::Jitter(self.rng.below(max + 1));
            }
        }
        TickFault::Run
    }

    /// Whether `cpu` is inside a scheduled sweep stall at `now`. Stalls
    /// suppress sweeping (tick and context-switch) but not IPI delivery:
    /// disabling preemption does not mask interrupts.
    pub fn stalled(&self, cpu: usize, now: Time) -> bool {
        let ns = now.as_ns();
        self.plan
            .stalls
            .iter()
            .any(|s| usize::from(s.cpu) == cpu && s.at <= ns && ns < s.at + s.duration)
    }

    /// Whether a queue-overflow storm is active at `now`.
    pub fn storm_active(&self, now: Time) -> bool {
        let ns = now.as_ns();
        self.plan
            .storms
            .iter()
            .any(|s| s.at <= ns && ns < s.at + s.duration)
    }

    /// Whether a scheduled reclaim stall covers `now` — the background
    /// reclamation kthread must skip its tick. A pure function of time,
    /// consuming no randomness.
    pub fn reclaim_stalled(&self, now: Time) -> bool {
        let ns = now.as_ns();
        self.plan.reclaim_stalls.iter().any(|s| s.active_at(ns))
    }

    /// The watermark boost in effect at `now`: the largest boost among
    /// active flap windows (overlapping flaps do not stack — the worst
    /// one wins). Pure function of time.
    pub fn flap_boost(&self, now: Time) -> u64 {
        let ns = now.as_ns();
        self.plan
            .flaps
            .iter()
            .filter(|f| f.active_at(ns))
            .map(|f| f.boost)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan) -> FaultInjector {
        let mut root = SimRng::new(42);
        FaultInjector::new(plan, root.fork(crate::FAULT_STREAM))
    }

    #[test]
    fn empty_plan_never_faults() {
        let mut inj = injector(FaultPlan::default());
        for i in 0..100 {
            assert_eq!(inj.ipi_fault(), IpiFault::Deliver);
            assert_eq!(
                inj.tick_fault(i % 4, Time::from_ns(i as u64 * 1000)),
                TickFault::Run
            );
        }
    }

    #[test]
    fn drop_prob_one_always_drops() {
        let mut inj = injector(FaultPlan::default().with_ipi_drop(1.0));
        for _ in 0..32 {
            assert_eq!(inj.ipi_fault(), IpiFault::Drop);
        }
    }

    #[test]
    fn delay_is_bounded_by_delay_max() {
        let mut inj = injector(FaultPlan::default().with_ipi_delay(1.0, 5_000));
        for _ in 0..256 {
            match inj.ipi_fault() {
                IpiFault::Delay(d) => assert!(d <= 5_000),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn stall_windows_are_half_open_and_per_core() {
        let inj = injector(FaultPlan::default().with_stall(1, 1_000, 500));
        assert!(!inj.stalled(1, Time::from_ns(999)));
        assert!(inj.stalled(1, Time::from_ns(1_000)));
        assert!(inj.stalled(1, Time::from_ns(1_499)));
        assert!(!inj.stalled(1, Time::from_ns(1_500)));
        assert!(!inj.stalled(0, Time::from_ns(1_200)));
    }

    #[test]
    fn stalls_take_priority_and_consume_no_randomness() {
        let plan = FaultPlan::default()
            .with_tick_miss(0.5)
            .with_stall(0, 0, 1_000_000);
        let mut a = injector(plan.clone());
        let mut b = injector(plan);
        // a consults during the stall window (no draws), b does not
        // consult at all; afterwards their streams must agree.
        for i in 0..50 {
            assert_eq!(
                a.tick_fault(0, Time::from_ns(i * 1_000)),
                TickFault::Stalled
            );
        }
        for i in 0..50 {
            let t = Time::from_ns(2_000_000 + i * 1_000);
            assert_eq!(a.tick_fault(0, t), b.tick_fault(0, t));
        }
    }

    #[test]
    fn storm_windows_cover_their_interval() {
        let inj = injector(FaultPlan::default().with_storm(2_000, 1_000));
        assert!(!inj.storm_active(Time::from_ns(1_999)));
        assert!(inj.storm_active(Time::from_ns(2_000)));
        assert!(inj.storm_active(Time::from_ns(2_999)));
        assert!(!inj.storm_active(Time::from_ns(3_000)));
    }

    #[test]
    fn reclaim_stall_windows_cover_their_interval() {
        let inj = injector(FaultPlan::default().with_reclaim_stall(5_000, 2_000));
        assert!(!inj.reclaim_stalled(Time::from_ns(4_999)));
        assert!(inj.reclaim_stalled(Time::from_ns(5_000)));
        assert!(inj.reclaim_stalled(Time::from_ns(6_999)));
        assert!(!inj.reclaim_stalled(Time::from_ns(7_000)));
    }

    #[test]
    fn overlapping_flaps_take_the_worst_boost() {
        let inj = injector(
            FaultPlan::default()
                .with_flap(1_000, 2_000, 16)
                .with_flap(2_000, 2_000, 64),
        );
        assert_eq!(inj.flap_boost(Time::from_ns(0)), 0);
        assert_eq!(inj.flap_boost(Time::from_ns(1_500)), 16);
        assert_eq!(inj.flap_boost(Time::from_ns(2_500)), 64); // overlap: max, not sum
        assert_eq!(inj.flap_boost(Time::from_ns(3_500)), 64);
        assert_eq!(inj.flap_boost(Time::from_ns(4_000)), 0);
    }

    #[test]
    fn pressure_sites_consume_no_randomness() {
        let plan = FaultPlan::default()
            .with_tick_miss(0.5)
            .with_burst(0, 0, 1_000_000, 64)
            .with_reclaim_stall(0, 1_000_000)
            .with_flap(0, 1_000_000, 8);
        let mut a = injector(plan.clone());
        let mut b = injector(FaultPlan::default().with_tick_miss(0.5));
        // a consults the pure time-window helpers; the RNG streams must
        // stay aligned with a plan that has no pressure sites at all.
        for i in 0..64 {
            let t = Time::from_ns(i * 1_000);
            let _ = a.reclaim_stalled(t);
            let _ = a.flap_boost(t);
            assert_eq!(a.tick_fault(0, t), b.tick_fault(0, t));
        }
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::default()
            .with_ipi_drop(0.2)
            .with_ipi_delay(0.4, 10_000)
            .with_tick_miss(0.1)
            .with_tick_jitter(0.3, 50_000);
        let mut a = injector(plan.clone());
        let mut b = injector(plan);
        for i in 0..512u64 {
            assert_eq!(a.ipi_fault(), b.ipi_fault());
            let t = Time::from_ns(i * 777);
            assert_eq!(
                a.tick_fault((i % 8) as usize, t),
                b.tick_fault((i % 8) as usize, t)
            );
        }
    }
}
