//! Declarative fault plans.
//!
//! A [`FaultPlan`] is pure data: it says *what* can go wrong and *when*,
//! but contains no randomness itself. The probabilistic knobs (drop/delay
//! probabilities, jitter magnitudes) are resolved at runtime by the
//! [`FaultInjector`](crate::FaultInjector)'s forked RNG stream; the
//! scheduled events (stalls, storms) are resolved purely by simulated
//! time. Both halves are therefore fully deterministic for a fixed
//! (plan, seed) pair.

use std::fmt::Write as _;

use latr_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Probabilistic faults applied to every IPI delivery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct IpiFaults {
    /// Probability in `[0, 1]` that an individual IPI delivery is dropped
    /// outright (never arrives; the initiator must retransmit).
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a delivery is delayed by a uniform
    /// amount in `[0, delay_max]` nanoseconds.
    pub delay_prob: f64,
    /// Maximum extra delivery latency, in nanoseconds.
    pub delay_max: Nanos,
}

/// Probabilistic faults applied to every scheduler tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TickFaults {
    /// Probability in `[0, 1]` that a tick is skipped entirely (no sweep,
    /// no accounting — models a missed timer interrupt).
    pub miss_prob: f64,
    /// Probability in `[0, 1]` that a tick fires late by a uniform amount
    /// in `[0, jitter_max]` nanoseconds.
    pub jitter_prob: f64,
    /// Maximum tick lateness, in nanoseconds.
    pub jitter_max: Nanos,
}

/// A scheduled per-core sweep stall: between `at` and `at + duration` the
/// core neither sweeps on ticks nor on context switches (models a long
/// non-preemptible section or a deep C-state exit). IPIs are still
/// delivered during a stall — preemption being disabled does not mask
/// interrupts — which is exactly what makes the watchdog's targeted-IPI
/// escalation effective against stalled sweepers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct StalledCore {
    /// Core that stalls.
    pub cpu: u16,
    /// Simulated time (ns) at which the stall begins.
    pub at: Nanos,
    /// Length of the stall in nanoseconds.
    pub duration: Nanos,
}

/// A scheduled queue-overflow storm: between `at` and `at + duration`
/// every Latr state publish is forced to fail as if the per-core queue
/// were full, driving the policy onto its fallback path regardless of
/// actual occupancy. Used to exercise the adaptive sync-mode hysteresis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct OverflowStorm {
    /// Simulated time (ns) at which the storm begins.
    pub at: Nanos,
    /// Length of the storm in nanoseconds.
    pub duration: Nanos,
}

/// A scheduled allocation burst: at `at` a kernel-thread consumer grabs up
/// to `frames` frames on `node` and holds them until `at + duration`,
/// draining the node's free pool exactly the way another subsystem's
/// allocation storm would. The pressure paths (watermarks, expedited
/// sweeps, min-watermark sync fallback) are what it exists to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AllocBurst {
    /// NUMA node whose pool the burst drains.
    pub node: u8,
    /// Simulated time (ns) at which the burst begins.
    pub at: Nanos,
    /// How long the burst holds its frames, in nanoseconds.
    pub duration: Nanos,
    /// How many frames the burst tries to grab.
    pub frames: u64,
}

impl AllocBurst {
    /// Whether the burst's hold window covers instant `ns` (half-open).
    pub fn active_at(&self, ns: Nanos) -> bool {
        self.at <= ns && ns < self.at + self.duration
    }
}

/// A scheduled reclaim stall: between `at` and `at + duration` the
/// background reclamation kthread skips its ticks entirely, so deferred
/// packages pile up while allocations keep draining the pool — the storm
/// that separates "expedite on pressure" from "hope the kthread catches
/// up".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ReclaimStall {
    /// Simulated time (ns) at which the stall begins.
    pub at: Nanos,
    /// Length of the stall in nanoseconds.
    pub duration: Nanos,
}

impl ReclaimStall {
    /// Whether the stall window covers instant `ns` (half-open).
    pub fn active_at(&self, ns: Nanos) -> bool {
        self.at <= ns && ns < self.at + self.duration
    }
}

/// A scheduled watermark flap: between `at` and `at + duration` the
/// effective watermarks are raised by `boost` frames, making nodes near
/// the line oscillate between pressure levels without any real
/// allocation — hysteresis paths must not thrash on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WatermarkFlap {
    /// Simulated time (ns) at which the flap begins.
    pub at: Nanos,
    /// Length of the flap in nanoseconds.
    pub duration: Nanos,
    /// How many frames the watermarks are raised by.
    pub boost: u64,
}

impl WatermarkFlap {
    /// Whether the flap window covers instant `ns` (half-open).
    pub fn active_at(&self, ns: Nanos) -> bool {
        self.at <= ns && ns < self.at + self.duration
    }
}

/// A complete, deterministic description of the faults to inject into one
/// simulation run. Construct with [`FaultPlan::default`] (no faults) and
/// the chainable `with_*` builders.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultPlan {
    /// IPI delivery faults.
    pub ipi: IpiFaults,
    /// Scheduler-tick faults.
    pub tick: TickFaults,
    /// Scheduled per-core sweep stalls.
    pub stalls: Vec<StalledCore>,
    /// Scheduled queue-overflow storms.
    pub storms: Vec<OverflowStorm>,
    /// Scheduled allocation bursts (memory-pressure sites).
    pub bursts: Vec<AllocBurst>,
    /// Scheduled reclamation-kthread stalls (memory-pressure sites).
    pub reclaim_stalls: Vec<ReclaimStall>,
    /// Scheduled watermark flaps (memory-pressure sites).
    pub flaps: Vec<WatermarkFlap>,
}

impl FaultPlan {
    /// Drop each IPI delivery independently with probability `prob`.
    #[must_use]
    pub fn with_ipi_drop(mut self, prob: f64) -> Self {
        self.ipi.drop_prob = prob;
        self
    }

    /// Delay each IPI delivery with probability `prob` by a uniform
    /// amount in `[0, max]` ns.
    #[must_use]
    pub fn with_ipi_delay(mut self, prob: f64, max: Nanos) -> Self {
        self.ipi.delay_prob = prob;
        self.ipi.delay_max = max;
        self
    }

    /// Skip each scheduler tick independently with probability `prob`.
    #[must_use]
    pub fn with_tick_miss(mut self, prob: f64) -> Self {
        self.tick.miss_prob = prob;
        self
    }

    /// Jitter each scheduler tick with probability `prob` by a uniform
    /// lateness in `[0, max]` ns.
    #[must_use]
    pub fn with_tick_jitter(mut self, prob: f64, max: Nanos) -> Self {
        self.tick.jitter_prob = prob;
        self.tick.jitter_max = max;
        self
    }

    /// Stall `cpu`'s sweeps for `duration` ns starting at `at` ns.
    #[must_use]
    pub fn with_stall(mut self, cpu: u16, at: Nanos, duration: Nanos) -> Self {
        self.stalls.push(StalledCore { cpu, at, duration });
        self
    }

    /// Force every state publish to overflow for `duration` ns starting
    /// at `at` ns.
    #[must_use]
    pub fn with_storm(mut self, at: Nanos, duration: Nanos) -> Self {
        self.storms.push(OverflowStorm { at, duration });
        self
    }

    /// Grab up to `frames` frames on `node` at `at` ns and hold them for
    /// `duration` ns (an external consumer's allocation storm).
    #[must_use]
    pub fn with_burst(mut self, node: u8, at: Nanos, duration: Nanos, frames: u64) -> Self {
        self.bursts.push(AllocBurst {
            node,
            at,
            duration,
            frames,
        });
        self
    }

    /// Stall the background reclamation kthread for `duration` ns
    /// starting at `at` ns.
    #[must_use]
    pub fn with_reclaim_stall(mut self, at: Nanos, duration: Nanos) -> Self {
        self.reclaim_stalls.push(ReclaimStall { at, duration });
        self
    }

    /// Raise the effective watermarks by `boost` frames for `duration` ns
    /// starting at `at` ns.
    #[must_use]
    pub fn with_flap(mut self, at: Nanos, duration: Nanos, boost: u64) -> Self {
        self.flaps.push(WatermarkFlap {
            at,
            duration,
            boost,
        });
        self
    }

    /// Whether this plan injects anything at all. The machine only pays
    /// for fault bookkeeping (and only schedules IPI retransmit timers)
    /// when a plan is active.
    pub fn is_active(&self) -> bool {
        *self != FaultPlan::default()
    }

    /// Range-check every knob: probabilities must lie in `[0, 1]` (NaN is
    /// rejected by the interval test), scheduled windows must have a
    /// non-zero duration, and a non-zero delay/jitter probability needs a
    /// non-zero magnitude to have any effect. [`FaultPlan::parse`] calls
    /// this, so a plan loaded from text is always well-formed; builders
    /// stay unchecked for ergonomic test construction.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0, 1], got {p}"))
            }
        };
        prob("ipi.drop_prob", self.ipi.drop_prob)?;
        prob("ipi.delay_prob", self.ipi.delay_prob)?;
        prob("tick.miss_prob", self.tick.miss_prob)?;
        prob("tick.jitter_prob", self.tick.jitter_prob)?;
        if self.ipi.delay_prob > 0.0 && self.ipi.delay_max == 0 {
            return Err("ipi.delay_prob > 0 requires ipi.delay_max > 0".into());
        }
        if self.tick.jitter_prob > 0.0 && self.tick.jitter_max == 0 {
            return Err("tick.jitter_prob > 0 requires tick.jitter_max > 0".into());
        }
        for s in &self.stalls {
            if s.duration == 0 {
                return Err(format!(
                    "stall of cpu{} at {} has zero duration",
                    s.cpu, s.at
                ));
            }
        }
        for s in &self.storms {
            if s.duration == 0 {
                return Err(format!("storm at {} has zero duration", s.at));
            }
        }
        for b in &self.bursts {
            if b.duration == 0 {
                return Err(format!(
                    "burst on node{} at {} has zero duration",
                    b.node, b.at
                ));
            }
            if b.frames == 0 {
                return Err(format!(
                    "burst on node{} at {} grabs zero frames",
                    b.node, b.at
                ));
            }
        }
        for s in &self.reclaim_stalls {
            if s.duration == 0 {
                return Err(format!("reclaim stall at {} has zero duration", s.at));
            }
        }
        for f in &self.flaps {
            if f.duration == 0 {
                return Err(format!("watermark flap at {} has zero duration", f.at));
            }
            if f.boost == 0 {
                return Err(format!("watermark flap at {} has zero boost", f.at));
            }
        }
        Ok(())
    }

    /// Serialize to the stable `key=value` text format accepted by
    /// [`FaultPlan::parse`]. (The vendored serde is marker-only, so plans
    /// carry their own wire format.) `f64` fields round-trip exactly:
    /// Rust's `Display` for `f64` emits the shortest representation that
    /// parses back to the same bits.
    pub fn to_config_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "ipi.drop_prob={}", self.ipi.drop_prob);
        let _ = writeln!(out, "ipi.delay_prob={}", self.ipi.delay_prob);
        let _ = writeln!(out, "ipi.delay_max={}", self.ipi.delay_max);
        let _ = writeln!(out, "tick.miss_prob={}", self.tick.miss_prob);
        let _ = writeln!(out, "tick.jitter_prob={}", self.tick.jitter_prob);
        let _ = writeln!(out, "tick.jitter_max={}", self.tick.jitter_max);
        for s in &self.stalls {
            let _ = writeln!(out, "stall=cpu{}@{}+{}", s.cpu, s.at, s.duration);
        }
        for s in &self.storms {
            let _ = writeln!(out, "storm={}+{}", s.at, s.duration);
        }
        for b in &self.bursts {
            let _ = writeln!(
                out,
                "burst=node{}@{}+{}*{}",
                b.node, b.at, b.duration, b.frames
            );
        }
        for s in &self.reclaim_stalls {
            let _ = writeln!(out, "reclaim_stall={}+{}", s.at, s.duration);
        }
        for f in &self.flaps {
            let _ = writeln!(out, "flap={}+{}*{}", f.at, f.duration, f.boost);
        }
        out
    }

    /// Parse the text format produced by [`FaultPlan::to_config_string`].
    /// Blank lines and `#` comments are ignored; unknown keys are errors.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| PlanParseError {
                line: lineno + 1,
                message: format!("{what}: {line:?}"),
            };
            let (key, value) = line.split_once('=').ok_or_else(|| err("missing '='"))?;
            match key.trim() {
                "ipi.drop_prob" => plan.ipi.drop_prob = parse_f64(value, lineno)?,
                "ipi.delay_prob" => plan.ipi.delay_prob = parse_f64(value, lineno)?,
                "ipi.delay_max" => plan.ipi.delay_max = parse_u64(value, lineno)?,
                "tick.miss_prob" => plan.tick.miss_prob = parse_f64(value, lineno)?,
                "tick.jitter_prob" => plan.tick.jitter_prob = parse_f64(value, lineno)?,
                "tick.jitter_max" => plan.tick.jitter_max = parse_u64(value, lineno)?,
                "stall" => {
                    // cpu<N>@<at>+<duration>
                    let v = value.trim();
                    let v = v
                        .strip_prefix("cpu")
                        .ok_or_else(|| err("stall needs cpu<N>@at+dur"))?;
                    let (cpu, rest) = v.split_once('@').ok_or_else(|| err("stall needs '@'"))?;
                    let (at, dur) = rest.split_once('+').ok_or_else(|| err("stall needs '+'"))?;
                    plan.stalls.push(StalledCore {
                        cpu: cpu.parse().map_err(|_| err("bad stall cpu"))?,
                        at: parse_u64(at, lineno)?,
                        duration: parse_u64(dur, lineno)?,
                    });
                }
                "storm" => {
                    // <at>+<duration>
                    let (at, dur) = value
                        .split_once('+')
                        .ok_or_else(|| err("storm needs '+'"))?;
                    plan.storms.push(OverflowStorm {
                        at: parse_u64(at, lineno)?,
                        duration: parse_u64(dur, lineno)?,
                    });
                }
                "burst" => {
                    // node<N>@<at>+<duration>*<frames>
                    let v = value.trim();
                    let v = v
                        .strip_prefix("node")
                        .ok_or_else(|| err("burst needs node<N>@at+dur*frames"))?;
                    let (node, rest) = v.split_once('@').ok_or_else(|| err("burst needs '@'"))?;
                    let (at, rest) = rest.split_once('+').ok_or_else(|| err("burst needs '+'"))?;
                    let (dur, frames) =
                        rest.split_once('*').ok_or_else(|| err("burst needs '*'"))?;
                    plan.bursts.push(AllocBurst {
                        node: node.parse().map_err(|_| err("bad burst node"))?,
                        at: parse_u64(at, lineno)?,
                        duration: parse_u64(dur, lineno)?,
                        frames: parse_u64(frames, lineno)?,
                    });
                }
                "reclaim_stall" => {
                    // <at>+<duration>
                    let (at, dur) = value
                        .split_once('+')
                        .ok_or_else(|| err("reclaim_stall needs '+'"))?;
                    plan.reclaim_stalls.push(ReclaimStall {
                        at: parse_u64(at, lineno)?,
                        duration: parse_u64(dur, lineno)?,
                    });
                }
                "flap" => {
                    // <at>+<duration>*<boost>
                    let (at, rest) = value.split_once('+').ok_or_else(|| err("flap needs '+'"))?;
                    let (dur, boost) = rest.split_once('*').ok_or_else(|| err("flap needs '*'"))?;
                    plan.flaps.push(WatermarkFlap {
                        at: parse_u64(at, lineno)?,
                        duration: parse_u64(dur, lineno)?,
                        boost: parse_u64(boost, lineno)?,
                    });
                }
                other => {
                    return Err(PlanParseError {
                        line: lineno + 1,
                        message: format!("unknown key {other:?}"),
                    })
                }
            }
        }
        plan.validate().map_err(|message| PlanParseError {
            // Whole-plan errors (cross-field constraints) have no single
            // offending line; report them as line 0.
            line: 0,
            message,
        })?;
        Ok(plan)
    }
}

fn parse_f64(value: &str, lineno: usize) -> Result<f64, PlanParseError> {
    value.trim().parse().map_err(|_| PlanParseError {
        line: lineno + 1,
        message: format!("bad float {:?}", value.trim()),
    })
}

fn parse_u64(value: &str, lineno: usize) -> Result<u64, PlanParseError> {
    value.trim().parse().map_err(|_| PlanParseError {
        line: lineno + 1,
        message: format!("bad integer {:?}", value.trim()),
    })
}

/// Error produced by [`FaultPlan::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan::default().with_ipi_drop(0.1).is_active());
        assert!(FaultPlan::default().with_stall(1, 0, 1000).is_active());
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::default()
            .with_ipi_drop(0.25)
            .with_ipi_delay(0.5, 30_000)
            .with_tick_miss(0.1)
            .with_tick_jitter(0.2, 400_000)
            .with_stall(2, 1_000_000, 5_000_000)
            .with_storm(2_000_000, 3_000_000);
        assert_eq!(plan.ipi.drop_prob, 0.25);
        assert_eq!(plan.ipi.delay_max, 30_000);
        assert_eq!(plan.stalls.len(), 1);
        assert_eq!(plan.storms.len(), 1);
    }

    #[test]
    fn config_string_round_trips() {
        let plan = FaultPlan::default()
            .with_ipi_drop(0.3)
            .with_ipi_delay(0.123456789, 31_337)
            .with_tick_miss(0.05)
            .with_tick_jitter(1.0 / 3.0, 400_000)
            .with_stall(1, 1_000_000, 9_000_000)
            .with_stall(3, 2_500_000, 250_000)
            .with_storm(2_000_000, 3_000_000);
        let text = plan.to_config_string();
        assert_eq!(FaultPlan::parse(&text), Ok(plan));
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let plan = FaultPlan::parse("# a comment\n\nipi.drop_prob=0.5\n").unwrap();
        assert_eq!(plan.ipi.drop_prob, 0.5);
    }

    #[test]
    fn parse_rejects_unknown_keys_with_line_numbers() {
        let err = FaultPlan::parse("ipi.drop_prob=0.1\nbogus=1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn parse_rejects_malformed_stall() {
        assert!(FaultPlan::parse("stall=1@2+3").is_err()); // missing cpu prefix
        assert!(FaultPlan::parse("stall=cpu1@2").is_err()); // missing '+'
        assert!(FaultPlan::parse("storm=5").is_err()); // missing '+'
    }

    #[test]
    fn parse_rejects_out_of_range_probabilities() {
        let err = FaultPlan::parse("ipi.drop_prob=1.5\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("[0, 1]"), "{}", err.message);
        assert!(FaultPlan::parse("tick.miss_prob=-0.1\n").is_err());
        assert!(FaultPlan::parse("ipi.delay_prob=NaN\n").is_err());
    }

    #[test]
    fn parse_rejects_zero_duration_windows() {
        let err = FaultPlan::parse("stall=cpu1@5+0\n").unwrap_err();
        assert!(err.message.contains("zero duration"), "{}", err.message);
        assert!(FaultPlan::parse("storm=5+0\n").is_err());
    }

    #[test]
    fn parse_rejects_probability_without_magnitude() {
        assert!(FaultPlan::parse("ipi.delay_prob=0.5\n").is_err());
        assert!(FaultPlan::parse("ipi.delay_prob=0.5\nipi.delay_max=100\n").is_ok());
        assert!(FaultPlan::parse("tick.jitter_prob=0.5\n").is_err());
        assert!(FaultPlan::parse("tick.jitter_prob=0.5\ntick.jitter_max=100\n").is_ok());
    }

    #[test]
    fn pressure_sites_round_trip() {
        let plan = FaultPlan::default()
            .with_burst(1, 2_000_000, 5_000_000, 4096)
            .with_burst(0, 9_000_000, 1_000_000, 128)
            .with_reclaim_stall(3_000_000, 2_000_000)
            .with_flap(4_000_000, 500_000, 64);
        assert!(plan.is_active());
        let text = plan.to_config_string();
        assert_eq!(FaultPlan::parse(&text), Ok(plan));
    }

    #[test]
    fn pressure_windows_are_half_open() {
        let b = AllocBurst {
            node: 0,
            at: 1_000,
            duration: 500,
            frames: 8,
        };
        assert!(!b.active_at(999));
        assert!(b.active_at(1_000));
        assert!(b.active_at(1_499));
        assert!(!b.active_at(1_500));
        let f = WatermarkFlap {
            at: 10,
            duration: 5,
            boost: 3,
        };
        assert!(f.active_at(10) && f.active_at(14) && !f.active_at(15));
        let s = ReclaimStall { at: 0, duration: 1 };
        assert!(s.active_at(0) && !s.active_at(1));
    }

    #[test]
    fn parse_rejects_malformed_pressure_sites() {
        // Missing pieces of the burst grammar, one at a time.
        assert!(FaultPlan::parse("burst=1@2+3*4").is_err()); // missing node prefix
        assert!(FaultPlan::parse("burst=node1@2+3").is_err()); // missing '*frames'
        assert!(FaultPlan::parse("burst=node1@2*3").is_err()); // missing '+'
        assert!(FaultPlan::parse("burst=node1+2*3").is_err()); // missing '@'
        assert!(FaultPlan::parse("reclaim_stall=5").is_err()); // missing '+'
        assert!(FaultPlan::parse("flap=5+6").is_err()); // missing '*boost'
        assert!(FaultPlan::parse("flap=5*6").is_err()); // missing '+'
                                                        // Unknown keys near the new grammar stay errors with line numbers.
        let err = FaultPlan::parse("burst=node0@1+2*3\nbursts=node0@1+2*3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bursts"));
    }

    #[test]
    fn validate_rejects_degenerate_pressure_windows() {
        let err = FaultPlan::parse("burst=node0@5+0*16\n").unwrap_err();
        assert!(err.message.contains("zero duration"), "{}", err.message);
        let err = FaultPlan::parse("burst=node0@5+100*0\n").unwrap_err();
        assert!(err.message.contains("zero frames"), "{}", err.message);
        let err = FaultPlan::parse("reclaim_stall=5+0\n").unwrap_err();
        assert!(err.message.contains("zero duration"), "{}", err.message);
        let err = FaultPlan::parse("flap=5+0*4\n").unwrap_err();
        assert!(err.message.contains("zero duration"), "{}", err.message);
        let err = FaultPlan::parse("flap=5+100*0\n").unwrap_err();
        assert!(err.message.contains("zero boost"), "{}", err.message);
        // The builders stay unchecked, but validate() catches them too.
        assert!(FaultPlan::default()
            .with_burst(0, 5, 100, 0)
            .validate()
            .is_err());
        assert!(FaultPlan::default().with_flap(5, 0, 4).validate().is_err());
    }

    #[test]
    fn validate_accepts_every_builder_example() {
        let plan = FaultPlan::default()
            .with_ipi_drop(1.0)
            .with_ipi_delay(0.5, 30_000)
            .with_tick_miss(0.1)
            .with_tick_jitter(0.2, 400_000)
            .with_stall(2, 0, 5_000_000)
            .with_storm(2_000_000, 3_000_000);
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(FaultPlan::default().validate(), Ok(()));
    }
}
