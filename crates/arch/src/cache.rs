//! Last-level-cache accounting model (Table 4).
//!
//! The paper's Table 4 shows that Latr slightly *improves* LLC miss ratios
//! for most workloads — removing IPI interrupt handlers removes the cache
//! pollution they cause — while the Latr states themselves occupy less than
//! 1 % of the LLC.
//!
//! We do not simulate individual cache lines. Instead, each workload
//! declares a base application access stream with a characteristic miss
//! ratio, and the kernel charges *perturbations*:
//!
//! * every IPI interrupt pollutes the target's cache (handler code and data
//!   evict application lines, causing extra application misses afterwards);
//! * every Latr state save/sweep touches a small number of state lines,
//!   some of which miss (cross-socket reads of remote queues).
//!
//! The resulting miss ratio `misses / accesses` is what Table 4 reports.

use serde::{Deserialize, Serialize};

/// Accumulated LLC access/miss counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total LLC accesses.
    pub accesses: u64,
    /// Total LLC misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`, or 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The LLC perturbation model.
///
/// ```
/// use latr_arch::LlcModel;
/// let mut llc = LlcModel::new(0.10); // app baseline: 10% misses
/// llc.charge_app_accesses(1_000_000);
/// let base = llc.stats().miss_ratio();
/// llc.charge_interrupt(); // IPI handler pollutes the cache
/// assert!(llc.stats().miss_ratio() > base);
/// ```
#[derive(Clone, Debug)]
pub struct LlcModel {
    base_miss_ratio: f64,
    stats: CacheStats,
    // Fractional-miss accumulator so tiny rates are not lost to rounding.
    fractional_misses: f64,
    /// LLC lines an IPI interrupt handler touches (code + stack + APIC
    /// bookkeeping) on the interrupted core.
    pub interrupt_lines: u64,
    /// Fraction of handler lines that miss and evict useful data.
    pub interrupt_miss_fraction: f64,
    /// Extra application misses caused by each interrupt's evictions.
    pub interrupt_pollution_misses: u64,
    /// Lines touched when saving one Latr state (the state entry itself).
    pub latr_save_lines: u64,
    /// Lines touched when sweeping one remote core's queue.
    pub latr_sweep_lines: u64,
    /// Fraction of Latr state lines that miss (cross-socket coherence
    /// reads); the states total < 1.3 % of the LLC so most stay resident.
    pub latr_miss_fraction: f64,
}

impl LlcModel {
    /// Creates a model with the workload's baseline miss ratio.
    ///
    /// # Panics
    ///
    /// Panics if `base_miss_ratio` is not within `[0, 1]`.
    pub fn new(base_miss_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&base_miss_ratio),
            "miss ratio must be in [0,1]"
        );
        LlcModel {
            base_miss_ratio,
            stats: CacheStats::default(),
            fractional_misses: 0.0,
            interrupt_lines: 8,
            interrupt_miss_fraction: 0.03,
            interrupt_pollution_misses: 1,
            latr_save_lines: 2,
            latr_sweep_lines: 1,
            latr_miss_fraction: 0.05,
        }
    }

    fn charge(&mut self, accesses: u64, miss_ratio: f64) {
        self.stats.accesses += accesses;
        self.fractional_misses += accesses as f64 * miss_ratio;
        let whole = self.fractional_misses.floor();
        self.stats.misses += whole as u64;
        self.fractional_misses -= whole;
    }

    /// Charges `n` ordinary application LLC accesses at the baseline miss
    /// ratio.
    pub fn charge_app_accesses(&mut self, n: u64) {
        self.charge(n, self.base_miss_ratio);
    }

    /// Charges one IPI interrupt on a core: the handler's own accesses plus
    /// the application misses its evictions cause afterwards.
    pub fn charge_interrupt(&mut self) {
        self.charge(self.interrupt_lines, self.interrupt_miss_fraction);
        // Pollution: application lines the handler evicted will miss when
        // re-fetched. These are application accesses that would otherwise
        // have hit.
        self.stats.accesses += self.interrupt_pollution_misses;
        self.stats.misses += self.interrupt_pollution_misses;
    }

    /// Charges one Latr state save.
    pub fn charge_latr_save(&mut self) {
        self.charge(self.latr_save_lines, self.latr_miss_fraction);
    }

    /// Charges one Latr sweep over `cores` remote queues.
    pub fn charge_latr_sweep(&mut self, cores: u64) {
        self.charge(self.latr_sweep_lines * cores, self.latr_miss_fraction);
    }

    /// Accumulated counts.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The workload's configured baseline miss ratio.
    pub fn base_miss_ratio(&self) -> f64 {
        self.base_miss_ratio
    }

    /// Resets counts, keeping the configuration.
    pub fn reset(&mut self) {
        self.stats = CacheStats::default();
        self.fractional_misses = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_ratio_is_reproduced() {
        let mut llc = LlcModel::new(0.25);
        llc.charge_app_accesses(1_000_000);
        let r = llc.stats().miss_ratio();
        assert!((r - 0.25).abs() < 1e-4, "ratio {r}");
    }

    #[test]
    fn interrupts_raise_miss_ratio() {
        let mut llc = LlcModel::new(0.05);
        llc.charge_app_accesses(100_000);
        let before = llc.stats().miss_ratio();
        for _ in 0..5_000 {
            llc.charge_interrupt();
        }
        let after = llc.stats().miss_ratio();
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn latr_overhead_is_much_smaller_than_interrupts() {
        let mut ipi = LlcModel::new(0.05);
        let mut latr = LlcModel::new(0.05);
        ipi.charge_app_accesses(1_000_000);
        latr.charge_app_accesses(1_000_000);
        for _ in 0..10_000 {
            ipi.charge_interrupt();
            latr.charge_latr_save();
            latr.charge_latr_sweep(16);
        }
        assert!(
            latr.stats().miss_ratio() < ipi.stats().miss_ratio(),
            "latr {} vs ipi {}",
            latr.stats().miss_ratio(),
            ipi.stats().miss_ratio()
        );
    }

    #[test]
    fn fractional_misses_accumulate() {
        let mut llc = LlcModel::new(0.001);
        for _ in 0..1000 {
            llc.charge_app_accesses(1);
        }
        // 1000 accesses at 0.1% should yield ~1 miss, not 0.
        assert_eq!(llc.stats().misses, 1);
    }

    #[test]
    fn reset_clears_counts_only() {
        let mut llc = LlcModel::new(0.5);
        llc.charge_app_accesses(10);
        llc.reset();
        assert_eq!(llc.stats(), CacheStats::default());
        assert_eq!(llc.base_miss_ratio(), 0.5);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "miss ratio")]
    fn invalid_base_ratio_panics() {
        let _ = LlcModel::new(1.5);
    }
}
