//! Inter-processor-interrupt latency model.
//!
//! x86 IPIs are delivered through the APIC, which "does not support
//! flexible multicast delivery" (§2.1) — the sender programs the ICR once
//! per destination, so sends *serialize at the sender*, and each message
//! then propagates over the QPI fabric. This is the mechanism behind the
//! paper's 6 µs (16-core) and 80 µs (120-core) shootdowns.
//!
//! [`IpiFabric::multicast`] converts (initiator, target set, start time)
//! into a deterministic per-target delivery schedule the kernel turns into
//! events.

use crate::costs::CostModel;
use crate::cpumask::{CpuId, CpuMask};
use crate::topology::Topology;
use latr_sim::{Nanos, Time};

/// The delivery schedule of one multicast IPI, produced by
/// [`IpiFabric::multicast`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpiSchedule {
    /// When each target receives its interrupt, in target order
    /// (ascending CPU id, the order Linux iterates the cpumask).
    pub deliveries: Vec<(CpuId, Time)>,
    /// When the sender finishes programming the last ICR write and can
    /// proceed to wait for ACKs.
    pub sender_free: Time,
}

impl IpiSchedule {
    /// The latest delivery instant, or `sender_free` if there were no
    /// targets.
    pub fn last_delivery(&self) -> Time {
        self.deliveries
            .iter()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(self.sender_free)
    }
}

/// The IPI delivery fabric for one machine.
#[derive(Debug, Clone)]
pub struct IpiFabric {
    topology: Topology,
    costs: CostModel,
}

impl IpiFabric {
    /// Creates a fabric over the given topology and cost model.
    pub fn new(topology: Topology, costs: CostModel) -> Self {
        IpiFabric { topology, costs }
    }

    /// The topology this fabric routes over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost model in use.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Computes the delivery schedule for a multicast from `initiator` to
    /// every CPU in `targets` (the initiator itself is skipped if present),
    /// starting at `start`.
    pub fn multicast(&self, initiator: CpuId, targets: &CpuMask, start: Time) -> IpiSchedule {
        let mut deliveries = Vec::with_capacity(targets.count());
        let mut send_clock = start;
        for target in targets.iter() {
            if target == initiator {
                continue;
            }
            let hops = self.topology.cpu_hops(initiator, target);
            send_clock += self.costs.ipi_send(hops);
            let delivered = send_clock + self.costs.ipi_wire(hops);
            deliveries.push((target, delivered));
        }
        IpiSchedule {
            deliveries,
            sender_free: send_clock,
        }
    }

    /// ACK latency from `responder` back to `initiator` (a cache-line
    /// transfer via the coherence protocol).
    pub fn ack_latency(&self, initiator: CpuId, responder: CpuId) -> Nanos {
        self.costs.ack(self.topology.cpu_hops(initiator, responder))
    }

    /// Latency for a plain cache-line write by `writer` to become visible
    /// to `reader` — how Latr states propagate (§4.1: "the state updates
    /// are available to all other cores using the cache-coherence
    /// protocol").
    pub fn coherence_latency(&self, writer: CpuId, reader: CpuId) -> Nanos {
        self.costs.ack(self.topology.cpu_hops(writer, reader))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachinePreset;

    fn fabric(preset: MachinePreset) -> IpiFabric {
        IpiFabric::new(Topology::preset(preset), CostModel::calibrated())
    }

    #[test]
    fn empty_multicast_is_free() {
        let f = fabric(MachinePreset::Commodity2S16C);
        let s = f.multicast(CpuId(0), &CpuMask::empty(), Time::from_ns(100));
        assert!(s.deliveries.is_empty());
        assert_eq!(s.sender_free, Time::from_ns(100));
        assert_eq!(s.last_delivery(), Time::from_ns(100));
    }

    #[test]
    fn initiator_is_skipped() {
        let f = fabric(MachinePreset::Commodity2S16C);
        let mut m = CpuMask::empty();
        m.set(CpuId(0));
        m.set(CpuId(1));
        let s = f.multicast(CpuId(0), &m, Time::ZERO);
        assert_eq!(s.deliveries.len(), 1);
        assert_eq!(s.deliveries[0].0, CpuId(1));
    }

    #[test]
    fn sends_serialize_at_sender() {
        let f = fabric(MachinePreset::Commodity2S16C);
        let m = CpuMask::first_n(16);
        let s = f.multicast(CpuId(0), &m, Time::ZERO);
        assert_eq!(s.deliveries.len(), 15);
        // Deliveries to successive same-socket targets are spaced by at
        // least the send serialization cost.
        let d1 = s.deliveries[0].1;
        let d2 = s.deliveries[1].1;
        assert!(d2 - d1 >= f.costs().ipi_send_same_socket);
        // Sender stays busy for the whole send train.
        assert!(s.sender_free.as_ns() >= 15 * f.costs().ipi_send_same_socket);
    }

    #[test]
    fn cross_socket_delivery_is_slower() {
        let f = fabric(MachinePreset::Commodity2S16C);
        let mut near = CpuMask::empty();
        near.set(CpuId(1));
        let mut far = CpuMask::empty();
        far.set(CpuId(9)); // other socket
        let sn = f.multicast(CpuId(0), &near, Time::ZERO);
        let sf = f.multicast(CpuId(0), &far, Time::ZERO);
        assert!(sf.deliveries[0].1 > sn.deliveries[0].1);
    }

    #[test]
    fn sixteen_core_schedule_is_about_6us() {
        let f = fabric(MachinePreset::Commodity2S16C);
        let s = f.multicast(CpuId(0), &CpuMask::first_n(16), Time::ZERO);
        let last = s.last_delivery().as_ns();
        // Delivery alone (without handler + ACK) is a bit under the paper's
        // 6 µs end-to-end number.
        assert!((4_000..6_500).contains(&last), "last delivery {last}");
    }

    #[test]
    fn hundred_twenty_core_schedule_is_about_80us() {
        let f = fabric(MachinePreset::LargeNuma8S120C);
        let s = f.multicast(CpuId(0), &CpuMask::first_n(120), Time::ZERO);
        let last = s.last_delivery().as_ns();
        assert!((65_000..90_000).contains(&last), "last delivery {last}");
    }

    #[test]
    fn ack_and_coherence_latencies() {
        let f = fabric(MachinePreset::Commodity2S16C);
        assert_eq!(f.ack_latency(CpuId(0), CpuId(1)), f.costs().ack_same_socket);
        assert_eq!(
            f.ack_latency(CpuId(0), CpuId(9)),
            f.costs().ack_cross_socket
        );
        assert_eq!(
            f.coherence_latency(CpuId(0), CpuId(9)),
            f.costs().ack_cross_socket
        );
    }
}
