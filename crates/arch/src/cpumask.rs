//! CPU identifiers and bitmasks.
//!
//! [`CpuMask`] is the structure at the heart of both the kernel's
//! `mm_cpumask` (which CPUs have a process active) and each Latr state's
//! "CPUs still to invalidate" field (§4.1 of the paper). It supports up to
//! [`MAX_CPUS`] CPUs — enough for the paper's 120-core machine with room to
//! spare.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of CPUs a [`CpuMask`] can represent.
pub const MAX_CPUS: usize = 256;

const WORDS: usize = MAX_CPUS / 64;

/// Index of a logical CPU (hardware thread); dense from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CpuId(pub u16);

impl CpuId {
    /// The CPU index as a `usize` for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A fixed-size bitmask over CPUs.
///
/// ```
/// use latr_arch::{CpuId, CpuMask};
/// let mut m = CpuMask::empty();
/// m.set(CpuId(3));
/// m.set(CpuId(120));
/// assert_eq!(m.count(), 2);
/// assert!(m.test(CpuId(3)));
/// m.clear(CpuId(3));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![CpuId(120)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CpuMask {
    words: [u64; WORDS],
}

impl CpuMask {
    /// The empty mask.
    pub const fn empty() -> Self {
        CpuMask { words: [0; WORDS] }
    }

    /// A mask with CPUs `0..n` set.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CPUS`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_CPUS, "mask supports at most {MAX_CPUS} cpus");
        let mut m = CpuMask::empty();
        for i in 0..n {
            m.set(CpuId(i as u16));
        }
        m
    }

    /// Builds a mask from an iterator of CPU ids.
    pub fn from_cpus<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        let mut m = CpuMask::empty();
        for c in iter {
            m.set(c);
        }
        m
    }

    #[inline]
    fn locate(cpu: CpuId) -> (usize, u64) {
        let i = cpu.index();
        assert!(i < MAX_CPUS, "cpu {} out of range", i);
        (i / 64, 1u64 << (i % 64))
    }

    /// Sets the bit for `cpu`.
    #[inline]
    pub fn set(&mut self, cpu: CpuId) {
        let (w, b) = Self::locate(cpu);
        self.words[w] |= b;
    }

    /// Clears the bit for `cpu`.
    #[inline]
    pub fn clear(&mut self, cpu: CpuId) {
        let (w, b) = Self::locate(cpu);
        self.words[w] &= !b;
    }

    /// Whether the bit for `cpu` is set.
    #[inline]
    pub fn test(&self, cpu: CpuId) -> bool {
        let (w, b) = Self::locate(cpu);
        self.words[w] & b != 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The lowest set CPU, if any.
    pub fn first(&self) -> Option<CpuId> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(CpuId((w * 64 + word.trailing_zeros() as usize) as u16));
            }
        }
        None
    }

    /// Set-union with `other`.
    pub fn union(&self, other: &CpuMask) -> CpuMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        out
    }

    /// Set-intersection with `other`.
    pub fn intersect(&self, other: &CpuMask) -> CpuMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        out
    }

    /// Bits set in `self` but not in `other`.
    pub fn difference(&self, other: &CpuMask) -> CpuMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        out
    }

    /// Removes all bits, leaving the mask empty.
    pub fn reset(&mut self) {
        self.words = [0; WORDS];
    }

    /// Iterates over set CPU ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            mask: self,
            word: 0,
            bits: self.words[0],
        }
    }
}

/// Iterator over the set bits of a [`CpuMask`], produced by
/// [`CpuMask::iter`].
pub struct Iter<'a> {
    mask: &'a CpuMask,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = CpuId;

    fn next(&mut self) -> Option<CpuId> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(CpuId((self.word * 64 + bit) as u16));
            }
            self.word += 1;
            if self.word >= WORDS {
                return None;
            }
            self.bits = self.mask.words[self.word];
        }
    }
}

impl FromIterator<CpuId> for CpuMask {
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        CpuMask::from_cpus(iter)
    }
}

impl fmt::Debug for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuMask{{")?;
        let mut first = true;
        for cpu in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", cpu.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut m = CpuMask::empty();
        for i in [0u16, 1, 63, 64, 127, 128, 255] {
            assert!(!m.test(CpuId(i)));
            m.set(CpuId(i));
            assert!(m.test(CpuId(i)));
        }
        assert_eq!(m.count(), 7);
        for i in [0u16, 1, 63, 64, 127, 128, 255] {
            m.clear(CpuId(i));
            assert!(!m.test(CpuId(i)));
        }
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut m = CpuMask::empty();
        m.set(CpuId(256));
    }

    #[test]
    fn first_n_sets_prefix() {
        let m = CpuMask::first_n(120);
        assert_eq!(m.count(), 120);
        assert!(m.test(CpuId(0)));
        assert!(m.test(CpuId(119)));
        assert!(!m.test(CpuId(120)));
    }

    #[test]
    fn first_n_zero_is_empty() {
        assert!(CpuMask::first_n(0).is_empty());
        assert_eq!(CpuMask::first_n(0).first(), None);
    }

    #[test]
    fn iter_ascending_across_words() {
        let m: CpuMask = [5u16, 70, 150, 200].into_iter().map(CpuId).collect();
        let got: Vec<u16> = m.iter().map(|c| c.0).collect();
        assert_eq!(got, vec![5, 70, 150, 200]);
    }

    #[test]
    fn first_finds_lowest() {
        let m = CpuMask::from_cpus([CpuId(130), CpuId(64)]);
        assert_eq!(m.first(), Some(CpuId(64)));
    }

    #[test]
    fn set_algebra() {
        let a = CpuMask::from_cpus([CpuId(1), CpuId(2)]);
        let b = CpuMask::from_cpus([CpuId(2), CpuId(3)]);
        assert_eq!(
            a.union(&b),
            CpuMask::from_cpus([CpuId(1), CpuId(2), CpuId(3)])
        );
        assert_eq!(a.intersect(&b), CpuMask::from_cpus([CpuId(2)]));
        assert_eq!(a.difference(&b), CpuMask::from_cpus([CpuId(1)]));
    }

    #[test]
    fn reset_empties() {
        let mut m = CpuMask::first_n(10);
        m.reset();
        assert!(m.is_empty());
    }

    #[test]
    fn debug_lists_cpus() {
        let m = CpuMask::from_cpus([CpuId(1), CpuId(5)]);
        assert_eq!(format!("{m:?}"), "CpuMask{1,5}");
        assert_eq!(format!("{:?}", CpuMask::empty()), "CpuMask{}");
    }
}
