//! Machine topology: sockets, cores, NUMA nodes, QPI hop distances.
//!
//! The paper evaluates on two machines (Table 3):
//!
//! | | Commodity data center | Large NUMA |
//! |---|---|---|
//! | Model | E5-2630 v3 | E7-8870 v2 |
//! | Cores | 16 (8 × 2 sockets) | 120 (15 × 8 sockets) |
//! | L1 D-TLB | 64 entries | 64 entries |
//! | L2 TLB | 1024 entries | 512 entries |
//!
//! Both are exposed as [`MachinePreset`]s. The 8-socket machine's QPI fabric
//! is modelled as a twisted hypercube: each socket has three direct links;
//! any other socket is two hops away. This is what produces the paper's
//! observation that IPIs "need two hops to reach the destination CPU" beyond
//! three sockets (Fig. 7).

use crate::cpumask::{CpuId, CpuMask, MAX_CPUS};
use serde::{Deserialize, Serialize};

/// Index of a CPU socket (package).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SocketId(pub u8);

/// Index of a NUMA memory node. On both paper machines nodes and sockets
/// coincide.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u8);

/// The two evaluation machines from Table 3 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MachinePreset {
    /// 2-socket, 16-core Xeon E5-2630 v3 — "a widely used configuration in
    /// modern data centers".
    Commodity2S16C,
    /// 8-socket, 120-core Xeon E7-8870 v2 — the large NUMA machine.
    LargeNuma8S120C,
}

/// Physical layout of the simulated machine.
///
/// ```
/// use latr_arch::{Topology, MachinePreset, CpuId};
/// let t = Topology::preset(MachinePreset::Commodity2S16C);
/// assert_eq!(t.num_cpus(), 16);
/// assert_eq!(t.num_sockets(), 2);
/// assert_eq!(t.socket_of(CpuId(0)), t.socket_of(CpuId(7)));
/// assert_ne!(t.socket_of(CpuId(0)), t.socket_of(CpuId(8)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: u8,
    cores_per_socket: u16,
    l1_dtlb_entries: u16,
    l2_tlb_entries: u16,
    ram_gb: u32,
    llc_mb_per_socket: u32,
}

impl Topology {
    /// Builds an arbitrary topology.
    ///
    /// # Panics
    ///
    /// Panics if the machine would exceed [`MAX_CPUS`] CPUs or has no cores.
    pub fn new(sockets: u8, cores_per_socket: u16) -> Self {
        let total = sockets as usize * cores_per_socket as usize;
        assert!(total > 0, "machine must have at least one core");
        assert!(total <= MAX_CPUS, "machine exceeds {MAX_CPUS} cpus");
        Topology {
            sockets,
            cores_per_socket,
            l1_dtlb_entries: 64,
            l2_tlb_entries: 1024,
            ram_gb: 128,
            llc_mb_per_socket: 20,
        }
    }

    /// One of the paper's Table 3 machines.
    pub fn preset(preset: MachinePreset) -> Self {
        match preset {
            MachinePreset::Commodity2S16C => Topology {
                sockets: 2,
                cores_per_socket: 8,
                l1_dtlb_entries: 64,
                l2_tlb_entries: 1024,
                ram_gb: 128,
                llc_mb_per_socket: 20,
            },
            MachinePreset::LargeNuma8S120C => Topology {
                sockets: 8,
                cores_per_socket: 15,
                l1_dtlb_entries: 64,
                l2_tlb_entries: 512,
                ram_gb: 768,
                llc_mb_per_socket: 30,
            },
        }
    }

    /// Total number of logical CPUs (hyperthreading is disabled, as in the
    /// paper).
    #[inline]
    pub fn num_cpus(&self) -> usize {
        self.sockets as usize * self.cores_per_socket as usize
    }

    /// Number of sockets (= NUMA nodes).
    #[inline]
    pub fn num_sockets(&self) -> usize {
        self.sockets as usize
    }

    /// Number of NUMA memory nodes (one per socket on both paper machines).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_sockets()
    }

    /// L1 D-TLB capacity per core (entries).
    #[inline]
    pub fn l1_dtlb_entries(&self) -> u16 {
        self.l1_dtlb_entries
    }

    /// L2 TLB capacity per core (entries).
    #[inline]
    pub fn l2_tlb_entries(&self) -> u16 {
        self.l2_tlb_entries
    }

    /// Installed RAM in GiB.
    #[inline]
    pub fn ram_gb(&self) -> u32 {
        self.ram_gb
    }

    /// Last-level cache size per socket in MiB.
    #[inline]
    pub fn llc_mb_per_socket(&self) -> u32 {
        self.llc_mb_per_socket
    }

    /// The socket a CPU belongs to. CPUs are numbered socket-major:
    /// socket 0 holds CPUs `0..cores_per_socket`, and so on.
    #[inline]
    pub fn socket_of(&self, cpu: CpuId) -> SocketId {
        debug_assert!(cpu.index() < self.num_cpus());
        SocketId((cpu.index() / self.cores_per_socket as usize) as u8)
    }

    /// The NUMA node a CPU belongs to.
    #[inline]
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        NodeId(self.socket_of(cpu).0)
    }

    /// All CPUs of one socket, lowest first.
    pub fn cpus_of_socket(&self, socket: SocketId) -> impl Iterator<Item = CpuId> + '_ {
        let base = socket.0 as usize * self.cores_per_socket as usize;
        (base..base + self.cores_per_socket as usize).map(|i| CpuId(i as u16))
    }

    /// A mask of the first `n` CPUs, the convention all experiments use for
    /// "running on n cores".
    pub fn cpu_mask_first(&self, n: usize) -> CpuMask {
        assert!(n <= self.num_cpus());
        CpuMask::first_n(n)
    }

    /// Number of QPI hops between two sockets.
    ///
    /// * same socket → 0;
    /// * 2-socket machine → 1 between the sockets;
    /// * 8-socket machine → sockets form a twisted hypercube where each
    ///   socket is directly linked to three others (those whose index
    ///   differs in exactly one of the three bits); everything else is two
    ///   hops. This matches the paper's observation that the APIC needs two
    ///   hops beyond three sockets.
    pub fn socket_hops(&self, a: SocketId, b: SocketId) -> u8 {
        if a == b {
            return 0;
        }
        if self.sockets <= 2 {
            return 1;
        }
        let xor = (a.0 ^ b.0) as u32;
        if xor.count_ones() == 1 {
            1
        } else {
            2
        }
    }

    /// Number of QPI hops between the sockets of two CPUs.
    #[inline]
    pub fn cpu_hops(&self, a: CpuId, b: CpuId) -> u8 {
        self.socket_hops(self.socket_of(a), self.socket_of(b))
    }

    /// Whether two CPUs share a socket (and therefore an LLC).
    #[inline]
    pub fn same_socket(&self, a: CpuId, b: CpuId) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_preset_matches_table3() {
        let t = Topology::preset(MachinePreset::Commodity2S16C);
        assert_eq!(t.num_cpus(), 16);
        assert_eq!(t.num_sockets(), 2);
        assert_eq!(t.l1_dtlb_entries(), 64);
        assert_eq!(t.l2_tlb_entries(), 1024);
        assert_eq!(t.ram_gb(), 128);
        assert_eq!(t.llc_mb_per_socket(), 20);
    }

    #[test]
    fn large_numa_preset_matches_table3() {
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        assert_eq!(t.num_cpus(), 120);
        assert_eq!(t.num_sockets(), 8);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.l2_tlb_entries(), 512);
        assert_eq!(t.ram_gb(), 768);
        assert_eq!(t.llc_mb_per_socket(), 30);
    }

    #[test]
    fn socket_major_cpu_numbering() {
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        assert_eq!(t.socket_of(CpuId(0)), SocketId(0));
        assert_eq!(t.socket_of(CpuId(14)), SocketId(0));
        assert_eq!(t.socket_of(CpuId(15)), SocketId(1));
        assert_eq!(t.socket_of(CpuId(119)), SocketId(7));
    }

    #[test]
    fn cpus_of_socket_are_contiguous() {
        let t = Topology::preset(MachinePreset::Commodity2S16C);
        let cpus: Vec<u16> = t.cpus_of_socket(SocketId(1)).map(|c| c.0).collect();
        assert_eq!(cpus, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn two_socket_hops() {
        let t = Topology::preset(MachinePreset::Commodity2S16C);
        assert_eq!(t.socket_hops(SocketId(0), SocketId(0)), 0);
        assert_eq!(t.socket_hops(SocketId(0), SocketId(1)), 1);
        assert!(t.same_socket(CpuId(0), CpuId(1)));
        assert!(!t.same_socket(CpuId(0), CpuId(9)));
    }

    #[test]
    fn eight_socket_hypercube_hops() {
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        // Direct neighbours differ in one bit.
        assert_eq!(t.socket_hops(SocketId(0), SocketId(1)), 1);
        assert_eq!(t.socket_hops(SocketId(0), SocketId(2)), 1);
        assert_eq!(t.socket_hops(SocketId(0), SocketId(4)), 1);
        // Everything else is two hops.
        assert_eq!(t.socket_hops(SocketId(0), SocketId(3)), 2);
        assert_eq!(t.socket_hops(SocketId(0), SocketId(7)), 2);
        assert_eq!(t.socket_hops(SocketId(5), SocketId(2)), 2);
    }

    #[test]
    fn hops_are_symmetric() {
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        for a in 0..8u8 {
            for b in 0..8u8 {
                assert_eq!(
                    t.socket_hops(SocketId(a), SocketId(b)),
                    t.socket_hops(SocketId(b), SocketId(a))
                );
            }
        }
    }

    #[test]
    fn cpu_hops_follow_sockets() {
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        assert_eq!(t.cpu_hops(CpuId(0), CpuId(1)), 0);
        assert_eq!(t.cpu_hops(CpuId(0), CpuId(16)), 1);
        // CPU 60 is on socket 4; 0 ^ 4 has one bit set → direct link.
        assert_eq!(t.cpu_hops(CpuId(0), CpuId(60)), 1);
    }

    #[test]
    fn cpu_hops_two_hop_example() {
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        // CPU 45 is on socket 3; 0 ^ 3 has two bits set → 2 hops.
        assert_eq!(t.socket_of(CpuId(45)), SocketId(3));
        assert_eq!(t.cpu_hops(CpuId(0), CpuId(45)), 2);
    }

    #[test]
    fn custom_topology_bounds() {
        let t = Topology::new(4, 4);
        assert_eq!(t.num_cpus(), 16);
        assert_eq!(t.socket_hops(SocketId(0), SocketId(3)), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_topology_panics() {
        let _ = Topology::new(8, 64);
    }

    #[test]
    fn cpu_mask_first_prefix() {
        let t = Topology::preset(MachinePreset::Commodity2S16C);
        let m = t.cpu_mask_first(12);
        assert_eq!(m.count(), 12);
        assert!(m.test(CpuId(11)));
        assert!(!m.test(CpuId(12)));
    }
}
