//! Per-core TLB model.
//!
//! A two-level, set-associative TLB with LRU replacement and optional PCID
//! (process-context identifier) tagging, mirroring the structures in
//! Table 3: a 64-entry L1 D-TLB and a 512/1024-entry L2 TLB per core.
//!
//! The TLB maps `(pcid, vpn)` to a physical frame number. Keeping the frame
//! number in the entry is what lets the test suite check the paper's central
//! invariant — that no frame is reused while any core still caches a
//! translation to it (§3).
//!
//! Virtual page numbers and physical frame numbers are raw `u64`s at this
//! layer; the memory crate wraps them in newtypes.

use serde::{Deserialize, Serialize};

/// PCID value used when process-context identifiers are disabled
/// (Linux 4.10's default, §4.5).
pub const PCID_NONE: u16 = 0;

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbEntry {
    /// Process-context identifier tag ([`PCID_NONE`] when unused).
    pub pcid: u16,
    /// Virtual page number.
    pub vpn: u64,
    /// Physical frame number the translation resolves to.
    pub pfn: u64,
    /// Whether the cached translation allows writes.
    pub writable: bool,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    entry: TlbEntry,
    valid: bool,
    last_use: u64,
}

const INVALID_SLOT: Slot = Slot {
    entry: TlbEntry {
        pcid: 0,
        vpn: 0,
        pfn: 0,
        writable: false,
    },
    valid: false,
    last_use: 0,
};

/// Hit/miss/flush counters for one TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit in L1.
    pub l1_hits: u64,
    /// Lookups that missed L1 but hit L2.
    pub l2_hits: u64,
    /// Lookups that missed both levels.
    pub misses: u64,
    /// Single-page invalidations performed.
    pub invalidations: u64,
    /// Full flushes performed.
    pub full_flushes: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Fraction of lookups that missed both levels, or 0 when idle.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative array used for both TLB levels.
#[derive(Clone, Debug)]
struct SetAssoc {
    slots: Vec<Slot>,
    sets: usize,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (every real TLB shape),
    /// letting `set_range` mask instead of paying a division per probe;
    /// 0 otherwise, falling back to the modulo.
    set_mask: usize,
    /// Valid-entry count per PCID, grown on demand. `count(p) == 0`
    /// proves no valid slot is tagged `p`, which lets lookups,
    /// invalidations and PCID flushes for an uncached address space skip
    /// the set probe entirely — the common case for a sweeping core that
    /// never touched the publisher's pages. Pure accounting: slot
    /// contents, LRU state and statistics are unchanged by the skip.
    pcid_count: Vec<u32>,
}

impl SetAssoc {
    fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0 && entries.is_multiple_of(ways));
        let sets = entries / ways;
        SetAssoc {
            slots: vec![INVALID_SLOT; entries],
            sets,
            ways,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            pcid_count: Vec::new(),
        }
    }

    #[inline]
    fn count(&self, pcid: u16) -> u32 {
        self.pcid_count.get(pcid as usize).copied().unwrap_or(0)
    }

    #[inline]
    fn count_inc(&mut self, pcid: u16) {
        let i = pcid as usize;
        if i >= self.pcid_count.len() {
            self.pcid_count.resize(i + 1, 0);
        }
        self.pcid_count[i] += 1;
    }

    #[inline]
    fn count_dec(&mut self, pcid: u16) {
        self.pcid_count[pcid as usize] -= 1;
    }

    #[inline]
    fn set_range(&self, vpn: u64) -> std::ops::Range<usize> {
        // Simple hash to decorrelate strided workloads.
        let h = vpn.wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        let set = if self.set_mask != 0 {
            h as usize & self.set_mask
        } else {
            (h as usize) % self.sets
        };
        set * self.ways..(set + 1) * self.ways
    }

    fn lookup(&mut self, pcid: u16, vpn: u64, clock: u64) -> Option<TlbEntry> {
        if self.count(pcid) == 0 {
            return None;
        }
        let range = self.set_range(vpn);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.entry.vpn == vpn && slot.entry.pcid == pcid {
                slot.last_use = clock;
                return Some(slot.entry);
            }
        }
        None
    }

    /// Returns the valid entry of a *different* page this insert displaced,
    /// if any (a capacity eviction at this level).
    fn insert(&mut self, entry: TlbEntry, clock: u64) -> Option<TlbEntry> {
        let range = self.set_range(entry.vpn);
        // Replace an existing mapping of the same page first.
        let mut victim = range.start;
        let mut victim_use = u64::MAX;
        for i in range {
            let slot = &self.slots[i];
            if slot.valid && slot.entry.vpn == entry.vpn && slot.entry.pcid == entry.pcid {
                victim = i;
                break;
            }
            let use_score = if slot.valid { slot.last_use } else { 0 };
            if use_score < victim_use {
                victim_use = use_score;
                victim = i;
            }
        }
        let slot = &self.slots[victim];
        let displaced = (slot.valid
            && (slot.entry.vpn != entry.vpn || slot.entry.pcid != entry.pcid))
            .then_some(slot.entry);
        if slot.valid {
            let old = slot.entry.pcid;
            self.count_dec(old);
        }
        self.count_inc(entry.pcid);
        self.slots[victim] = Slot {
            entry,
            valid: true,
            last_use: clock,
        };
        displaced
    }

    fn invalidate(&mut self, pcid: u16, vpn: u64) -> bool {
        if self.count(pcid) == 0 {
            return false;
        }
        let mut cleared = 0u32;
        let range = self.set_range(vpn);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.entry.vpn == vpn && slot.entry.pcid == pcid {
                slot.valid = false;
                cleared += 1;
            }
        }
        self.pcid_count[pcid as usize] -= cleared;
        cleared > 0
    }

    fn flush_all(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
        }
        self.pcid_count.fill(0);
    }

    fn flush_pcid(&mut self, pcid: u16) {
        if self.count(pcid) == 0 {
            return;
        }
        for slot in &mut self.slots {
            if slot.valid && slot.entry.pcid == pcid {
                slot.valid = false;
            }
        }
        self.pcid_count[pcid as usize] = 0;
    }

    fn iter_valid(&self) -> impl Iterator<Item = &TlbEntry> {
        self.slots.iter().filter(|s| s.valid).map(|s| &s.entry)
    }
}

/// A per-core two-level TLB.
///
/// ```
/// use latr_arch::{Tlb, TlbEntry, PCID_NONE};
/// let mut tlb = Tlb::new(64, 1024);
/// let e = TlbEntry { pcid: PCID_NONE, vpn: 0x10, pfn: 0x99, writable: true };
/// assert!(tlb.lookup(PCID_NONE, 0x10).is_none()); // cold miss
/// tlb.insert(e);
/// assert_eq!(tlb.lookup(PCID_NONE, 0x10), Some(e)); // hit
/// tlb.invalidate_page(PCID_NONE, 0x10);
/// assert!(tlb.lookup(PCID_NONE, 0x10).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    l1: SetAssoc,
    l2: SetAssoc,
    clock: u64,
    stats: TlbStats,
    track_evictions: bool,
    evicted: Vec<TlbEntry>,
}

impl Tlb {
    /// Creates a TLB with the given L1 and L2 capacities (entries).
    /// L1 is 4-way; L2 is 8-way, matching contemporary Xeons.
    ///
    /// # Panics
    ///
    /// Panics if a level's capacity is zero or not divisible by its
    /// associativity.
    pub fn new(l1_entries: usize, l2_entries: usize) -> Self {
        Tlb {
            l1: SetAssoc::new(l1_entries, 4),
            l2: SetAssoc::new(l2_entries, 8),
            clock: 0,
            stats: TlbStats::default(),
            track_evictions: false,
            evicted: Vec::new(),
        }
    }

    /// Enables (or disables) capacity-eviction tracking. While enabled,
    /// entries that fall out of *both* levels record themselves in a log
    /// drained by [`take_evicted`](Self::take_evicted). Off by default —
    /// the coherence oracle turns it on so its shadow TLB mirror stays
    /// exact without scanning every slot per event.
    pub fn set_eviction_tracking(&mut self, on: bool) {
        self.track_evictions = on;
        if !on {
            self.evicted.clear();
        }
    }

    /// Drains the pending capacity-eviction log.
    pub fn take_evicted(&mut self) -> Vec<TlbEntry> {
        std::mem::take(&mut self.evicted)
    }

    /// Records `displaced` victims that are now absent from both levels.
    /// An L1 victim may well survive in L2 (the hierarchy is only mostly
    /// inclusive), so each candidate is re-probed before being logged.
    fn note_displaced(&mut self, displaced: [Option<TlbEntry>; 2]) {
        for e in displaced.into_iter().flatten() {
            if self.peek(e.pcid, e.vpn).is_none() {
                self.evicted.push(e);
            }
        }
    }

    /// Looks up a translation, promoting L2 hits into L1 and updating
    /// hit/miss statistics. Returns `None` on a full miss (the caller walks
    /// the page table and calls [`insert`](Self::insert)).
    pub fn lookup(&mut self, pcid: u16, vpn: u64) -> Option<TlbEntry> {
        self.clock += 1;
        if let Some(e) = self.l1.lookup(pcid, vpn, self.clock) {
            self.stats.l1_hits += 1;
            return Some(e);
        }
        if let Some(e) = self.l2.lookup(pcid, vpn, self.clock) {
            self.stats.l2_hits += 1;
            let displaced = self.l1.insert(e, self.clock);
            if self.track_evictions {
                self.note_displaced([displaced, None]);
            }
            return Some(e);
        }
        self.stats.misses += 1;
        None
    }

    /// Checks for a translation without touching LRU state or statistics.
    /// Used by invariant checkers and by ABIS's sharer-set lookup; probes
    /// only the two sets `vpn` can live in, so it is O(associativity).
    pub fn peek(&self, pcid: u16, vpn: u64) -> Option<TlbEntry> {
        for level in [&self.l1, &self.l2] {
            if level.count(pcid) == 0 {
                continue;
            }
            let found = level.slots[level.set_range(vpn)]
                .iter()
                .find(|s| s.valid && s.entry.vpn == vpn && s.entry.pcid == pcid);
            if let Some(slot) = found {
                return Some(slot.entry);
            }
        }
        None
    }

    /// Installs a translation into both levels (inclusive hierarchy).
    pub fn insert(&mut self, entry: TlbEntry) {
        self.clock += 1;
        let d1 = self.l1.insert(entry, self.clock);
        let d2 = self.l2.insert(entry, self.clock);
        if self.track_evictions {
            self.note_displaced([d1, d2]);
        }
    }

    /// Invalidates one page (`INVLPG`). Returns whether any entry was
    /// present.
    pub fn invalidate_page(&mut self, pcid: u16, vpn: u64) -> bool {
        self.stats.invalidations += 1;
        let a = self.l1.invalidate(pcid, vpn);
        let b = self.l2.invalidate(pcid, vpn);
        a || b
    }

    /// Flushes every entry (CR3 write without PCID).
    pub fn flush_all(&mut self) {
        self.stats.full_flushes += 1;
        self.l1.flush_all();
        self.l2.flush_all();
    }

    /// Flushes all entries tagged with `pcid`.
    pub fn flush_pcid(&mut self, pcid: u16) {
        self.stats.full_flushes += 1;
        self.l1.flush_pcid(pcid);
        self.l2.flush_pcid(pcid);
    }

    /// Iterates over every valid cached translation (both levels,
    /// duplicates possible). For invariant checking and debugging.
    pub fn iter_entries(&self) -> impl Iterator<Item = &TlbEntry> {
        self.l1.iter_valid().chain(self.l2.iter_valid())
    }

    /// Whether any level caches a translation to physical frame `pfn`.
    pub fn maps_frame(&self, pfn: u64) -> bool {
        self.iter_entries().any(|e| e.pfn == pfn)
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry {
            pcid: PCID_NONE,
            vpn,
            pfn: vpn + 1000,
            writable: true,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(64, 1024);
        assert!(tlb.lookup(PCID_NONE, 5).is_none());
        tlb.insert(entry(5));
        assert_eq!(tlb.lookup(PCID_NONE, 5).unwrap().pfn, 1005);
        let s = tlb.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut tlb = Tlb::new(64, 1024);
        // Fill way beyond L1 capacity so early entries fall out of L1 but
        // stay in L2.
        for v in 0..512 {
            tlb.insert(entry(v));
        }
        tlb.reset_stats();
        for v in 0..512 {
            assert!(tlb.lookup(PCID_NONE, v).is_some(), "vpn {v} lost");
        }
        let s = tlb.stats();
        assert_eq!(s.misses, 0);
        assert!(s.l2_hits > 0, "expected some L2 hits, got {s:?}");
    }

    #[test]
    fn capacity_eviction_causes_misses() {
        let mut tlb = Tlb::new(64, 512);
        for v in 0..4096 {
            tlb.insert(entry(v));
        }
        tlb.reset_stats();
        for v in 0..4096 {
            tlb.lookup(PCID_NONE, v);
        }
        assert!(tlb.stats().misses > 3000, "{:?}", tlb.stats());
    }

    #[test]
    fn invalidate_page_removes_from_both_levels() {
        let mut tlb = Tlb::new(64, 1024);
        tlb.insert(entry(7));
        assert!(tlb.invalidate_page(PCID_NONE, 7));
        assert!(tlb.peek(PCID_NONE, 7).is_none());
        assert!(!tlb.invalidate_page(PCID_NONE, 7)); // second time: nothing
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(64, 1024);
        for v in 0..32 {
            tlb.insert(entry(v));
        }
        tlb.flush_all();
        assert_eq!(tlb.iter_entries().count(), 0);
        assert_eq!(tlb.stats().full_flushes, 1);
    }

    #[test]
    fn pcid_isolation() {
        let mut tlb = Tlb::new(64, 1024);
        tlb.insert(TlbEntry {
            pcid: 1,
            vpn: 9,
            pfn: 100,
            writable: false,
        });
        tlb.insert(TlbEntry {
            pcid: 2,
            vpn: 9,
            pfn: 200,
            writable: false,
        });
        assert_eq!(tlb.lookup(1, 9).unwrap().pfn, 100);
        assert_eq!(tlb.lookup(2, 9).unwrap().pfn, 200);
        tlb.flush_pcid(1);
        assert!(tlb.peek(1, 9).is_none());
        assert_eq!(tlb.peek(2, 9).unwrap().pfn, 200);
    }

    #[test]
    fn maps_frame_sees_stale_translations() {
        let mut tlb = Tlb::new(64, 1024);
        tlb.insert(entry(3));
        assert!(tlb.maps_frame(1003));
        assert!(!tlb.maps_frame(999));
        tlb.invalidate_page(PCID_NONE, 3);
        assert!(!tlb.maps_frame(1003));
    }

    #[test]
    fn reinsert_same_page_updates_pfn() {
        let mut tlb = Tlb::new(64, 1024);
        tlb.insert(entry(4));
        tlb.insert(TlbEntry {
            pcid: PCID_NONE,
            vpn: 4,
            pfn: 777,
            writable: false,
        });
        assert_eq!(tlb.lookup(PCID_NONE, 4).unwrap().pfn, 777);
        // No duplicate entries for the same vpn within a level's set.
        let copies = tlb.iter_entries().filter(|e| e.vpn == 4).count();
        assert!(copies <= 2, "expected at most one per level, got {copies}");
    }

    #[test]
    fn stats_ratios() {
        let mut tlb = Tlb::new(64, 1024);
        tlb.insert(entry(1));
        tlb.lookup(PCID_NONE, 1);
        tlb.lookup(PCID_NONE, 2);
        let s = tlb.stats();
        assert_eq!(s.lookups(), 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0, 1024);
    }

    #[test]
    fn eviction_tracking_reports_exactly_the_fully_evicted() {
        let mut tlb = Tlb::new(64, 512);
        tlb.set_eviction_tracking(true);
        for v in 0..4096 {
            tlb.insert(entry(v));
        }
        let evicted = tlb.take_evicted();
        assert!(!evicted.is_empty(), "thrashing must evict something");
        // Every reported victim is really gone from both levels, and every
        // entry absent from both levels was reported exactly once.
        for e in &evicted {
            assert!(
                tlb.peek(e.pcid, e.vpn).is_none(),
                "vpn {} still cached",
                e.vpn
            );
        }
        let mut seen: Vec<u64> = evicted.iter().map(|e| e.vpn).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), evicted.len(), "a victim was double-reported");
        let survivors = (0..4096)
            .filter(|&v| tlb.peek(PCID_NONE, v).is_some())
            .count();
        assert_eq!(survivors + evicted.len(), 4096);
        // Draining leaves the log empty; disabling clears any remainder.
        assert!(tlb.take_evicted().is_empty());
        tlb.set_eviction_tracking(false);
        tlb.insert(entry(9999));
        assert!(tlb.take_evicted().is_empty());
    }

    #[test]
    fn l2_promotion_eviction_not_reported_while_entry_survives_in_l2() {
        let mut tlb = Tlb::new(64, 1024);
        tlb.set_eviction_tracking(true);
        // Overflow L1 (64 entries) but not L2 (1024): promotions displace
        // L1 slots whose entries still live in L2, so nothing is a *full*
        // eviction.
        for v in 0..512 {
            tlb.insert(entry(v));
        }
        tlb.take_evicted();
        for v in 0..512 {
            assert!(tlb.lookup(PCID_NONE, v).is_some());
        }
        assert!(
            tlb.take_evicted().is_empty(),
            "promotion displacements must not be reported while the victim survives in L2"
        );
    }
}
