//! The cost model: every latency the simulation charges, in nanoseconds.
//!
//! Constants are calibrated so the *simulated* Linux 4.10 baseline lands on
//! the paper's measured anchor points:
//!
//! * a 16-core (2-socket) TLB shootdown takes ≈ 6 µs and a 120-core
//!   (8-socket) one ≈ 80 µs (§1, Fig. 6/7);
//! * an `munmap()` of one page costs ≈ 8 µs on 16 cores under Linux and
//!   ≈ 2.4 µs under Latr (Fig. 6);
//! * a single shootdown's CPU time is ≈ 1594 ns under Linux, while saving a
//!   Latr state costs ≈ 132 ns and one state sweep ≈ 158 ns (Table 5);
//! * Linux full-flushes the TLB instead of invalidating page-by-page above
//!   33 invalidations (§4.1).
//!
//! The calibration tests at the bottom of this file pin those anchors so a
//! future constant tweak that breaks an anchor fails the test suite.

use crate::topology::Topology;
use latr_sim::{Nanos, MILLISECOND};
use serde::{Deserialize, Serialize};

/// All latency constants used by the simulation. Fields are public by
/// design: the cost model is passive configuration data, and ablation
/// benches tweak individual entries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- IPI fabric -------------------------------------------------------
    /// Sender-side cost to issue one IPI via the APIC ICR to a destination
    /// on the same socket. IPIs are unicast and serialize at the sender.
    pub ipi_send_same_socket: Nanos,
    /// Sender-side cost per IPI to a one-hop remote socket.
    pub ipi_send_one_hop: Nanos,
    /// Sender-side cost per IPI to a two-hop remote socket.
    pub ipi_send_two_hop: Nanos,
    /// Wire propagation delay for an IPI within a socket.
    pub ipi_wire_same_socket: Nanos,
    /// Additional wire propagation per QPI hop.
    pub ipi_wire_per_hop: Nanos,

    // ---- Interrupt handling ----------------------------------------------
    /// Remote-core interrupt entry + exit (vector dispatch, register save /
    /// restore, EOI).
    pub interrupt_overhead: Nanos,
    /// Maximum interrupt-disabled window on a *busy* remote core: IPI
    /// delivery is delayed by a uniform sample from `[0, this)` (§2.1:
    /// handling "might be delayed due to temporarily disabled
    /// interrupts"). Idle cores take the interrupt immediately.
    pub irq_disabled_max: Nanos,
    /// Cache-line transfer latency for the shootdown ACK within a socket.
    pub ack_same_socket: Nanos,
    /// Cache-line transfer latency for the ACK across sockets.
    pub ack_cross_socket: Nanos,

    // ---- TLB operations ----------------------------------------------------
    /// One `INVLPG` (single-page local TLB invalidation).
    pub invlpg: Nanos,
    /// Full local TLB flush (CR3 write).
    pub full_flush: Nanos,
    /// A TLB miss serviced by the page walker (4-level walk, warm caches).
    pub tlb_miss_walk: Nanos,
    /// Number of batched invalidations above which Linux (and Latr's sweep)
    /// full-flushes instead of invalidating page-by-page: half the L1 D-TLB.
    pub full_flush_threshold: u32,

    // ---- Syscall / VM paths -------------------------------------------------
    /// Syscall entry + exit.
    pub syscall_overhead: Nanos,
    /// Finding and updating the VMA tree for one `mmap`/`munmap` call.
    pub vma_op: Nanos,
    /// Clearing (or installing) one PTE, including the page-table walk.
    pub pte_op: Nanos,
    /// Freeing or allocating one physical frame in the allocator.
    pub frame_op: Nanos,
    /// Per-sharing-CPU bookkeeping on the munmap path (mm_cpumask scan,
    /// rmap/page-struct cache-line bounces) for a same-socket CPU.
    pub unmap_per_sharer_local: Nanos,
    /// Same, for a CPU one QPI hop away.
    pub unmap_per_sharer_one_hop: Nanos,
    /// Same, for a CPU two QPI hops away.
    pub unmap_per_sharer_two_hop: Nanos,
    /// Minor page fault (fault entry, PTE fixup, return).
    pub page_fault: Nanos,
    /// Copying one 4 KiB page (page migration, CoW break).
    pub page_copy: Nanos,
    /// Writing one page out to swap (async I/O submission side).
    pub swap_out: Nanos,
    /// Faulting one page back in from swap.
    pub swap_in: Nanos,
    /// Comparing two pages for deduplication (KSM-style checksum+memcmp).
    pub page_compare: Nanos,

    // ---- Scheduler ----------------------------------------------------------
    /// Scheduler tick period (1 ms on x86 Linux with HZ=1000).
    pub sched_tick_period: Nanos,
    /// Fixed work performed by the scheduler tick itself.
    pub sched_tick_work: Nanos,
    /// A context switch (register state, address-space switch).
    pub context_switch: Nanos,

    // ---- Latr ---------------------------------------------------------------
    /// Saving one Latr state into the per-core cyclic queue (Table 5:
    /// 132.3 ns).
    pub latr_state_save: Nanos,
    /// Sweeping the Latr states of one remote core's queue when at least one
    /// state is relevant (Table 5: 158 ns for a single state sweep).
    pub latr_sweep_hit: Nanos,
    /// Scanning one remote core's queue when nothing is active. The queues
    /// are contiguous and prefetch-friendly (§4.1) but half of them live in
    /// the other socket's LLC, so the scan is not free — this is what makes
    /// context-switch-heavy canneal ~1.7% slower under Latr (Fig. 10).
    pub latr_sweep_empty: Nanos,
    /// Number of Latr states per core (§4.1; 64 in the paper).
    pub latr_states_per_core: usize,
    /// Reclamation delay in scheduler ticks (§4.2; two ticks = 2 ms).
    pub latr_reclaim_ticks: u32,

    // ---- ABIS (baseline) -----------------------------------------------------
    /// Per-tracked-access overhead of ABIS's page-table access-bit
    /// maintenance (scan + atomic clear amortised per mapped page per
    /// unmap).
    pub abis_track_per_page: Nanos,
    /// ABIS's software bookkeeping to compute the sharer set on unmap.
    pub abis_sharer_lookup: Nanos,
}

impl CostModel {
    /// Default calibration (see module docs). Suitable for both machine
    /// presets; socket count only enters through the topology.
    pub fn calibrated() -> Self {
        CostModel {
            ipi_send_same_socket: 230,
            ipi_send_one_hop: 290,
            // Two-hop ICR writes stall the sender on a remote-APIC round
            // trip across two QPI links; this is what makes the 8-socket
            // machine's shootdowns an order of magnitude worse (Fig. 7).
            ipi_send_two_hop: 1_020,
            ipi_wire_same_socket: 400,
            ipi_wire_per_hop: 500,
            interrupt_overhead: 700,
            irq_disabled_max: 4_000,
            ack_same_socket: 150,
            ack_cross_socket: 350,
            invlpg: 120,
            full_flush: 500,
            tlb_miss_walk: 150,
            full_flush_threshold: 33,
            syscall_overhead: 480,
            vma_op: 620,
            pte_op: 210,
            frame_op: 140,
            unmap_per_sharer_local: 50,
            unmap_per_sharer_one_hop: 100,
            unmap_per_sharer_two_hop: 500,
            page_fault: 700,
            page_copy: 1_450,
            swap_out: 2_400,
            swap_in: 6_500,
            page_compare: 900,
            sched_tick_period: MILLISECOND,
            sched_tick_work: 380,
            context_switch: 1_300,
            latr_state_save: 132,
            latr_sweep_hit: 158,
            latr_sweep_empty: 40,
            latr_states_per_core: 64,
            latr_reclaim_ticks: 2,
            abis_track_per_page: 1_700,
            abis_sharer_lookup: 900,
        }
    }

    /// Sender-side serialization cost for one IPI to a destination `hops`
    /// QPI hops away.
    pub fn ipi_send(&self, hops: u8) -> Nanos {
        match hops {
            0 => self.ipi_send_same_socket,
            1 => self.ipi_send_one_hop,
            _ => self.ipi_send_two_hop,
        }
    }

    /// Wire propagation delay for an IPI over `hops` QPI hops.
    pub fn ipi_wire(&self, hops: u8) -> Nanos {
        self.ipi_wire_same_socket + self.ipi_wire_per_hop * hops as Nanos
    }

    /// ACK cache-line transfer latency back to the initiator.
    pub fn ack(&self, hops: u8) -> Nanos {
        if hops == 0 {
            self.ack_same_socket
        } else {
            self.ack_cross_socket
        }
    }

    /// Per-sharing-CPU bookkeeping cost on the unmap path.
    pub fn unmap_per_sharer(&self, hops: u8) -> Nanos {
        match hops {
            0 => self.unmap_per_sharer_local,
            1 => self.unmap_per_sharer_one_hop,
            _ => self.unmap_per_sharer_two_hop,
        }
    }

    /// Local TLB invalidation cost for `pages` pages, applying the
    /// full-flush threshold exactly as Linux does.
    pub fn local_invalidation(&self, pages: u32) -> Nanos {
        if pages > self.full_flush_threshold {
            self.full_flush
        } else {
            self.invlpg * pages as Nanos
        }
    }

    /// Analytic estimate of a Linux synchronous shootdown's initiator-side
    /// latency on `topology`, from CPU 0 to `targets` other CPUs (the
    /// prefix convention). Used by calibration tests and as documentation;
    /// the simulation reproduces this through actual events.
    pub fn estimate_linux_shootdown(&self, topology: &Topology, targets: usize) -> Nanos {
        use crate::cpumask::CpuId;
        let initiator = CpuId(0);
        let mut send_clock = 0;
        let mut last_ack = 0;
        for t in 1..=targets {
            let target = CpuId(t as u16);
            let hops = topology.cpu_hops(initiator, target);
            send_clock += self.ipi_send(hops);
            let delivered = send_clock + self.ipi_wire(hops);
            let ack = delivered + self.interrupt_overhead + self.invlpg + self.ack(hops);
            last_ack = last_ack.max(ack);
        }
        last_ack.max(send_clock)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachinePreset;

    #[test]
    fn anchor_16_core_shootdown_is_about_6us() {
        let cm = CostModel::calibrated();
        let t = Topology::preset(MachinePreset::Commodity2S16C);
        let ns = cm.estimate_linux_shootdown(&t, 15);
        assert!(
            (5_000..7_500).contains(&ns),
            "16-core shootdown {ns} ns not ≈ 6 µs"
        );
    }

    #[test]
    fn anchor_120_core_shootdown_is_about_80us() {
        let cm = CostModel::calibrated();
        let t = Topology::preset(MachinePreset::LargeNuma8S120C);
        let ns = cm.estimate_linux_shootdown(&t, 119);
        assert!(
            (68_000..92_000).contains(&ns),
            "120-core shootdown {ns} ns not ≈ 80 µs"
        );
    }

    #[test]
    fn anchor_2_core_ipi_is_microseconds() {
        // The paper quotes 2.7 µs for an IPI round trip at 16 cores /
        // 2 sockets; a single cross-socket IPI + ACK should be over a
        // microsecond but well under that.
        let cm = CostModel::calibrated();
        let t = Topology::preset(MachinePreset::Commodity2S16C);
        let ns = cm.estimate_linux_shootdown(&t, 1);
        assert!((1_000..3_000).contains(&ns), "single-target {ns}");
    }

    #[test]
    fn anchor_table5_constants() {
        let cm = CostModel::calibrated();
        assert_eq!(cm.latr_state_save, 132);
        assert_eq!(cm.latr_sweep_hit, 158);
        // Linux per-shootdown CPU time ≈ 1594 ns (Table 5): one IPI send +
        // interrupt handling + invalidation + ACK receipt on the 2-socket
        // machine. Wire propagation overlaps and is not CPU time.
        let linux_cpu_time = cm.ipi_send(1) + cm.interrupt_overhead + cm.invlpg + cm.ack(1);
        assert!(
            (1_400..1_900).contains(&linux_cpu_time),
            "Linux single shootdown CPU time {linux_cpu_time}"
        );
    }

    #[test]
    fn full_flush_threshold_matches_linux() {
        let cm = CostModel::calibrated();
        assert_eq!(cm.full_flush_threshold, 33);
        assert_eq!(cm.local_invalidation(1), cm.invlpg);
        assert_eq!(cm.local_invalidation(33), 33 * cm.invlpg);
        assert_eq!(cm.local_invalidation(34), cm.full_flush);
    }

    #[test]
    fn ipi_send_monotone_in_hops() {
        let cm = CostModel::calibrated();
        assert!(cm.ipi_send(0) < cm.ipi_send(1));
        assert!(cm.ipi_send(1) < cm.ipi_send(2));
        assert!(cm.ipi_wire(0) < cm.ipi_wire(1));
        assert!(cm.ack(0) < cm.ack(1));
        assert_eq!(cm.ack(1), cm.ack(2));
    }

    #[test]
    fn unmap_sharer_costs_monotone() {
        let cm = CostModel::calibrated();
        assert!(cm.unmap_per_sharer(0) < cm.unmap_per_sharer(1));
        assert!(cm.unmap_per_sharer(1) < cm.unmap_per_sharer(2));
    }

    #[test]
    fn latr_defaults_match_paper() {
        let cm = CostModel::calibrated();
        assert_eq!(cm.latr_states_per_core, 64);
        assert_eq!(cm.latr_reclaim_ticks, 2);
        assert_eq!(cm.sched_tick_period, MILLISECOND);
    }
}
