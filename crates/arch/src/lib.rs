//! # latr-arch — hardware model
//!
//! Parameterised models of the hardware structures the Latr paper's results
//! depend on:
//!
//! * [`CpuMask`] — fixed-size CPU bitmask (up to 256 CPUs), the same
//!   structure Latr states embed;
//! * [`Topology`] — socket/core/NUMA layout with QPI hop distances,
//!   including presets for the paper's two evaluation machines (Table 3);
//! * [`CostModel`] — every latency constant the simulation charges,
//!   calibrated against the paper's measured numbers (see `costs`);
//! * [`Tlb`] — per-core set-associative TLB with PCID tags and LRU
//!   replacement;
//! * [`IpiFabric`] — APIC/QPI inter-processor-interrupt latency model;
//! * [`LlcModel`] — last-level-cache access/miss accounting used for
//!   Table 4.
//!
//! Everything here is deterministic and free of I/O; the kernel crate wires
//! these models into the discrete-event loop.

mod cache;
mod costs;
mod cpumask;
mod ipi;
mod tlb;
mod topology;

pub use cache::{CacheStats, LlcModel};
pub use costs::CostModel;
pub use cpumask::{CpuId, CpuMask, MAX_CPUS};
pub use ipi::{IpiFabric, IpiSchedule};
pub use tlb::{Tlb, TlbEntry, TlbStats, PCID_NONE};
pub use topology::{MachinePreset, NodeId, SocketId, Topology};
