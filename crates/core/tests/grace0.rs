use latr_core::rt::{RtRegistry, ShardedReclaimer};

#[test]
fn grace_zero_defer_after_collect_is_collectable_at_quiescence() {
    let reg = RtRegistry::new(1, 8);
    let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(0, 1);
    // Collect at frontier 0 drains bucket 0 and bumps next_due to 1.
    assert!(rec.collect(&reg, 0).is_empty());
    // grace=0 defer: due = tick_of(0) + 0 = 0, bumped to next_due = 1.
    rec.defer(&reg, 0, 42);
    // min_tick is already >= due(0): reference engine would hand it back now.
    reg.advance_frontier();
    let got = rec.collect(&reg, 0);
    assert_eq!(
        got,
        vec![42],
        "item parked past its due; pending={}",
        rec.pending_count()
    );
}
