//! Property test for the fast-sweep visit set (ISSUE 4 satellite).
//!
//! The pending-bitmap sweep is only correct if, for *any* interleaving of
//! publishes, sweeps, out-of-band mask clears (watchdog escalations,
//! task exits) and retirements, a CPU's bitmap row covers every queue the
//! reference full scan would find relevant — bits may be stale-set (a
//! visit that finds nothing) but never stale-clear (a missed
//! invalidation). This drives `StateQueue` + `PendingSweepMap` directly
//! with random op sequences and checks the visit set against the full
//! scan at every sweep; the end-to-end consequence (bit-identical event
//! streams) is covered by `tests/differential.rs` at the workspace root.

use latr_arch::{CpuId, CpuMask};
use latr_core::{LatrState, PendingSweepMap, StateKind, StateQueue};
use latr_mem::{MmId, VaRange, Vpn};
use latr_sim::Time;
use proptest::prelude::*;
use std::collections::BTreeSet;

const NCPUS: usize = 8;
const SLOTS: usize = 4; // tiny queues make overflow + reuse frequent

#[derive(Debug, Clone)]
enum Op {
    /// CPU `publisher` publishes a state targeting the CPUs in the
    /// bitmask (bit i = CPU i), as a Free or Migration state.
    Publish {
        publisher: u16,
        targets: u8,
        migration: bool,
    },
    /// CPU sweeps: visit the queues in its pending row, clear its bit.
    Sweep(u16),
    /// Out-of-band clear of one CPU's bit everywhere (watchdog / sync
    /// completion / task exit). Creates stale-set pending bits.
    ClearEverywhere(u16),
    /// Retire completed states in one queue (the watchdog's targeted
    /// retire path).
    Retire(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let cpu = 0u16..NCPUS as u16;
    let publish =
        (cpu.clone(), 0u16..256, 0u16..2).prop_map(|(publisher, targets, migration)| Op::Publish {
            publisher,
            targets: targets as u8,
            migration: migration == 1,
        });
    // The vendored prop_oneof! has no weight syntax; repeating the arms
    // biases toward publish/sweep so interleavings stay dense.
    prop::collection::vec(
        prop_oneof![
            publish.clone(),
            publish.clone(),
            publish,
            cpu.clone().prop_map(Op::Sweep),
            cpu.clone().prop_map(Op::Sweep),
            cpu.clone().prop_map(Op::Sweep),
            cpu.clone().prop_map(Op::ClearEverywhere),
            cpu.prop_map(Op::Retire),
        ],
        0..300,
    )
}

/// The queues the reference full scan would find relevant for `cpu`.
fn reference_visit_set(queues: &[StateQueue], cpu: CpuId) -> BTreeSet<usize> {
    queues
        .iter()
        .enumerate()
        .filter(|(_, q)| q.iter_active().any(|s| s.cpus.test(cpu)))
        .map(|(qi, _)| qi)
        .collect()
}

proptest! {
    #[test]
    fn pending_row_covers_exactly_the_reference_scan(ops in ops()) {
        let mut queues: Vec<StateQueue> = (0..NCPUS).map(|_| StateQueue::new(SLOTS)).collect();
        let mut pending = PendingSweepMap::new();
        pending.ensure(NCPUS);
        let mut next_id = 0u64;
        let mut next_vpn = 0x1000u64;
        for op in ops {
            match op {
                Op::Publish { publisher, targets, migration } => {
                    let mask: CpuMask = (0..8u16)
                        .filter(|i| targets & (1 << i) != 0)
                        .map(CpuId)
                        .collect();
                    if mask.is_empty() {
                        continue;
                    }
                    let state = LatrState {
                        id: next_id,
                        range: VaRange::new(Vpn(next_vpn), 1),
                        mm: MmId(0),
                        kind: if migration { StateKind::Migration } else { StateKind::Free },
                        cpus: mask,
                        pte_done: !migration,
                        published: Time::ZERO,
                    };
                    next_id += 1;
                    next_vpn += 1;
                    if queues[publisher as usize].publish(state).is_some() {
                        pending.mark(&mask, CpuId(publisher));
                    }
                    // On overflow the caller falls back to IPIs: no state,
                    // no pending bits.
                }
                Op::Sweep(cpu) => {
                    let cpu = CpuId(cpu);
                    let must_visit = reference_visit_set(&queues, cpu);
                    let row = pending.take_row(cpu);
                    let visited: BTreeSet<usize> =
                        row.iter().map(|c| c.index()).collect();
                    // Never stale-clear: every queue the full scan would
                    // touch is flagged.
                    prop_assert!(
                        must_visit.is_subset(&visited),
                        "sweep of {cpu:?} would miss queues {:?} (row {:?})",
                        must_visit.difference(&visited).collect::<Vec<_>>(),
                        visited,
                    );
                    // Perform the sweep on the flagged queues only.
                    for qi in &visited {
                        for s in queues[*qi].iter_active_mut() {
                            if s.cpus.test(cpu) {
                                s.cpus.clear(cpu);
                                if s.kind == StateKind::Migration {
                                    s.pte_done = true;
                                }
                            }
                        }
                        queues[*qi].retire_completed();
                    }
                    // Afterwards nothing anywhere names this CPU — the
                    // cleared row was complete.
                    prop_assert!(reference_visit_set(&queues, cpu).is_empty());
                }
                Op::ClearEverywhere(cpu) => {
                    for q in &mut queues {
                        q.clear_cpu_everywhere(CpuId(cpu));
                    }
                    // Deliberately do NOT touch `pending`: the live code
                    // paths (watchdog, on_sync_complete, task exit) leave
                    // the bits stale-set and rely on the next sweep
                    // finding nothing.
                }
                Op::Retire(qi) => {
                    queues[qi as usize].retire_completed();
                }
            }
            // Counters stay consistent with a full recount throughout.
            for q in &queues {
                prop_assert_eq!(q.active_count(), q.iter_active().count());
                prop_assert_eq!(
                    q.active_migrations(),
                    q.iter_active().filter(|s| s.kind == StateKind::Migration).count()
                );
            }
        }
    }
}
