//! Differential property test: sharded vs reference reclaimer (ISSUE 5).
//!
//! Both engines are driven through the identical random schedule of
//! defer/sweep/collect ops on identically-shaped registries (same sweep
//! schedule ⇒ identical per-core ticks ⇒ identical frontiers), and must
//! agree on the reclaimed multiset:
//!
//! * **Safety, per collect** — every item the sharded engine hands back
//!   satisfies `min_tick() ≥ due` on the ground-truth reference scan
//!   (never reclaimed early), and the sharded engine's cumulative
//!   reclaimed set is a subset of the reference's at every step (the
//!   sharded due `tick_of(core) + grace` is conservative relative to the
//!   reference's `min_tick() + grace`).
//! * **Equivalence at quiescence** — once every core has swept past
//!   every due, both engines have reclaimed exactly the full deferred
//!   multiset.
//!
//! ISSUE 6 adds thread death to the schedule: a [`Op::Kill`] excludes a
//! core on *both* registries (as the frontier watchdog or the sweep
//! guard's panic fence would), after which the dead core defers, sweeps
//! and collects nothing. The properties must survive unchanged — with
//! the ground truth now the *live* minimum, since the whole point of
//! exclusion is that a dead core's frozen tick stops gating reclamation
//! ("leak, never corrupt": its undelivered states are reaped, its
//! deferred items still drain through the quiescent collects).

use latr_core::rt::{ReclaimBackend, Reclaimer, RtRegistry};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

const CORES: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    /// `core` defers the next sequential item.
    Defer(u8),
    /// `core` sweeps — via the full scan or the pending-bitmap drain
    /// (both bump the tick identically).
    Sweep(u8, bool),
    /// `core` collects whatever its engine considers due.
    Collect(u8),
    /// `core` dies: excluded on both registries, silent forever after.
    /// Ignored if it would kill the last live core.
    Kill(u8),
}

fn ops() -> impl Strategy<Value = (u64, Vec<Op>)> {
    let core = 0u8..CORES as u8;
    let defer = core.clone().prop_map(Op::Defer);
    let sweep = (core.clone(), 0u8..2).prop_map(|(c, p)| Op::Sweep(c, p == 1));
    let collect = core.clone().prop_map(Op::Collect);
    let kill = core.prop_map(Op::Kill);
    (
        0u64..4, // grace
        prop::collection::vec(
            prop_oneof![
                defer.clone(),
                defer,
                sweep.clone(),
                sweep.clone(),
                sweep,
                collect.clone(),
                collect,
                kill
            ],
            0..250,
        ),
    )
}

proptest! {
    #[test]
    fn sharded_and_reference_reclaim_the_same_multiset((grace, ops) in ops()) {
        let reg_ref = RtRegistry::new(CORES, 8);
        let reg_sh = RtRegistry::new(CORES, 8);
        let rec_ref: Reclaimer<u64> = Reclaimer::new(ReclaimBackend::Reference, grace, CORES);
        let rec_sh: Reclaimer<u64> = Reclaimer::new(ReclaimBackend::Sharded, grace, CORES);

        let mut next_item = 0u64;
        let mut dues_sharded: HashMap<u64, u64> = HashMap::new();
        let mut got_ref: BTreeSet<u64> = BTreeSet::new();
        let mut got_sh: BTreeSet<u64> = BTreeSet::new();
        let mut killed: BTreeSet<usize> = BTreeSet::new();
        let mut max_due = 0u64;

        for op in &ops {
            match *op {
                Op::Defer(core) => {
                    let core = core as usize;
                    if killed.contains(&core) {
                        continue;
                    }
                    // The deferring core is live, so its own tick bounds
                    // every base either engine may anchor to — the
                    // recorded due is conservative for the safety check
                    // and an upper bound for the quiescence target.
                    let due = reg_sh.tick_of(core) + grace;
                    dues_sharded.insert(next_item, due);
                    max_due = max_due.max(due).max(reg_ref.min_live_tick() + grace);
                    rec_ref.defer(&reg_ref, core, next_item);
                    rec_sh.defer(&reg_sh, core, next_item);
                    next_item += 1;
                }
                Op::Sweep(core, pending) => {
                    let core = core as usize;
                    if killed.contains(&core) {
                        continue;
                    }
                    let mut buf = Vec::new();
                    if pending {
                        reg_ref.sweep_pending_into(core, &mut buf);
                        reg_sh.sweep_pending_into(core, &mut buf);
                    } else {
                        reg_ref.sweep_into(core, &mut buf);
                        reg_sh.sweep_into(core, &mut buf);
                    }
                    // Identical schedules keep the ground-truth frontiers
                    // in lock-step.
                    prop_assert_eq!(reg_ref.min_live_tick(), reg_sh.min_live_tick());
                }
                Op::Collect(core) => {
                    let core = core as usize;
                    if killed.contains(&core) {
                        continue;
                    }
                    for item in rec_ref.collect(&reg_ref, core) {
                        prop_assert!(got_ref.insert(item), "reference reclaimed {item} twice");
                    }
                    for item in rec_sh.collect(&reg_sh, core) {
                        prop_assert!(got_sh.insert(item), "sharded reclaimed {item} twice");
                        let due = dues_sharded[&item];
                        prop_assert!(
                            reg_sh.min_live_tick() >= due,
                            "sharded reclaimed {item} early: due {due}, live min {}",
                            reg_sh.min_live_tick()
                        );
                    }
                    // The cached frontier never leads the live scan, so
                    // the sharded engine can only lag the reference.
                    prop_assert!(
                        got_sh.is_subset(&got_ref),
                        "sharded reclaimed {:?} before the reference did",
                        got_sh.difference(&got_ref).collect::<Vec<_>>()
                    );
                }
                Op::Kill(core) => {
                    let core = core as usize;
                    if killed.contains(&core) || killed.len() + 1 >= CORES {
                        continue;
                    }
                    killed.insert(core);
                    prop_assert!(reg_ref.exclude_core(core));
                    prop_assert!(reg_sh.exclude_core(core));
                }
            }
        }

        // Quiesce: sweep every *live* core until the slowest live one
        // passed every due, then both engines must have handed back the
        // identical multiset — all of it, including items the dead cores
        // deferred before dying (their shards drain through the collects
        // below: leak of queue states, never of reclaimer items).
        let target = max_due.max(grace);
        let mut rounds = 0;
        while reg_sh.min_live_tick() < target {
            for core in 0..CORES {
                if killed.contains(&core) {
                    continue;
                }
                reg_ref.sweep(core);
                reg_sh.sweep(core);
            }
            // With exclusions, `min_live_tick()` floors at the cached
            // frontier (which only live-scans under the transition lock
            // may pass a dead core) — refresh it explicitly so the loop
            // advances one tick per round.
            reg_ref.advance_frontier();
            reg_sh.advance_frontier();
            rounds += 1;
            prop_assert!(rounds <= target + 1, "quiescence must terminate");
        }
        reg_sh.advance_frontier();
        for core in 0..CORES {
            got_ref.extend(rec_ref.collect(&reg_ref, core));
            got_sh.extend(rec_sh.collect(&reg_sh, core));
        }
        let all: BTreeSet<u64> = (0..next_item).collect();
        prop_assert_eq!(&got_ref, &all, "reference lost or duplicated items");
        prop_assert_eq!(&got_sh, &all, "sharded lost or duplicated items");
        prop_assert_eq!(rec_ref.pending_count(), 0);
        prop_assert_eq!(rec_sh.pending_count(), 0);
    }
}
