//! Differential property test: sharded vs reference reclaimer (ISSUE 5).
//!
//! Both engines are driven through the identical random schedule of
//! defer/sweep/collect ops on identically-shaped registries (same sweep
//! schedule ⇒ identical per-core ticks ⇒ identical frontiers), and must
//! agree on the reclaimed multiset:
//!
//! * **Safety, per collect** — every item the sharded engine hands back
//!   satisfies `min_tick() ≥ due` on the ground-truth reference scan
//!   (never reclaimed early), and the sharded engine's cumulative
//!   reclaimed set is a subset of the reference's at every step (the
//!   sharded due `tick_of(core) + grace` is conservative relative to the
//!   reference's `min_tick() + grace`).
//! * **Equivalence at quiescence** — once every core has swept past
//!   every due, both engines have reclaimed exactly the full deferred
//!   multiset.

use latr_core::rt::{ReclaimBackend, Reclaimer, RtRegistry};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

const CORES: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    /// `core` defers the next sequential item.
    Defer(u8),
    /// `core` sweeps — via the full scan or the pending-bitmap drain
    /// (both bump the tick identically).
    Sweep(u8, bool),
    /// `core` collects whatever its engine considers due.
    Collect(u8),
}

fn ops() -> impl Strategy<Value = (u64, Vec<Op>)> {
    let core = 0u8..CORES as u8;
    let defer = core.clone().prop_map(Op::Defer);
    let sweep = (core.clone(), 0u8..2).prop_map(|(c, p)| Op::Sweep(c, p == 1));
    let collect = core.prop_map(Op::Collect);
    (
        0u64..4, // grace
        prop::collection::vec(
            prop_oneof![
                defer.clone(),
                defer,
                sweep.clone(),
                sweep.clone(),
                sweep,
                collect.clone(),
                collect
            ],
            0..250,
        ),
    )
}

proptest! {
    #[test]
    fn sharded_and_reference_reclaim_the_same_multiset((grace, ops) in ops()) {
        let reg_ref = RtRegistry::new(CORES, 8);
        let reg_sh = RtRegistry::new(CORES, 8);
        let rec_ref: Reclaimer<u64> = Reclaimer::new(ReclaimBackend::Reference, grace, CORES);
        let rec_sh: Reclaimer<u64> = Reclaimer::new(ReclaimBackend::Sharded, grace, CORES);

        let mut next_item = 0u64;
        let mut dues_sharded: HashMap<u64, u64> = HashMap::new();
        let mut got_ref: BTreeSet<u64> = BTreeSet::new();
        let mut got_sh: BTreeSet<u64> = BTreeSet::new();
        let mut max_due = 0u64;

        for op in &ops {
            match *op {
                Op::Defer(core) => {
                    let core = core as usize;
                    let due = reg_sh.tick_of(core) + grace;
                    dues_sharded.insert(next_item, due);
                    max_due = max_due.max(due).max(reg_ref.min_tick() + grace);
                    rec_ref.defer(&reg_ref, core, next_item);
                    rec_sh.defer(&reg_sh, core, next_item);
                    next_item += 1;
                }
                Op::Sweep(core, pending) => {
                    let core = core as usize;
                    let mut buf = Vec::new();
                    if pending {
                        reg_ref.sweep_pending_into(core, &mut buf);
                        reg_sh.sweep_pending_into(core, &mut buf);
                    } else {
                        reg_ref.sweep_into(core, &mut buf);
                        reg_sh.sweep_into(core, &mut buf);
                    }
                    // Identical schedules keep the ground-truth frontiers
                    // in lock-step.
                    prop_assert_eq!(reg_ref.min_tick(), reg_sh.min_tick());
                }
                Op::Collect(core) => {
                    let core = core as usize;
                    for item in rec_ref.collect(&reg_ref, core) {
                        prop_assert!(got_ref.insert(item), "reference reclaimed {item} twice");
                    }
                    for item in rec_sh.collect(&reg_sh, core) {
                        prop_assert!(got_sh.insert(item), "sharded reclaimed {item} twice");
                        let due = dues_sharded[&item];
                        prop_assert!(
                            reg_sh.min_tick() >= due,
                            "sharded reclaimed {item} early: due {due}, min {}",
                            reg_sh.min_tick()
                        );
                    }
                    // The cached frontier never leads the scan, so the
                    // sharded engine can only lag the reference.
                    prop_assert!(
                        got_sh.is_subset(&got_ref),
                        "sharded reclaimed {:?} before the reference did",
                        got_sh.difference(&got_ref).collect::<Vec<_>>()
                    );
                }
            }
        }

        // Quiesce: sweep every core until the slowest passed every due,
        // then both engines must have handed back the identical multiset
        // — all of it.
        let target = max_due.max(grace);
        let mut rounds = 0;
        while reg_sh.min_tick() < target {
            for core in 0..CORES {
                reg_ref.sweep(core);
                reg_sh.sweep(core);
            }
            rounds += 1;
            prop_assert!(rounds <= target + 1, "quiescence must terminate");
        }
        reg_sh.advance_frontier();
        for core in 0..CORES {
            got_ref.extend(rec_ref.collect(&reg_ref, core));
            got_sh.extend(rec_sh.collect(&reg_sh, core));
        }
        let all: BTreeSet<u64> = (0..next_item).collect();
        prop_assert_eq!(&got_ref, &all, "reference lost or duplicated items");
        prop_assert_eq!(&got_sh, &all, "sharded lost or duplicated items");
        prop_assert_eq!(rec_ref.pending_count(), 0);
        prop_assert_eq!(rec_sh.pending_count(), 0);
    }
}
