//! Interleaving-level model checks of the rt primitives.
//!
//! Build and run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p latr-core --test loom --release
//! ```
//!
//! Under `--cfg loom` the rt primitives compile against the loom shim
//! (`crates/core/src/rt/sync.rs`): every atomic operation and lock
//! acquisition is a scheduling point, and `loom::model` explores all
//! interleavings up to the preemption bound (`LOOM_MAX_PREEMPTIONS`,
//! default 2). The vendored checker models sequential consistency — it
//! proves the *interleaving* properties (exactly-once retirement, no
//! torn activation, grace-period gating), not memory-ordering
//! relaxations; see `third_party/loom`.
#![cfg(loom)]

use latr_core::rt::{RtInvalidation, RtQueue, RtReclaimer, RtRegistry, ShardedReclaimer};
use loom::sync::Arc;
use loom::thread;

fn inv(mm: u64) -> RtInvalidation {
    RtInvalidation {
        mm,
        start: 0x1000,
        end: 0x2000,
    }
}

/// §4.1's activation protocol: a sweep racing a publish must see either
/// nothing or the *complete* payload — never a torn/partial state. The
/// publisher writes the payload fields before the activation store; the
/// sweeper loads the payload only behind the activation load.
#[test]
fn activation_protocol_is_never_torn() {
    loom::model(|| {
        let q = Arc::new(RtQueue::new(2));
        let q2 = Arc::clone(&q);
        let publisher = thread::spawn(move || {
            q2.publish(inv(7), [0b10, 0, 0, 0]).unwrap();
        });
        let mut seen = Vec::new();
        q.sweep_for(1, &mut seen);
        for s in &seen {
            assert_eq!(*s, inv(7), "sweep observed a torn payload: {s:?}");
        }
        publisher.join().unwrap();
        // Whatever interleaved, a final sweep must find the state if the
        // racing one missed it — publishes are never lost.
        let mut rest = Vec::new();
        q.sweep_for(1, &mut rest);
        assert_eq!(
            seen.len() + rest.len(),
            1,
            "state must be swept exactly once"
        );
        assert_eq!(q.active_count(), 0, "retired after its only target swept");
    });
}

/// Cross-word retirement: two sweepers whose bits live in *different*
/// 64-bit words of the [`AtomicCpuMask`] race to clear the last bit.
/// Both may observe emptiness (documented benign race) but the CAS on
/// the slot's active flag must retire the state exactly once — the
/// active counter ending at 0 (not underflowed) proves single
/// decrement, and the slot must be reusable afterwards.
#[test]
fn cross_word_retirement_is_exactly_once() {
    loom::model(|| {
        let q = Arc::new(RtQueue::new(1));
        // CPUs 0 (word 0) and 64 (word 1).
        q.publish(inv(9), [1, 1, 0, 0]).unwrap();
        let sweepers: Vec<_> = [0usize, 64]
            .into_iter()
            .map(|cpu| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    q.sweep_for(cpu, &mut out);
                    out.len()
                })
            })
            .collect();
        let seen: usize = sweepers.into_iter().map(|s| s.join().unwrap()).sum();
        assert_eq!(seen, 2, "each targeted cpu sweeps the state exactly once");
        assert_eq!(
            q.active_count(),
            0,
            "exactly one sweeper may retire the slot (no double fetch_sub)"
        );
        // The slot must be cleanly reusable after retirement.
        q.publish(inv(10), [1, 0, 0, 0]).unwrap();
        assert_eq!(q.active_count(), 1);
    });
}

/// Same-word case for contrast: the fetch_and itself arbitrates, so
/// exactly one clear observes emptiness and retires.
#[test]
fn same_word_retirement_is_exactly_once() {
    loom::model(|| {
        let q = Arc::new(RtQueue::new(1));
        q.publish(inv(3), [0b11, 0, 0, 0]).unwrap();
        let sweepers: Vec<_> = [0usize, 1]
            .into_iter()
            .map(|cpu| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    q.sweep_for(cpu, &mut out);
                    out.len()
                })
            })
            .collect();
        let seen: usize = sweepers.into_iter().map(|s| s.join().unwrap()).sum();
        assert_eq!(seen, 2);
        assert_eq!(q.active_count(), 0);
    });
}

/// The pending-bitmap publish/drain race (ISSUE 4): a publisher
/// activates a state and *then* sets the target's pending bit, while the
/// target concurrently drains its row and sweeps the flagged queues. For
/// every interleaving the state must be swept exactly once across the
/// racing sweep and a final drain — the bit may be taken before the
/// publish (stale-empty visit) or after (normal), but a set bit must
/// never be cleared without its state being visible to the sweep
/// (stale-clear would lose the invalidation).
#[test]
fn pending_bitmap_publish_and_drain_race_loses_nothing() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::new(2, 2));
        let publisher = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                reg.publish(0, inv(5), 0b10).unwrap();
            })
        };
        let mut seen = reg.sweep_pending(1);
        for s in &seen {
            assert_eq!(*s, inv(5), "pending sweep observed a torn payload");
        }
        publisher.join().unwrap();
        seen.extend(reg.sweep_pending(1));
        assert_eq!(
            seen.len(),
            1,
            "state must be swept exactly once across racing + final drains"
        );
        assert_eq!(reg.queue(0).active_count(), 0);
    });
}

/// Same race with a *batched* publish: the single release fence must
/// cover every slot of the batch — a pending sweep racing the batch sees
/// each state either not at all or with its complete payload, and a
/// final drain mops up whatever the racing sweep missed.
#[test]
fn batched_publish_fence_covers_every_slot() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::new(2, 4));
        let publisher = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let batch = [(inv(7), [0b10u64, 0, 0, 0]), (inv(8), [0b10u64, 0, 0, 0])];
                let mut slots = Vec::new();
                reg.publish_batch(0, &batch, &mut slots).unwrap();
            })
        };
        let mut seen = reg.sweep_pending(1);
        for s in &seen {
            assert!(
                *s == inv(7) || *s == inv(8),
                "sweep observed a torn batched payload: {s:?}"
            );
        }
        publisher.join().unwrap();
        seen.extend(reg.sweep_pending(1));
        let mut mms: Vec<u64> = seen.iter().map(|i| i.mm).collect();
        mms.sort_unstable();
        assert_eq!(mms, vec![7, 8], "both batched states swept exactly once");
        assert_eq!(reg.queue(0).active_count(), 0);
    });
}

/// The cached reclamation frontier (ISSUE 5): concurrent sweeps and
/// advances must never push the cache past an unswept core's tick. The
/// read order matters for the assertion itself — load the cache *before*
/// the reference scan, so a concurrent advance between the two loads can
/// only make the scan larger, never fake a violation.
#[test]
fn cached_frontier_never_passes_an_unswept_core() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::new(2, 1));
        let sweeper = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                reg.sweep_into(1, &mut Vec::new());
                reg.advance_frontier();
            })
        };
        // Core 0 sweeps once, concurrently with core 1's sweep+advance.
        reg.sweep_into(0, &mut Vec::new());
        let cached = reg.cached_frontier();
        let min = reg.min_tick();
        assert!(
            cached <= min,
            "cache {cached} passed the scan minimum {min}"
        );
        sweeper.join().unwrap();
        // Quiescent: a forced refresh converges the cache on the true
        // minimum exactly (both cores at tick 1).
        assert_eq!(reg.advance_frontier(), 1);
        assert_eq!(reg.cached_frontier(), 1);
        assert_eq!(reg.min_tick(), 1);
    });
}

/// The sharded reclaimer under the cached frontier: an item deferred on
/// core 0 with grace 1 must never be collected before every core swept
/// past its due tick, for every interleaving of the other core's sweeps
/// with the collector.
#[test]
fn sharded_reclaimer_never_collects_before_grace_on_every_core() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::new(2, 1));
        let rec: Arc<ShardedReclaimer<u32>> = Arc::new(ShardedReclaimer::new(1, 2));
        rec.defer(&reg, 0, 42); // due = tick_of(0) + 1 = 1
        let sweeper = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                reg.sweep_into(1, &mut Vec::new());
            })
        };
        // Concurrent with core 1's sweep: core 0 has not swept yet, so
        // min_tick is 0 < due — nothing may come back.
        let early = rec.collect(&reg, 0);
        assert!(early.is_empty(), "collected before core 0 swept: {early:?}");
        reg.sweep_into(0, &mut Vec::new());
        sweeper.join().unwrap();
        // Both cores at tick 1 = due; converge the cache and collect
        // exactly once.
        reg.advance_frontier();
        assert_eq!(rec.collect(&reg, 0), vec![42]);
        assert_eq!(rec.pending_count(), 0);
    });
}

/// The stall behaviour of `never_sweeping_core_pins_frontier_forever`,
/// mirrored onto the scaling engines: while core 1 never sweeps, no
/// amount of concurrent sweeping and collecting on core 0 may move the
/// cached frontier off 0 or release the parked item.
#[test]
fn never_sweeping_core_pins_cached_frontier_and_sharded_reclaimer() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::new(2, 1));
        let rec: Arc<ShardedReclaimer<u32>> = Arc::new(ShardedReclaimer::new(1, 2));
        rec.defer(&reg, 0, 7);
        let other = {
            let (reg, rec) = (Arc::clone(&reg), Arc::clone(&rec));
            thread::spawn(move || {
                reg.sweep_into(0, &mut Vec::new());
                assert!(rec.collect(&reg, 0).is_empty());
            })
        };
        reg.sweep_into(0, &mut Vec::new());
        reg.advance_frontier();
        assert_eq!(reg.cached_frontier(), 0, "straggler pins the cache");
        assert!(rec.collect(&reg, 0).is_empty());
        other.join().unwrap();
        assert_eq!(rec.pending_count(), 1, "item stays parked");
        // Only the straggler itself unpins reclamation.
        reg.sweep_into(1, &mut Vec::new());
        reg.advance_frontier();
        assert_eq!(rec.collect(&reg, 0), vec![7]);
    });
}

/// The frontier watchdog (ISSUE 6): a core that dies (never sweeps) is
/// excluded once the virtual clock passes the timeout, and a concurrent
/// healthy sweeper is never blocked past that bound — nor ever excluded
/// itself while its sweeps stay fresh. The exclusion (mask set, queue-bit
/// reap, frontier re-derivation) races the healthy core's sweep in every
/// interleaving; afterwards the parked item must be collectable exactly
/// once.
#[test]
fn excluded_dead_core_never_blocks_reclamation() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::with_watchdog(2, 1, 1_000));
        let rec: Arc<ShardedReclaimer<u32>> = Arc::new(ShardedReclaimer::new(1, 2));
        // Clock 500: core 0 sweeps (freshly stamped), core 1 never will.
        reg.watchdog().unwrap().advance_clock(500);
        reg.sweep_into(0, &mut Vec::new());
        rec.defer(&reg, 0, 9); // due = tick_of(0) + 1 = 2
                               // Clock 1500: core 1 is 1500 ns stale (> timeout); core 0 is at
                               // most 1000 ns stale (= timeout, not past it) whether the racing
                               // sweep below lands before or after the scan.
        reg.watchdog().unwrap().advance_clock(1_000);
        let killer = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || reg.check_watchdog())
        };
        reg.sweep_into(0, &mut Vec::new());
        let excluded = killer.join().unwrap();
        assert_eq!(excluded, 1, "exactly the dead core gets excluded");
        assert!(reg.is_excluded(1) && !reg.is_excluded(0));
        // The dead core no longer pins anything: the live minimum is
        // core 0's tick, and the parked item comes back exactly once.
        reg.advance_frontier();
        assert_eq!(reg.cached_frontier(), 2);
        assert_eq!(rec.collect(&reg, 0), vec![9]);
        assert_eq!(rec.pending_count(), 0);
    });
}

/// §4.2's grace-period frontier: an item deferred with grace 2 must
/// never be collected before *every* core has swept twice, no matter how
/// sweeps and collects interleave — and it must be collected exactly
/// once when they all have.
#[test]
fn grace_period_frontier_gates_collection() {
    loom::model(|| {
        let reg = Arc::new(RtRegistry::new(2, 2));
        let rec: Arc<RtReclaimer<u32>> = Arc::new(RtReclaimer::new(2));
        rec.defer(&reg, 42);

        let sweeper = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                reg.sweep(1);
                reg.sweep(1);
            })
        };

        reg.sweep(0);
        // Concurrent with the sweeper: core 0 has swept once, so the
        // frontier is at most 1 (< due = 2) — nothing may be collected.
        let early = rec.collect(&reg);
        assert!(
            early.is_empty(),
            "collected before core 0 reached the grace frontier"
        );
        reg.sweep(0);
        sweeper.join().unwrap();
        // All cores at tick 2: the item must now be due, exactly once.
        assert_eq!(rec.collect(&reg), vec![42]);
        assert_eq!(rec.pending_count(), 0);
    });
}
