//! The Latr TLB-coherence policy (§3–§4).
//!
//! * **Free operations** (`munmap`, `madvise`): instead of IPIs, the
//!   initiator records a Latr state; every other core invalidates at its
//!   next scheduler tick or context switch; the freed VA and frames sit on
//!   the lazy-reclaim queue for two ticks before release.
//! * **Migration operations** (AutoNUMA): the state is recorded *without*
//!   touching the page table; the first core to sweep it clears the PTE
//!   (sets the NUMA-hint protection), the rest only invalidate; the hint
//!   fault may proceed only once every CPU bit has cleared (§4.4).
//! * **Permission/ownership changes** (`mprotect`, CoW, `mremap`): not
//!   lazy-able (Table 1) — delegated to the synchronous IPI path.
//! * **Queue overflow**: more shootdowns per interval than slots falls
//!   back to IPIs (§4.2).
//!
//! Two graceful-degradation mechanisms extend the paper's design for
//! faulty conditions (see DESIGN.md §9):
//!
//! * **Sweep watchdog** — reclamation is *gated* on the covering state's
//!   CPU bitmask (a deadline alone proves nothing if a sweeper stalled);
//!   if a state's mask has not cleared after `watchdog_ticks`, targeted
//!   IPIs finish exactly the laggard cores, bounding reclaim latency.
//! * **Adaptive IPI fallback** — under sustained overflow pressure the
//!   policy flips to routing new shootdowns synchronously (one decision,
//!   not one failed publish per op) and flips back once every queue has
//!   drained below a low-water mark.

use crate::config::LatrConfig;
use crate::reclaim::LazyReclaimQueue;
use crate::state::{LatrState, StateKind, StateQueue};
use crate::sweep_index::PendingSweepMap;
use latr_arch::{CpuId, CpuMask};
use latr_kernel::TaskId;
use latr_kernel::{metrics, FlushKind, FlushOutcome, Machine, ShootdownTxn, TlbPolicy};
use latr_mem::{MmId, Pfn, Pressure, VaRange, Vpn};
use latr_sim::{Nanos, Time};
use std::collections::{HashMap, HashSet};

/// The Latr policy. Plug into [`Machine::run`] in place of
/// [`latr_kernel::LinuxPolicy`].
pub struct LatrPolicy {
    config: LatrConfig,
    queues: Vec<StateQueue>,
    reclaim: LazyReclaimQueue,
    /// Next [`LatrState::id`] to assign (run-unique).
    next_state_id: u64,
    /// Adaptive fallback: currently routing new shootdowns synchronously.
    sync_mode: bool,
    /// State ids with a watchdog escalation round in flight.
    escalated: HashSet<u64>,
    /// In-flight watchdog sync rounds: txn id → escalated state id.
    watchdog_rounds: HashMap<u64, u64>,
    /// Fast-sweep index: which queues each CPU's next sweep must visit.
    pending: PendingSweepMap,
    /// Sync mode was forced by min-watermark pressure: the exit
    /// hysteresis additionally requires every node back at Normal.
    pressure_sync_active: bool,
    /// Pressure-expedited states: id → when pressure first expedited it
    /// (feeds the `latr_expedite_latency_ns` tick-bound histogram when
    /// the gated package finally releases).
    expedited_at: HashMap<u64, Time>,
    /// Reusable arenas for the sweep hot path (no per-sweep allocation).
    scratch_relevant: Vec<(MmId, VaRange, StateKind, bool)>,
    /// Reusable gate-id set for the reclaim paths (no per-tick allocation).
    scratch_blocked: HashSet<u64>,
    /// Reusable due-package vector for the reclaim paths.
    scratch_due: Vec<crate::reclaim::DeferredReclaim>,
}

/// A live gated state picked up by `expedite_gated`: its publish time
/// (the sort key) plus everything `escalate_state` needs — queue index,
/// id, mm, range, kind, whether the PTE work is done, and the bitmask.
type GatedState = (Time, usize, u64, MmId, VaRange, StateKind, bool, CpuMask);

/// Why a gated state is being finished by force: the two callers share
/// one mechanism (owner-local sweep + targeted IPIs) but separate books.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Escalation {
    /// The sweep watchdog: the state's bitmask outlived `watchdog_ticks`.
    Watchdog,
    /// Memory pressure wants the gated package's frames back now.
    Pressure,
}

impl LatrPolicy {
    /// Creates the policy with the given configuration. Queues are sized
    /// lazily on the first call (the machine's CPU count isn't known yet).
    pub fn new(config: LatrConfig) -> Self {
        LatrPolicy {
            config,
            queues: Vec::new(),
            reclaim: LazyReclaimQueue::new(),
            next_state_id: 0,
            sync_mode: false,
            escalated: HashSet::new(),
            watchdog_rounds: HashMap::new(),
            pending: PendingSweepMap::new(),
            pressure_sync_active: false,
            expedited_at: HashMap::new(),
            scratch_relevant: Vec::new(),
            scratch_blocked: HashSet::new(),
            scratch_due: Vec::new(),
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &LatrConfig {
        &self.config
    }

    /// Frames currently parked on the lazy-reclaim queue (§6.4's memory
    /// overhead).
    pub fn parked_bytes(&self) -> u64 {
        self.reclaim.parked_bytes()
    }

    /// Whether the adaptive fallback currently routes shootdowns
    /// synchronously.
    pub fn in_sync_mode(&self) -> bool {
        self.sync_mode
    }

    fn ensure_queues(&mut self, ncpus: usize) {
        if self.queues.len() < ncpus {
            self.queues
                .resize_with(ncpus, || StateQueue::new(self.config.states_per_core));
        }
        self.pending.ensure(ncpus);
    }

    fn next_state_id(&mut self) -> u64 {
        let id = self.next_state_id;
        self.next_state_id += 1;
        id
    }

    /// Flips into adaptive synchronous mode (idempotent).
    fn enter_sync_mode(&mut self, machine: &mut Machine, why: &str) {
        if !self.config.adaptive_fallback || self.sync_mode {
            return;
        }
        self.sync_mode = true;
        machine.stats.inc(metrics::LATR_ADAPTIVE_ENTERS);
        if machine.trace.is_enabled() {
            let now = machine.now();
            machine.trace.push(
                now,
                "latr",
                format!("adaptive fallback enters sync mode ({why})"),
            );
        }
    }

    /// Occupancy high-water check for `queue` after a publish.
    fn check_enter_pressure(&mut self, machine: &mut Machine, queue: usize) {
        if !self.config.adaptive_fallback || self.sync_mode {
            return;
        }
        let q = &self.queues[queue];
        if q.active_count() * 100 >= self.config.fallback_enter_pct as usize * q.capacity() {
            self.enter_sync_mode(machine, "queue occupancy above high-water mark");
        }
    }

    /// The sweep watchdog (DESIGN.md §9): any state whose CPU bitmask has
    /// outlived `watchdog_ticks` gets finished by force — the owning core
    /// sweeps its own bit locally, then targeted IPIs go to exactly the
    /// laggard cores. Runs from the background reclamation tick.
    fn run_watchdog(&mut self, machine: &mut Machine) {
        let wd = self.config.watchdog_ticks;
        if wd == 0 {
            return;
        }
        let now = machine.now();
        let threshold = wd as u64 * machine.tick_period();
        let mut overdue: Vec<(usize, u64, MmId, VaRange, StateKind, bool, CpuMask)> = Vec::new();
        for (qi, q) in self.queues.iter().enumerate() {
            if q.active_count() == 0 {
                continue;
            }
            for s in q.iter_active() {
                if !s.cpus.is_empty()
                    && now.saturating_since(s.published) >= threshold
                    && !self.escalated.contains(&s.id)
                {
                    overdue.push((qi, s.id, s.mm, s.range, s.kind, s.pte_done, s.cpus));
                }
            }
        }
        for (qi, id, mm, range, kind, pte_done, cpus) in overdue {
            self.escalate_state(
                machine,
                qi,
                id,
                mm,
                range,
                kind,
                pte_done,
                cpus,
                Escalation::Watchdog,
            );
        }
    }

    /// Finishes one gated state by force: the owning core sweeps its own
    /// bit locally (no self-IPI), targeted IPIs go to exactly the laggard
    /// cores, and the in-flight round is tracked so [`on_sync_complete`]
    /// can retire the state. Shared by the sweep watchdog and memory-
    /// pressure expedition — one mechanism, two sets of books.
    #[allow(clippy::too_many_arguments)]
    fn escalate_state(
        &mut self,
        machine: &mut Machine,
        qi: usize,
        id: u64,
        mm: MmId,
        range: VaRange,
        kind: StateKind,
        pte_done: bool,
        cpus: CpuMask,
        why: Escalation,
    ) {
        let now = machine.now();
        match why {
            Escalation::Watchdog => machine.stats.inc(metrics::LATR_WATCHDOG_ESCALATIONS),
            Escalation::Pressure => machine.stats.inc(metrics::LATR_EXPEDITED_SWEEPS),
        }
        let owner = CpuId(qi as u16);
        let pages: Vec<Vpn> = range.iter().collect();
        if kind == StateKind::Migration && !pte_done {
            // Assume the first-sweeper duty nobody performed.
            machine.apply_numa_hint(owner, mm, range.start);
        }
        let mut laggards = cpus;
        if laggards.test(owner) {
            // The owner sweeps its own bit locally — no self-IPI.
            machine.invalidate_tlb_pages(owner, mm, &pages);
            machine.oracle_note_sweep(owner, mm, range);
            machine.charge_debt(
                owner,
                machine.costs().local_invalidation(pages.len() as u32),
            );
            laggards.clear(owner);
        }
        for s in self.queues[qi].iter_active_mut() {
            if s.id == id {
                s.pte_done = true;
                s.cpus.clear(owner);
            }
        }
        if laggards.is_empty() {
            self.queues[qi].retire_completed();
            return;
        }
        let (ipi_metric, verb) = match why {
            Escalation::Watchdog => (metrics::LATR_WATCHDOG_IPIS, "watchdog escalates"),
            Escalation::Pressure => (metrics::LATR_EXPEDITED_IPIS, "memory pressure expedites"),
        };
        machine.stats.add(ipi_metric, laggards.count() as u64);
        if machine.trace.is_enabled() {
            machine.trace.push(
                now,
                "latr",
                format!(
                    "{verb} state {id} {range:?}: {} laggard cores get IPIs",
                    laggards.count()
                ),
            );
        }
        let txn = machine.begin_sync_shootdown(owner, mm, pages, laggards, 0);
        self.watchdog_rounds.insert(txn.0, id);
        self.escalated.insert(id);
    }

    /// Memory pressure wants parked frames back: finish the oldest states
    /// that actually gate a parked package — the watchdog's mechanism,
    /// fired early — so the packages release at the next reclamation tick
    /// or allocation stall instead of waiting out the sweep schedule.
    /// Bounded work: at most `batch` states per call, states already
    /// being escalated are skipped, and states gating nothing are never
    /// touched (sweeping them frees no memory).
    fn expedite_gated(&mut self, machine: &mut Machine, batch: usize) {
        if batch == 0 {
            return;
        }
        self.ensure_queues(machine.topology().num_cpus());
        let gates: HashSet<u64> = self.reclaim.gate_ids().collect();
        if gates.is_empty() {
            return;
        }
        let now = machine.now();
        let mut oldest: Vec<GatedState> = Vec::new();
        for (qi, q) in self.queues.iter().enumerate() {
            if q.active_count() == 0 {
                continue;
            }
            for s in q.iter_active() {
                if !s.cpus.is_empty() && gates.contains(&s.id) && !self.escalated.contains(&s.id) {
                    oldest.push((
                        s.published,
                        qi,
                        s.id,
                        s.mm,
                        s.range,
                        s.kind,
                        s.pte_done,
                        s.cpus,
                    ));
                }
            }
        }
        // Oldest first; state id breaks publish-time ties deterministically.
        oldest.sort_by_key(|e| (e.0, e.2));
        oldest.truncate(batch);
        for (_, qi, id, mm, range, kind, pte_done, cpus) in oldest {
            self.expedited_at.entry(id).or_insert(now);
            self.escalate_state(
                machine,
                qi,
                id,
                mm,
                range,
                kind,
                pte_done,
                cpus,
                Escalation::Pressure,
            );
        }
    }

    /// Ids of states whose CPU bitmask has not cleared — exactly the
    /// gates that must hold their packages. Takes (and refills) the
    /// pooled scratch set so the per-tick reclaim paths allocate nothing
    /// in steady state; callers hand it back via `scratch_blocked`.
    fn blocked_ids(&mut self) -> HashSet<u64> {
        let mut blocked = std::mem::take(&mut self.scratch_blocked);
        blocked.clear();
        blocked.extend(
            self.queues
                .iter()
                .filter(|q| q.active_count() > 0)
                .flat_map(StateQueue::iter_active)
                .filter(|s| !s.cpus.is_empty())
                .map(|s| s.id),
        );
        blocked
    }

    /// Releases every parked package past its deadline whose gate (if
    /// any) has cleared. Shared by the background reclamation tick and
    /// the direct-reclaim stall path (`who` labels the trace). Returns
    /// the number of frames released.
    fn release_due(&mut self, machine: &mut Machine, blocked: &HashSet<u64>, who: &str) -> u64 {
        let now = machine.now();
        let mut released = 0u64;
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        self.reclaim
            .due_into(now, |id| blocked.contains(&id), &mut due);
        for entry in due.drain(..) {
            machine.stats.record(
                metrics::LATR_RECLAIM_LATENCY_NS,
                now.saturating_since(entry.published),
            );
            machine.stats.add(
                metrics::LATR_RECLAIM_RELEASED_FRAMES,
                entry.pkg.frames.len() as u64,
            );
            // The escalation tick bound: pressure → release, per package.
            if let Some(t) = entry.gate.and_then(|g| self.expedited_at.remove(&g)) {
                machine
                    .stats
                    .record(metrics::LATR_EXPEDITE_LATENCY_NS, now.saturating_since(t));
            }
            released += entry.pkg.frames.len() as u64;
            let pkg = entry.pkg;
            if machine.trace.is_enabled() {
                machine.trace.push(
                    now,
                    "latr",
                    format!(
                        "{who} frees {} frames{}",
                        pkg.frames.len(),
                        pkg.va.map(|r| format!(" + VA {r:?}")).unwrap_or_default()
                    ),
                );
            }
            machine.release_reclaim_deferred(pkg);
        }
        self.scratch_due = due;
        released
    }

    /// Visits one state queue during a sweep by `cpu`: invalidate and
    /// trace every state naming `cpu`, clear our bit, retire emptied
    /// slots. Returns `(cost, hits)` — `(sweep_empty, 0)` when nothing in
    /// the queue named us. Shared by the reference full scan and the
    /// pending-bitmap fast path so the two cannot drift.
    fn sweep_queue(&mut self, machine: &mut Machine, cpu: CpuId, qi: usize) -> (Nanos, u64) {
        let mut relevant = std::mem::take(&mut self.scratch_relevant);
        relevant.clear();
        // One fused pass: snapshot the fields the apply loop needs (in
        // particular `pte_done` *before* this sweep marks it), clear our
        // bit, and mark migration PTEs done. The machine-side apply loop
        // below never reads the queues, so folding the old second
        // clear-bits pass into the gather is invisible to it.
        self.queues[qi].for_each_active_mut(|state| {
            if state.cpus.test(cpu) {
                relevant.push((state.mm, state.range, state.kind, state.pte_done));
                state.cpus.clear(cpu);
                if state.kind == StateKind::Migration {
                    state.pte_done = true;
                }
            }
        });
        if relevant.is_empty() {
            self.scratch_relevant = relevant;
            return (machine.costs().latr_sweep_empty, 0);
        }
        let mut cost = 0;
        let mut hits = 0u64;
        // Batch-apply per `(mm, tick)` group: consecutive states from the
        // same address space — the common shape when one hot mm published
        // a burst of ops inside a tick window — share a single PCID
        // resolution and skip the per-state scratch page vector. Per-state
        // cost, trace, and oracle calls are unchanged, so a grouped sweep
        // is bit-identical to the one-call-per-state form.
        let mut gi = 0;
        while gi < relevant.len() {
            let mm = relevant[gi].0;
            let mut ge = gi + 1;
            while ge < relevant.len() && relevant[ge].0 == mm {
                ge += 1;
            }
            let pcid = machine.sweep_pcid(mm);
            for &(_, range, kind, pte_done) in &relevant[gi..ge] {
                cost += machine.costs().latr_sweep_hit;
                if kind == StateKind::Migration && !pte_done {
                    // First sweeper performs the page-table unmap (§4.3).
                    machine.apply_numa_hint(cpu, mm, range.start);
                    cost += machine.costs().pte_op;
                    if machine.trace.is_enabled() {
                        let now = machine.now();
                        machine.trace.push(
                            now,
                            "latr",
                            format!("{cpu} sweeps {range:?}: first core, clears PTE"),
                        );
                    }
                } else if machine.trace.is_enabled() {
                    let now = machine.now();
                    machine.trace.push(
                        now,
                        "latr",
                        format!("{cpu} sweeps {range:?}: local TLB invalidation"),
                    );
                }
                machine.invalidate_tlb_range_pcid(cpu, pcid, range);
                machine.oracle_note_sweep(cpu, mm, range);
                cost += machine.costs().local_invalidation(range.pages as u32);
                hits += 1;
            }
            gi = ge;
        }
        self.scratch_relevant = relevant;
        self.queues[qi].retire_completed();
        (cost, hits)
    }

    /// The sweep (§4.1): for each active state naming `cpu`, invalidate
    /// locally and clear the bit; retire states whose masks emptied.
    /// Returns the CPU time consumed.
    ///
    /// The reference path scans every core's queue; the fast path visits
    /// only the queues flagged in `cpu`'s pending-bitmap row (see
    /// [`PendingSweepMap`] for the staleness argument) and charges the
    /// unvisited queues the same empty-probe cost the reference scan
    /// would, so cost, traces, stats and oracle calls are bit-identical.
    fn sweep(&mut self, machine: &mut Machine, cpu: CpuId) -> Nanos {
        self.ensure_queues(machine.topology().num_cpus());
        let nq = self.queues.len();
        let mut cost = 0;
        let mut hits = 0u64;
        if self.config.reference_sweep {
            for qi in 0..nq {
                let (c, h) = self.sweep_queue(machine, cpu, qi);
                cost += c;
                hits += h;
            }
        } else {
            let row = self.pending.take_row(cpu);
            let mut hit_queues = 0u64;
            for publisher in row.iter() {
                let qi = publisher.index();
                if qi >= nq {
                    continue;
                }
                let (c, h) = self.sweep_queue(machine, cpu, qi);
                if h > 0 {
                    cost += c;
                    hits += h;
                    hit_queues += 1;
                }
                // A visit that found nothing (stale bit) costs the same
                // as any other empty probe, folded in below.
            }
            cost += machine.costs().latr_sweep_empty * (nq as u64 - hit_queues);
        }
        machine.llc.charge_latr_sweep(nq as u64);
        if hits > 0 {
            machine.stats.add(metrics::LATR_SWEEP_HITS, hits);
        }
        cost
    }
}

impl TlbPolicy for LatrPolicy {
    fn name(&self) -> &'static str {
        "latr"
    }

    fn flush_others(
        &mut self,
        machine: &mut Machine,
        initiator: CpuId,
        _task: Option<TaskId>,
        mm: MmId,
        range: VaRange,
        pages: &[(Vpn, Pfn)],
        kind: FlushKind,
        start_delay: Nanos,
    ) -> FlushOutcome {
        self.ensure_queues(machine.topology().num_cpus());

        // Permission changes must be visible system-wide before the
        // syscall returns (Table 1): pure Linux behaviour.
        if kind == FlushKind::Synchronous {
            let mut targets = machine.mm(mm).cpumask;
            targets.clear(initiator);
            if targets.is_empty() || pages.is_empty() {
                return FlushOutcome::Deferred {
                    local_ns: 0,
                    defer_reclaim: false,
                };
            }
            let vpns: Vec<Vpn> = pages.iter().map(|&(v, _)| v).collect();
            let txn = machine.begin_sync_shootdown(initiator, mm, vpns, targets, start_delay);
            return FlushOutcome::Sync { txn, local_ns: 0 };
        }

        let mut targets = machine.mm(mm).cpumask;
        targets.clear(initiator);
        if targets.is_empty() || pages.is_empty() {
            // No remote TLBs can hold these translations and the local TLB
            // is already clean: safe to free immediately.
            return FlushOutcome::Deferred {
                local_ns: 0,
                defer_reclaim: false,
            };
        }

        // Adaptive fallback: while sync mode is on, don't burn a failed
        // publish per op — route straight to IPIs.
        if self.config.adaptive_fallback && self.sync_mode {
            machine.stats.inc(metrics::LATR_FALLBACK_IPIS);
            machine.stats.inc(metrics::LATR_ADAPTIVE_SYNC_OPS);
            let vpns: Vec<Vpn> = pages.iter().map(|&(v, _)| v).collect();
            let txn = machine.begin_sync_shootdown(initiator, mm, vpns, targets, start_delay);
            return FlushOutcome::Sync { txn, local_ns: 0 };
        }

        let state = LatrState {
            id: self.next_state_id(),
            range,
            mm,
            kind: StateKind::Free,
            cpus: targets,
            pte_done: true,
            published: machine.now(),
        };
        let state_id = state.id;
        // An injected overflow storm forces the publish to fail as if the
        // queue were full (chaos testing of the fallback paths).
        let published = if machine.fault_force_overflow() {
            None
        } else {
            self.queues[initiator.index()].publish(state)
        };
        match published {
            Some(slot) => {
                self.pending.mark(&targets, initiator);
                machine.oracle_note_publish(initiator, mm, range, targets, false);
                machine.stats.inc(metrics::LATR_STATES_SAVED);
                machine.llc.charge_latr_save();
                if machine.trace.is_enabled() {
                    let now = machine.now();
                    machine.trace.push(
                        now,
                        "latr",
                        format!(
                            "{initiator} saves state[{slot}] {range:?} for {} cores (free)",
                            targets.count()
                        ),
                    );
                }
                // Park the freed VA + frames for two scheduler ticks,
                // gated on the state's bitmask clearing (the deadline
                // alone is unsafe under stalled sweepers or lost IPIs).
                // The +1 ns breaks exact ties with the sweep events at
                // the deadline instant.
                if let Some(pkg) = machine.take_pending_reclaim() {
                    machine
                        .stats
                        .add(metrics::LATR_DEFERRED_FRAMES, pkg.frames.len() as u64);
                    let now = machine.now();
                    let deadline =
                        now + self.config.reclaim_ticks as u64 * machine.tick_period() + 1;
                    let gate = self.config.gate_reclaim.then_some(state_id);
                    // Parked frames are reclamation debt: the allocator's
                    // per-node ledger must know memory exists that a sweep
                    // (not an OOM kill) will recover.
                    machine.note_reclaim_debt(&pkg);
                    self.reclaim.defer_gated(deadline, now, gate, pkg);
                }
                self.check_enter_pressure(machine, initiator.index());
                FlushOutcome::Deferred {
                    local_ns: machine.costs().latr_state_save,
                    defer_reclaim: true,
                }
            }
            None => {
                // Queue full: fall back to the IPI mechanism (§4.2), and
                // under adaptive fallback stay synchronous until occupancy
                // drains.
                machine.stats.inc(metrics::LATR_FALLBACK_IPIS);
                self.enter_sync_mode(machine, "state queue overflow");
                let vpns: Vec<Vpn> = pages.iter().map(|&(v, _)| v).collect();
                let txn = machine.begin_sync_shootdown(initiator, mm, vpns, targets, start_delay);
                FlushOutcome::Sync { txn, local_ns: 0 }
            }
        }
    }

    fn on_sched_tick(&mut self, machine: &mut Machine, cpu: CpuId) -> Nanos {
        self.sweep(machine, cpu)
    }

    fn on_context_switch(&mut self, machine: &mut Machine, cpu: CpuId) -> Nanos {
        if self.config.sweep_on_context_switch {
            self.sweep(machine, cpu)
        } else {
            0
        }
    }

    fn on_reclaim_tick(&mut self, machine: &mut Machine) {
        self.ensure_queues(machine.topology().num_cpus());
        // An injected reclaim stall pins the kthread: simulated time
        // passes but nothing is escalated or released this tick (the
        // machine counts the suppressed tick in `faults_reclaim_stalls`).
        if machine.fault_reclaim_stalled() {
            return;
        }
        // Bounded-latency degradation first: escalate overdue states, then
        // re-evaluate the adaptive fallback's low-water mark.
        self.run_watchdog(machine);
        if self.sync_mode && !machine.fault_storm_active() {
            let exit = self.config.fallback_exit_pct as usize;
            let drained = self
                .queues
                .iter()
                .all(|q| q.active_count() * 100 <= exit * q.capacity());
            // A pressure-forced sync entry waits for every node to recover
            // to Normal on top of the queue-drain hysteresis: drained
            // queues alone are no proof the allocation storm has passed.
            let recovered =
                !self.pressure_sync_active || machine.worst_pressure() == Pressure::Normal;
            if drained && recovered {
                self.sync_mode = false;
                self.pressure_sync_active = false;
                machine.stats.inc(metrics::LATR_ADAPTIVE_EXITS);
                if machine.trace.is_enabled() {
                    let now = machine.now();
                    machine.trace.push(
                        now,
                        "latr",
                        "adaptive fallback returns to lazy mode (queues drained)".to_string(),
                    );
                }
            }
        }
        // §6.4 memory-overhead accounting: sample how much physical memory
        // is parked awaiting reclamation before releasing what is due.
        machine
            .stats
            .record("latr_parked_bytes", self.reclaim.parked_bytes());
        // Release everything past its deadline whose covering state has
        // retired (empty mask). Blocked ids are the still-live states.
        let blocked = self.blocked_ids();
        // Honest gate accounting (whether or not a watchdog runs): count
        // packages overdue but still held by an uncleared bitmask.
        let held = self
            .reclaim
            .overdue_gated(machine.now(), |id| blocked.contains(&id));
        if held > 0 {
            machine.stats.add(metrics::LATR_GATE_HELD, held as u64);
        }
        self.release_due(machine, &blocked, "background reclaim");
        self.scratch_blocked = blocked;
        // Sustained pressure keeps expediting: `on_memory_pressure` only
        // fires on watermark *edges*, so a node camped below its low
        // watermark would otherwise get exactly one batch. Each tick under
        // pressure expedites up to `expedite_batch` more of the oldest
        // gated packages — still bounded, still a no-op on healthy runs
        // (unconfigured watermarks report `Pressure::Normal`).
        if machine.worst_pressure() >= Pressure::Low {
            self.expedite_gated(machine, self.config.expedite_batch);
        }
    }

    fn on_memory_pressure(
        &mut self,
        machine: &mut Machine,
        node: latr_arch::NodeId,
        level: Pressure,
    ) {
        match level {
            // Recovery is handled by the sync-exit hysteresis in
            // `on_reclaim_tick`; nothing to do on the falling edge.
            Pressure::Normal => {}
            // Low watermark: expedite the oldest gated packages so their
            // frames come back within a bounded number of ticks.
            Pressure::Low => {
                self.expedite_gated(machine, self.config.expedite_batch);
            }
            // Min watermark: the reserve is breached — expedite harder
            // *and* stop parking new frees until the node recovers.
            Pressure::Min => {
                self.expedite_gated(machine, self.config.expedite_batch);
                if self.config.pressure_sync && self.config.adaptive_fallback && !self.sync_mode {
                    self.enter_sync_mode(machine, "free frames below the min watermark");
                    machine.stats.inc(metrics::LATR_PRESSURE_SYNC_ENTERS);
                    self.pressure_sync_active = true;
                }
            }
        }
        let _ = node;
    }

    fn on_alloc_stall(
        &mut self,
        machine: &mut Machine,
        _cpu: CpuId,
        _node: latr_arch::NodeId,
    ) -> u64 {
        self.ensure_queues(machine.topology().num_cpus());
        // Direct reclaim: release everything already past its deadline
        // whose gate has cleared — frames a background tick would have
        // freed moments later anyway — then expedite the oldest gated
        // states so the *next* stall (or tick) can make progress.
        let blocked = self.blocked_ids();
        let released = self.release_due(machine, &blocked, "direct reclaim");
        self.scratch_blocked = blocked;
        self.expedite_gated(machine, self.config.expedite_batch);
        released
    }

    fn on_sync_complete(&mut self, machine: &mut Machine, txn: &ShootdownTxn) {
        // Only watchdog escalation rounds concern us; ordinary sync
        // shootdowns (mprotect, overflow fallback) have no covering state.
        let Some(state_id) = self.watchdog_rounds.remove(&txn.id.0) else {
            return;
        };
        self.escalated.remove(&state_id);
        let mut found = None;
        for (qi, q) in self.queues.iter().enumerate() {
            if let Some(s) = q.iter_active().find(|s| s.id == state_id) {
                found = Some((qi, s.mm, s.range, s.cpus));
                break;
            }
        }
        // The state may have been swept naturally while the round was in
        // flight — then there is nothing left to clear.
        let Some((qi, mm, range, cpus)) = found else {
            return;
        };
        // Every laggard's TLB was invalidated by the IPI handler (which
        // happened-before this last ACK): their sweep duty is done.
        for cpu in cpus.iter() {
            machine.oracle_note_sweep(cpu, mm, range);
        }
        for s in self.queues[qi].iter_active_mut() {
            if s.id == state_id {
                for cpu in cpus.iter() {
                    s.cpus.clear(cpu);
                }
            }
        }
        self.queues[qi].retire_completed();
        if machine.trace.is_enabled() {
            let now = machine.now();
            machine.trace.push(
                now,
                "latr",
                format!("watchdog round for state {state_id} complete; state retired"),
            );
        }
    }

    fn numa_hint_unmap(&mut self, machine: &mut Machine, cpu: CpuId, mm: MmId, vpn: Vpn) -> bool {
        if !self.config.lazy_migration {
            return false;
        }
        self.ensure_queues(machine.topology().num_cpus());
        // "This state includes the CPU bitmask of all the cores" —
        // including the recording core, which unmaps at its own next tick.
        let targets: CpuMask = machine.mm(mm).cpumask;
        if targets.is_empty() {
            return false;
        }
        // Adaptive fallback covers migration unmaps too: decline lazily
        // and let the machine run the synchronous hint-unmap.
        if self.config.adaptive_fallback && self.sync_mode {
            machine.stats.inc(metrics::LATR_FALLBACK_IPIS);
            machine.stats.inc(metrics::LATR_ADAPTIVE_SYNC_OPS);
            return false;
        }
        if machine.fault_force_overflow() {
            machine.stats.inc(metrics::LATR_FALLBACK_IPIS);
            self.enter_sync_mode(machine, "state queue overflow");
            return false;
        }
        let state = LatrState {
            id: self.next_state_id(),
            range: VaRange::new(vpn, 1),
            mm,
            kind: StateKind::Migration,
            cpus: targets,
            pte_done: false,
            published: machine.now(),
        };
        match self.queues[cpu.index()].publish(state) {
            Some(slot) => {
                self.pending.mark(&targets, cpu);
                machine.oracle_note_publish(cpu, mm, VaRange::new(vpn, 1), targets, true);
                machine.stats.inc(metrics::LATR_STATES_SAVED);
                machine.llc.charge_latr_save();
                machine.charge_debt(cpu, machine.costs().latr_state_save);
                if machine.trace.is_enabled() {
                    let now = machine.now();
                    machine.trace.push(
                        now,
                        "latr",
                        format!("{cpu} saves state[{slot}] {vpn:?} (migration, PTE untouched)"),
                    );
                }
                self.check_enter_pressure(machine, cpu.index());
                true
            }
            None => {
                machine.stats.inc(metrics::LATR_FALLBACK_IPIS);
                self.enter_sync_mode(machine, "state queue overflow");
                false
            }
        }
    }

    fn numa_fault_may_proceed(&mut self, _machine: &mut Machine, mm: MmId, vpn: Vpn) -> bool {
        // The fault is held until every core named in the migration state
        // has invalidated (§4.4's mmap_sem rule). The per-queue migration
        // counter skips the slot scan entirely on the common no-migration
        // path.
        !self.queues.iter().any(|q| {
            q.active_migrations() > 0
                && q.iter_active().any(|s| {
                    s.kind == StateKind::Migration
                        && s.mm == mm
                        && s.range.contains(vpn)
                        && !s.cpus.is_empty()
                })
        })
    }

    fn on_shutdown(&mut self, machine: &mut Machine) {
        // Drain the lazy lists so end-of-run leak checks see a clean
        // machine. The states' TLB entries are irrelevant once the run is
        // over; the *invariant* (frames still allocated while cached) held
        // throughout because draining happens after the final event.
        for pkg in self.reclaim.drain_all() {
            machine.release_reclaim_deferred(pkg);
        }
        for q in &mut self.queues {
            q.clear();
        }
        self.pending.clear();
        self.escalated.clear();
        self.watchdog_rounds.clear();
        self.expedited_at.clear();
        self.pressure_sync_active = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_arch::{MachinePreset, Topology};
    use latr_kernel::{Machine, MachineConfig, Op, Workload};
    use latr_sim::{MICROSECOND, SECOND};

    /// Every task maps one page, touches it, unmaps it, repeats — then
    /// lingers a few scheduler ticks so the lazy machinery (sweeps,
    /// background reclamation) actually runs before the tasks exit.
    struct MapTouchUnmap {
        cores: usize,
        rounds: u32,
        progress: Vec<u32>,
        phase: Vec<u8>,
        linger: Vec<u32>,
    }

    impl MapTouchUnmap {
        fn new(cores: usize, rounds: u32) -> Self {
            MapTouchUnmap {
                cores,
                rounds,
                progress: vec![0; cores],
                phase: vec![0; cores],
                linger: vec![4; cores],
            }
        }
    }

    impl Workload for MapTouchUnmap {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            for c in 0..self.cores {
                machine.spawn_task(mm, CpuId(c as u16));
            }
        }

        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            let i = task.index();
            if self.progress[i] >= self.rounds {
                if self.linger[i] > 0 {
                    self.linger[i] -= 1;
                    return Op::Sleep(latr_sim::MILLISECOND);
                }
                return Op::Exit;
            }
            let op = match self.phase[i] {
                0 => Op::MmapAnon { pages: 1 },
                1 => {
                    let r = machine.task(task).last_mmap.unwrap();
                    Op::Access {
                        vpn: r.start,
                        write: true,
                    }
                }
                _ => {
                    let r = machine.task(task).last_mmap.unwrap();
                    Op::Munmap { range: r }
                }
            };
            self.phase[i] = (self.phase[i] + 1) % 3;
            if self.phase[i] == 0 {
                self.progress[i] += 1;
            }
            op
        }
    }

    fn run_latr(cores: usize, rounds: u32) -> Machine {
        let mut machine = Machine::new(MachineConfig::new(Topology::preset(
            MachinePreset::Commodity2S16C,
        )));
        machine.run(
            Box::new(MapTouchUnmap::new(cores, rounds)),
            Box::new(LatrPolicy::new(LatrConfig::default())),
            SECOND,
        );
        machine
    }

    #[test]
    fn latr_sends_no_ipis_for_free_operations() {
        let m = run_latr(8, 10);
        assert_eq!(m.stats.counter(metrics::IPIS_SENT), 0);
        assert_eq!(m.stats.counter(metrics::SHOOTDOWNS), 0);
        assert_eq!(m.stats.counter(metrics::LATR_STATES_SAVED), 8 * 10);
        assert_eq!(m.stats.counter(metrics::LATR_FALLBACK_IPIS), 0);
    }

    #[test]
    fn latr_munmap_latency_is_flat_and_low() {
        let m2 = run_latr(2, 20);
        let m16 = run_latr(16, 20);
        let l2 = m2.stats.histogram(metrics::MUNMAP_NS).unwrap().mean();
        let l16 = m16.stats.histogram(metrics::MUNMAP_NS).unwrap().mean();
        // Fig. 6: Latr's munmap ≈ 2.4 µs at 16 cores and nearly flat.
        assert!(
            (1.2 * MICROSECOND as f64..4.0 * MICROSECOND as f64).contains(&l16),
            "16-core Latr munmap {l16:.0}ns not ≈ 2.4 µs"
        );
        assert!(
            l16 < l2 * 2.5,
            "Latr should stay nearly flat: {l2:.0} -> {l16:.0}"
        );
    }

    #[test]
    fn latr_beats_linux_at_scale() {
        use latr_kernel::LinuxPolicy;
        let latr = run_latr(16, 20);
        let mut linux_machine = Machine::new(MachineConfig::new(Topology::preset(
            MachinePreset::Commodity2S16C,
        )));
        linux_machine.run(
            Box::new(MapTouchUnmap::new(16, 20)),
            Box::new(LinuxPolicy::new()),
            SECOND,
        );
        let l_latr = latr.stats.histogram(metrics::MUNMAP_NS).unwrap().mean();
        let l_linux = linux_machine
            .stats
            .histogram(metrics::MUNMAP_NS)
            .unwrap()
            .mean();
        // Fig. 6: ≈70% improvement; interference makes the concurrent case
        // even more lopsided. Require at least 50%.
        assert!(
            l_latr < l_linux * 0.5,
            "latr {l_latr:.0}ns vs linux {l_linux:.0}ns"
        );
    }

    #[test]
    fn frames_are_released_after_two_ticks() {
        let m = run_latr(4, 5);
        // After the run (with shutdown drain) nothing leaks.
        assert_eq!(m.frames.allocated_count(), 0);
        assert_eq!(
            m.stats.counter(metrics::LATR_DEFERRED_FRAMES),
            4 * 5,
            "every anonymous page must pass through the lazy list"
        );
    }

    #[test]
    fn reclamation_invariant_holds() {
        let m = run_latr(16, 30);
        assert_eq!(m.check_reclamation_invariant(), None);
        assert_eq!(m.check_mapping_coherence(), None);
    }

    #[test]
    fn sweeps_do_invalidate_remote_entries() {
        let m = run_latr(8, 10);
        assert!(
            m.stats.counter(metrics::LATR_SWEEP_HITS) > 0,
            "remote cores must pick up states at their ticks"
        );
    }

    /// Two tasks share an mm; task 0 mmap/touch/munmaps in a tight burst
    /// (well under one scheduler tick) while task 1 keeps its core's bit
    /// in the cpumask — overflowing the state queue. After `bursts`
    /// unmaps, task 0 lingers asleep so the adaptive fallback's low-water
    /// exit can be observed.
    struct Burst {
        mapped: Vec<VaRange>,
        phase: u8,
        unmapped: usize,
        bursts: usize,
        linger: u32,
    }

    impl Burst {
        fn new(bursts: usize, linger: u32) -> Self {
            Burst {
                mapped: Vec::new(),
                phase: 0,
                unmapped: 0,
                bursts,
                linger,
            }
        }
    }

    impl Workload for Burst {
        fn setup(&mut self, machine: &mut Machine) {
            let mm = machine.create_process();
            machine.spawn_task(mm, CpuId(0));
            machine.spawn_task(mm, CpuId(1));
        }
        fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
            if task.index() == 1 {
                // Keep the second core's bit in the cpumask; touch the
                // most recent mapping so entries are really shared.
                return match self.mapped.last() {
                    Some(r) if self.phase == 1 => Op::Access {
                        vpn: r.start,
                        write: false,
                    },
                    _ => Op::Sleep(1_000),
                };
            }
            match self.phase {
                0 => {
                    self.phase = 1;
                    Op::MmapAnon { pages: 1 }
                }
                1 => {
                    let r = machine.task(task).last_mmap.unwrap();
                    self.mapped.push(r);
                    self.phase = 2;
                    Op::Access {
                        vpn: r.start,
                        write: true,
                    }
                }
                _ => {
                    self.phase = 0;
                    if let Some(r) = self.mapped.pop() {
                        self.unmapped += 1;
                        if self.unmapped > self.bursts {
                            return Op::Exit;
                        }
                        Op::Munmap { range: r }
                    } else if self.linger > 0 {
                        self.linger -= 1;
                        Op::Sleep(latr_sim::MILLISECOND)
                    } else {
                        Op::Exit
                    }
                }
            }
        }
    }

    fn run_burst(bursts: usize, linger: u32, config: LatrConfig) -> Machine {
        let mut machine = Machine::new(MachineConfig::new(Topology::preset(
            MachinePreset::Commodity2S16C,
        )));
        machine.run(
            Box::new(Burst::new(bursts, linger)),
            Box::new(LatrPolicy::new(config)),
            SECOND,
        );
        machine
    }

    /// Overflowing the 64-entry queue must fall back to IPIs, not lose
    /// shootdowns.
    #[test]
    fn queue_overflow_falls_back_to_ipis() {
        // 200 munmaps in well under one tick (each ~2 µs) with a 64-slot
        // queue: must overflow.
        let machine = run_burst(200, 0, LatrConfig::default());
        assert!(
            machine.stats.counter(metrics::LATR_FALLBACK_IPIS) > 0,
            "a 200-unmap burst within one tick must overflow 64 slots"
        );
        // Adaptive fallback (default-on) must have flipped to sync mode on
        // the first overflow instead of burning a failed publish per op.
        assert!(
            machine.stats.counter(metrics::LATR_ADAPTIVE_ENTERS) >= 1,
            "overflow must trigger the adaptive sync-mode transition"
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
    }

    /// Fallback accounting under overflow: while sync mode is engaged,
    /// every routed op counts as both a fallback IPI round and an
    /// adaptive sync op; once the burst ends and occupancy drains below
    /// the low-water mark, the policy exits sync mode exactly once.
    #[test]
    fn overflow_fallback_accounting_balances() {
        let m = run_burst(200, 20, LatrConfig::default());
        let fallback = m.stats.counter(metrics::LATR_FALLBACK_IPIS);
        let sync_ops = m.stats.counter(metrics::LATR_ADAPTIVE_SYNC_OPS);
        let enters = m.stats.counter(metrics::LATR_ADAPTIVE_ENTERS);
        assert!(fallback > 0);
        assert!(sync_ops > 0, "ops during sync mode must be accounted");
        // Every sync-mode op and every hard overflow increments the
        // fallback counter; sync-mode ops can never exceed it.
        assert!(
            fallback >= sync_ops,
            "fallback {fallback} < sync ops {sync_ops}"
        );
        // With the adaptive transition, at most `enters` publishes failed
        // outright: the rest were routed without touching a queue. (An
        // enter triggered by the occupancy high-water mark rather than a
        // hard overflow has no fallback round of its own, hence ≤.)
        assert!(enters >= 1);
        assert!(
            fallback <= sync_ops + enters,
            "fallback {fallback} > sync ops {sync_ops} + enters {enters}"
        );
        // The linger phase drains the queues: sync mode must have exited.
        assert_eq!(m.stats.counter(metrics::LATR_ADAPTIVE_EXITS), enters);
        // Fallback rounds are real shootdowns with real IPIs.
        assert!(m.stats.counter(metrics::SHOOTDOWNS) > 0);
        assert!(m.stats.counter(metrics::IPIS_SENT) > 0);
        assert_eq!(m.check_reclamation_invariant(), None);
        assert_eq!(m.check_mapping_coherence(), None);
    }

    /// With the adaptive fallback disabled, every overflowing op burns a
    /// failed publish: fallback rounds accumulate, no adaptive
    /// transitions are ever recorded, and nothing is lost.
    #[test]
    fn overflow_without_adaptive_fallback_burns_per_op() {
        let config = LatrConfig {
            adaptive_fallback: false,
            ..LatrConfig::default()
        };
        let m = run_burst(200, 20, config);
        assert!(m.stats.counter(metrics::LATR_FALLBACK_IPIS) > 1);
        assert_eq!(m.stats.counter(metrics::LATR_ADAPTIVE_ENTERS), 0);
        assert_eq!(m.stats.counter(metrics::LATR_ADAPTIVE_EXITS), 0);
        assert_eq!(m.stats.counter(metrics::LATR_ADAPTIVE_SYNC_OPS), 0);
        assert!(m.stats.counter(metrics::SHOOTDOWNS) > 0);
        assert_eq!(m.check_reclamation_invariant(), None);
        assert_eq!(m.check_mapping_coherence(), None);
    }

    /// In healthy runs the degradation machinery must be invisible: no
    /// watchdog escalations, no adaptive transitions.
    #[test]
    fn degradation_mechanisms_stay_idle_on_healthy_runs() {
        let m = run_latr(8, 10);
        assert_eq!(m.stats.counter(metrics::LATR_WATCHDOG_ESCALATIONS), 0);
        assert_eq!(m.stats.counter(metrics::LATR_WATCHDOG_IPIS), 0);
        assert_eq!(m.stats.counter(metrics::LATR_ADAPTIVE_ENTERS), 0);
        assert_eq!(m.stats.counter(metrics::LATR_ADAPTIVE_SYNC_OPS), 0);
    }
}
