//! # latr-core — Latr: lazy translation coherence
//!
//! The paper's contribution, in two forms:
//!
//! 1. **The simulation policy** ([`LatrPolicy`]): a
//!    [`latr_kernel::TlbPolicy`] that replaces synchronous IPI shootdowns
//!    with *Latr states* — per-core cyclic queues of pending invalidations
//!    that every core sweeps at its next scheduler tick or context switch —
//!    plus lazy reclamation of virtual and physical pages (two scheduler
//!    ticks, §4.2) and lazy page-table unmap for AutoNUMA migration
//!    (§4.3). This is what the paper's figures are regenerated with.
//!
//! 2. **The runtime** ([`rt`]): a real, lock-free, multi-threaded
//!    implementation of the same data structures — atomic CPU masks,
//!    cyclic state queues, cross-core sweeps and epoch/tick-based deferred
//!    reclamation — usable as a user-space library for "lazy invalidation
//!    with bounded staleness" patterns, and benchmarked with criterion to
//!    reproduce Table 5's nanosecond-scale costs on real hardware.
//!
//! ## Quick start (simulation)
//!
//! ```
//! use latr_core::{LatrConfig, LatrPolicy};
//! use latr_kernel::{Machine, MachineConfig};
//! use latr_arch::{MachinePreset, Topology};
//!
//! let config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
//! let machine = Machine::new(config);
//! let policy = LatrPolicy::new(LatrConfig::default());
//! assert_eq!(machine.now().as_ns(), 0);
//! drop((machine, policy));
//! ```

mod config;
mod policy;
mod reclaim;
pub mod rt;
mod state;
mod sweep_index;

pub use config::LatrConfig;
pub use policy::LatrPolicy;
pub use reclaim::LazyReclaimQueue;
pub use state::{LatrState, StateKind, StateQueue};
pub use sweep_index::PendingSweepMap;
