//! Lazy memory reclamation (§4.2).
//!
//! Freed virtual ranges and physical frames are parked here instead of
//! returning to the allocator; the background reclamation thread releases
//! them once the shootdown upper bound (two scheduler ticks) has passed:
//! "Latr waits two full cycles of TLB invalidations (i.e., two scheduler
//! ticks and 2 ms) to ensure that all associated entries have definitely
//! been invalidated by at least one scheduler tick."

use latr_kernel::ReclaimPackage;
use latr_sim::Time;
use std::collections::VecDeque;

/// A deadline-ordered queue of deferred [`ReclaimPackage`]s.
///
/// Entries are pushed with monotonically non-decreasing deadlines (each is
/// `publish_time + 2 ticks`), so a simple FIFO pop-while-due suffices.
#[derive(Debug, Default)]
pub struct LazyReclaimQueue {
    entries: VecDeque<(Time, ReclaimPackage)>,
    deferred_frames: u64,
}

impl LazyReclaimQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks a package until `deadline`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `deadline` is earlier than the most
    /// recently pushed deadline (the caller always computes `now + 2
    /// ticks`, which is monotone).
    pub fn defer(&mut self, deadline: Time, pkg: ReclaimPackage) {
        if let Some(&(last, _)) = self.entries.back() {
            debug_assert!(deadline >= last, "reclaim deadlines must be monotone");
        }
        self.deferred_frames += pkg.frames.len() as u64;
        self.entries.push_back((deadline, pkg));
    }

    /// Pops every package whose deadline is at or before `now`.
    pub fn due(&mut self, now: Time) -> Vec<ReclaimPackage> {
        let mut out = Vec::new();
        while let Some(&(deadline, _)) = self.entries.front() {
            if deadline > now {
                break;
            }
            out.push(self.entries.pop_front().expect("front exists").1);
        }
        out
    }

    /// Drains everything regardless of deadline (end of run).
    pub fn drain_all(&mut self) -> Vec<ReclaimPackage> {
        self.entries.drain(..).map(|(_, p)| p).collect()
    }

    /// Packages currently parked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total frames ever deferred through this queue.
    pub fn total_deferred_frames(&self) -> u64 {
        self.deferred_frames
    }

    /// Bytes of physical memory currently parked (the §6.4 memory-overhead
    /// metric), assuming 4 KiB frames.
    pub fn parked_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, p)| p.frames.len() as u64 * latr_mem::PAGE_SIZE)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_mem::{MmId, Pfn, VaRange, Vpn};

    fn pkg(frames: u64) -> ReclaimPackage {
        ReclaimPackage {
            mm: MmId(0),
            frames: (0..frames).map(Pfn).collect(),
            va: Some(VaRange::new(Vpn(1), frames)),
        }
    }

    #[test]
    fn due_respects_deadlines() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(100), pkg(1));
        q.defer(Time::from_ns(200), pkg(2));
        assert!(q.due(Time::from_ns(99)).is_empty());
        let first = q.due(Time::from_ns(100));
        assert_eq!(first.len(), 1);
        assert_eq!(q.len(), 1);
        let second = q.due(Time::from_ns(500));
        assert_eq!(second.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn due_pops_multiple_at_once() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(10), pkg(1));
        q.defer(Time::from_ns(20), pkg(1));
        q.defer(Time::from_ns(30), pkg(1));
        assert_eq!(q.due(Time::from_ns(25)).len(), 2);
    }

    #[test]
    fn drain_all_ignores_deadlines() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(1_000_000), pkg(3));
        assert_eq!(q.drain_all().len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn accounting() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(10), pkg(4));
        q.defer(Time::from_ns(20), pkg(2));
        assert_eq!(q.total_deferred_frames(), 6);
        assert_eq!(q.parked_bytes(), 6 * 4096);
        q.due(Time::from_ns(15));
        assert_eq!(q.parked_bytes(), 2 * 4096);
        // Total is cumulative, not current.
        assert_eq!(q.total_deferred_frames(), 6);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn non_monotone_deadline_panics_in_debug() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(100), pkg(1));
        q.defer(Time::from_ns(50), pkg(1));
    }
}
