//! Lazy memory reclamation (§4.2).
//!
//! Freed virtual ranges and physical frames are parked here instead of
//! returning to the allocator; the background reclamation thread releases
//! them once the shootdown upper bound (two scheduler ticks) has passed:
//! "Latr waits two full cycles of TLB invalidations (i.e., two scheduler
//! ticks and 2 ms) to ensure that all associated entries have definitely
//! been invalidated by at least one scheduler tick."
//!
//! Entries may additionally be *gated* on the Latr state that covers them
//! ([`LazyReclaimQueue::defer_gated`]): a gated package is not released —
//! deadline or not — while its state's CPU bitmask is still non-empty.
//! The deadline alone is only a proof of safety when every core actually
//! swept; under a stalled sweeper or a lost IPI it is not, and releasing
//! by deadline would free frames a remote TLB still caches. The sweep
//! watchdog bounds how long a gate can hold.

use latr_kernel::ReclaimPackage;
use latr_sim::Time;
use std::collections::VecDeque;

/// One parked reclamation package.
#[derive(Debug)]
pub struct DeferredReclaim {
    /// Earliest release time (`publish + reclaim_ticks` ticks).
    pub deadline: Time,
    /// When the covering state was published (for reclaim-latency stats).
    pub published: Time,
    /// The Latr state id whose bitmask must clear before release (`None`
    /// for ungated, deadline-only entries).
    pub gate: Option<u64>,
    /// The frames and VA range to release.
    pub pkg: ReclaimPackage,
}

/// A deadline-ordered queue of deferred [`ReclaimPackage`]s.
///
/// Entries are pushed with monotonically non-decreasing deadlines (each is
/// `publish_time + 2 ticks`); gated entries whose state has not retired
/// are skipped in place and picked up on a later pass.
#[derive(Debug, Default)]
pub struct LazyReclaimQueue {
    entries: VecDeque<DeferredReclaim>,
    deferred_frames: u64,
}

impl LazyReclaimQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks a package until `deadline`, with no sweep gate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `deadline` is earlier than the most
    /// recently pushed deadline (the caller always computes `now + 2
    /// ticks`, which is monotone).
    pub fn defer(&mut self, deadline: Time, pkg: ReclaimPackage) {
        self.defer_gated(deadline, deadline, None, pkg);
    }

    /// Parks a package until `deadline` *and* until the Latr state
    /// `gate` (if any) has an empty CPU bitmask.
    pub fn defer_gated(
        &mut self,
        deadline: Time,
        published: Time,
        gate: Option<u64>,
        pkg: ReclaimPackage,
    ) {
        if let Some(last) = self.entries.back() {
            debug_assert!(
                deadline >= last.deadline,
                "reclaim deadlines must be monotone"
            );
        }
        self.deferred_frames += pkg.frames.len() as u64;
        self.entries.push_back(DeferredReclaim {
            deadline,
            published,
            gate,
            pkg,
        });
    }

    /// Pops every package whose deadline is at or before `now` and whose
    /// gate (if any) reports unblocked. `is_blocked` is queried with the
    /// gating state id; gated-and-blocked entries stay parked, so the
    /// queue is scanned past them up to the first not-yet-due deadline.
    pub fn due(&mut self, now: Time, is_blocked: impl Fn(u64) -> bool) -> Vec<DeferredReclaim> {
        let mut out = Vec::new();
        self.due_into(now, is_blocked, &mut out);
        out
    }

    /// [`due`](Self::due) appending to a caller-owned scratch vector —
    /// the reclamation tick passes a pooled one so steady state parks and
    /// releases packages without heap traffic.
    pub fn due_into(
        &mut self,
        now: Time,
        is_blocked: impl Fn(u64) -> bool,
        out: &mut Vec<DeferredReclaim>,
    ) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].deadline > now {
                break;
            }
            if self.entries[i].gate.is_some_and(&is_blocked) {
                i += 1;
                continue;
            }
            out.push(self.entries.remove(i).expect("index in bounds"));
        }
    }

    /// Packages past their deadline but still held by a blocked gate —
    /// the honest measure of gate-induced reclaim delay. Read-only: the
    /// policy counts this every reclamation tick (into `latr_gate_held`)
    /// whether or not a watchdog is configured, so the degradation
    /// counters stay truthful when `watchdog_ticks = 0`.
    pub fn overdue_gated(&self, now: Time, is_blocked: impl Fn(u64) -> bool) -> usize {
        self.entries
            .iter()
            .filter(|d| d.deadline <= now && d.gate.is_some_and(&is_blocked))
            .count()
    }

    /// State ids currently gating at least one parked package (pressure
    /// expedition targets exactly these — sweeping a state that gates
    /// nothing frees no memory).
    pub fn gate_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().filter_map(|d| d.gate)
    }

    /// Drains everything regardless of deadline or gate (end of run — the
    /// machine is quiescing, so no TLB can touch the parked frames again).
    pub fn drain_all(&mut self) -> Vec<ReclaimPackage> {
        self.entries.drain(..).map(|d| d.pkg).collect()
    }

    /// Packages currently parked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total frames ever deferred through this queue.
    pub fn total_deferred_frames(&self) -> u64 {
        self.deferred_frames
    }

    /// Bytes of physical memory currently parked (the §6.4 memory-overhead
    /// metric), assuming 4 KiB frames.
    pub fn parked_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|d| d.pkg.frames.len() as u64 * latr_mem::PAGE_SIZE)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_mem::{MmId, Pfn, VaRange, Vpn};

    fn pkg(frames: u64) -> ReclaimPackage {
        ReclaimPackage {
            mm: MmId(0),
            frames: (0..frames).map(Pfn).collect(),
            va: Some(VaRange::new(Vpn(1), frames)),
        }
    }

    #[test]
    fn due_respects_deadlines() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(100), pkg(1));
        q.defer(Time::from_ns(200), pkg(2));
        assert!(q.due(Time::from_ns(99), |_| false).is_empty());
        let first = q.due(Time::from_ns(100), |_| false);
        assert_eq!(first.len(), 1);
        assert_eq!(q.len(), 1);
        let second = q.due(Time::from_ns(500), |_| false);
        assert_eq!(second.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn due_pops_multiple_at_once() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(10), pkg(1));
        q.defer(Time::from_ns(20), pkg(1));
        q.defer(Time::from_ns(30), pkg(1));
        assert_eq!(q.due(Time::from_ns(25), |_| false).len(), 2);
    }

    #[test]
    fn gated_entries_wait_for_their_state() {
        let mut q = LazyReclaimQueue::new();
        q.defer_gated(Time::from_ns(10), Time::from_ns(0), Some(7), pkg(1));
        q.defer_gated(Time::from_ns(20), Time::from_ns(5), Some(8), pkg(2));
        // State 7 still has CPUs pending: only state 8's package releases,
        // even though 7's deadline is earlier.
        let out = q.due(Time::from_ns(100), |id| id == 7);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].gate, Some(8));
        assert_eq!(q.len(), 1);
        // Once the state retires the held package flows out.
        let out = q.due(Time::from_ns(100), |_| false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].gate, Some(7));
        assert!(q.is_empty());
    }

    #[test]
    fn gated_skip_preserves_deadline_cutoff() {
        let mut q = LazyReclaimQueue::new();
        q.defer_gated(Time::from_ns(10), Time::from_ns(0), Some(1), pkg(1));
        q.defer(Time::from_ns(20), pkg(1));
        q.defer(Time::from_ns(300), pkg(1));
        // The blocked head must not hide the due ungated entry behind it,
        // and the not-yet-due tail must stay put.
        let out = q.due(Time::from_ns(50), |_| true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].gate, None);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_all_ignores_deadlines_and_gates() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(1_000_000), pkg(3));
        q.defer_gated(Time::from_ns(2_000_000), Time::from_ns(0), Some(1), pkg(1));
        assert_eq!(q.drain_all().len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn accounting() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(10), pkg(4));
        q.defer(Time::from_ns(20), pkg(2));
        assert_eq!(q.total_deferred_frames(), 6);
        assert_eq!(q.parked_bytes(), 6 * 4096);
        q.due(Time::from_ns(15), |_| false);
        assert_eq!(q.parked_bytes(), 2 * 4096);
        // Total is cumulative, not current.
        assert_eq!(q.total_deferred_frames(), 6);
    }

    #[test]
    fn overdue_gated_counts_only_blocked_past_deadline() {
        let mut q = LazyReclaimQueue::new();
        q.defer_gated(Time::from_ns(10), Time::from_ns(0), Some(1), pkg(1));
        q.defer_gated(Time::from_ns(20), Time::from_ns(0), Some(2), pkg(1));
        q.defer(Time::from_ns(30), pkg(1));
        q.defer_gated(Time::from_ns(900), Time::from_ns(0), Some(3), pkg(1));
        // At t=50 the two gated entries are overdue; the ungated one and
        // the not-yet-due one never count, whatever the gates say.
        assert_eq!(q.overdue_gated(Time::from_ns(50), |_| true), 2);
        assert_eq!(q.overdue_gated(Time::from_ns(50), |id| id == 2), 1);
        assert_eq!(q.overdue_gated(Time::from_ns(50), |_| false), 0);
        assert_eq!(q.overdue_gated(Time::from_ns(5), |_| true), 0);
        let gates: Vec<u64> = q.gate_ids().collect();
        assert_eq!(gates, vec![1, 2, 3]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn non_monotone_deadline_panics_in_debug() {
        let mut q = LazyReclaimQueue::new();
        q.defer(Time::from_ns(100), pkg(1));
        q.defer(Time::from_ns(50), pkg(1));
    }
}
