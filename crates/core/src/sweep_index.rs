//! The global pending-sweep bitmap behind the fast sweep path.
//!
//! The reference sweep (§4.1, [`crate::LatrPolicy`] with
//! `reference_sweep`) walks *every* core's state queue on every scheduler
//! tick and context switch — O(cores × slots) whether or not anything is
//! pending. This index inverts the relationship: when a core publishes a
//! state, it marks one bit per *target* CPU naming the publisher's queue,
//! so a sweeping core visits exactly the queues that may still hold a
//! state whose CPU bitmask includes it.
//!
//! ## Staleness contract
//!
//! Bits may be **stale-set** but never **stale-clear**:
//!
//! * A bit can outlive its reason — a watchdog escalation or a task-exit
//!   [`crate::StateQueue::clear_cpu_everywhere`] may clear the sweeper's
//!   mask bit directly, leaving the pending bit set. The next sweep
//!   visits the queue, finds nothing relevant, and the visit costs the
//!   same as the reference scan's empty-queue probe. Harmless.
//! * A bit is never missing while relevant: publishing is the *only*
//!   operation that adds a CPU to a state's bitmask, and every publish
//!   marks all targets; a sweep clears its own row only while also
//!   clearing the sweeper's bit from every state in every flagged queue.
//!
//! This is what makes the fast sweep produce a bit-identical event stream
//! to the reference scan — asserted by `policy::tests` property tests and
//! the cross-engine differential suite (`tests/differential.rs`).

use latr_arch::{CpuId, CpuMask};

/// Per-CPU bitmap over publisher queues: bit `q` of row `c` means "queue
/// `q` may hold a state whose CPU bitmask includes CPU `c`".
///
/// Queues are per-core, so a queue index is a CPU index and a [`CpuMask`]
/// (256 bits) doubles as the row type.
#[derive(Clone, Debug, Default)]
pub struct PendingSweepMap {
    rows: Vec<CpuMask>,
}

impl PendingSweepMap {
    /// Creates an empty map; rows are sized on first [`ensure`].
    ///
    /// [`ensure`]: PendingSweepMap::ensure
    pub fn new() -> Self {
        PendingSweepMap::default()
    }

    /// Grows to at least `ncpus` rows (idempotent, never shrinks).
    pub fn ensure(&mut self, ncpus: usize) {
        if self.rows.len() < ncpus {
            self.rows.resize(ncpus, CpuMask::empty());
        }
    }

    /// Records a publish into queue `publisher` targeting every CPU in
    /// `targets`.
    pub fn mark(&mut self, targets: &CpuMask, publisher: CpuId) {
        for cpu in targets.iter() {
            self.rows[cpu.index()].set(publisher);
        }
    }

    /// Takes and clears `cpu`'s row: the set of queues its sweep must
    /// visit. The caller is responsible for clearing `cpu` from every
    /// state in the returned queues before the next publish (the sweep
    /// does exactly that).
    pub fn take_row(&mut self, cpu: CpuId) -> CpuMask {
        std::mem::take(&mut self.rows[cpu.index()])
    }

    /// Clears everything (end of run).
    pub fn clear(&mut self) {
        self.rows.fill(CpuMask::empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_sets_publisher_bit_in_each_target_row() {
        let mut map = PendingSweepMap::new();
        map.ensure(8);
        let targets = CpuMask::from_cpus([CpuId(2), CpuId(5)]);
        map.mark(&targets, CpuId(3));
        assert_eq!(map.take_row(CpuId(2)), CpuMask::from_cpus([CpuId(3)]));
        assert_eq!(map.take_row(CpuId(5)), CpuMask::from_cpus([CpuId(3)]));
        assert!(map.take_row(CpuId(3)).is_empty());
    }

    #[test]
    fn take_row_clears() {
        let mut map = PendingSweepMap::new();
        map.ensure(4);
        map.mark(&CpuMask::from_cpus([CpuId(1)]), CpuId(0));
        assert!(!map.take_row(CpuId(1)).is_empty());
        assert!(map.take_row(CpuId(1)).is_empty());
    }

    #[test]
    fn rows_accumulate_across_publishers() {
        let mut map = PendingSweepMap::new();
        map.ensure(4);
        map.mark(&CpuMask::from_cpus([CpuId(1)]), CpuId(0));
        map.mark(&CpuMask::from_cpus([CpuId(1)]), CpuId(2));
        assert_eq!(
            map.take_row(CpuId(1)),
            CpuMask::from_cpus([CpuId(0), CpuId(2)])
        );
    }

    #[test]
    fn ensure_grows_without_dropping_bits() {
        let mut map = PendingSweepMap::new();
        map.ensure(2);
        map.mark(&CpuMask::from_cpus([CpuId(1)]), CpuId(0));
        map.ensure(8);
        assert_eq!(map.take_row(CpuId(1)), CpuMask::from_cpus([CpuId(0)]));
    }
}
