//! An atomic CPU bitmask.
//!
//! The concurrent twin of [`latr_arch::CpuMask`]: remote cores clear their
//! bit with a single `fetch_and`, and the one whose clear empties the mask
//! learns it atomically — that core retires the state, exactly the "last
//! core resets the active flag" step of §4.1 without any lock.

use crate::rt::sync::atomic::{AtomicU64, Ordering};

const WORDS: usize = 4; // up to 256 CPUs, same as latr_arch::MAX_CPUS

/// A 256-bit atomic CPU mask.
#[derive(Debug, Default)]
pub struct AtomicCpuMask {
    words: [AtomicU64; WORDS],
}

impl AtomicCpuMask {
    /// Creates an empty mask.
    pub fn new() -> Self {
        Self::default()
    }

    /// Non-atomically stores a plain bitmask where bit *i* of `bits[w]`
    /// is CPU `w*64+i`. Used by the publisher before the release-store of
    /// the active flag.
    pub fn store_words(&self, bits: [u64; WORDS], order: Ordering) {
        for (a, b) in self.words.iter().zip(bits) {
            a.store(b, order);
        }
    }

    /// Loads the current bits.
    pub fn load_words(&self, order: Ordering) -> [u64; WORDS] {
        [
            self.words[0].load(order),
            self.words[1].load(order),
            self.words[2].load(order),
            self.words[3].load(order),
        ]
    }

    /// Whether `cpu`'s bit is set.
    pub fn test(&self, cpu: usize, order: Ordering) -> bool {
        self.words[cpu / 64].load(order) & (1 << (cpu % 64)) != 0
    }

    /// Atomically clears `cpu`'s bit. Returns `(was_set, now_empty)`:
    /// whether the bit was previously set, and whether the whole mask is
    /// empty after the clear.
    ///
    /// Within one 64-CPU word the emptiness observation is exact (the
    /// `fetch_and` is atomic): exactly one clearer sees it. Across words
    /// more than one clearer may observe emptiness — only clears race and
    /// emptiness is stable once reached, so retirement acting on it must
    /// be idempotent (ours is: a plain `store(false)` of the active flag).
    pub fn clear(&self, cpu: usize) -> (bool, bool) {
        let w = cpu / 64;
        let bit = 1u64 << (cpu % 64);
        let old = self.words[w].fetch_and(!bit, Ordering::AcqRel);
        let was_set = old & bit != 0;
        let mut empty = old & !bit == 0;
        if empty {
            for (i, word) in self.words.iter().enumerate() {
                if i != w && word.load(Ordering::Acquire) != 0 {
                    empty = false;
                    break;
                }
            }
        }
        (was_set, empty)
    }

    /// Atomically sets `cpu`'s bit (release semantics: everything the
    /// setter did before — e.g. activating a state slot — is visible to
    /// whoever takes the bit with [`take_words`](Self::take_words)).
    pub fn set_bit(&self, cpu: usize) {
        self.words[cpu / 64].fetch_or(1 << (cpu % 64), Ordering::AcqRel);
    }

    /// Atomically sets `cpu`'s bit like [`set_bit`](Self::set_bit), but
    /// returns whether it was already set — the arbitration the exclusion
    /// mask needs so exactly one caller wins an exclude/poison race.
    pub fn set_returning(&self, cpu: usize) -> bool {
        let bit = 1u64 << (cpu % 64);
        self.words[cpu / 64].fetch_or(bit, Ordering::AcqRel) & bit != 0
    }

    /// Atomically takes and clears all bits, word by word (acquire
    /// semantics pairing with [`set_bit`](Self::set_bit)). Bits set
    /// concurrently with the drain land either in the returned snapshot
    /// or in the mask for the next take — never lost.
    pub fn take_words(&self) -> [u64; WORDS] {
        [
            self.words[0].swap(0, Ordering::AcqRel),
            self.words[1].swap(0, Ordering::AcqRel),
            self.words[2].swap(0, Ordering::AcqRel),
            self.words[3].swap(0, Ordering::AcqRel),
        ]
    }

    /// Whether no bits are set.
    pub fn is_empty(&self, order: Ordering) -> bool {
        self.words.iter().all(|w| w.load(order) == 0)
    }

    /// Number of set bits.
    pub fn count(&self, order: Ordering) -> usize {
        self.words
            .iter()
            .map(|w| w.load(order).count_ones() as usize)
            .sum()
    }
}

/// Builds the word representation of "CPUs `0..n` except `skip`".
pub(crate) fn mask_first_n_except(n: usize, skip: usize) -> [u64; WORDS] {
    let mut words = [0u64; WORDS];
    for cpu in 0..n {
        if cpu == skip {
            continue;
        }
        words[cpu / 64] |= 1 << (cpu % 64);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn store_test_clear() {
        let m = AtomicCpuMask::new();
        m.store_words([0b110, 0, 0, 1], Ordering::Release);
        assert!(m.test(1, Ordering::Acquire));
        assert!(m.test(2, Ordering::Acquire));
        assert!(m.test(192, Ordering::Acquire));
        assert!(!m.test(0, Ordering::Acquire));
        assert_eq!(m.count(Ordering::Acquire), 3);

        let (was_set, empty) = m.clear(1);
        assert!(was_set);
        assert!(!empty);
        let (was_set, _) = m.clear(1);
        assert!(!was_set);
        m.clear(2);
        let (was_set, empty) = m.clear(192);
        assert!(was_set);
        assert!(empty);
        assert!(m.is_empty(Ordering::Acquire));
    }

    #[test]
    fn exactly_one_clear_observes_emptiness() {
        // 64 threads each clear their own bit; exactly one must see the
        // mask become empty (that thread retires the slot).
        for _ in 0..50 {
            let m = Arc::new(AtomicCpuMask::new());
            m.store_words([u64::MAX, 0, 0, 0], Ordering::Release);
            let saw_empty = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..64)
                .map(|cpu| {
                    let m = Arc::clone(&m);
                    let saw = Arc::clone(&saw_empty);
                    std::thread::spawn(move || {
                        let (was_set, empty) = m.clear(cpu);
                        assert!(was_set);
                        if empty {
                            saw.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                saw_empty.load(Ordering::Relaxed),
                1,
                "exactly one clear must observe emptiness"
            );
            assert!(m.is_empty(Ordering::Acquire));
        }
    }

    #[test]
    fn mask_builder_skips_initiator() {
        let words = mask_first_n_except(5, 2);
        assert_eq!(words[0], 0b11011);
        let words = mask_first_n_except(130, 129);
        assert_eq!(words[0], u64::MAX);
        assert_eq!(words[1], u64::MAX);
        assert_eq!(words[2], 0b1);
    }
}
