//! Cache-line padding for the rt hot state.
//!
//! At 120+ real threads the dominant cost of the per-core tick counters,
//! pending-bitmap rows and queue head state is not the atomic op itself
//! but the coherence traffic from *neighbouring* fields sharing a cache
//! line: core A bumping its tick invalidates the line holding core B's
//! tick, so every sweep ping-pongs lines across the whole machine.
//! [`CachePadded`] aligns (and therefore sizes) each element to its own
//! 64-byte line, the same trick as `crossbeam_utils::CachePadded`.

/// Pads and aligns `T` to a 64-byte cache line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` on its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_elements_live_on_distinct_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<u64>>(), 64);
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        for w in v.windows(2) {
            let a = &*w[0] as *const u64 as usize;
            let b = &*w[1] as *const u64 as usize;
            assert!(b - a >= 64, "neighbours must not share a line");
        }
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(7u32);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
